// Seeded in-flight silent-data-corruption (SDC) injection.
//
// The storage fault plans (storage_faults.h) corrupt bytes at rest; this
// injector corrupts bytes *in motion* -- an activation crossing a stage
// boundary, a gradient travelling backward, a weight or optimizer moment
// between steps. Faults are armed consumed-once (the ArmedStorage idiom):
// each armed fault fires on the first matching send and is then gone, so a
// supervisor retry of the blamed step replays clean and a seeded chaos
// script maps 1:1 onto observed incidents.
//
// The injector itself never detects anything. Detection is the guard
// layer's job (guard/guard.h); keeping the two independent is what lets
// bench_sdc_guard measure the escape rate of unguarded training against
// the identical fault sequence.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "model/tensor.h"

namespace autopipe::faults {

/// What an armed bit flip lands on.
enum class SdcTarget {
  Activation,       ///< forward handoff tensor at a stage boundary
  Gradient,         ///< backward handoff tensor at a stage boundary
  Weight,           ///< a parameter tensor between steps
  OptimizerMoment,  ///< an Adam moment slot between steps
};

const char* to_string(SdcTarget target);

/// One armed single-bit flip. For in-flight targets (Activation/Gradient)
/// `boundary`/`micro_batch` select the send it rides on; Weight and
/// OptimizerMoment flips are applied directly by whoever holds the state
/// (see flip_float_bit) and never pass through SdcInjector::maybe_corrupt.
struct SdcFault {
  SdcTarget target = SdcTarget::Activation;
  int boundary = 0;          ///< channel index between global stages
  int micro_batch = 0;       ///< exact micro-batch; -1 = first send seen
  std::uint64_t elem = 0;    ///< flipped element (reduced mod numel at fire)
  int bit = 0;               ///< flipped bit (reduced mod 32)
};

/// Thread-safe consumed-once arming. Workers call maybe_corrupt on every
/// boundary send; with nothing armed the cost is one relaxed atomic load,
/// so threading an (empty) injector through a run is bitwise free.
class SdcInjector {
 public:
  void arm(const SdcFault& fault);

  /// Fires (and removes) the first armed fault matching (target, boundary,
  /// micro_batch), flipping one bit of `x` in place. Returns true if a
  /// fault fired. Runs read-only-plus-one-bit: no allocation, no copy.
  bool maybe_corrupt(SdcTarget target, int boundary, int micro_batch,
                     model::Tensor& x);

  int armed() const;
  int fired() const;
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<SdcFault> pending_;
  std::atomic<int> pending_count_{0};
  int fired_ = 0;
};

/// Flips bit (bit % 32) of data[elem % numel] in place. The shared
/// primitive for weight/optimizer flips applied outside the runtime.
void flip_float_bit(float* data, std::size_t numel, std::uint64_t elem,
                    int bit);

}  // namespace autopipe::faults
