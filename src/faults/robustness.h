// Monte-Carlo robustness evaluation of pipeline schedules.
//
// A schedule that wins on fault-free timing can lose badly once a straggler
// or a flaky link appears (the Luo et al. observation in PAPERS.md:
// schedule quality must survive real-cluster variance). This evaluator
// replays one schedule through the discrete-event executor under `trials`
// independently seeded FaultPlans drawn from a FaultDistribution and
// reports the p50/p95/p99 iteration-time quantiles. Trial i always uses
// seed base+i, and the trial loop fans out over the shared thread pool with
// an index-ordered reduction, so the report is bit-identical for every
// thread count -- the same determinism contract as the planner search.
//
// PlannerOptions::robustness plugs this in as a re-ranking stage: the wave
// search keeps its top-K schemes by nominal time, each gets Monte-Carlo'd,
// and the scheme with the best ranking quantile (tie-broken by scheme hash)
// wins.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.h"
#include "faults/fault_plan.h"
#include "sim/executor.h"

namespace autopipe::util {
class ThreadPool;
}

namespace autopipe::faults {

struct RobustnessOptions {
  /// Monte-Carlo trials; 0 disables robustness evaluation entirely (the
  /// planner knob's off position).
  int trials = 0;
  std::uint64_t seed = 1;
  /// Ranking quantile in [0, 100] (the planner picks the scheme minimizing
  /// this percentile of iteration time).
  double quantile = 95.0;
  /// Top-K nominal-time schemes the planner re-ranks (>= 1).
  int candidates = 4;
  FaultDistribution dist;

  bool enabled() const { return trials > 0; }
};

struct RobustnessReport {
  int trials = 0;
  double nominal_ms = 0;  ///< fault-free iteration time
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double worst_ms = 0;
  /// The ranking quantile (RobustnessOptions::quantile) of the samples.
  double score_ms = 0;
  int link_retries = 0;  ///< total outage retries across all trials
};

/// Monte-Carlo`s `options.trials` fault scenarios over `schedule` executed
/// with `exec` (any fault plan already in `exec` is ignored; each trial
/// installs its own). `pool` may be null (inline loop, same result).
RobustnessReport evaluate_robustness(const core::Schedule& schedule,
                                     const sim::ExecOptions& exec,
                                     const RobustnessOptions& options,
                                     util::ThreadPool* pool = nullptr);

}  // namespace autopipe::faults
