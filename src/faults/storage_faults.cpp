#include "faults/storage_faults.h"

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace autopipe::faults {

const StorageFault* FaultyStorage::match(StorageFault::Kind kind,
                                         int index) const {
  for (const StorageFault& f : plan_.faults) {
    if (f.kind == kind && f.op_index == index) return &f;
  }
  return nullptr;
}

void FaultyStorage::create_dirs(const std::string& path) {
  inner_.create_dirs(path);
}

void FaultyStorage::write_file(const std::string& path,
                               std::string_view bytes) {
  const int op = writes_++;
  if (const StorageFault* f = match(StorageFault::Kind::TornWrite, op)) {
    ++injected_;
    const std::size_t kept = std::min(f->at_byte, bytes.size());
    inner_.write_file(path, bytes.substr(0, kept));
    throw ckpt::StorageError("injected torn write to " + path + " (" +
                             std::to_string(kept) + "/" +
                             std::to_string(bytes.size()) + " bytes landed)");
  }
  if (const StorageFault* f = match(StorageFault::Kind::BitFlip, op)) {
    ++injected_;
    std::string corrupted(bytes);
    if (!corrupted.empty()) {
      corrupted[f->at_byte % corrupted.size()] ^= 0x01;
    }
    inner_.write_file(path, corrupted);  // lands "successfully"
    return;
  }
  inner_.write_file(path, bytes);
}

void FaultyStorage::rename_file(const std::string& from,
                                const std::string& to) {
  const int op = renames_++;
  if (match(StorageFault::Kind::RenameFail, op) != nullptr) {
    ++injected_;
    throw ckpt::StorageError("injected rename failure " + from + " -> " + to);
  }
  inner_.rename_file(from, to);
}

std::string FaultyStorage::read_file(const std::string& path) {
  const int op = reads_++;
  std::string bytes = inner_.read_file(path);
  if (const StorageFault* f = match(StorageFault::Kind::ShortRead, op)) {
    ++injected_;
    bytes.resize(std::min(f->at_byte, bytes.size()));
  }
  return bytes;
}

bool FaultyStorage::exists(const std::string& path) {
  return inner_.exists(path);
}

std::vector<std::string> FaultyStorage::list_dir(const std::string& dir) {
  return inner_.list_dir(dir);
}

void FaultyStorage::remove_file(const std::string& path) {
  inner_.remove_file(path);
}

void FaultyStorage::remove_dir(const std::string& path) {
  inner_.remove_dir(path);
}

StorageFaultPlan sample_storage_fault_plan(const StorageFaultDistribution& dist,
                                           int write_ops, int read_ops,
                                           int rename_ops, std::uint64_t seed) {
  util::Rng rng(seed);
  StorageFaultPlan plan;
  auto draw_byte = [&] {
    return static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(dist.max_byte) + 1));
  };
  for (int i = 0; i < write_ops; ++i) {
    // At most one fault per write op; torn wins over flip (a write cannot
    // both crash midway and land completely).
    if (rng.next_double() < dist.torn_write_prob) {
      plan.faults.push_back(
          {StorageFault::Kind::TornWrite, i, draw_byte()});
    } else if (rng.next_double() < dist.bit_flip_prob) {
      plan.faults.push_back({StorageFault::Kind::BitFlip, i, draw_byte()});
    }
  }
  for (int i = 0; i < read_ops; ++i) {
    if (rng.next_double() < dist.short_read_prob) {
      plan.faults.push_back({StorageFault::Kind::ShortRead, i, draw_byte()});
    }
  }
  for (int i = 0; i < rename_ops; ++i) {
    if (rng.next_double() < dist.rename_fail_prob) {
      plan.faults.push_back({StorageFault::Kind::RenameFail, i, 0});
    }
  }
  return plan;
}

}  // namespace autopipe::faults
