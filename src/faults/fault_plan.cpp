#include "faults/fault_plan.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace autopipe::faults {

double FaultPlan::slowdown(int device, double at_ms) const {
  double factor = 1.0;
  for (const Straggler& s : stragglers) {
    if (s.device == device && at_ms >= s.start_ms && at_ms < s.end_ms) {
      factor *= s.slowdown;
    }
  }
  return factor;
}

TransferOutcome FaultPlan::transfer(int boundary, double depart_ms,
                                    double base_lag_ms) const {
  TransferOutcome out;
  double depart = depart_ms;
  // Outages first: the message cannot leave while the link is down. Each
  // failed attempt costs one backoff; the loop is bounded because windows
  // are finite and backoffs positive (validate() enforces both).
  for (const LinkOutage& o : outages) {
    if (o.boundary != boundary) continue;
    while (depart >= o.start_ms && depart < o.end_ms) {
      depart += o.retry_backoff_ms;
      ++out.retries;
    }
  }
  double lag = base_lag_ms + (depart - depart_ms);
  for (const LinkSpike& s : spikes) {
    if (s.boundary == boundary && depart >= s.start_ms && depart < s.end_ms) {
      lag += s.extra_ms;
    }
  }
  out.lag_ms = lag;
  return out;
}

const DeviceCrash* FaultPlan::crash_for(int device) const {
  const DeviceCrash* first = nullptr;
  for (const DeviceCrash& c : crashes) {
    if (c.device == device && (first == nullptr || c.at_ms < first->at_ms)) {
      first = &c;
    }
  }
  return first;
}

bool FaultPlan::crashes_before_op(int device, int op_index) const {
  for (const DeviceCrash& c : crashes) {
    if (c.device == device && c.after_ops >= 0 && op_index >= c.after_ops) {
      return true;
    }
  }
  return false;
}

const TransientOpFault* FaultPlan::transient_for(int device,
                                                 int op_index) const {
  for (const TransientOpFault& t : transients) {
    if (t.device == device && t.op_index == op_index) return &t;
  }
  return nullptr;
}

bool FaultPlan::hangs_before_op(int device, int op_index) const {
  for (const HangFault& h : hangs) {
    if (h.device == device && h.op_index == op_index) return true;
  }
  return false;
}

double FaultPlan::slow_delay_ms(int device, int op_index) const {
  double total = 0;
  for (const SlowOps& s : slow_ops) {
    if (s.device == device && op_index >= s.first_op &&
        op_index < s.first_op + s.op_count) {
      total += s.delay_ms;
    }
  }
  return total;
}

void FaultPlan::validate(int devices, int boundaries) const {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("fault plan: " + what);
  };
  for (const Straggler& s : stragglers) {
    if (s.device < 0 || s.device >= devices) bad("straggler device out of range");
    if (s.slowdown < 1.0) bad("straggler slowdown must be >= 1");
    if (s.end_ms < s.start_ms) bad("straggler window is inverted");
  }
  for (const LinkSpike& s : spikes) {
    if (s.boundary < 0 || s.boundary >= boundaries) {
      bad("spike boundary out of range");
    }
    if (s.extra_ms < 0) bad("spike latency must be >= 0");
  }
  for (const LinkOutage& o : outages) {
    if (o.boundary < 0 || o.boundary >= boundaries) {
      bad("outage boundary out of range");
    }
    if (o.retry_backoff_ms <= 0) bad("outage backoff must be > 0");
    if (!(o.end_ms >= o.start_ms) ||
        o.end_ms == std::numeric_limits<double>::infinity()) {
      bad("outage window must be finite and ordered");
    }
  }
  for (const DeviceCrash& c : crashes) {
    if (c.device < 0 || c.device >= devices) bad("crash device out of range");
  }
  for (const TransientOpFault& t : transients) {
    if (t.device < 0 || t.device >= devices) {
      bad("transient device out of range");
    }
    if (t.op_index < 0) bad("transient op index must be >= 0");
    if (t.failures < 1) bad("transient failure count must be >= 1");
  }
  for (const HangFault& h : hangs) {
    if (h.device < 0 || h.device >= devices) bad("hang device out of range");
    if (h.op_index < 0) bad("hang op index must be >= 0");
  }
  for (const SlowOps& s : slow_ops) {
    if (s.device < 0 || s.device >= devices) {
      bad("slow-ops device out of range");
    }
    if (s.first_op < 0) bad("slow-ops first op must be >= 0");
    if (s.op_count < 1) bad("slow-ops op count must be >= 1");
    if (s.delay_ms < 0) bad("slow-ops delay must be >= 0");
  }
}

FaultPlan FaultPlan::without_device(int device) const {
  FaultPlan out;
  const auto remap = [device](int d) { return d > device ? d - 1 : d; };
  for (const Straggler& s : stragglers) {
    if (s.device == device) continue;
    Straggler kept = s;
    kept.device = remap(s.device);
    out.stragglers.push_back(kept);
  }
  for (const DeviceCrash& c : crashes) {
    if (c.device == device) continue;
    DeviceCrash kept = c;
    kept.device = remap(c.device);
    out.crashes.push_back(kept);
  }
  for (const TransientOpFault& t : transients) {
    if (t.device == device) continue;
    TransientOpFault kept = t;
    kept.device = remap(t.device);
    out.transients.push_back(kept);
  }
  for (const HangFault& h : hangs) {
    if (h.device == device) continue;
    HangFault kept = h;
    kept.device = remap(h.device);
    out.hangs.push_back(kept);
  }
  for (const SlowOps& s : slow_ops) {
    if (s.device == device) continue;
    SlowOps kept = s;
    kept.device = remap(s.device);
    out.slow_ops.push_back(kept);
  }
  return out;
}

FaultPlan sample_fault_plan(const FaultDistribution& dist, int devices,
                            int boundaries, double horizon_ms,
                            std::uint64_t seed) {
  if (devices < 1 || boundaries < 0 || horizon_ms < 0) {
    throw std::invalid_argument("sample_fault_plan: bad pipeline shape");
  }
  util::Rng rng(seed);
  FaultPlan plan;
  for (int d = 0; d < devices; ++d) {
    // Every device consumes the same number of draws whether or not it
    // straggles, so one device's outcome never shifts another's stream.
    const double roll = rng.next_double();
    const double slow = rng.uniform(dist.slowdown_min, dist.slowdown_max);
    const double at = rng.next_double();
    if (roll < dist.straggler_prob) {
      Straggler s;
      s.device = d;
      const double len = dist.window_frac * horizon_ms;
      s.start_ms = at * std::max(0.0, horizon_ms - len);
      s.end_ms = s.start_ms + len;
      s.slowdown = slow;
      plan.stragglers.push_back(s);
    }
  }
  for (int b = 0; b < boundaries; ++b) {
    const double spike_roll = rng.next_double();
    const double extra = rng.uniform(dist.spike_min_ms, dist.spike_max_ms);
    const double spike_at = rng.next_double();
    if (spike_roll < dist.spike_prob) {
      LinkSpike s;
      s.boundary = b;
      const double len = dist.window_frac * horizon_ms;
      s.start_ms = spike_at * std::max(0.0, horizon_ms - len);
      s.end_ms = s.start_ms + len;
      s.extra_ms = extra;
      plan.spikes.push_back(s);
    }
    const double outage_roll = rng.next_double();
    const double outage_at = rng.next_double();
    if (outage_roll < dist.outage_prob) {
      LinkOutage o;
      o.boundary = b;
      const double len = dist.outage_frac * horizon_ms;
      o.start_ms = outage_at * std::max(0.0, horizon_ms - len);
      o.end_ms = o.start_ms + len;
      o.retry_backoff_ms = dist.retry_backoff_ms;
      plan.outages.push_back(o);
    }
  }
  return plan;
}

}  // namespace autopipe::faults
