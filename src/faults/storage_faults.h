// Deterministic storage-fault injection for the checkpoint subsystem
// (DESIGN.md §7's failure matrix).
//
// Mirrors faults/fault_plan.h: a StorageFaultPlan is pure *data* describing
// which primitive storage operations misbehave, so the same plan replays
// the same failure scenario on every run and platform. FaultyStorage wraps
// any ckpt::Storage and applies the plan by per-kind operation counters:
//
//   TornWrite   the N-th write_file persists only the first `at_byte` bytes
//               and then throws StorageError -- the write looked like a
//               crash mid-write and left a truncated file behind
//   BitFlip     the N-th write_file lands completely but with one bit
//               flipped -- silent media corruption, detectable only by CRC
//   ShortRead   the N-th read_file returns a prefix of the real contents
//   RenameFail  the N-th rename_file throws without renaming -- the commit
//               that rename carried never happened
//
// The crash-consistency property the checkpoint tests enforce: under ANY
// plan, restore either loads the newest checkpoint that still validates or
// raises a typed ckpt::CkptError -- corrupt state is never loaded.
#pragma once

#include <cstdint>
#include <vector>

#include "ckpt/storage.h"

namespace autopipe::faults {

struct StorageFault {
  enum class Kind { TornWrite, BitFlip, ShortRead, RenameFail };
  Kind kind = Kind::TornWrite;
  /// Which operation of the kind's stream the fault hits (0-based count of
  /// write_file calls for TornWrite/BitFlip, read_file calls for ShortRead,
  /// rename_file calls for RenameFail).
  int op_index = 0;
  /// TornWrite/ShortRead: bytes that survive (clamped to the payload).
  /// BitFlip: byte offset of the flipped bit (mod payload size).
  std::size_t at_byte = 0;
};

struct StorageFaultPlan {
  std::vector<StorageFault> faults;
  bool empty() const { return faults.empty(); }
};

/// Storage decorator applying a StorageFaultPlan. An empty plan is
/// bit-identical to the bare inner storage (the no-fault contract the
/// fuzz tests pin down).
class FaultyStorage final : public ckpt::Storage {
 public:
  FaultyStorage(ckpt::Storage& inner, StorageFaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {}

  void create_dirs(const std::string& path) override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void remove_file(const std::string& path) override;
  void remove_dir(const std::string& path) override;

  /// Operations seen so far -- lets tests size fault plans to a workload.
  int writes() const { return writes_; }
  int reads() const { return reads_; }
  int renames() const { return renames_; }
  /// Faults actually triggered (an op_index past the workload never fires).
  int injected() const { return injected_; }

 private:
  const StorageFault* match(StorageFault::Kind kind, int index) const;

  ckpt::Storage& inner_;
  StorageFaultPlan plan_;
  int writes_ = 0, reads_ = 0, renames_ = 0, injected_ = 0;
};

/// Per-operation fault probabilities for the seeded generator.
struct StorageFaultDistribution {
  double torn_write_prob = 0.05;
  double bit_flip_prob = 0.05;
  double short_read_prob = 0.05;
  double rename_fail_prob = 0.05;
  /// Upper bound for drawn byte offsets (positions are clamped to the
  /// payload at injection time anyway).
  std::size_t max_byte = 1 << 14;
};

/// Draws one deterministic plan covering `write_ops` writes, `read_ops`
/// reads and `rename_ops` renames. Same (dist, shape, seed) -> same plan.
StorageFaultPlan sample_storage_fault_plan(const StorageFaultDistribution& dist,
                                           int write_ops, int read_ops,
                                           int rename_ops, std::uint64_t seed);

}  // namespace autopipe::faults
