#include "faults/sdc.h"

#include <cstring>

namespace autopipe::faults {

const char* to_string(SdcTarget target) {
  switch (target) {
    case SdcTarget::Activation: return "activation";
    case SdcTarget::Gradient: return "gradient";
    case SdcTarget::Weight: return "weight";
    case SdcTarget::OptimizerMoment: return "optimizer-moment";
  }
  return "unknown";
}

void SdcInjector::arm(const SdcFault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(fault);
  pending_count_.store(static_cast<int>(pending_.size()),
                       std::memory_order_relaxed);
}

bool SdcInjector::maybe_corrupt(SdcTarget target, int boundary,
                                int micro_batch, model::Tensor& x) {
  if (pending_count_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const SdcFault& f = pending_[i];
    if (f.target != target || f.boundary != boundary) continue;
    if (f.micro_batch >= 0 && f.micro_batch != micro_batch) continue;
    flip_float_bit(x.data(), x.numel(), f.elem, f.bit);
    pending_.erase(pending_.begin() + static_cast<long>(i));
    pending_count_.store(static_cast<int>(pending_.size()),
                         std::memory_order_relaxed);
    ++fired_;
    return true;
  }
  return false;
}

int SdcInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_.size());
}

int SdcInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

void SdcInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.clear();
  pending_count_.store(0, std::memory_order_relaxed);
  fired_ = 0;
}

void flip_float_bit(float* data, std::size_t numel, std::uint64_t elem,
                    int bit) {
  if (data == nullptr || numel == 0) return;
  float* slot = data + (elem % numel);
  std::uint32_t bits;
  std::memcpy(&bits, slot, sizeof(bits));
  bits ^= 1u << (static_cast<unsigned>(bit) % 32u);
  std::memcpy(slot, &bits, sizeof(bits));
}

}  // namespace autopipe::faults
