// Deterministic fault injection for both execution substrates.
//
// The paper's 16-GPU testbed lives with stragglers, flaky links and outright
// device loss; this module describes such perturbations as *data* so that
// both the discrete-event executor (sim/executor.h) and the thread runtime
// (runtime/pipeline_runtime.h) can replay exactly the same failure scenario.
// A FaultPlan is pure configuration: it never touches clocks or randomness
// itself, so injecting an empty plan is bit-identical to no plan at all, and
// a seeded plan (sample_fault_plan) reproduces the same faults on every run,
// platform and thread count -- the determinism contract the recovery tests
// and the Monte-Carlo robustness evaluator (faults/robustness.h) build on.
//
// Taxonomy (DESIGN.md §6):
//   Straggler      a device computes slower inside a time window
//   LinkSpike      a stage boundary adds latency inside a time window
//   LinkOutage     a boundary drops transfers inside a window; senders retry
//                  with a fixed backoff until the window passes
//   DeviceCrash    a device dies -- at time t (simulator) or after its k-th
//                  schedule op (thread runtime) -- and never comes back
//   TransientOpFault  one op on one device fails n times before succeeding
//                  (ECC hiccup, NCCL timeout); recoverable by local retry
//   HangFault      a device wedges forever before its k-th schedule op --
//                  no exception, no progress (thread runtime only); only an
//                  external watchdog + cancellation can clear it
//   SlowOps        a device pays a fixed wall-clock delay on a run of
//                  schedule ops (thread-runtime straggler; unlike Straggler
//                  it burns real time, so the watchdog can observe it)
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace autopipe::faults {

/// Multiplicative compute slowdown on one device inside [start_ms, end_ms).
/// An op pays the multiplier when it *starts* inside the window (simple,
/// deterministic, and window-edge behaviour is explicit).
struct Straggler {
  int device = 0;
  double start_ms = 0;
  double end_ms = std::numeric_limits<double>::infinity();
  double slowdown = 1.0;  ///< duration multiplier, >= 1
};

/// Additive latency on one global-stage boundary inside [start_ms, end_ms),
/// applied to transfers that *depart* inside the window.
struct LinkSpike {
  int boundary = 0;
  double start_ms = 0;
  double end_ms = std::numeric_limits<double>::infinity();
  double extra_ms = 0;
};

/// Transient outage of one boundary: transfers departing inside
/// [start_ms, end_ms) fail; the sender retries every retry_backoff_ms until
/// a retry lands past the window (NCCL-style bounded retry loop).
struct LinkOutage {
  int boundary = 0;
  double start_ms = 0;
  double end_ms = 0;
  double retry_backoff_ms = 0.5;  ///< > 0; each failed attempt costs this
};

/// Hard, permanent device loss. The simulator kills every op on `device`
/// still running or not yet started at `at_ms` (and, transitively, every op
/// elsewhere that depends on one). The thread runtime -- which has no
/// simulated clock -- crashes the device just before it would execute its
/// `after_ops`-th schedule op (after_ops < 0 disables the runtime trigger).
struct DeviceCrash {
  int device = 0;
  double at_ms = std::numeric_limits<double>::infinity();
  int after_ops = -1;
};

/// Thread-runtime transient: the `op_index`-th schedule op on `device`
/// fails `failures` times before succeeding. The StageWorker retries it in
/// place with exponential backoff; more failures than its retry budget
/// escalate to a StageFailure (see runtime/stage_failure.h).
struct TransientOpFault {
  int device = 0;
  int op_index = 0;
  int failures = 1;
};

/// Thread-runtime hard hang: `device` stops dead just before executing its
/// `op_index`-th schedule op. It raises no exception and makes no further
/// progress -- the model of a wedged collective or a livelocked kernel.
/// Without an external watchdog cancelling the iteration, its peers block
/// until their receive deadlines expire; with one, the hang parks on the
/// iteration's CancelToken and converts to a Timeout StageFailure the
/// moment the watchdog fires.
struct HangFault {
  int device = 0;
  int op_index = 0;
};

/// Thread-runtime straggler: each of the `op_count` schedule ops starting
/// at `first_op` on `device` pays an extra `delay_ms` of real wall-clock
/// time before executing. Unlike Straggler (simulated-time multiplier),
/// SlowOps burns actual time on the worker thread, so the supervisor's
/// watchdog can detect it as a silent-progress gap.
struct SlowOps {
  int device = 0;
  int first_op = 0;
  int op_count = 1;
  double delay_ms = 0;  ///< >= 0 per affected op
};

/// Outcome of routing one transfer through the fault plan.
struct TransferOutcome {
  double lag_ms = 0;  ///< effective transfer latency including retries
  int retries = 0;    ///< failed attempts paid before success
};

struct FaultPlan {
  std::vector<Straggler> stragglers;
  std::vector<LinkSpike> spikes;
  std::vector<LinkOutage> outages;
  std::vector<DeviceCrash> crashes;
  std::vector<TransientOpFault> transients;
  std::vector<HangFault> hangs;
  std::vector<SlowOps> slow_ops;

  bool empty() const {
    return stragglers.empty() && spikes.empty() && outages.empty() &&
           crashes.empty() && transients.empty() && hangs.empty() &&
           slow_ops.empty();
  }

  /// Product of the slowdowns of every straggler window `device` sits in at
  /// `at_ms`. Exactly 1.0 when none match (so fault-free timing is
  /// bit-identical to the no-plan path).
  double slowdown(int device, double at_ms) const;

  /// Effective latency of a transfer crossing `boundary` departing at
  /// `depart_ms` with fault-free latency `base_lag_ms`: outage retries
  /// first, then any additive spike at the (possibly delayed) departure.
  TransferOutcome transfer(int boundary, double depart_ms,
                           double base_lag_ms) const;

  /// Earliest simulator crash for `device`, or nullptr.
  const DeviceCrash* crash_for(int device) const;

  /// Runtime crash trigger: does `device` die just before its
  /// `op_index`-th op?
  bool crashes_before_op(int device, int op_index) const;

  /// Runtime transient for (device, op_index), or nullptr.
  const TransientOpFault* transient_for(int device, int op_index) const;

  /// Runtime hang trigger: does `device` wedge just before its
  /// `op_index`-th op?
  bool hangs_before_op(int device, int op_index) const;

  /// Total extra wall-clock delay `device` pays before its `op_index`-th
  /// op (sum over matching SlowOps windows). 0 when none match.
  double slow_delay_ms(int device, int op_index) const;

  /// Throws std::invalid_argument on out-of-range devices/boundaries or
  /// non-positive slowdowns/backoffs (boundaries = global stages - 1).
  void validate(int devices, int boundaries) const;

  /// Copy with every fault referencing `device` dropped and all other
  /// device indices above it shifted down -- the surviving-cluster view the
  /// recovery path re-executes on after a crash. Boundary faults are
  /// dropped wholesale (the degraded pipeline has different boundaries).
  FaultPlan without_device(int device) const;
};

/// Knobs of the seeded scenario generator: per-device straggler and
/// per-boundary spike/outage probabilities with window sizes expressed as
/// fractions of the iteration horizon.
struct FaultDistribution {
  double straggler_prob = 0.2;    ///< per device
  double slowdown_min = 1.25;
  double slowdown_max = 2.0;
  double window_frac = 0.5;       ///< straggler window length / horizon
  double spike_prob = 0.1;        ///< per boundary
  double spike_min_ms = 0.5;
  double spike_max_ms = 2.0;
  double outage_prob = 0.0;       ///< per boundary
  double outage_frac = 0.1;       ///< outage window length / horizon
  double retry_backoff_ms = 0.5;
};

/// Draws one deterministic FaultPlan for a pipeline of `devices` devices
/// (`boundaries` = global stages - 1) whose fault-free iteration takes
/// `horizon_ms`. The same (dist, shape, seed) always yields the same plan;
/// Monte-Carlo trials use consecutive seeds.
FaultPlan sample_fault_plan(const FaultDistribution& dist, int devices,
                            int boundaries, double horizon_ms,
                            std::uint64_t seed);

}  // namespace autopipe::faults
