#include "faults/robustness.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace autopipe::faults {

RobustnessReport evaluate_robustness(const core::Schedule& schedule,
                                     const sim::ExecOptions& exec,
                                     const RobustnessOptions& options,
                                     util::ThreadPool* pool) {
  if (options.trials < 0) {
    throw std::invalid_argument("robustness: trials must be >= 0");
  }
  if (options.quantile < 0 || options.quantile > 100) {
    throw std::invalid_argument("robustness: quantile must be in [0, 100]");
  }
  const int devices = schedule.num_stages;
  const int boundaries = schedule.num_stages * schedule.chunks - 1;

  sim::ExecOptions nominal_exec = exec;
  nominal_exec.faults = nullptr;
  const sim::ExecResult nominal = sim::execute(schedule, nominal_exec);

  RobustnessReport report;
  report.trials = options.trials;
  report.nominal_ms = nominal.iteration_ms;
  if (options.trials == 0) {
    report.mean_ms = report.p50_ms = report.p95_ms = report.p99_ms =
        report.worst_ms = report.score_ms = nominal.iteration_ms;
    return report;
  }

  // Trial i is fully determined by seed + i: the sampled plan, and thus the
  // executed timing, never depends on which worker thread ran it. Results
  // land in index order, so the reduction below is thread-count invariant.
  std::vector<double> samples(static_cast<std::size_t>(options.trials), 0.0);
  std::vector<int> retries(static_cast<std::size_t>(options.trials), 0);
  util::parallel_for(pool, options.trials, [&](int i) {
    const FaultPlan plan = sample_fault_plan(
        options.dist, devices, boundaries, nominal.iteration_ms,
        options.seed + static_cast<std::uint64_t>(i));
    sim::ExecOptions trial_exec = exec;
    trial_exec.faults = &plan;
    const sim::ExecResult r = sim::execute(schedule, trial_exec);
    samples[static_cast<std::size_t>(i)] = r.iteration_ms;
    retries[static_cast<std::size_t>(i)] = r.link_retries;
  });

  double sum = 0;
  for (int i = 0; i < options.trials; ++i) {
    sum += samples[static_cast<std::size_t>(i)];
    report.link_retries += retries[static_cast<std::size_t>(i)];
  }
  report.mean_ms = sum / options.trials;
  report.worst_ms = *std::max_element(samples.begin(), samples.end());
  report.p50_ms = util::percentile(samples, 50.0);
  report.p95_ms = util::percentile(samples, 95.0);
  report.p99_ms = util::percentile(samples, 99.0);
  report.score_ms = util::percentile(samples, options.quantile);
  return report;
}

}  // namespace autopipe::faults
