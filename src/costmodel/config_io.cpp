#include "costmodel/config_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace autopipe::costmodel {

namespace {

constexpr const char* kHeader = "# autopipe-model-config v1";

std::string quote(const std::string& s) {
  // Names with spaces are written with underscores; the format is
  // whitespace-separated.
  std::string out = s;
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}

std::string unquote(std::string s) {
  for (char& c : s) {
    if (c == '_') c = ' ';
  }
  return s;
}

BlockKind kind_from(const std::string& name, int line) {
  if (name == "Embedding") return BlockKind::Embedding;
  if (name == "Attention") return BlockKind::Attention;
  if (name == "FFN") return BlockKind::FFN;
  if (name == "Head") return BlockKind::Head;
  throw std::runtime_error("line " + std::to_string(line) +
                           ": unknown block kind '" + name + "'");
}

const char* kind_name(BlockKind kind) {
  switch (kind) {
    case BlockKind::Embedding: return "Embedding";
    case BlockKind::Attention: return "Attention";
    case BlockKind::FFN:       return "FFN";
    case BlockKind::Head:      return "Head";
  }
  return "?";
}

/// Parses "key=value" tokens into a map; throws on duplicates/malformed.
std::map<std::string, std::string> kv_map(std::istringstream& in, int line) {
  std::map<std::string, std::string> out;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("line " + std::to_string(line) +
                               ": expected key=value, got '" + token + "'");
    }
    if (!out.emplace(token.substr(0, eq), token.substr(eq + 1)).second) {
      throw std::runtime_error("line " + std::to_string(line) +
                               ": duplicate key '" + token.substr(0, eq) +
                               "'");
    }
  }
  return out;
}

class KvReader {
 public:
  KvReader(std::map<std::string, std::string> kv, int line)
      : kv_(std::move(kv)), line_(line) {}

  // Strict numeric parsing: the whole token must be consumed and the value
  // must be finite. stod-style laxness would accept "nan", "inf" or
  // "12abc" and silently feed garbage into the Planner's cost model.
  double number(const std::string& key) {
    const std::string value = take(key);
    const char* begin = value.c_str();
    char* end = nullptr;
    const double parsed = std::strtod(begin, &end);
    if (value.empty() || end != begin + value.size()) {
      throw std::runtime_error("line " + std::to_string(line_) + ": key '" +
                               key + "' has non-numeric value '" + value +
                               "'");
    }
    if (!std::isfinite(parsed)) {
      throw std::runtime_error("line " + std::to_string(line_) + ": key '" +
                               key + "' must be finite, got '" + value + "'");
    }
    return parsed;
  }
  long integer(const std::string& key) {
    const std::string value = take(key);
    const char* begin = value.c_str();
    char* end = nullptr;
    const long parsed = std::strtol(begin, &end, 10);
    if (value.empty() || end != begin + value.size()) {
      throw std::runtime_error("line " + std::to_string(line_) + ": key '" +
                               key + "' has non-integer value '" + value +
                               "'");
    }
    return parsed;
  }
  std::string text(const std::string& key) { return unquote(take(key)); }

  void done() {
    if (!kv_.empty()) {
      throw std::runtime_error("line " + std::to_string(line_) +
                               ": unknown key '" + kv_.begin()->first + "'");
    }
  }

 private:
  std::string take(const std::string& key) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      throw std::runtime_error("line " + std::to_string(line_) +
                               ": missing key '" + key + "'");
    }
    std::string value = it->second;
    kv_.erase(it);
    return value;
  }

  std::map<std::string, std::string> kv_;
  int line_;
};

}  // namespace

void save_model_config(const ModelConfig& config, std::ostream& out) {
  out.precision(17);
  out << kHeader << "\n";
  out << "model " << quote(config.spec.name)
      << " layers=" << config.spec.num_layers
      << " hidden=" << config.spec.hidden << " heads=" << config.spec.heads
      << " vocab=" << config.spec.vocab << " seq=" << config.spec.default_seq
      << " causal=" << (config.spec.causal ? 1 : 0) << "\n";
  out << "train micro_batch=" << config.train.micro_batch_size
      << " seq_len=" << config.train.seq_len
      << " recompute=" << (config.train.recompute ? 1 : 0) << "\n";
  out << "device name=" << quote(config.device.name)
      << " matmul_tflops=" << config.device.matmul_tflops
      << " memband_gbps=" << config.device.memband_gbps
      << " capacity_bytes=" << config.device.mem_capacity_bytes
      << " launch_ms=" << config.device.kernel_launch_ms << "\n";
  out << "link name=" << quote(config.link.name)
      << " latency_ms=" << config.link.latency_ms
      << " bandwidth_gbps=" << config.link.bandwidth_gbps << "\n";
  out << "comm_ms " << config.comm_ms << "\n";
  for (const Block& b : config.blocks) {
    out << "block " << quote(b.name) << " kind=" << kind_name(b.kind)
        << " fwd_ms=" << b.fwd_ms << " bwd_ms=" << b.bwd_ms
        << " param_bytes=" << b.param_bytes
        << " stash_bytes=" << b.stash_bytes << " work_bytes=" << b.work_bytes
        << " output_bytes=" << b.output_bytes
        << " layer_units=" << b.layer_units << "\n";
  }
}

bool save_model_config(const ModelConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    AP_LOG(error) << "cannot open " << path << " for writing";
    return false;
  }
  save_model_config(config, out);
  return static_cast<bool>(out);
}

ModelConfig load_model_config(std::istream& in) {
  ModelConfig cfg;
  std::string line;
  int line_no = 0;
  bool saw_header = false, saw_model = false, saw_comm = false;
  // Singleton directives may appear at most once; a duplicate almost always
  // means a botched merge or a doubled file, and last-wins would hide it.
  std::map<std::string, int> seen_at;
  const auto reject_duplicate = [&](const std::string& directive) {
    const auto [it, fresh] = seen_at.emplace(directive, line_no);
    if (!fresh) {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": duplicate '" + directive +
                               "' directive (first on line " +
                               std::to_string(it->second) + ")");
    }
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kHeader) saw_header = true;
      continue;
    }
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "model") {
      reject_duplicate(directive);
      std::string name;
      tokens >> name;
      KvReader kv(kv_map(tokens, line_no), line_no);
      cfg.spec.name = unquote(name);
      cfg.spec.num_layers = static_cast<int>(kv.integer("layers"));
      cfg.spec.hidden = static_cast<int>(kv.integer("hidden"));
      cfg.spec.heads = static_cast<int>(kv.integer("heads"));
      cfg.spec.vocab = static_cast<int>(kv.integer("vocab"));
      cfg.spec.default_seq = static_cast<int>(kv.integer("seq"));
      cfg.spec.causal = kv.integer("causal") != 0;
      kv.done();
      saw_model = true;
    } else if (directive == "train") {
      reject_duplicate(directive);
      KvReader kv(kv_map(tokens, line_no), line_no);
      cfg.train.micro_batch_size = static_cast<int>(kv.integer("micro_batch"));
      cfg.train.seq_len = static_cast<int>(kv.integer("seq_len"));
      cfg.train.recompute = kv.integer("recompute") != 0;
      kv.done();
    } else if (directive == "device") {
      reject_duplicate(directive);
      KvReader kv(kv_map(tokens, line_no), line_no);
      cfg.device.name = kv.text("name");
      cfg.device.matmul_tflops = kv.number("matmul_tflops");
      cfg.device.memband_gbps = kv.number("memband_gbps");
      cfg.device.mem_capacity_bytes = kv.number("capacity_bytes");
      cfg.device.kernel_launch_ms = kv.number("launch_ms");
      kv.done();
    } else if (directive == "link") {
      reject_duplicate(directive);
      KvReader kv(kv_map(tokens, line_no), line_no);
      cfg.link.name = kv.text("name");
      cfg.link.latency_ms = kv.number("latency_ms");
      cfg.link.bandwidth_gbps = kv.number("bandwidth_gbps");
      kv.done();
    } else if (directive == "comm_ms") {
      reject_duplicate(directive);
      std::string value, extra;
      if (!(tokens >> value) || (tokens >> extra)) {
        throw std::runtime_error("line " + std::to_string(line_no) +
                                 ": comm_ms needs exactly one number");
      }
      char* end = nullptr;
      cfg.comm_ms = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || !std::isfinite(cfg.comm_ms)) {
        throw std::runtime_error("line " + std::to_string(line_no) +
                                 ": comm_ms must be a finite number, got '" +
                                 value + "'");
      }
      saw_comm = true;
    } else if (directive == "block") {
      std::string name, kind;
      tokens >> name;
      KvReader kv(kv_map(tokens, line_no), line_no);
      Block b;
      b.name = unquote(name);
      b.kind = kind_from(kv.text("kind"), line_no);
      b.fwd_ms = kv.number("fwd_ms");
      b.bwd_ms = kv.number("bwd_ms");
      b.param_bytes = kv.number("param_bytes");
      b.stash_bytes = kv.number("stash_bytes");
      b.work_bytes = kv.number("work_bytes");
      b.output_bytes = kv.number("output_bytes");
      b.layer_units = kv.number("layer_units");
      kv.done();
      cfg.blocks.push_back(std::move(b));
    } else {
      throw std::runtime_error("line " + std::to_string(line_no) +
                               ": unknown directive '" + directive + "'");
    }
  }
  if (!saw_header) throw std::runtime_error("missing config header");
  // Name what is absent: a truncated file (crash mid-write, partial copy)
  // usually loses the trailing block lines first.
  std::string missing;
  if (!saw_model) missing += " model";
  if (!saw_comm) missing += " comm_ms";
  if (cfg.blocks.empty()) missing += " block(s)";
  if (!missing.empty()) {
    throw std::runtime_error("config truncated or incomplete: missing" +
                             missing + " (read " + std::to_string(line_no) +
                             " line(s))");
  }
  return cfg;
}

ModelConfig load_model_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load_model_config(in);
}

}  // namespace autopipe::costmodel
