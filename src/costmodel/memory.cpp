#include "costmodel/memory.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace autopipe::costmodel {

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::OneFOneB:       return "1F1B";
    case ScheduleKind::GPipe:          return "GPipe";
    case ScheduleKind::Interleaved:    return "Interleaved-1F1B";
    case ScheduleKind::AutoPipeSliced: return "AutoPipe-sliced-1F1B";
    case ScheduleKind::ZeroBubble:     return "ZeroBubble";
  }
  return "?";
}

ScheduleKind parse_schedule_kind(const std::string& name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_') continue;  // "zero-bubble" == "zerobubble"
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (key == "1f1b") return ScheduleKind::OneFOneB;
  if (key == "gpipe") return ScheduleKind::GPipe;
  if (key == "interleaved" || key == "interleaved1f1b") {
    return ScheduleKind::Interleaved;
  }
  if (key == "sliced" || key == "autopipesliced1f1b") {
    return ScheduleKind::AutoPipeSliced;
  }
  if (key == "zb" || key == "zerobubble") return ScheduleKind::ZeroBubble;
  throw std::invalid_argument(
      "unknown schedule kind '" + name +
      "' (expected 1f1b, gpipe, interleaved, sliced or zero-bubble)");
}

MemoryEstimate stage_memory(const StageFootprint& footprint, int stage,
                            int num_stages, ScheduleKind kind,
                            int micro_batches, int chunks,
                            double capacity_bytes) {
  MemoryEstimate e;
  e.parameter_state_bytes = footprint.param_bytes * kStateBytesPerParamByte;

  const int n = num_stages;
  const int m = micro_batches;
  double stash_per_flight = footprint.stash_bytes;
  int in_flight = 0;
  switch (kind) {
    case ScheduleKind::OneFOneB:
    case ScheduleKind::AutoPipeSliced:
      in_flight = std::min(m, n - stage);
      break;
    case ScheduleKind::ZeroBubble:
      // Same warmup depth as 1F1B (the builder caps in-flight forwards at
      // n - stage), plus a B-state stash per deferred W -- the builder never
      // defers more than n - stage of them either.
      in_flight = std::min(m, n - stage);
      e.deferred_grad_bytes =
          footprint.bw_state_bytes * std::min(m, n - stage);
      break;
    case ScheduleKind::GPipe:
      in_flight = m;
      break;
    case ScheduleKind::Interleaved: {
      // Megatron-LM interleaved warmup: (n - stage - 1)*2 + (v-1)*n chunks
      // plus the one being computed plus one buffered for the overlapped
      // next-chunk receive, each chunk stashing 1/v of the stage. This is
      // the extra activation memory that makes the interleaved schedule
      // OOM at large micro-batch sizes (Fig. 14(a)).
      const int v = std::max(1, chunks);
      in_flight = std::min(m * v, (n - stage - 1) * 2 + (v - 1) * n + 2);
      stash_per_flight = footprint.stash_bytes / v;
      break;
    }
  }
  e.in_flight_micro_batches = in_flight;
  e.activation_bytes = stash_per_flight * in_flight;
  e.working_bytes = footprint.work_bytes;
  e.total_bytes = e.parameter_state_bytes + e.activation_bytes +
                  e.working_bytes + e.deferred_grad_bytes;
  e.oom = e.total_bytes > capacity_bytes;
  return e;
}

bool fits_memory(std::span<const StageFootprint> stages, ScheduleKind kind,
                 int micro_batches, int chunks, double capacity_bytes) {
  const int n = static_cast<int>(stages.size());
  for (int s = 0; s < n; ++s) {
    if (stage_memory(stages[s], s, n, kind, micro_batches, chunks,
                     capacity_bytes)
            .oom) {
      return false;
    }
  }
  return true;
}

}  // namespace autopipe::costmodel
