// Cluster topology: how pipeline stages map onto nodes and which link each
// stage boundary crosses.
//
// The paper's testbed is 4 nodes x 4 GPUs: neighbouring pipeline stages
// inside one node talk over PCIe peer-to-peer, stages that straddle a node
// boundary cross 100 Gbps InfiniBand. The analytic planner uses one scalar
// `Comm` (§III-B observes the volumes are too small to saturate either
// link), but the event executor can price each boundary with its real
// link, which is also the dimension DAPPLE's device-placement search
// explores.
#pragma once

#include <vector>

#include "costmodel/device.h"

namespace autopipe::costmodel {

struct ClusterTopology {
  int gpus_per_node = 4;
  LinkProfile intra_node = pcie_p2p();
  LinkProfile inter_node = infiniband_100g();

  /// Which node hosts (contiguously placed) device `d`?
  int node_of(int device) const { return device / gpus_per_node; }
};

/// The paper's 4x4 RTX-3090 cluster.
ClusterTopology paper_cluster();

/// Per-boundary transfer times for a pipeline of `stages` devices placed
/// contiguously starting at `first_device`, moving `bytes` per activation:
/// result[g] is the cost of crossing boundary g -> g+1 (size stages-1).
std::vector<double> boundary_comm_ms(const ClusterTopology& topology,
                                     int stages, int first_device,
                                     double bytes);

}  // namespace autopipe::costmodel
