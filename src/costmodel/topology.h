// Cluster topology and the per-boundary communication cost model.
//
// The paper's testbed is 4 nodes x 4 GPUs: neighbouring pipeline stages
// inside one node talk over PCIe peer-to-peer, stages that straddle a node
// boundary cross 100 Gbps InfiniBand. The paper's analysis collapses that
// to one scalar `Comm` (§III-B observes the volumes are too small to
// saturate either link); the CommModel below is the shared generalization
// every layer of the repo prices communication through:
//
//   * Uniform      one scalar per hop -- the paper's degenerate case. All
//                  arithmetic on a uniform model is bit-identical to the
//                  historical scalar `comm_ms` plumbing.
//   * PerBoundary  an explicit cost per global-stage boundary (fuzzing,
//                  measured profiles, hand-tuned links).
//   * Topology     derived on demand from a ClusterTopology + the activation
//                  bytes crossing a cut: boundary g joins devices g and g+1
//                  (contiguous placement from `first_device`), priced with
//                  the intra-node or inter-node link that hop crosses.
//
// The Planner, analytic simulator, Slicer, schedule builders, event
// executor and the baseline planners all consume the same CommModel, so a
// topology-aware search and the runtime that executes its plan can never
// disagree about what a boundary costs.
#pragma once

#include <vector>

#include "costmodel/device.h"

namespace autopipe::costmodel {

struct ClusterTopology {
  int gpus_per_node = 4;
  LinkProfile intra_node = pcie_p2p();
  LinkProfile inter_node = infiniband_100g();

  /// Which node hosts (contiguously placed) device `d`?
  int node_of(int device) const { return device / gpus_per_node; }
  /// The link a transfer between devices `a` and `b` crosses.
  const LinkProfile& link_between(int a, int b) const {
    return node_of(a) == node_of(b) ? intra_node : inter_node;
  }

  bool operator==(const ClusterTopology&) const = default;
};

/// The paper's 4x4 RTX-3090 cluster.
ClusterTopology paper_cluster();

/// Transfer time of `bytes` between devices `a` and `b` of `topology`.
double hop_ms(const ClusterTopology& topology, int a, int b, double bytes);

/// Per-boundary activation-hop cost model (see file comment). Implicitly
/// constructible from a scalar so `build_1f1b(costs, m, cfg.comm_ms)` keeps
/// meaning "uniform comm".
class CommModel {
 public:
  /*implicit*/ CommModel(double uniform_ms = 0.0);

  /// The paper's degenerate case: every hop costs `ms`.
  static CommModel uniform(double ms);
  /// Explicit costs, one per global-stage boundary g -> g+1.
  static CommModel from_costs(std::vector<double> boundary_ms);
  /// Topology-derived: a pipeline placed contiguously from `first_device`,
  /// moving `activation_bytes` per hop. Works for any pipeline depth (hops
  /// are priced on demand), which is what lets one model serve the
  /// planner's whole depth sweep.
  static CommModel from_topology(const ClusterTopology& topology,
                                 int first_device, double activation_bytes);

  bool is_uniform() const { return kind_ == Kind::Uniform; }
  /// The scalar of a uniform model; throws std::logic_error otherwise.
  double uniform_ms() const;

  /// Cost of crossing boundary `boundary` (devices first+b -> first+b+1).
  /// Throws std::invalid_argument on a negative index or past the end of an
  /// explicit cost vector.
  double hop_ms(int boundary) const;

  /// Materialized per-global-boundary costs for `num_stages` devices each
  /// hosting `chunks` model chunks (global stages = chunks * num_stages):
  /// global boundary g joins devices g % n and (g+1) % n -- the interleaved
  /// schedule's wrap-around hop from the last device back to the first is
  /// priced like any other. An explicit cost vector must match the boundary
  /// count exactly.
  std::vector<double> boundary_costs(int num_stages, int chunks = 1) const;

  bool operator==(const CommModel&) const = default;

 private:
  enum class Kind { Uniform, PerBoundary, Topology };
  Kind kind_ = Kind::Uniform;
  double uniform_ms_ = 0.0;
  std::vector<double> costs_;
  ClusterTopology topology_{};
  int first_device_ = 0;
  double bytes_ = 0.0;
};

}  // namespace autopipe::costmodel
