#include "costmodel/model_zoo.h"

#include <stdexcept>

namespace autopipe::costmodel {

ModelSpec gpt2_345m() {
  return ModelSpec{"GPT-2 345M", 24, 1024, 16, 50257, 1024, true};
}

ModelSpec gpt2_762m() {
  return ModelSpec{"GPT-2 762M", 36, 1280, 20, 50257, 1024, true};
}

ModelSpec gpt2_1_3b() {
  return ModelSpec{"GPT-2 1.3B", 24, 2048, 32, 50257, 1024, true};
}

ModelSpec bert_large() {
  return ModelSpec{"BERT-large", 24, 1024, 16, 30522, 512, false};
}

std::vector<ModelSpec> model_zoo() {
  return {gpt2_345m(), gpt2_762m(), gpt2_1_3b(), bert_large()};
}

ModelSpec model_by_name(const std::string& name) {
  if (name == "gpt2-345m") return gpt2_345m();
  if (name == "gpt2-762m") return gpt2_762m();
  if (name == "gpt2-1.3b") return gpt2_1_3b();
  if (name == "bert-large") return bert_large();
  throw std::invalid_argument("unknown model: " + name);
}

std::int64_t param_count(const ModelSpec& spec) {
  const std::int64_t h = spec.hidden;
  const std::int64_t per_layer = 12 * h * h + 13 * h;
  const std::int64_t embeddings =
      static_cast<std::int64_t>(spec.vocab) * h +
      static_cast<std::int64_t>(spec.default_seq) * h;
  const std::int64_t final_norm = 2 * h;
  return embeddings + spec.num_layers * per_layer + final_norm;
}

}  // namespace autopipe::costmodel
