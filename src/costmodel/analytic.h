// Analytic per-block cost model ("model configs" in Fig. 2).
//
// The paper collects per-block runtime statistics offline (a few minutes of
// profiling). We substitute an analytic FLOP/bytes model of the same shape:
// a transformer is decomposed at sub-layer granularity (§III-B, Fig. 3) into
//
//   [Embedding] [ResidualAttentionBlock ResidualFFNBlock] x L [FinalNormHead]
//
// and every block carries forward/backward time, parameter bytes, the
// activation stash kept per in-flight micro-batch under activation
// checkpointing (§II-C), the transient working set, and the bytes of the
// activation tensor crossing a stage boundary. This is exactly the
// information the Planner, Slicer and memory model consume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/device.h"
#include "costmodel/model_zoo.h"

namespace autopipe::costmodel {

enum class BlockKind { Embedding, Attention, FFN, Head };

const char* to_string(BlockKind kind);

struct Block {
  std::string name;
  BlockKind kind = BlockKind::Attention;
  double fwd_ms = 0;    ///< forward time of one micro-batch
  double bwd_ms = 0;    ///< backward time; includes recompute when enabled
  /// B/W decomposition of bwd_ms for zero-bubble schedules: the grad-input
  /// pass (B, includes the recompute) and the grad-weight pass (W).
  /// Invariant: bwd_input_ms + bwd_weight_ms == bwd_ms.
  double bwd_input_ms = 0;
  double bwd_weight_ms = 0;
  double param_bytes = 0;
  double stash_bytes = 0;   ///< checkpointed stash per in-flight micro-batch
  double work_bytes = 0;    ///< transient peak while computing one micro-batch
  double output_bytes = 0;  ///< activation sent onward if a cut follows
  /// Bytes of B-state (incoming grads + recomputed intermediates) a split
  /// backward stashes between its B and its deferred W pass.
  double bw_state_bytes = 0;
  /// Transformer-layer units for Table-II style reporting: attention and FFN
  /// blocks are each 0.5 layers; embedding and head are 0.
  double layer_units = 0;
};

struct TrainConfig {
  int micro_batch_size = 4;
  int seq_len = 0;        ///< 0 -> the model's default sequence length
  bool recompute = true;  ///< activation checkpointing (used in all paper runs)
};

/// Everything the Planner/Slicer need about one (model, micro-batch, device)
/// combination. `comm_ms` is the scalar `Comm` of §III-B: the cost of moving
/// one activation tensor between adjacent stages.
struct ModelConfig {
  ModelSpec spec;
  TrainConfig train;
  DeviceProfile device;
  LinkProfile link;
  std::vector<Block> blocks;
  double comm_ms = 0;

  int num_blocks() const { return static_cast<int>(blocks.size()); }
  double total_fwd_ms() const;
  double total_bwd_ms() const;
  double total_param_bytes() const;
  /// Sum of layer_units (== spec.num_layers for transformer models).
  double total_layer_units() const;
};

ModelConfig build_model_config(const ModelSpec& spec, const TrainConfig& train,
                               const DeviceProfile& device,
                               const LinkProfile& link);

/// Bytes of the fp16 activation tensor crossing a stage boundary
/// (micro_batch_size x seq x hidden) -- the volume a topology-aware
/// CommModel prices each hop with. `config.comm_ms` is exactly this volume
/// priced on `config.link`.
double activation_bytes(const ModelConfig& config);

/// Convenience: zoo model + defaults (RTX 3090, 100G IB-class link).
ModelConfig build_model_config(const ModelSpec& spec, const TrainConfig& train);

}  // namespace autopipe::costmodel
