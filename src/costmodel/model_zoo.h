// The benchmark models of Table I.
//
// | Model      | layers | hidden | params (M) |
// | GPT-2 345M | 24     | 1024   | 345        |
// | GPT-2 762M | 36     | 1280   | 762        |
// | GPT-2 1.3B | 24     | 2048   | 1314       |
// | BERT-large | 24     | 1024   | 340        |
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autopipe::costmodel {

struct ModelSpec {
  std::string name;
  int num_layers = 0;
  int hidden = 0;
  int heads = 0;
  int vocab = 0;
  int default_seq = 0;
  /// GPT-2 uses a tied LM head; BERT pre-training has an MLM head over its
  /// vocabulary. Both project to vocab logits on the last stage.
  bool causal = true;
};

ModelSpec gpt2_345m();
ModelSpec gpt2_762m();
ModelSpec gpt2_1_3b();
ModelSpec bert_large();

/// All four Table-I benchmarks, in paper order.
std::vector<ModelSpec> model_zoo();

/// Look up a zoo model by name ("gpt2-345m", "gpt2-762m", "gpt2-1.3b",
/// "bert-large"); throws std::invalid_argument for unknown names.
ModelSpec model_by_name(const std::string& name);

/// Total trainable parameters: embeddings + 12*h^2(+13h) per layer + final
/// layer norm. The LM head is weight-tied with the token embedding.
std::int64_t param_count(const ModelSpec& spec);

}  // namespace autopipe::costmodel
