// Persistence for model configs (the "model configs" input of Fig. 2).
//
// In the paper the per-block runtime statistics are profiled offline and
// fed to the Planner; this module defines a simple line-based text format
// so profiles measured elsewhere (or edited by hand) can drive the Planner
// instead of the built-in analytic model:
//
//   # autopipe-model-config v1
//   model <name> layers=<L> hidden=<h> heads=<H> vocab=<V> seq=<s> causal=<0|1>
//   train micro_batch=<B> seq_len=<s> recompute=<0|1>
//   device name=<n> matmul_tflops=<..> memband_gbps=<..> capacity_bytes=<..> launch_ms=<..>
//   comm_ms <Comm>
//   block <name> kind=<Embedding|Attention|FFN|Head> fwd_ms=.. bwd_ms=..
//         param_bytes=.. stash_bytes=.. work_bytes=.. output_bytes=.. layer_units=..
//
// Unknown keys are rejected (typos in a profile should fail loudly), and so
// are NaN/Inf or trailing-garbage numbers, duplicate singleton directives
// (model/train/device/link/comm_ms) and truncated files -- every failure
// carries a line number, because a silently-misparsed profile poisons every
// plan built from it.
#pragma once

#include <iosfwd>
#include <string>

#include "costmodel/analytic.h"

namespace autopipe::costmodel {

void save_model_config(const ModelConfig& config, std::ostream& out);
bool save_model_config(const ModelConfig& config, const std::string& path);

/// Throws std::runtime_error with a line number on malformed input.
ModelConfig load_model_config(std::istream& in);
ModelConfig load_model_config_file(const std::string& path);

}  // namespace autopipe::costmodel
