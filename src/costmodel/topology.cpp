#include "costmodel/topology.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace autopipe::costmodel {

ClusterTopology paper_cluster() { return ClusterTopology{}; }

double hop_ms(const ClusterTopology& topology, int a, int b, double bytes) {
  if (a < 0 || b < 0 || topology.gpus_per_node < 1) {
    throw std::invalid_argument("bad topology hop query");
  }
  return transfer_ms(topology.link_between(a, b), bytes);
}

CommModel::CommModel(double uniform_ms) : uniform_ms_(uniform_ms) {
  if (!(uniform_ms >= 0.0)) {
    throw std::invalid_argument("uniform comm cost must be >= 0");
  }
}

CommModel CommModel::uniform(double ms) { return CommModel(ms); }

CommModel CommModel::from_costs(std::vector<double> boundary_ms) {
  for (double c : boundary_ms) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("boundary comm costs must be finite, >= 0");
    }
  }
  CommModel m;
  m.kind_ = Kind::PerBoundary;
  m.costs_ = std::move(boundary_ms);
  return m;
}

CommModel CommModel::from_topology(const ClusterTopology& topology,
                                   int first_device, double activation_bytes) {
  if (first_device < 0 || topology.gpus_per_node < 1 ||
      !(activation_bytes >= 0.0)) {
    throw std::invalid_argument("bad topology comm model");
  }
  CommModel m;
  m.kind_ = Kind::Topology;
  m.topology_ = topology;
  m.first_device_ = first_device;
  m.bytes_ = activation_bytes;
  return m;
}

double CommModel::uniform_ms() const {
  if (kind_ != Kind::Uniform) {
    throw std::logic_error("uniform_ms() on a per-boundary comm model");
  }
  return uniform_ms_;
}

double CommModel::hop_ms(int boundary) const {
  if (boundary < 0) throw std::invalid_argument("negative boundary index");
  switch (kind_) {
    case Kind::Uniform:
      return uniform_ms_;
    case Kind::PerBoundary:
      if (boundary >= static_cast<int>(costs_.size())) {
        throw std::invalid_argument(
            "boundary index past the explicit comm cost vector");
      }
      return costs_[static_cast<std::size_t>(boundary)];
    case Kind::Topology:
      return costmodel::hop_ms(topology_, first_device_ + boundary,
                               first_device_ + boundary + 1, bytes_);
  }
  throw std::logic_error("unreachable comm model kind");
}

std::vector<double> CommModel::boundary_costs(int num_stages,
                                              int chunks) const {
  if (num_stages < 1 || chunks < 1) {
    throw std::invalid_argument("bad boundary_costs query");
  }
  const int boundaries = chunks * num_stages - 1;
  if (kind_ == Kind::PerBoundary &&
      static_cast<int>(costs_.size()) != boundaries) {
    throw std::invalid_argument(
        "explicit comm costs must have one entry per global stage boundary");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(boundaries));
  for (int g = 0; g < boundaries; ++g) {
    if (kind_ == Kind::Topology) {
      // Global stage g lives on device g % n; interleaving wraps the last
      // device back to the first between chunks.
      out.push_back(costmodel::hop_ms(topology_,
                                      first_device_ + g % num_stages,
                                      first_device_ + (g + 1) % num_stages,
                                      bytes_));
    } else {
      out.push_back(hop_ms(g));
    }
  }
  return out;
}

}  // namespace autopipe::costmodel
