#include "costmodel/topology.h"

#include <stdexcept>

namespace autopipe::costmodel {

ClusterTopology paper_cluster() { return ClusterTopology{}; }

std::vector<double> boundary_comm_ms(const ClusterTopology& topology,
                                     int stages, int first_device,
                                     double bytes) {
  if (stages < 1 || first_device < 0 || topology.gpus_per_node < 1) {
    throw std::invalid_argument("bad topology query");
  }
  std::vector<double> out;
  out.reserve(stages - 1);
  for (int g = 0; g + 1 < stages; ++g) {
    const int a = first_device + g;
    const int b = first_device + g + 1;
    const bool same_node = topology.node_of(a) == topology.node_of(b);
    const LinkProfile& link =
        same_node ? topology.intra_node : topology.inter_node;
    out.push_back(transfer_ms(link, bytes));
  }
  return out;
}

}  // namespace autopipe::costmodel
