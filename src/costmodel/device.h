// Device and interconnect profiles.
//
// The paper's testbed is a 4-node cluster of RTX 3090 GPUs (24 GB) joined by
// 100 Gbps InfiniBand, with 4 GPUs per node on PCIe. The planner and slicer
// only consume scalar per-block times and a scalar communication cost, so the
// profiles below reduce the hardware to: an effective dense-matmul
// throughput, an effective memory bandwidth for bandwidth-bound kernels, a
// memory capacity for the OOM model, and a latency/bandwidth link model.
#pragma once

#include <string>

namespace autopipe::costmodel {

struct DeviceProfile {
  std::string name;
  double matmul_tflops = 30.0;   ///< effective fp16 tensor-core throughput
  double memband_gbps = 600.0;   ///< effective DRAM bandwidth
  /// Usable memory: 24 GB card minus CUDA context, NCCL buffers and
  /// allocator fragmentation.
  double mem_capacity_bytes = 16.8 * (1ull << 30);
  double kernel_launch_ms = 0.025;  ///< fixed per-op overhead (event executor
                                    ///< adds it; the analytic simulator does
                                    ///< not — this is the stable bias of
                                    ///< Fig. 11)
};

struct LinkProfile {
  std::string name;
  double latency_ms = 0.02;
  double bandwidth_gbps = 12.0;  ///< per direction; sends and receives are
                                 ///< concurrent, so bidirectional exchange
                                 ///< costs the same as unidirectional (§II-B)

  bool operator==(const LinkProfile&) const = default;
};

/// NVIDIA GeForce RTX 3090 (Ampere, 24 GB), as in the paper's cluster.
DeviceProfile rtx3090();

/// Intra-node PCIe 4.0 peer path (the paper's 4-GPU nodes have no NVLink).
LinkProfile pcie_p2p();

/// 100 Gbps InfiniBand between nodes.
LinkProfile infiniband_100g();

/// Point-to-point transfer time for `bytes` over `link`, in ms.
double transfer_ms(const LinkProfile& link, double bytes);

/// Ring all-reduce of `bytes` across `ranks` peers, in ms.
/// Standard model: 2*(n-1)/n volume factor plus 2*(n-1) latency hops.
double ring_allreduce_ms(const LinkProfile& link, double bytes, int ranks);

/// Time to execute `flops` of dense matmul work, in ms.
double matmul_ms(const DeviceProfile& device, double flops);

/// Time to stream `bytes` through DRAM (bandwidth-bound kernels), in ms.
double membound_ms(const DeviceProfile& device, double bytes);

}  // namespace autopipe::costmodel
