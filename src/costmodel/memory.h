// Per-stage GPU memory model.
//
// Reproduces the paper's OOM behaviour (Table IV, Fig. 14): with mixed
// precision and Adam, every parameter costs 16 bytes (fp16 weight + fp16
// gradient + fp32 master copy + two fp32 Adam moments, as Megatron-LM keeps
// them); under activation checkpointing each in-flight micro-batch keeps
// only the per-block stash, and the number of in-flight micro-batches is
// schedule dependent:
//
//   1F1B          n - stage          (warmup depth + the one in flight)
//   GPipe         m                  (all forwards before any backward)
//   Interleaved   (v-1)*n + (n-stage) + 1 chunks of 1/v the stash
//                 (the Megatron-LM interleaved warmup rule -- this is the
//                  extra memory the paper says makes it OOM)
//   AutoPipe      same as 1F1B: slicing halves micro-batches but never holds
//                 more than one extra half in flight (§III-C: "without
//                 introducing additional memory consumption")
//   ZeroBubble    1F1B in-flight stashes PLUS the B/W deferral: every
//                 micro-batch whose grad-input pass (B) ran but whose
//                 grad-weight pass (W) is still deferred holds its stashed
//                 B-state (`bw_state_bytes`); the builder defers at most
//                 n - stage of them.
#pragma once

#include <span>
#include <string>

#include "costmodel/analytic.h"

namespace autopipe::costmodel {

enum class ScheduleKind { OneFOneB, GPipe, Interleaved, AutoPipeSliced,
                          ZeroBubble };

const char* to_string(ScheduleKind kind);

/// Inverse of to_string. Accepts the canonical names (case-insensitively)
/// plus the short CLI aliases "1f1b", "gpipe", "interleaved", "sliced" and
/// "zb"/"zero-bubble". Throws std::invalid_argument on anything else, with
/// the valid spellings listed in the message.
ScheduleKind parse_schedule_kind(const std::string& name);

/// Aggregates the memory model needs about one pipeline stage.
struct StageFootprint {
  double param_bytes = 0;  ///< parameters resident on the stage
  double stash_bytes = 0;  ///< checkpoint stash of ONE micro-batch
  double work_bytes = 0;   ///< transient peak of one micro-batch's compute
  double bw_state_bytes = 0;  ///< B-state stashed between split B and W ops
};

struct MemoryEstimate {
  double parameter_state_bytes = 0;  ///< weights+grads+optimizer (16 B/param)
  double activation_bytes = 0;       ///< in-flight checkpoint stashes
  double working_bytes = 0;          ///< transient compute working set
  double deferred_grad_bytes = 0;    ///< ZeroBubble W-deferral B-state
  double total_bytes = 0;
  int in_flight_micro_batches = 0;
  bool oom = false;
};

/// Peak memory for stage index `stage` of `num_stages` under `kind`, with
/// `micro_batches` per iteration and (interleaved only) `chunks` model chunks
/// per device. `capacity_bytes` marks the OOM flag.
MemoryEstimate stage_memory(const StageFootprint& footprint, int stage,
                            int num_stages, ScheduleKind kind,
                            int micro_batches, int chunks,
                            double capacity_bytes);

/// True when every stage of the footprint list fits in `capacity_bytes`.
bool fits_memory(std::span<const StageFootprint> stages, ScheduleKind kind,
                 int micro_batches, int chunks, double capacity_bytes);

/// Bytes of optimizer+weight+gradient state per fp16 parameter byte:
/// Megatron-LM mixed precision keeps fp16 weights (2 B) + fp32 main
/// gradients (4 B) + fp32 master weights and two Adam moments (12 B)
/// = 18 bytes per parameter / 2 bytes per fp16 weight.
inline constexpr double kStateBytesPerParamByte = 9.0;

}  // namespace autopipe::costmodel
