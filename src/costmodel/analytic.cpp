#include "costmodel/analytic.h"

#include <stdexcept>

namespace autopipe::costmodel {

const char* to_string(BlockKind kind) {
  switch (kind) {
    case BlockKind::Embedding: return "Embedding";
    case BlockKind::Attention: return "ResidualAttentionBlock";
    case BlockKind::FFN:       return "ResidualFFNBlock";
    case BlockKind::Head:      return "FinalNormHead";
  }
  return "?";
}

double ModelConfig::total_fwd_ms() const {
  double acc = 0;
  for (const auto& b : blocks) acc += b.fwd_ms;
  return acc;
}

double ModelConfig::total_bwd_ms() const {
  double acc = 0;
  for (const auto& b : blocks) acc += b.bwd_ms;
  return acc;
}

double ModelConfig::total_param_bytes() const {
  double acc = 0;
  for (const auto& b : blocks) acc += b.param_bytes;
  return acc;
}

double ModelConfig::total_layer_units() const {
  double acc = 0;
  for (const auto& b : blocks) acc += b.layer_units;
  return acc;
}

namespace {

constexpr double kBytesPerElem = 2.0;  // fp16 activations/params

/// backward matmul work is 2x forward (dX and dW); with activation
/// checkpointing the forward runs a second time before the backward.
double backward_ms(double fwd_ms, bool recompute) {
  return 2.0 * fwd_ms + (recompute ? fwd_ms : 0.0);
}

}  // namespace

ModelConfig build_model_config(const ModelSpec& spec, const TrainConfig& train,
                               const DeviceProfile& device,
                               const LinkProfile& link) {
  if (spec.num_layers <= 0 || spec.hidden <= 0) {
    throw std::invalid_argument("model spec has no layers");
  }
  ModelConfig cfg;
  cfg.spec = spec;
  cfg.train = train;
  if (cfg.train.seq_len <= 0) cfg.train.seq_len = spec.default_seq;
  cfg.device = device;
  cfg.link = link;

  const double B = cfg.train.micro_batch_size;
  const double s = cfg.train.seq_len;
  const double h = spec.hidden;
  const double V = spec.vocab;
  const double heads = spec.heads;
  const bool rc = cfg.train.recompute;
  const double act_bytes = B * s * h * kBytesPerElem;  // one activation tensor

  // --- Embedding: token + position lookup. Bandwidth bound (gather of
  // B*s rows plus writing the activation); the parameter table is large but
  // the compute is negligible -- the imbalance source §I calls out.
  {
    Block b;
    b.name = "embedding";
    b.kind = BlockKind::Embedding;
    b.param_bytes = (V * h + s * h) * kBytesPerElem;
    const double moved = 3.0 * act_bytes;  // gather read + write + pos add
    b.fwd_ms = membound_ms(device, moved);
    // Backward scatters gradients into the (huge) embedding table.
    b.bwd_ms = membound_ms(device, 4.0 * act_bytes) + (rc ? b.fwd_ms : 0.0);
    // The scatter IS the weight gradient; grad-input only carries the
    // recompute (the block produces no dx).
    b.bwd_weight_ms = membound_ms(device, 4.0 * act_bytes);
    b.bwd_input_ms = b.bwd_ms - b.bwd_weight_ms;
    b.bw_state_bytes = act_bytes + B * s * 4.0;  // stashed dy + token ids
    b.stash_bytes = B * s * 4.0;  // token ids (int32) suffice to recompute
    b.work_bytes = 2.0 * act_bytes;
    b.output_bytes = act_bytes;
    b.layer_units = 0.0;
    cfg.blocks.push_back(b);
  }

  // --- L x (ResidualAttentionBlock, ResidualFFNBlock), the sub-layer
  // granularity of Fig. 3. Both keep the boundary activation at B*s*h, so
  // cutting between them adds no communication volume.
  for (int layer = 0; layer < spec.num_layers; ++layer) {
    {
      Block b;
      b.name = "layer" + std::to_string(layer) + ".attn";
      b.kind = BlockKind::Attention;
      // QKV (6Bsh^2) + scores/context (4Bs^2h) + output projection (2Bsh^2)
      const double flops = 8.0 * B * s * h * h + 4.0 * B * s * s * h;
      // LayerNorm + residual + softmax are bandwidth bound.
      const double moved =
          8.0 * act_bytes + 2.0 * B * heads * s * s * kBytesPerElem;
      b.fwd_ms = matmul_ms(device, flops) + membound_ms(device, moved);
      b.bwd_ms = backward_ms(b.fwd_ms, rc);
      // W share: dW of the QKV (6Bsh^2) and output-projection (2Bsh^2)
      // GEMMs; the score/context chain and the recompute are all grad-input.
      b.bwd_weight_ms = matmul_ms(device, 8.0 * B * s * h * h);
      b.bwd_input_ms = b.bwd_ms - b.bwd_weight_ms;
      // ctx + dy + dqkv(3) + normed + d(normed) + ln.normalized
      b.bw_state_bytes = 8.0 * act_bytes;
      b.param_bytes = (4.0 * h * h + 6.0 * h) * kBytesPerElem;
      b.stash_bytes = act_bytes;  // block input, recomputed from here
      b.work_bytes =
          6.0 * act_bytes + 2.0 * B * heads * s * s * kBytesPerElem;
      b.output_bytes = act_bytes;
      b.layer_units = 0.5;
      cfg.blocks.push_back(b);
    }
    {
      Block b;
      b.name = "layer" + std::to_string(layer) + ".ffn";
      b.kind = BlockKind::FFN;
      const double flops = 16.0 * B * s * h * h;  // h -> 4h -> h
      const double moved = 4.0 * act_bytes + 2.0 * (B * s * 4.0 * h) * kBytesPerElem;
      b.fwd_ms = matmul_ms(device, flops) + membound_ms(device, moved);
      b.bwd_ms = backward_ms(b.fwd_ms, rc);
      // dW of both linears matches the forward FLOPs exactly (h->4h->h).
      b.bwd_weight_ms = matmul_ms(device, flops);
      b.bwd_input_ms = b.bwd_ms - b.bwd_weight_ms;
      // fc1 activation (4h) + d(pre-gelu) (4h) + normed + dy + d(normed)
      // + ln.normalized
      b.bw_state_bytes = 12.0 * act_bytes;
      b.param_bytes = (8.0 * h * h + 7.0 * h) * kBytesPerElem;
      b.stash_bytes = act_bytes;
      b.work_bytes = 3.0 * (B * s * 4.0 * h) * kBytesPerElem;
      b.output_bytes = act_bytes;
      b.layer_units = 0.5;
      cfg.blocks.push_back(b);
    }
  }

  // --- Final norm + vocabulary head (+ loss). The logits matmul is the
  // single most expensive block, which is why the planner assigns fewer
  // transformer layers to the last stage (Table II).
  {
    Block b;
    b.name = "head";
    b.kind = BlockKind::Head;
    const double flops = 2.0 * B * s * h * V;
    const double logits_bytes = B * s * V * kBytesPerElem;
    // The vocabulary projection is one enormous GEMM and reaches a much
    // higher fraction of tensor-core peak than the smaller mixed kernels
    // the matmul_tflops calibration reflects.
    constexpr double kBigGemmEfficiency = 1.4;
    b.fwd_ms = matmul_ms(device, flops) / kBigGemmEfficiency +
               membound_ms(device, 3.0 * logits_bytes + 2.0 * act_bytes);
    b.bwd_ms = backward_ms(b.fwd_ms, rc);
    // dW of the vocabulary projection equals its forward FLOPs.
    b.bwd_weight_ms = matmul_ms(device, flops) / kBigGemmEfficiency;
    b.bwd_input_ms = b.bwd_ms - b.bwd_weight_ms;
    // normed + d(normed) + ln.normalized + the stashed logits gradient
    b.bw_state_bytes = 3.0 * act_bytes + logits_bytes;
    // Head weight is tied with the token embedding in GPT-2/BERT; Megatron
    // still keeps a gradient buffer for it on the last stage.
    b.param_bytes = (V * h + 2.0 * h) * kBytesPerElem;
    b.stash_bytes = act_bytes;
    // Peak transient of the loss computation: fp16 logits + the fp32 copy
    // the fused cross-entropy keeps + the fp16 logits gradient = 8 bytes
    // per (token, vocab) entry. This buffer is what makes large micro-batch
    // configurations OOM on the last stage (Table IV, Fig. 14(a)).
    b.work_bytes = 8.0 * B * s * V;
    b.output_bytes = 0.0;
    b.layer_units = 0.0;
    cfg.blocks.push_back(b);
  }

  cfg.comm_ms = transfer_ms(link, act_bytes);
  return cfg;
}

double activation_bytes(const ModelConfig& config) {
  const int s = config.train.seq_len > 0 ? config.train.seq_len
                                         : config.spec.default_seq;
  return static_cast<double>(config.train.micro_batch_size) * s *
         config.spec.hidden * kBytesPerElem;
}

ModelConfig build_model_config(const ModelSpec& spec, const TrainConfig& train) {
  return build_model_config(spec, train, rtx3090(), infiniband_100g());
}

}  // namespace autopipe::costmodel
