#include "costmodel/device.h"

namespace autopipe::costmodel {

DeviceProfile rtx3090() {
  DeviceProfile d;
  d.name = "RTX3090";
  d.matmul_tflops = 30.0;
  d.memband_gbps = 600.0;
  d.mem_capacity_bytes = 16.8 * (1ull << 30);
  d.kernel_launch_ms = 0.025;
  return d;
}

LinkProfile pcie_p2p() {
  LinkProfile l;
  l.name = "PCIe4-P2P";
  l.latency_ms = 0.015;
  l.bandwidth_gbps = 12.0;
  return l;
}

LinkProfile infiniband_100g() {
  LinkProfile l;
  l.name = "IB-100G";
  l.latency_ms = 0.02;
  // 100 Gbps line rate, ~80% achievable for large messages.
  l.bandwidth_gbps = 10.0;
  return l;
}

double transfer_ms(const LinkProfile& link, double bytes) {
  return link.latency_ms + bytes / (link.bandwidth_gbps * 1e9) * 1e3;
}

double ring_allreduce_ms(const LinkProfile& link, double bytes, int ranks) {
  if (ranks <= 1) return 0.0;
  const double volume = 2.0 * (ranks - 1) / ranks * bytes;
  return 2.0 * (ranks - 1) * link.latency_ms +
         volume / (link.bandwidth_gbps * 1e9) * 1e3;
}

double matmul_ms(const DeviceProfile& device, double flops) {
  return flops / (device.matmul_tflops * 1e12) * 1e3;
}

double membound_ms(const DeviceProfile& device, double bytes) {
  return bytes / (device.memband_gbps * 1e9) * 1e3;
}

}  // namespace autopipe::costmodel
