// Online integrity guards against silent data corruption (DESIGN.md §12).
//
// Storage corruption has been covered since PR 5 (CRC-framed checkpoint
// records); this subsystem extends integrity checking to the *compute*
// path: tensors crossing stage boundaries, gradients entering the
// optimizer, and the weight/optimizer state living between steps. Four
// independent detectors, each its own GuardOptions knob:
//
//   handoff_crc      producer stamps a CRC32 of every tensor it sends into
//                    a shared HandoffLedger; the consumer recomputes and
//                    verifies. Both passes are read-only over the tensor's
//                    bytes, so the PR-7 copy-free handoff stays copy-free.
//   nonfinite_checks NaN/Inf scans of handoff tensors (the loss itself is
//                    always checked by TrainSession, guards or not).
//   weight_interval  periodic CRC32 over (params, Adam moments): recomputed
//                    after each optimizer step, verified at step entry
//                    every k-th step, and stamped into checkpoints so a
//                    restore can demand a *verified-clean* candidate.
//   norm_window      rolling max of clean-step gradient norms; a norm more
//                    than norm_tolerance times the calibrated max trips the
//                    guard (the watchdog's wall-per-sim idiom applied to
//                    gradients).
//
// Everything defaults off, and off means bitwise-identical training --
// guards only ever read tensor bytes, never round, clamp or reorder them
// (fuzz-enforced by GuardFuzz). Detections surface as
// StageFailure(FailureKind::Corruption) so the supervisor can run its
// corruption escalation rung.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.h"
#include "model/tensor.h"
#include "model/transformer.h"

namespace autopipe::guard {

struct GuardOptions {
  /// Producer-stamped, consumer-verified CRC32 over every micro-batch
  /// tensor crossing a stage boundary (both directions).
  bool handoff_crc = false;
  /// Non-finite scans of handoff tensors. The final loss is checked
  /// unconditionally by TrainSession regardless of this knob.
  bool nonfinite_checks = false;
  /// Verify the weight/optimizer-state checksum at the start of every k-th
  /// step (0 = off). When on, checkpoints are stamped "verified-clean".
  int weight_interval = 0;
  /// Rolling window of clean-step gradient norms (0 = off). The guard only
  /// arms once the window is full -- see NormGuard.
  int norm_window = 0;
  /// Trip threshold: gradient norm > tolerance * (calibrated window max).
  double norm_tolerance = 8.0;

  bool any() const {
    return handoff_crc || nonfinite_checks || weight_interval > 0 ||
           norm_window > 0;
  }
};

/// Detection bookkeeping, shared across worker threads. Checks count every
/// verification performed; failures/trips count detections.
struct GuardCounters {
  std::atomic<long> handoff_checks{0};
  std::atomic<long> handoff_failures{0};
  std::atomic<long> nonfinite_failures{0};
  std::atomic<long> weight_checks{0};
  std::atomic<long> weight_failures{0};
  std::atomic<long> norm_checks{0};
  std::atomic<long> norm_trips{0};

  void reset() {
    handoff_checks = 0;
    handoff_failures = 0;
    nonfinite_failures = 0;
    weight_checks = 0;
    weight_failures = 0;
    norm_checks = 0;
    norm_trips = 0;
  }
};

/// Key for one boundary crossing: direction, channel index, micro-batch
/// and (for sliced schedules) the half. Unique per iteration because every
/// (direction, boundary, micro_batch, half) tensor is sent exactly once.
std::uint64_t handoff_key(bool backward, int boundary, int micro_batch,
                          int half);

/// Producer-side CRC stamps awaiting consumer verification. One ledger per
/// run_iteration; a clean iteration consumes every stamp it produced
/// (asserted by the runtime), so leaks indicate a schedule bug.
class HandoffLedger {
 public:
  void stamp(std::uint64_t key, std::uint32_t crc);
  /// Consumes and returns the producer's stamp; nullopt when absent.
  std::optional<std::uint32_t> take(std::uint64_t key);
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::uint32_t> stamps_;
};

/// Read-only CRC32 over a tensor's float payload (no copy, no mutation).
std::uint32_t tensor_crc(const model::Tensor& x);

/// True when every element is finite.
bool tensor_finite(const model::Tensor& x);

/// Largest |grad| across all parameters -- the norm the NormGuard watches.
double grad_max_abs(const model::TransformerModel& model);

/// Windowed norm guard with seeded calibration on clean steps: the first
/// `window` observations only calibrate (they are assumed clean, exactly
/// like the watchdog's wall-per-sim calibration); once full, an
/// observation above tolerance * max(window) trips and is NOT absorbed
/// (a corrupt norm must not poison the calibration), while clean
/// observations roll through the window.
class NormGuard {
 public:
  NormGuard() = default;
  NormGuard(int window, double tolerance)
      : window_(window), tolerance_(tolerance) {}

  /// Feeds one observation; returns true when it trips the guard.
  bool observe(double norm);
  bool calibrated() const {
    return window_ > 0 && static_cast<int>(history_.size()) >= window_;
  }

 private:
  int window_ = 0;
  double tolerance_ = 8.0;
  std::deque<double> history_;
};

/// CRC32 over the weight/optimizer float state of a captured checkpoint, in
/// canonical capture order (per block, per param: value, adam_m, adam_v).
std::uint32_t weight_state_crc(const ckpt::TrainState& state);

/// The same checksum computed from live (model, Adam moments) without
/// capturing: bitwise equal to weight_state_crc(capture_train_state(...)).
/// `m`/`v` are the optimizer's per-parameter moment vectors in flat order
/// (empty before the first optimizer step).
std::uint32_t weight_crc(const model::TransformerModel& model,
                         const std::vector<std::vector<float>>& m,
                         const std::vector<std::vector<float>>& v);

}  // namespace autopipe::guard
