#include "guard/guard.h"

#include <cmath>

#include "util/checksum.h"

namespace autopipe::guard {

std::uint64_t handoff_key(bool backward, int boundary, int micro_batch,
                          int half) {
  // half is -1 for unsliced ops; +1 keeps the packed field non-negative.
  return (static_cast<std::uint64_t>(backward ? 1 : 0) << 60) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(boundary)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(micro_batch)) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(half + 1) & 0xFFu);
}

void HandoffLedger::stamp(std::uint64_t key, std::uint32_t crc) {
  std::lock_guard<std::mutex> lock(mu_);
  stamps_[key] = crc;
}

std::optional<std::uint32_t> HandoffLedger::take(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stamps_.find(key);
  if (it == stamps_.end()) return std::nullopt;
  const std::uint32_t crc = it->second;
  stamps_.erase(it);
  return crc;
}

std::size_t HandoffLedger::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stamps_.size();
}

std::uint32_t tensor_crc(const model::Tensor& x) {
  util::Crc32 crc;
  crc.update(x.data(), x.numel() * sizeof(float));
  return crc.value();
}

bool tensor_finite(const model::Tensor& x) {
  const float* data = x.data();
  const std::size_t n = x.numel();
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

double grad_max_abs(const model::TransformerModel& model) {
  double max_abs = 0.0;
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (const model::ParamTensor& p : model.block(b).params()) {
      const float* g = p.grad.data();
      const std::size_t n = p.grad.numel();
      for (std::size_t i = 0; i < n; ++i) {
        const double a = std::fabs(static_cast<double>(g[i]));
        if (a > max_abs) max_abs = a;
      }
    }
  }
  return max_abs;
}

bool NormGuard::observe(double norm) {
  if (window_ <= 0) return false;
  if (!calibrated()) {
    history_.push_back(norm);
    return false;
  }
  double window_max = 0.0;
  for (double h : history_) window_max = std::max(window_max, h);
  // A dead-zero calibration window (untrained toy models) can't scale a
  // threshold; fall back to "anything non-finite or huge".
  const double threshold =
      window_max > 0.0 ? tolerance_ * window_max : tolerance_;
  if (!std::isfinite(norm) || norm > threshold) return true;
  history_.push_back(norm);
  history_.pop_front();
  return false;
}

namespace {

void update_floats(util::Crc32& crc, const std::vector<float>& v) {
  crc.update(v.data(), v.size() * sizeof(float));
}

}  // namespace

std::uint32_t weight_state_crc(const ckpt::TrainState& state) {
  util::Crc32 crc;
  for (const ckpt::BlockState& block : state.blocks) {
    for (const ckpt::ParamState& p : block.params) {
      update_floats(crc, p.value);
      update_floats(crc, p.adam_m);
      update_floats(crc, p.adam_v);
    }
  }
  return crc.value();
}

std::uint32_t weight_crc(const model::TransformerModel& model,
                         const std::vector<std::vector<float>>& m,
                         const std::vector<std::vector<float>>& v) {
  util::Crc32 crc;
  std::size_t slot = 0;
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (const model::ParamTensor& p : model.block(b).params()) {
      crc.update(p.value.data(), p.value.numel() * sizeof(float));
      if (slot < m.size()) update_floats(crc, m[slot]);
      if (slot < v.size()) update_floats(crc, v[slot]);
      ++slot;
    }
  }
  return crc.value();
}

}  // namespace autopipe::guard
