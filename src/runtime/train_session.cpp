#include "runtime/train_session.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "model/arena.h"
#include "runtime/stage_failure.h"
#include "util/logging.h"

namespace autopipe::runtime {

TrainSession::TrainSession(const TrainSessionOptions& options)
    : options_(options),
      model_(options.spec),
      corpus_(options.spec.vocab, options.data_seed),
      adam_(options.lr) {
  init_runtime();
}

TrainSession::TrainSession(const TrainSessionOptions& options,
                           const ckpt::TrainState& state)
    : options_(options),
      model_(options.spec),
      corpus_(options.spec.vocab, options.data_seed),
      adam_(options.lr) {
  adam_.set_state(ckpt::apply_train_state(state, model_));
  corpus_.set_rng_state(state.data_rng);
  step_ = state.step;
  init_runtime();
}

void TrainSession::init_runtime() {
  if (options_.counts.empty()) {
    throw std::invalid_argument("TrainSession: counts must not be empty");
  }
  if (options_.micro_batch < 1 || options_.num_micro_batches < 1) {
    throw std::invalid_argument("TrainSession: batch shape must be positive");
  }
  runtime_ = std::make_unique<PipelineRuntime>(model_, options_.counts);
  schedule_ = runtime_->make_schedule(options_.kind,
                                      options_.num_micro_batches,
                                      options_.sliced);
  // Pre-grow the tensor arena to the memory model's per-stage prediction
  // (schedule-dependent in-flight stashes + transient working set), so
  // steady-state iterations run on size-class cache hits with no slab
  // growth mid-iteration. The estimate is conservative; reserve() only
  // tops up capacity the arena doesn't already have spare.
  const int n = static_cast<int>(options_.counts.size());
  const double tokens =
      static_cast<double>(options_.micro_batch) * options_.spec.seq;
  const double per_block_stash =
      16.0 * tokens * options_.spec.hidden * sizeof(float);
  double reserve_bytes = 0;
  for (int s = 0; s < n; ++s) {
    costmodel::StageFootprint fp;
    fp.param_bytes =
        static_cast<double>(model_.param_count()) * sizeof(float) / n;
    fp.stash_bytes = options_.counts[s] * per_block_stash;
    fp.work_bytes = 4.0 * per_block_stash;
    const costmodel::MemoryEstimate est = costmodel::stage_memory(
        fp, s, n, options_.kind, options_.num_micro_batches, /*chunks=*/1,
        std::numeric_limits<double>::infinity());
    reserve_bytes += est.activation_bytes + est.working_bytes;
  }
  model::Arena::global().reserve(static_cast<std::size_t>(reserve_bytes));
  loss_scale_ = 1.0 / (static_cast<double>(options_.micro_batch) *
                       options_.num_micro_batches * options_.spec.seq);
  // Guards live on the session, so the per-iteration runtime reads them
  // through stable pointers into this object. Leaving the pointers null
  // when every knob is off keeps the hot path untouched.
  if (options_.guard.any()) {
    options_.run.guard = &options_.guard;
    options_.run.guard_counters = &guard_counters_;
  }
  norm_guard_ =
      guard::NormGuard(options_.guard.norm_window, options_.guard.norm_tolerance);
  refresh_weight_sentinel();
  if (!options_.ckpt_dir.empty() && options_.ckpt_interval > 0) {
    ckpt::Storage& storage =
        options_.storage != nullptr ? *options_.storage : posix_;
    ckpt::WriterOptions wopts;
    wopts.keep_last = options_.ckpt_keep;
    writer_ = std::make_unique<ckpt::CheckpointWriter>(
        storage, options_.ckpt_dir, wopts);
  }
}

double TrainSession::step() {
  // Weight guard: verify the between-steps state is still exactly what the
  // last clean mutation left behind, *before* any of it feeds a forward
  // pass. The check reads the live floats in place against the sentinel.
  if (options_.guard.weight_interval > 0 && weight_sentinel_valid_ &&
      step_ % options_.guard.weight_interval == 0) {
    ++guard_counters_.weight_checks;
    if (guard::weight_crc(model_, adam_.m(), adam_.v()) != weight_sentinel_) {
      ++guard_counters_.weight_failures;
      throw StageFailure(FailureKind::Corruption, -1,
                         "weight-state checksum mismatch at step " +
                             std::to_string(step_) +
                             " (weights or optimizer state corrupted "
                             "between steps)");
    }
  }
  // Snapshot the data stream so a failed attempt can be rewound: the batch
  // draw advances the corpus RNG, and a supervisor retrying this step must
  // see the identical batch or the retried run diverges from the unfaulted
  // one. Parameters and optimizer state need no snapshot -- they only
  // mutate in adam_.step(), after the fallible pipeline run succeeded.
  const util::Rng::State data_rng = corpus_.rng_state();
  const model::Batch batch = corpus_.next_batch(
      options_.micro_batch * options_.num_micro_batches, options_.spec.seq);
  const std::vector<model::Batch> micro =
      model::SyntheticCorpus::split_micro_batches(batch, options_.spec.seq,
                                                  options_.micro_batch);
  model_.zero_grads();
  IterationResult result;
  try {
    result = runtime_->run_iteration(schedule_, micro, loss_scale_,
                                     options_.run);
  } catch (...) {
    corpus_.set_rng_state(data_rng);
    throw;
  }
  // A non-finite loss is always fatal for the step, guards or not:
  // training on NaN silently poisons every parameter, which is the one
  // outcome this layer exists to prevent. Rewind so the step is retryable.
  if (!std::isfinite(result.loss)) {
    ++guard_counters_.nonfinite_failures;
    corpus_.set_rng_state(data_rng);
    throw StageFailure(FailureKind::Corruption, -1,
                       "non-finite loss at step " + std::to_string(step_) +
                           " (corrupted activations or parameters)");
  }
  // Norm guard: judge this step's gradients against the calibrated window
  // of clean-step norms, before the optimizer consumes them.
  if (options_.guard.norm_window > 0) {
    ++guard_counters_.norm_checks;
    const double norm = guard::grad_max_abs(model_);
    if (norm_guard_.observe(norm)) {
      ++guard_counters_.norm_trips;
      corpus_.set_rng_state(data_rng);
      throw StageFailure(FailureKind::Corruption, -1,
                         "gradient norm guard tripped at step " +
                             std::to_string(step_) + " (|grad|max " +
                             std::to_string(norm) + " exceeds " +
                             std::to_string(options_.guard.norm_tolerance) +
                             "x the calibrated clean-step maximum)");
    }
  }
  adam_.step(model_);
  ++step_;
  // Refresh the sentinel only on steps where it will be consumed: before
  // the next entry check (step_ is now the step the check guards) or to
  // stamp a checkpoint verified-clean. Skipping the other steps is what
  // makes weight_interval > 1 cheap; the cost is the documented periodic
  // detection window.
  if (options_.guard.weight_interval > 0 &&
      (step_ % options_.guard.weight_interval == 0 ||
       (writer_ != nullptr && step_ % options_.ckpt_interval == 0))) {
    refresh_weight_sentinel();
  } else if (options_.guard.weight_interval > 0) {
    // State moved past the sentinel without a refresh: it no longer
    // describes the live floats, so neither the entry check nor the
    // checkpoint stamp may trust it until the next refresh.
    weight_sentinel_valid_ = false;
  }
  losses_.push_back(result.loss);
  maybe_checkpoint();
  return result.loss;
}

void TrainSession::refresh_weight_sentinel() {
  if (options_.guard.weight_interval <= 0) return;
  weight_sentinel_ = guard::weight_crc(model_, adam_.m(), adam_.v());
  weight_sentinel_valid_ = true;
}

ckpt::TrainState TrainSession::capture() const {
  return ckpt::capture_train_state(model_, adam_.state(), corpus_.rng_state(),
                                   step_, options_.counts,
                                   static_cast<int>(options_.kind));
}

void TrainSession::maybe_checkpoint() {
  if (writer_ == nullptr || step_ % options_.ckpt_interval != 0) return;
  try {
    // With the weight guard on, the sentinel is exactly the state being
    // captured (refreshed after the optimizer step), so the checkpoint is
    // stamped verified-clean and the corruption rung can trust it.
    writer_->write(capture(),
                   weight_sentinel_valid_ ? &weight_sentinel_ : nullptr);
    ++checkpoints_written_;
  } catch (const ckpt::StorageError& e) {
    // A lost checkpoint must never lose the run: note it and train on. The
    // previously committed checkpoints are intact by the commit protocol.
    ++checkpoint_failures_;
    last_checkpoint_error_ = e.what();
    AP_LOG(warn) << "checkpoint at step " << step_ << " failed: " << e.what();
  }
}

}  // namespace autopipe::runtime
