// Thread-per-device pipeline training runtime.
//
// Executes a core::Schedule (1F1B, GPipe, AutoPipe's sliced 1F1B, or
// Megatron-LM's interleaved 1F1B) on a real TransformerModel partitioned
// into global stages: one std::thread per device, tagged channels per
// global-stage boundary for activations and gradients. Under the
// interleaved schedule each device hosts `chunks` model chunks (global
// stage g = chunk*devices + device). This is the repo's stand-in for the
// paper's Megatron-LM + NCCL backend; its purpose is to demonstrate that
// every schedule AutoPipe emits or compares against computes the same
// gradients as single-process training (§II-B's consistency).
#pragma once

#include <vector>

#include "core/partition.h"
#include "core/schedule.h"
#include "faults/fault_plan.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/cancel.h"
#include "runtime/health.h"

namespace autopipe::faults {
class SdcInjector;
}
namespace autopipe::guard {
struct GuardOptions;
struct GuardCounters;
}

namespace autopipe::runtime {

struct IterationResult {
  double loss = 0;  ///< scaled cross entropy summed over all micro-batches
  /// Transient op faults absorbed in place by worker-level retry (summed
  /// over devices); 0 on fault-free runs.
  int transient_retries = 0;
};

/// Per-iteration knobs beyond the schedule itself. Defaults reproduce the
/// historical run_iteration behaviour except that channel waits are bounded
/// by `recv_deadline_ms` -- nothing in a healthy iteration waits that long,
/// and a hung/dead peer now surfaces as StageFailure instead of deadlock.
struct RunOptions {
  /// Activation checkpointing (§II-C); both modes produce identical
  /// gradients.
  bool recompute = true;
  /// Deterministic fault injection (null or empty = bit-identical to the
  /// fault-free path).
  const faults::FaultPlan* faults = nullptr;
  /// Watchdog deadline for every channel wait (0 = wait forever,
  /// closure-aware). Generous default: a healthy iteration never waits
  /// seconds on one message, but sanitizer builds are slow.
  double recv_deadline_ms = 30000;
  /// Exponential-backoff base for in-place transient retries.
  double backoff_base_ms = 0.05;
  /// Transient faults injecting more failures than this escalate to
  /// StageFailure(Transient).
  int max_transient_retries = 3;
  /// Optional per-device heartbeat board (runtime/health.h). When set, the
  /// runtime reset()s it for this iteration's device count and every worker
  /// publishes progress watermarks -- the supervisor's watchdog reads them
  /// from outside the iteration. Null = no reporting.
  HealthBoard* health = nullptr;
  /// Optional cooperative cancellation token (runtime/cancel.h). The
  /// watchdog cancels it to abort a wedged iteration: workers check it
  /// before each op and between receive poll slices, and injected hangs
  /// park on it. A worker failure also cancels it (with the failure text)
  /// so hung peers don't ride out their full recv deadline. Null = no
  /// external abort path (waits bounded by recv_deadline_ms only).
  CancelToken* cancel = nullptr;
  /// Poll slice for cancellation-aware channel waits (only with `cancel`).
  double cancel_poll_ms = 25;
  /// Integrity guards over the compute path (guard/guard.h). Null (or all
  /// knobs off) = bitwise-identical execution: guards only ever read tensor
  /// bytes. Detections throw StageFailure(Corruption).
  const guard::GuardOptions* guard = nullptr;
  /// Detection bookkeeping (required whenever `guard` enables any check).
  guard::GuardCounters* guard_counters = nullptr;
  /// Seeded in-flight bit-flip injection (faults/sdc.h). Corruption is
  /// applied to boundary tensors *after* the producer's CRC stamp, modelling
  /// corruption in transfer/SRAM that the handoff guard must catch. Null or
  /// nothing armed = bit-identical.
  faults::SdcInjector* sdc = nullptr;
};

class PipelineRuntime {
 public:
  /// `counts` assigns the model's blocks to global stages in global-stage
  /// order (devices*chunks entries; with chunks == 1 this is the plain
  /// per-stage partition). Device d hosts global stages
  /// {d, devices + d, ...}.
  PipelineRuntime(model::TransformerModel& model, std::vector<int> counts,
                  int chunks = 1);

  int num_devices() const {
    return static_cast<int>(counts_.size()) / chunks_;
  }
  int chunks() const { return chunks_; }

  /// Runs one training iteration under `schedule`. Gradients accumulate
  /// into the model (call model.zero_grads() between iterations).
  /// `loss_scale` should be 1 / total mini-batch tokens so micro-batch
  /// gradients sum to full-batch gradients. `recompute` toggles activation
  /// checkpointing (§II-C); both modes produce identical gradients.
  IterationResult run_iteration(const core::Schedule& schedule,
                                const std::vector<model::Batch>& micro_batches,
                                double loss_scale, bool recompute = true);

  /// Fault-aware flavour: same contract, plus the RunOptions knobs. A
  /// worker failure closes every channel (so no peer blocks past one
  /// scheduling quantum) and rethrows as StageFailure; gradients
  /// accumulated before the failure are left in the model -- the recovery
  /// layer (runtime/recovery.h) snapshots and restores around attempts.
  IterationResult run_iteration(const core::Schedule& schedule,
                                const std::vector<model::Batch>& micro_batches,
                                double loss_scale, const RunOptions& options);

  /// Builds a neutral schedule (unit durations) of the given kind for this
  /// partition -- durations are irrelevant to the runtime, only op order
  /// and halving matter. `sliced` applies to AutoPipeSliced only.
  core::Schedule make_schedule(costmodel::ScheduleKind kind, int micro_batches,
                               int sliced = 0) const;

 private:
  model::TransformerModel& model_;
  std::vector<int> counts_;  ///< blocks per global stage
  int chunks_;
};

}  // namespace autopipe::runtime
