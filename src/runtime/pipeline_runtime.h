// Thread-per-device pipeline training runtime.
//
// Executes a core::Schedule (1F1B, GPipe, AutoPipe's sliced 1F1B, or
// Megatron-LM's interleaved 1F1B) on a real TransformerModel partitioned
// into global stages: one std::thread per device, tagged channels per
// global-stage boundary for activations and gradients. Under the
// interleaved schedule each device hosts `chunks` model chunks (global
// stage g = chunk*devices + device). This is the repo's stand-in for the
// paper's Megatron-LM + NCCL backend; its purpose is to demonstrate that
// every schedule AutoPipe emits or compares against computes the same
// gradients as single-process training (§II-B's consistency).
#pragma once

#include <vector>

#include "core/partition.h"
#include "core/schedule.h"
#include "model/data.h"
#include "model/transformer.h"

namespace autopipe::runtime {

struct IterationResult {
  double loss = 0;  ///< scaled cross entropy summed over all micro-batches
};

class PipelineRuntime {
 public:
  /// `counts` assigns the model's blocks to global stages in global-stage
  /// order (devices*chunks entries; with chunks == 1 this is the plain
  /// per-stage partition). Device d hosts global stages
  /// {d, devices + d, ...}.
  PipelineRuntime(model::TransformerModel& model, std::vector<int> counts,
                  int chunks = 1);

  int num_devices() const {
    return static_cast<int>(counts_.size()) / chunks_;
  }
  int chunks() const { return chunks_; }

  /// Runs one training iteration under `schedule`. Gradients accumulate
  /// into the model (call model.zero_grads() between iterations).
  /// `loss_scale` should be 1 / total mini-batch tokens so micro-batch
  /// gradients sum to full-batch gradients. `recompute` toggles activation
  /// checkpointing (§II-C); both modes produce identical gradients.
  IterationResult run_iteration(const core::Schedule& schedule,
                                const std::vector<model::Batch>& micro_batches,
                                double loss_scale, bool recompute = true);

  /// Builds a neutral schedule (unit durations) of the given kind for this
  /// partition -- durations are irrelevant to the runtime, only op order
  /// and halving matter. `sliced` applies to AutoPipeSliced only.
  core::Schedule make_schedule(costmodel::ScheduleKind kind, int micro_batches,
                               int sliced = 0) const;

 private:
  model::TransformerModel& model_;
  std::vector<int> counts_;  ///< blocks per global stage
  int chunks_;
};

}  // namespace autopipe::runtime
