#include "runtime/health.h"

#include <stdexcept>

namespace autopipe::runtime {

HealthBoard::HealthBoard(int max_devices)
    : max_devices_(max_devices),
      slots_(max_devices > 0 ? std::make_unique<Slot[]>(
                                   static_cast<std::size_t>(max_devices))
                             : nullptr),
      epoch_(std::chrono::steady_clock::now()) {
  if (max_devices < 1) {
    throw std::invalid_argument("health board: need at least one device");
  }
  reset(max_devices);
}

void HealthBoard::reset(int devices) {
  if (devices < 1 || devices > max_devices_) {
    throw std::invalid_argument("health board: device count out of range");
  }
  devices_ = devices;
  const std::int64_t now = now_us();
  for (int d = 0; d < devices; ++d) {
    slots_[d].ops.store(0, std::memory_order_relaxed);
    slots_[d].beat_us.store(now, std::memory_order_relaxed);
    slots_[d].state.store(static_cast<int>(DeviceHealth::Idle),
                          std::memory_order_relaxed);
  }
}

void HealthBoard::beat(int device, int ops_done) {
  Slot& slot = slots_[device];
  slot.ops.store(ops_done, std::memory_order_relaxed);
  slot.beat_us.store(now_us(), std::memory_order_relaxed);
}

void HealthBoard::mark(int device, DeviceHealth state) {
  Slot& slot = slots_[device];
  slot.beat_us.store(now_us(), std::memory_order_relaxed);
  slot.state.store(static_cast<int>(state), std::memory_order_relaxed);
}

int HealthBoard::ops_done(int device) const {
  return static_cast<int>(slots_[device].ops.load(std::memory_order_relaxed));
}

DeviceHealth HealthBoard::state(int device) const {
  return static_cast<DeviceHealth>(
      slots_[device].state.load(std::memory_order_relaxed));
}

double HealthBoard::silent_ms(int device) const {
  const std::int64_t beat =
      slots_[device].beat_us.load(std::memory_order_relaxed);
  return static_cast<double>(now_us() - beat) / 1000.0;
}

std::int64_t HealthBoard::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

}  // namespace autopipe::runtime
