#include "runtime/optimizer.h"

#include <cmath>

namespace autopipe::runtime {

void Sgd::step(model::TransformerModel& model) {
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (auto& p : model.block(b).params()) {
      for (std::size_t i = 0; i < p.value.numel(); ++i) {
        p.value.data()[i] -= static_cast<float>(lr_) * p.grad.at(i);
      }
    }
  }
}

void Adam::step(model::TransformerModel& model) {
  // Lazily allocate moments in (block, param) order.
  if (m_.empty()) {
    for (int b = 0; b < model.num_blocks(); ++b) {
      for (auto& p : model.block(b).params()) {
        m_.emplace_back(p.value.numel(), 0.0f);
        v_.emplace_back(p.value.numel(), 0.0f);
      }
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  std::size_t slot = 0;
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (auto& p : model.block(b).params()) {
      auto& m = m_[slot];
      auto& v = v_[slot];
      ++slot;
      for (std::size_t i = 0; i < p.value.numel(); ++i) {
        const double g = p.grad.at(i);
        m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
        v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
        const double mh = m[i] / bc1;
        const double vh = v[i] / bc2;
        p.value.data()[i] -=
            static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
      }
    }
  }
}

}  // namespace autopipe::runtime
