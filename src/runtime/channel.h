// Tagged blocking mailbox between adjacent pipeline stages -- the NCCL
// point-to-point substitute of the thread runtime.
//
// A Channel carries messages in one direction across one stage boundary.
// Receivers block until the message with their exact tag (op type,
// micro-batch, half) arrives, which realizes the communication-computation
// dependencies of Fig. 1 without imposing any order beyond them: sends
// never block (asynchronous NCCL sends with buffering), receives rendezvous
// by tag.
//
// Ownership contract (copy-free handoff): send() takes the tensor by value
// and *moves* it into the mailbox; recv() moves it out to the receiver.
// With arena-backed Tensor storage a move is a pointer swap, so a
// micro-batch activation crosses a stage boundary without its payload ever
// being copied -- the sender must treat the tensor as consumed (it is
// empty after the move), and the receiver becomes the sole owner of the
// buffer, returning it to the arena when the tensor dies. The hot-path
// tests assert a steady-state iteration performs zero payload copies
// (model::ArenaBuffer::copy_count()).
//
// Failure semantics: a channel can be *closed* (poisoned) with a reason.
// Closing wakes every blocked receiver and makes all subsequent sends and
// receives throw StageFailure(PeerClosed) instead of deadlocking -- a failed
// StageWorker closes every channel of the iteration, so one worker's death
// propagates as typed failures within one scheduling quantum rather than
// hanging peers forever in recv. recv_for additionally bounds the wait with
// a deadline, turning a silently hung peer into StageFailure(Timeout).
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "core/schedule.h"
#include "model/tensor.h"
#include "runtime/stage_failure.h"

namespace autopipe::runtime {

struct MessageTag {
  core::OpType type = core::OpType::Forward;
  int micro_batch = 0;
  int half = -1;

  auto operator<=>(const MessageTag&) const = default;
};

class Channel {
 public:
  /// Deposits a tensor under `tag`; fails (throws std::logic_error) if the
  /// tag is already occupied -- a schedule that sends twice is malformed.
  /// Throws StageFailure(PeerClosed) on a closed channel.
  void send(const MessageTag& tag, model::Tensor payload);

  /// Blocks until a tensor tagged `tag` arrives, then removes and returns
  /// it. Throws StageFailure(PeerClosed) if the channel is closed before
  /// (or while) waiting.
  model::Tensor recv(const MessageTag& tag);

  /// recv with a deadline: waits at most `timeout_ms`, then throws
  /// StageFailure(Timeout). Throws StageFailure(PeerClosed) on closure.
  model::Tensor recv_for(const MessageTag& tag, double timeout_ms);

  /// Non-throwing deadline wait: nullopt when `timeout_ms` expires with no
  /// message (so callers can slice one logical wait into short polls and
  /// check a cancellation token between slices). Still throws
  /// StageFailure(PeerClosed) on closure -- poisoning must cascade.
  std::optional<model::Tensor> recv_opt(const MessageTag& tag,
                                        double timeout_ms);

  /// Poisons the channel: drops undelivered messages, wakes all waiters,
  /// and makes every later send/recv throw StageFailure(PeerClosed)
  /// carrying `reason`. Idempotent (the first reason wins).
  void close(const std::string& reason);

  bool closed() const;
  std::string close_reason() const;

  /// Number of undelivered messages (for leak checks in tests). Always 0
  /// after close().
  std::size_t pending() const;

 private:
  model::Tensor take_locked(const MessageTag& tag,
                            std::unique_lock<std::mutex>& lock);
  [[noreturn]] void throw_closed_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::map<std::tuple<int, int, int>, model::Tensor> box_;
  bool closed_ = false;
  std::string close_reason_;
};

}  // namespace autopipe::runtime
