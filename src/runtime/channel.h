// Tagged blocking mailbox between adjacent pipeline stages -- the NCCL
// point-to-point substitute of the thread runtime.
//
// A Channel carries messages in one direction across one stage boundary.
// Receivers block until the message with their exact tag (op type,
// micro-batch, half) arrives, which realizes the communication-computation
// dependencies of Fig. 1 without imposing any order beyond them: sends
// never block (asynchronous NCCL sends with buffering), receives rendezvous
// by tag.
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <tuple>

#include "core/schedule.h"
#include "model/tensor.h"

namespace autopipe::runtime {

struct MessageTag {
  core::OpType type = core::OpType::Forward;
  int micro_batch = 0;
  int half = -1;

  auto operator<=>(const MessageTag&) const = default;
};

class Channel {
 public:
  /// Deposits a tensor under `tag`; fails (throws std::logic_error) if the
  /// tag is already occupied -- a schedule that sends twice is malformed.
  void send(const MessageTag& tag, model::Tensor payload);

  /// Blocks until a tensor tagged `tag` arrives, then removes and returns it.
  model::Tensor recv(const MessageTag& tag);

  /// Number of undelivered messages (for leak checks in tests).
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::map<std::tuple<int, int, int>, model::Tensor> box_;
};

}  // namespace autopipe::runtime
