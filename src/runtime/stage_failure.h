// Typed failure propagation for the thread runtime.
//
// A StageWorker that dies must not leave its peers blocked in Channel::recv
// forever (the pre-fault-subsystem behaviour): failures surface as a
// StageFailure carrying *which* device failed and *why*, so the recovery
// policy (runtime/recovery.h) can distinguish a transient hiccup worth
// retrying from a permanent device loss that needs re-planning on the
// surviving devices.
#pragma once

#include <stdexcept>
#include <string>

namespace autopipe::runtime {

enum class FailureKind {
  Transient,   ///< op failed more times than the in-place retry budget
  Crash,       ///< injected (or real) permanent device loss
  Timeout,     ///< a bounded recv deadline expired (hung peer)
  PeerClosed,  ///< a channel was closed/poisoned by a failing peer
  Corruption,  ///< an integrity guard caught silent data corruption
};

inline const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::Transient: return "transient";
    case FailureKind::Crash: return "crash";
    case FailureKind::Timeout: return "timeout";
    case FailureKind::PeerClosed: return "peer-closed";
    case FailureKind::Corruption: return "corruption";
  }
  return "unknown";
}

class StageFailure : public std::runtime_error {
 public:
  StageFailure(FailureKind kind, int device, const std::string& what)
      : std::runtime_error(what), kind_(kind), device_(device) {}

  FailureKind kind() const { return kind_; }
  /// Device the failure originated on (-1 when unknown, e.g. a peer's
  /// closure observed from the receiving side before the reason arrives).
  int device() const { return device_; }

 private:
  FailureKind kind_;
  int device_;
};

}  // namespace autopipe::runtime
