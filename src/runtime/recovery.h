// Crash-safe iteration driver: retry, degrade, re-plan.
//
// run_iteration_with_recovery wraps PipelineRuntime::run_iteration in the
// recovery policy of DESIGN.md §6:
//
//   Transient escalation  (StageFailure::Transient) -- restore the gradient
//     snapshot, back off exponentially, and retry the iteration on the same
//     devices; the offending fault is consumed, mirroring a hiccup that
//     clears on retry. (Transients within the worker's in-place retry
//     budget never reach this layer at all.)
//   Permanent loss  (Crash / Timeout) -- restore the snapshot, invoke
//     core::replan_on_failure for a pipeline over the N-1 survivors,
//     rebuild the runtime on the degraded partition, and re-execute.
//     Remaining faults are remapped onto the surviving device indices, so
//     cascading crashes degrade step by step until one device remains.
//
// Gradients are snapshotted before the first attempt and restored before
// every retry, making the whole operation atomic from the optimizer's view:
// either the iteration's full gradient lands in the model or (on rethrow)
// the model is exactly as it was.
#pragma once

#include <string>
#include <vector>

#include "core/autopipe.h"
#include "costmodel/memory.h"
#include "model/transformer.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/stage_failure.h"

namespace autopipe::runtime {

struct RecoveryOptions {
  /// Iteration attempts including the first (so max_attempts - 1 retries).
  int max_attempts = 4;
  /// Sleep before retry k is backoff_base_ms * 2^k (0 disables sleeping;
  /// the recorded backoff is still reported).
  double backoff_base_ms = 0.5;
  /// Per-attempt execution knobs; `run.faults` seeds the mutable fault
  /// state the recovery loop consumes faults from.
  RunOptions run;
  /// Planner configuration for replan_on_failure. `plan.num_gpus` is
  /// overwritten with the surviving device count on every replan; a forced
  /// depth equal to the surviving count is imposed (pipeline-only
  /// recovery), keeping the runtime shape equal to the cluster size.
  core::AutoPipeOptions plan;
  costmodel::ScheduleKind kind = costmodel::ScheduleKind::OneFOneB;
  /// Sliced micro-batches for ScheduleKind::AutoPipeSliced.
  int sliced = 0;
};

struct AttemptRecord {
  int attempt = 0;
  bool ok = false;
  FailureKind kind = FailureKind::Crash;  ///< meaningful when !ok
  int failed_device = -1;
  int devices = 0;          ///< devices this attempt ran on
  double backoff_ms = 0;    ///< backoff charged after this attempt
  std::string what;
};

struct RecoveryReport {
  IterationResult result;
  bool recovered = false;   ///< at least one failure, final attempt succeeded
  bool degraded = false;    ///< re-planned onto fewer devices
  int devices_used = 0;     ///< device count of the successful attempt
  std::vector<int> final_counts;  ///< partition of the successful attempt
  double replan_ms = 0;     ///< total wall-clock spent in replan_on_failure
  double recovery_ms = 0;   ///< first failure -> successful completion
  std::vector<AttemptRecord> attempts;
};

/// Runs one iteration of `micro_batches` on `model` partitioned as `counts`
/// (plain schedules only: one chunk per device), recovering per the policy
/// above. `config` must describe the same block array as `model` (e.g. from
/// the profiler or costmodel::build_model_config on a matching spec) -- it
/// is what the planner re-partitions on failure. Throws the last
/// StageFailure when max_attempts is exhausted, with gradients restored.
RecoveryReport run_iteration_with_recovery(
    model::TransformerModel& model, const core::ModelConfig& config,
    std::vector<int> counts, const std::vector<model::Batch>& micro_batches,
    double loss_scale, const RecoveryOptions& options);

/// Flat copy of every parameter gradient (block order, param order).
std::vector<model::Tensor> snapshot_grads(const model::TransformerModel& model);

/// Writes a snapshot_grads() copy back into the model.
void restore_grads(model::TransformerModel& model,
                   const std::vector<model::Tensor>& snapshot);

}  // namespace autopipe::runtime
