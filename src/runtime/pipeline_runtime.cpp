#include "runtime/pipeline_runtime.h"

#include <numeric>
#include <stdexcept>
#include <thread>

#include "faults/sdc.h"
#include "guard/guard.h"
#include "runtime/channel.h"
#include "runtime/stage_failure.h"
#include "runtime/stage_worker.h"

namespace autopipe::runtime {

PipelineRuntime::PipelineRuntime(model::TransformerModel& model,
                                 std::vector<int> counts, int chunks)
    : model_(model), counts_(std::move(counts)), chunks_(chunks) {
  if (chunks_ < 1 || counts_.empty() ||
      static_cast<int>(counts_.size()) % chunks_ != 0) {
    throw std::invalid_argument("global stage count must be devices*chunks");
  }
  const int total = std::accumulate(counts_.begin(), counts_.end(), 0);
  if (total != model_.num_blocks()) {
    throw std::invalid_argument("partition does not cover the model blocks");
  }
  for (int c : counts_) {
    if (c < 1) throw std::invalid_argument("empty pipeline stage");
  }
}

core::Schedule PipelineRuntime::make_schedule(costmodel::ScheduleKind kind,
                                              int micro_batches,
                                              int sliced) const {
  // Neutral 1:2 fwd:bwd costs -- the runtime only needs the op *order*, so
  // every device gets the same placeholder StageCost. build_schedule owns
  // the kind dispatch (shared with the supervisor and the planner).
  return core::build_schedule(
      kind,
      std::vector<core::StageCost>(num_devices(), core::StageCost{1.0, 2.0}),
      micro_batches, 0.1, {sliced, chunks_});
}

IterationResult PipelineRuntime::run_iteration(
    const core::Schedule& schedule,
    const std::vector<model::Batch>& micro_batches, double loss_scale,
    bool recompute) {
  RunOptions options;
  options.recompute = recompute;
  return run_iteration(schedule, micro_batches, loss_scale, options);
}

IterationResult PipelineRuntime::run_iteration(
    const core::Schedule& schedule,
    const std::vector<model::Batch>& micro_batches, double loss_scale,
    const RunOptions& options) {
  const int devices = num_devices();
  if (schedule.num_stages != devices || schedule.chunks != chunks_) {
    throw std::invalid_argument("schedule shape mismatch");
  }
  if (schedule.num_micro_batches != static_cast<int>(micro_batches.size())) {
    throw std::invalid_argument("schedule micro-batch count mismatch");
  }
  core::validate(schedule);
  if (schedule.kind == costmodel::ScheduleKind::ZeroBubble &&
      !options.recompute) {
    throw std::invalid_argument(
        "zero-bubble schedules require recompute=true (the split backward "
        "re-derives intermediates from stashed block inputs)");
  }

  if (options.faults != nullptr && !options.faults->empty()) {
    options.faults->validate(devices, devices * chunks_ - 1);
  }

  const int global_stages = devices * chunks_;
  std::vector<Channel> forward_channels(std::max(0, global_stages - 1));
  std::vector<Channel> backward_channels(std::max(0, global_stages - 1));
  std::vector<double> losses(devices, 0.0);
  std::vector<std::string> errors(devices);
  std::vector<FailureKind> error_kinds(devices, FailureKind::Crash);
  std::vector<int> retries(devices, 0);
  // One worker's death poisons every channel so no peer can block past its
  // next wait -- the failure cascades as StageFailure(PeerClosed) instead of
  // the pre-fault-subsystem deadlock. When the caller supplied a cancel
  // token, poisoning also cancels it: a peer parked on the token (an
  // injected hang, or a sliced receive) wakes immediately instead of riding
  // out its recv deadline.
  const auto poison_all = [&](const std::string& reason) {
    for (auto& ch : forward_channels) ch.close(reason);
    for (auto& ch : backward_channels) ch.close(reason);
    if (options.cancel != nullptr) options.cancel->cancel(reason);
  };
  if (options.health != nullptr) options.health->reset(devices);

  // One handoff ledger per iteration: producers stamp boundary-tensor CRCs,
  // consumers verify-and-consume them (guard/guard.h). Scoped to the
  // iteration so a failed run can't leak stale stamps into the retry.
  guard::HandoffLedger ledger;
  const bool handoff_guard =
      options.guard != nullptr && options.guard->handoff_crc;

  // Global stage g starts at block prefix[g]; device d's chunk c covers
  // global stage c*devices + d.
  std::vector<int> prefix(global_stages, 0);
  for (int g = 1; g < global_stages; ++g) {
    prefix[g] = prefix[g - 1] + counts_[g - 1];
  }

  std::vector<std::thread> workers;
  workers.reserve(devices);
  for (int d = 0; d < devices; ++d) {
    StageContext ctx;
    ctx.device = d;
    ctx.num_devices = devices;
    ctx.chunks = chunks_;
    for (int c = 0; c < chunks_; ++c) {
      const int g = c * devices + d;
      ctx.blocks.push_back({prefix[g], counts_[g]});
    }
    ctx.model = &model_;
    ctx.schedule = &schedule;
    ctx.micro_batches = &micro_batches;
    ctx.loss_scale = loss_scale;
    ctx.seq_len = model_.spec().seq;
    ctx.forward_channels = &forward_channels;
    ctx.backward_channels = &backward_channels;
    ctx.recompute = options.recompute;
    ctx.faults = options.faults;
    ctx.recv_deadline_ms = options.recv_deadline_ms;
    ctx.backoff_base_ms = options.backoff_base_ms;
    ctx.max_transient_retries = options.max_transient_retries;
    ctx.transient_retries = &retries[d];
    ctx.health = options.health;
    ctx.cancel = options.cancel;
    ctx.cancel_poll_ms = options.cancel_poll_ms;
    ctx.guard = options.guard;
    ctx.guard_counters = options.guard_counters;
    ctx.ledger = handoff_guard ? &ledger : nullptr;
    ctx.sdc = options.sdc;
    workers.emplace_back([ctx = std::move(ctx), d, &losses, &errors,
                          &error_kinds, &poison_all, health = options.health] {
      try {
        losses[d] = run_stage(ctx);
        if (health != nullptr) health->mark(d, DeviceHealth::Done);
      } catch (const StageFailure& e) {
        error_kinds[d] = e.kind();
        errors[d] = e.what();
        if (health != nullptr) health->mark(d, DeviceHealth::Failed);
        poison_all("device " + std::to_string(d) + ": " + e.what());
      } catch (const std::exception& e) {
        error_kinds[d] = FailureKind::Crash;
        errors[d] = e.what();
        if (health != nullptr) health->mark(d, DeviceHealth::Failed);
        poison_all("device " + std::to_string(d) + ": " + e.what());
      }
    });
  }
  for (auto& w : workers) w.join();
  // Report the *origin* failure, not the PeerClosed echoes it caused in the
  // other workers: real failure kinds (crash/transient/timeout) outrank
  // PeerClosed, ties break toward the lower device id.
  int origin = -1;
  for (int d = 0; d < devices; ++d) {
    if (errors[d].empty()) continue;
    if (origin < 0 || (error_kinds[origin] == FailureKind::PeerClosed &&
                       error_kinds[d] != FailureKind::PeerClosed)) {
      origin = d;
    }
  }
  if (origin >= 0) {
    throw StageFailure(error_kinds[origin], origin,
                       "device " + std::to_string(origin) +
                           " failed: " + errors[origin]);
  }
  for (const auto& ch : forward_channels) {
    if (ch.pending() != 0) throw std::logic_error("leaked forward messages");
  }
  for (const auto& ch : backward_channels) {
    if (ch.pending() != 0) throw std::logic_error("leaked backward messages");
  }
  // Every stamp a clean iteration produced must have been consumed by its
  // receiver; a leak means a send was verified against the wrong key.
  if (handoff_guard && ledger.pending() != 0) {
    throw std::logic_error("leaked handoff CRC stamps");
  }

  IterationResult result;
  for (double l : losses) result.loss += l;
  for (int r : retries) result.transient_retries += r;
  return result;
}

}  // namespace autopipe::runtime
