#include "runtime/recovery.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "core/replan.h"
#include "util/backoff.h"
#include "util/logging.h"

namespace autopipe::runtime {

std::vector<model::Tensor> snapshot_grads(
    const model::TransformerModel& model) {
  std::vector<model::Tensor> out;
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (const model::ParamTensor& p : model.block(b).params()) {
      out.push_back(p.grad);
    }
  }
  return out;
}

void restore_grads(model::TransformerModel& model,
                   const std::vector<model::Tensor>& snapshot) {
  std::size_t i = 0;
  for (int b = 0; b < model.num_blocks(); ++b) {
    for (model::ParamTensor& p : model.block(b).params()) {
      if (i >= snapshot.size()) {
        throw std::invalid_argument("gradient snapshot shape mismatch");
      }
      p.grad = snapshot[i++];
    }
  }
  if (i != snapshot.size()) {
    throw std::invalid_argument("gradient snapshot shape mismatch");
  }
}

RecoveryReport run_iteration_with_recovery(
    model::TransformerModel& model, const core::ModelConfig& config,
    std::vector<int> counts, const std::vector<model::Batch>& micro_batches,
    double loss_scale, const RecoveryOptions& options) {
  if (config.num_blocks() != model.num_blocks()) {
    throw std::invalid_argument(
        "recovery: ModelConfig does not describe this model's blocks");
  }
  if (options.max_attempts < 1) {
    throw std::invalid_argument("recovery: need at least one attempt");
  }
  using clock = std::chrono::steady_clock;

  RecoveryReport report;
  // The mutable fault state the attempts consume: crashes remove devices,
  // escalated transients burn out.
  faults::FaultPlan active;
  if (options.run.faults != nullptr) active = *options.run.faults;

  const std::vector<model::Tensor> grads_before = snapshot_grads(model);
  const int initial_devices = static_cast<int>(counts.size());
  bool failed_once = false;
  clock::time_point first_failure{};

  // Retry k charges backoff_base_ms * 2^k -- the same sequence this loop
  // used to compute inline, now drawn from the shared util::Backoff
  // (jitter-free, so the migration changes no delays).
  util::BackoffOptions backoff_opts;
  backoff_opts.base_ms = options.backoff_base_ms;
  util::Backoff backoff(backoff_opts);

  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.devices = static_cast<int>(counts.size());
    RunOptions run = options.run;
    run.faults = active.empty() ? nullptr : &active;
    try {
      PipelineRuntime rt(model, counts);
      const core::Schedule schedule = rt.make_schedule(
          options.kind, static_cast<int>(micro_batches.size()),
          options.sliced);
      report.result =
          rt.run_iteration(schedule, micro_batches, loss_scale, run);
      rec.ok = true;
      report.attempts.push_back(rec);
      report.recovered = failed_once;
      report.degraded = static_cast<int>(counts.size()) < initial_devices;
      report.devices_used = static_cast<int>(counts.size());
      report.final_counts = counts;
      if (failed_once) {
        report.recovery_ms = std::chrono::duration<double, std::milli>(
                                 clock::now() - first_failure)
                                 .count();
      }
      return report;
    } catch (const StageFailure& e) {
      if (!failed_once) {
        failed_once = true;
        first_failure = clock::now();
      }
      rec.kind = e.kind();
      rec.failed_device = e.device();
      rec.what = e.what();
      // Atomicity: drop this attempt's partial gradients before deciding
      // what to do next.
      restore_grads(model, grads_before);
      if (attempt + 1 >= options.max_attempts) {
        report.attempts.push_back(rec);
        throw;
      }
      const double backoff_ms = backoff.next_ms();
      rec.backoff_ms = backoff_ms;
      report.attempts.push_back(rec);
      util::Backoff::sleep_for_ms(backoff_ms);

      if (e.kind() == FailureKind::Transient) {
        // The hiccup cleared: consume the escalated fault and retry on the
        // same partition.
        std::erase_if(active.transients,
                      [&](const faults::TransientOpFault& t) {
                        return t.device == e.device();
                      });
        continue;
      }
      // Permanent loss (crash, or a peer hung past its deadline): shrink
      // the cluster and re-plan the pipeline over the survivors.
      const int devices = static_cast<int>(counts.size());
      const int lost = e.device() >= 0 && e.device() < devices ? e.device()
                                                               : devices - 1;
      core::AutoPipeOptions plan_opts = options.plan;
      plan_opts.num_gpus = devices;
      plan_opts.forced_stages = devices - 1;  // pipeline-only recovery
      const core::ReplanResult replanned =
          core::replan_on_failure(config, plan_opts, lost);
      report.replan_ms += replanned.replan_ms;
      counts = replanned.result.plan.partition.counts;
      active = active.without_device(lost);
      AP_LOG(warn) << "recovery: device " << lost << " lost ("
                   << to_string(e.kind()) << "), degraded to "
                   << counts.size() << " stage(s)";
    }
  }
  // Unreachable: the loop either returns or rethrows on its last attempt.
  throw std::logic_error("recovery loop fell through");
}

}  // namespace autopipe::runtime
