#include "runtime/stage_worker.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>

#include "faults/sdc.h"
#include "guard/guard.h"
#include "runtime/stage_failure.h"
#include "util/backoff.h"

namespace autopipe::runtime {

model::Batch slice_half(const model::Batch& whole, int seq_len, int half) {
  if (half < 0) return whole;
  const int samples = whole.ids.dim(0) / seq_len;
  if (samples < 2) {
    throw std::invalid_argument("cannot slice a single-sample micro-batch");
  }
  const int first_rows = (samples / 2) * seq_len;
  model::Batch out;
  auto [head, tail] = whole.ids.split_rows(first_rows);
  if (half == 0) {
    out.ids = std::move(head);
    out.targets.assign(whole.targets.begin(), whole.targets.begin() + first_rows);
  } else {
    out.ids = std::move(tail);
    out.targets.assign(whole.targets.begin() + first_rows, whole.targets.end());
  }
  return out;
}

namespace {

[[noreturn]] void throw_cancelled(const StageContext& ctx) {
  throw StageFailure(FailureKind::Timeout, ctx.device,
                     "device " + std::to_string(ctx.device) +
                         " cancelled: " + ctx.cancel->reason());
}

/// Fault gate executed before each schedule op: crash, hang, straggler and
/// transient triggers, in escalating order of how much help the worker
/// needs. A transient fault burns `failures` attempts with exponential
/// backoff (util::Backoff); within the retry budget the op then executes
/// normally (the fault was absorbed in place), beyond it the worker
/// escalates to a typed StageFailure so the iteration-level recovery policy
/// takes over. A hang makes no progress at all -- it parks on the
/// iteration's CancelToken (or, lacking one, on the recv deadline) until an
/// external watchdog aborts the iteration.
void check_faults_before_op(const StageContext& ctx, int op_index) {
  if (ctx.cancel != nullptr && ctx.cancel->cancelled()) throw_cancelled(ctx);
  const faults::FaultPlan* plan = ctx.faults;
  if (plan == nullptr || plan->empty()) return;
  if (plan->crashes_before_op(ctx.device, op_index)) {
    throw StageFailure(FailureKind::Crash, ctx.device,
                       "device " + std::to_string(ctx.device) +
                           " crashed before op " + std::to_string(op_index));
  }
  if (plan->hangs_before_op(ctx.device, op_index)) {
    if (ctx.cancel != nullptr) {
      ctx.cancel->wait();
      throw_cancelled(ctx);
    }
    // No token to park on: the hang is bounded by the recv deadline so an
    // unsupervised run still terminates (as its peers' receives do).
    const double bound = ctx.recv_deadline_ms > 0 ? ctx.recv_deadline_ms
                                                  : 30000.0;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(bound));
    throw StageFailure(FailureKind::Timeout, ctx.device,
                       "device " + std::to_string(ctx.device) +
                           " hung before op " + std::to_string(op_index));
  }
  const double slow_ms = plan->slow_delay_ms(ctx.device, op_index);
  if (slow_ms > 0) {
    // A straggler burns real wall-clock time but stays cancellable: the
    // delay is spent parked on the token when one is present.
    if (ctx.cancel != nullptr) {
      if (ctx.cancel->wait_for_ms(slow_ms)) throw_cancelled(ctx);
    } else {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slow_ms));
    }
  }
  if (const faults::TransientOpFault* fault =
          plan->transient_for(ctx.device, op_index)) {
    if (fault->failures > ctx.max_transient_retries) {
      throw StageFailure(
          FailureKind::Transient, ctx.device,
          "device " + std::to_string(ctx.device) + " op " +
              std::to_string(op_index) + " failed " +
              std::to_string(fault->failures) + " times (retry budget " +
              std::to_string(ctx.max_transient_retries) + ")");
    }
    util::BackoffOptions backoff_opts;
    backoff_opts.base_ms = ctx.backoff_base_ms;
    util::Backoff backoff(backoff_opts);
    for (int attempt = 0; attempt < fault->failures; ++attempt) {
      util::Backoff::sleep_for_ms(backoff.next_ms());
      if (ctx.transient_retries) ++*ctx.transient_retries;
    }
  }
}

/// Producer-side guard pass just before a boundary send: stamp the tensor's
/// CRC into the ledger, then let the chaos injector flip a bit. Injection
/// strikes strictly *after* the stamp -- it models corruption in transit,
/// which is exactly what the consumer's verify must catch.
void stamp_outgoing(const StageContext& ctx, bool backward, int boundary,
                    const core::ScheduleOp& op, model::Tensor& x) {
  if (ctx.guard != nullptr && ctx.guard->handoff_crc &&
      ctx.ledger != nullptr) {
    ctx.ledger->stamp(
        guard::handoff_key(backward, boundary, op.micro_batch, op.half),
        guard::tensor_crc(x));
  }
  if (ctx.sdc != nullptr) {
    ctx.sdc->maybe_corrupt(backward ? faults::SdcTarget::Gradient
                                    : faults::SdcTarget::Activation,
                           boundary, op.micro_batch, x);
  }
}

/// Consumer-side guard pass over a tensor just received across `boundary`:
/// verify the producer's stamp, optionally scan for non-finite values. Both
/// passes only read the tensor's bytes.
void verify_received(const StageContext& ctx, bool backward, int boundary,
                     const core::ScheduleOp& op, const model::Tensor& x) {
  if (ctx.guard == nullptr) return;
  const char* what = backward ? "gradient" : "activation";
  if (ctx.guard->handoff_crc && ctx.ledger != nullptr) {
    const std::optional<std::uint32_t> want = ctx.ledger->take(
        guard::handoff_key(backward, boundary, op.micro_batch, op.half));
    const std::uint32_t got = guard::tensor_crc(x);
    if (ctx.guard_counters != nullptr) ++ctx.guard_counters->handoff_checks;
    if (!want.has_value() || *want != got) {
      if (ctx.guard_counters != nullptr) {
        ++ctx.guard_counters->handoff_failures;
      }
      throw StageFailure(
          FailureKind::Corruption, ctx.device,
          std::string(what) + " handoff CRC mismatch at boundary " +
              std::to_string(boundary) + " micro-batch " +
              std::to_string(op.micro_batch) + " (device " +
              std::to_string(ctx.device) + ")");
    }
  }
  if (ctx.guard->nonfinite_checks && !guard::tensor_finite(x)) {
    if (ctx.guard_counters != nullptr) {
      ++ctx.guard_counters->nonfinite_failures;
    }
    throw StageFailure(FailureKind::Corruption, ctx.device,
                       std::string("non-finite ") + what +
                           " received at boundary " +
                           std::to_string(boundary) + " micro-batch " +
                           std::to_string(op.micro_batch));
  }
}

}  // namespace

double run_stage(const StageContext& ctx) {
  if (static_cast<int>(ctx.blocks.size()) != ctx.chunks) {
    throw std::invalid_argument("block ranges do not match chunk count");
  }
  const int global_stages = ctx.num_devices * ctx.chunks;
  double loss = 0;
  if (ctx.health != nullptr) {
    ctx.health->mark(ctx.device, DeviceHealth::Running);
  }
  const auto receive = [&ctx](Channel& ch, const MessageTag& tag) {
    if (ctx.cancel == nullptr) {
      return ctx.recv_deadline_ms > 0 ? ch.recv_for(tag, ctx.recv_deadline_ms)
                                      : ch.recv(tag);
    }
    // Cancellation-aware wait: slice the (possibly unbounded) deadline into
    // short polls and check the token between them, so a watchdog abort
    // frees this worker within one poll even if its peer never sends.
    double remaining = ctx.recv_deadline_ms;
    const double slice_ms = ctx.cancel_poll_ms > 0 ? ctx.cancel_poll_ms : 25;
    while (true) {
      if (ctx.cancel->cancelled()) throw_cancelled(ctx);
      double wait_ms = slice_ms;
      if (ctx.recv_deadline_ms > 0) {
        if (remaining <= 0) {
          throw StageFailure(
              FailureKind::Timeout, ctx.device,
              "channel recv deadline expired (peer hung or dead)");
        }
        wait_ms = std::min(wait_ms, remaining);
        remaining -= wait_ms;
      }
      if (std::optional<model::Tensor> got = ch.recv_opt(tag, wait_ms)) {
        return std::move(*got);
      }
    }
  };
  // Per (micro_batch, half, chunk) stash. Under recompute (activation
  // checkpointing) it holds exactly the per-block inputs; otherwise each
  // block's forward cache.
  struct Stash {
    std::vector<model::Tensor> inputs;                       // recompute
    std::vector<std::unique_ptr<model::Block::Cache>> caches;  // cached
    model::Tensor head_input;  // the last block's input (loss recompute)
  };
  std::map<std::tuple<int, int, int>, Stash> stash;
  // Zero-bubble split: per (micro_batch, half, chunk) deferred weight-half
  // states, one per block, written by BackwardInput and drained by the
  // matching BackwardWeight. This -- not the activation stash, which
  // BackwardInput frees like a fused backward would -- is the extra
  // footprint the memory model's deferred_grad_bytes term prices.
  std::map<std::tuple<int, int, int>,
           std::vector<std::unique_ptr<model::Block::BwState>>>
      bw_stash;

  int op_index = 0;
  for (const core::ScheduleOp& op : ctx.schedule->order[ctx.device]) {
    check_faults_before_op(ctx, op_index);
    ++op_index;
    const int global = ctx.schedule->global_stage(ctx.device, op.chunk);
    const bool first = global == 0;
    const bool last = global == global_stages - 1;
    const BlockRange range = ctx.blocks[op.chunk];
    const MessageTag tag{op.type, op.micro_batch, op.half};

    if (op.type == core::OpType::Forward) {
      model::Tensor x;
      if (first) {
        // Whole micro-batches inject just the ids tensor; only actual
        // halves go through slice_half. (An if/else rather than ?: -- the
        // conditional operator would materialize a temporary copy of
        // mb.ids; this way the tiny id copy below is the single counted
        // copy per micro-batch on the whole hot path.)
        const model::Batch& mb = (*ctx.micro_batches)[op.micro_batch];
        if (op.half < 0) {
          x = mb.ids;
        } else {
          x = slice_half(mb, ctx.seq_len, op.half).ids;  // moves from temp
        }
      } else {
        x = receive((*ctx.forward_channels)[global - 1], tag);
        verify_received(ctx, /*backward=*/false, global - 1, op, x);
      }
      auto& entry = stash[{op.micro_batch, op.half, op.chunk}];
      entry = Stash{};
      // Copy-free stash: the block input is *moved* into the stash slot
      // that backward will read it from, and the forward runs off that
      // slot -- no activation payload is duplicated. The last stage's
      // loss recompute reads the head block's input from inputs.back()
      // under recompute, else from the dedicated head_input slot.
      for (int b = range.first; b < range.first + range.count; ++b) {
        const bool head = last && b == range.first + range.count - 1;
        if (ctx.recompute) {
          entry.inputs.push_back(std::move(x));
          x = ctx.model->block(b).forward(entry.inputs.back());
        } else if (head) {
          entry.head_input = std::move(x);
          model::Tensor y;
          entry.caches.push_back(
              ctx.model->block(b).forward_cached(entry.head_input, &y));
          x = std::move(y);
        } else {
          model::Tensor y;
          entry.caches.push_back(ctx.model->block(b).forward_cached(x, &y));
          x = std::move(y);
        }
      }
      if (!last) {
        stamp_outgoing(ctx, /*backward=*/false, global, op, x);
        (*ctx.forward_channels)[global].send(tag, std::move(x));
      }
      // The last stage discards logits here and recomputes them in the
      // backward op -- even without checkpointing, keeping the huge logits
      // tensor alive through the 1F1B phase would dominate memory.
    } else if (op.type == core::OpType::BackwardWeight) {
      const auto it = bw_stash.find({op.micro_batch, op.half, op.chunk});
      if (it == bw_stash.end()) {
        throw std::logic_error("grad-weight before grad-input for a micro-batch");
      }
      // Blocks retire high -> low, mirroring the fused backward's block
      // order; each block's own accumulation order is backward_weight's
      // bit-identity contract.
      auto& states = it->second;
      for (int b = range.first + range.count - 1; b >= range.first; --b) {
        if (const auto& s = states[b - range.first]) {
          ctx.model->block(b).backward_weight(*s);
        }
      }
      bw_stash.erase(it);
    } else {
      const auto it = stash.find({op.micro_batch, op.half, op.chunk});
      if (it == stash.end()) {
        throw std::logic_error("backward before forward for a micro-batch");
      }
      Stash& entry = it->second;
      model::Tensor dy;
      if (last) {
        // Recompute the logits from the head block's stashed input, then
        // seed the backward pass with the cross-entropy gradient. Targets
        // are a span into the shared micro-batch -- no Batch copy.
        const model::Batch& whole = (*ctx.micro_batches)[op.micro_batch];
        std::span<const int> targets(whole.targets);
        if (op.half >= 0) {
          const int first_rows =
              (whole.ids.dim(0) / ctx.seq_len / 2) * ctx.seq_len;
          targets = op.half == 0 ? targets.first(first_rows)
                                 : targets.subspan(first_rows);
        }
        const int head = range.first + range.count - 1;
        const model::Tensor& head_in =
            ctx.recompute ? entry.inputs.back() : entry.head_input;
        const model::Tensor logits = ctx.model->block(head).forward(head_in);
        loss += model::cross_entropy(logits, targets, ctx.loss_scale, &dy);
      } else {
        dy = receive((*ctx.backward_channels)[global], tag);
        verify_received(ctx, /*backward=*/true, global, op, dy);
      }
      const bool split = op.type == core::OpType::BackwardInput;
      if (split && !ctx.recompute) {
        throw std::invalid_argument(
            "zero-bubble split backward requires recompute (the input half "
            "re-derives intermediates from stashed block inputs)");
      }
      std::vector<std::unique_ptr<model::Block::BwState>> states;
      if (split) states.resize(range.count);
      for (int b = range.first + range.count - 1; b >= range.first; --b) {
        model::Block& block = ctx.model->block(b);
        if (split) {
          dy = block.backward_input(entry.inputs[b - range.first], dy,
                                    &states[b - range.first]);
        } else if (ctx.recompute) {
          dy = block.backward(entry.inputs[b - range.first], dy);
        } else {
          dy = block.backward_cached(*entry.caches[b - range.first], dy);
        }
      }
      if (split) {
        bw_stash[{op.micro_batch, op.half, op.chunk}] = std::move(states);
      }
      if (!first) {
        stamp_outgoing(ctx, /*backward=*/true, global - 1, op, dy);
        (*ctx.backward_channels)[global - 1].send(tag, std::move(dy));
      }
      stash.erase(it);
    }
    if (ctx.health != nullptr) ctx.health->beat(ctx.device, op_index);
  }
  if (!stash.empty()) {
    throw std::logic_error("device finished with unconsumed activations");
  }
  if (!bw_stash.empty()) {
    throw std::logic_error("device finished with deferred weight gradients");
  }
  return loss;
}

}  // namespace autopipe::runtime
