// Per-device execution of a pipeline schedule on real model blocks.
//
// A device owns one block range per model chunk (one chunk for plain
// 1F1B/GPipe/sliced schedules; v chunks under Megatron-LM's interleaved
// schedule, where global model stage g = chunk*devices + device). It
// executes its op list from a core::Schedule: forwards stash block inputs
// (activation checkpointing), backwards recompute-and-accumulate gradients.
// The device holding the last global stage computes the scaled
// cross-entropy loss. Devices only interact through tagged Channels
// indexed by global stage boundary, so the only ordering constraints are
// the schedule's own dependencies -- exactly what a distributed pipeline
// backend (Megatron-LM + NCCL) enforces.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/schedule.h"
#include "faults/fault_plan.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/cancel.h"
#include "runtime/channel.h"
#include "runtime/health.h"

namespace autopipe::faults {
class SdcInjector;
}
namespace autopipe::guard {
struct GuardOptions;
struct GuardCounters;
class HandoffLedger;
}

namespace autopipe::runtime {

struct BlockRange {
  int first = 0;
  int count = 0;
};

struct StageContext {
  int device = 0;
  int num_devices = 1;
  int chunks = 1;
  /// blocks[chunk]: this device's block range for that model chunk.
  std::vector<BlockRange> blocks;
  model::TransformerModel* model = nullptr;
  const core::Schedule* schedule = nullptr;
  /// Per-micro-batch inputs and targets (whole, unsliced).
  const std::vector<model::Batch>* micro_batches = nullptr;
  /// Loss normalization (1 / total mini-batch tokens): makes micro-batch
  /// and half-micro-batch gradients add up to the full-batch gradients.
  double loss_scale = 1.0;
  int seq_len = 0;
  /// forward_channels[g]: activations crossing global boundary g -> g+1;
  /// backward_channels[g]: gradients crossing g+1 -> g. Size = global
  /// stages - 1.
  std::vector<Channel>* forward_channels = nullptr;
  std::vector<Channel>* backward_channels = nullptr;
  /// Activation checkpointing (§II-C): true (the paper's setting) stashes
  /// only block inputs and re-runs forwards inside backward; false keeps
  /// each block's full cache (selective caching where the block supports
  /// it) and trades memory for speed.
  bool recompute = true;
  /// Deterministic fault injection (faults/fault_plan.h): DeviceCrash
  /// entries with after_ops >= 0 kill this device just before that op;
  /// TransientOpFault entries make an op fail a few times first. Null or an
  /// empty plan leaves execution bit-identical to the fault-free path.
  const faults::FaultPlan* faults = nullptr;
  /// Bounded recv: > 0 turns every channel wait into recv_for with this
  /// deadline so a silently hung peer becomes StageFailure(Timeout) instead
  /// of an infinite block; 0 waits forever (still closure-aware).
  double recv_deadline_ms = 0;
  /// In-place retry of transient op faults: attempt k sleeps
  /// backoff_base_ms * 2^k before re-executing; a fault injecting more
  /// failures than max_transient_retries escalates to
  /// StageFailure(Transient).
  double backoff_base_ms = 0.05;
  int max_transient_retries = 3;
  /// Out-param (owned by the runtime): in-place transient retries consumed
  /// by this worker.
  int* transient_retries = nullptr;
  /// Optional heartbeat sink: the worker marks itself Running on entry and
  /// beats after every completed schedule op, so an external watchdog can
  /// tell a wedged device from one waiting out a legitimate pipeline
  /// bubble. Null = no health reporting (zero overhead).
  HealthBoard* health = nullptr;
  /// Optional cooperative cancellation: checked before every op and between
  /// receive poll slices; an injected HangFault parks on this token so the
  /// watchdog can wake it. Cancellation surfaces as StageFailure(Timeout).
  CancelToken* cancel = nullptr;
  /// Receive waits are sliced into polls of this length when `cancel` is
  /// set, bounding how stale a cancellation check can get.
  double cancel_poll_ms = 25;
  /// Integrity guards (guard/guard.h): with handoff_crc the producer stamps
  /// a CRC32 of every boundary tensor into `ledger` and the consumer
  /// verifies it; nonfinite_checks scans received tensors. Both passes are
  /// read-only -- the copy-free handoff stays copy-free. Null = off.
  const guard::GuardOptions* guard = nullptr;
  guard::GuardCounters* guard_counters = nullptr;
  guard::HandoffLedger* ledger = nullptr;
  /// Seeded in-flight bit flips (faults/sdc.h), applied after the CRC stamp
  /// on the producing side. Null = off.
  faults::SdcInjector* sdc = nullptr;
};

/// Runs every op of `ctx.schedule->order[ctx.device]`; returns this
/// device's summed loss contribution (non-zero only where the last global
/// stage lives).
double run_stage(const StageContext& ctx);

/// Slices the whole micro-batch for `half` (-1: whole; 0/1: halves by
/// samples). Returns ids and targets of the slice.
model::Batch slice_half(const model::Batch& whole, int seq_len, int half);

}  // namespace autopipe::runtime
