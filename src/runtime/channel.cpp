#include "runtime/channel.h"

#include <stdexcept>

namespace autopipe::runtime {

namespace {

std::tuple<int, int, int> key_of(const MessageTag& tag) {
  return {static_cast<int>(tag.type), tag.micro_batch, tag.half};
}

}  // namespace

void Channel::send(const MessageTag& tag, model::Tensor payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = box_.emplace(key_of(tag), std::move(payload));
    if (!inserted) {
      throw std::logic_error("channel: duplicate send for one tag");
    }
  }
  arrived_.notify_all();
}

model::Tensor Channel::recv(const MessageTag& tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = key_of(tag);
  arrived_.wait(lock, [&] { return box_.count(key) > 0; });
  auto node = box_.extract(key);
  return std::move(node.mapped());
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return box_.size();
}

}  // namespace autopipe::runtime
