#include "runtime/channel.h"

#include <chrono>
#include <stdexcept>

namespace autopipe::runtime {

namespace {

std::tuple<int, int, int> key_of(const MessageTag& tag) {
  return {static_cast<int>(tag.type), tag.micro_batch, tag.half};
}

}  // namespace

void Channel::throw_closed_locked() const {
  throw StageFailure(FailureKind::PeerClosed, -1,
                     "channel closed: " + close_reason_);
}

void Channel::send(const MessageTag& tag, model::Tensor payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw_closed_locked();
    const auto [it, inserted] = box_.emplace(key_of(tag), std::move(payload));
    if (!inserted) {
      throw std::logic_error("channel: duplicate send for one tag");
    }
  }
  arrived_.notify_all();
}

model::Tensor Channel::take_locked(const MessageTag& tag,
                                   std::unique_lock<std::mutex>& lock) {
  (void)lock;  // caller holds mutex_
  auto node = box_.extract(key_of(tag));
  return std::move(node.mapped());
}

model::Tensor Channel::recv(const MessageTag& tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = key_of(tag);
  arrived_.wait(lock, [&] { return closed_ || box_.count(key) > 0; });
  // A message already in the box still delivers on a closed channel only if
  // closure kept it -- close() drops everything, so closed_ means gone.
  if (box_.count(key) == 0) throw_closed_locked();
  return take_locked(tag, lock);
}

model::Tensor Channel::recv_for(const MessageTag& tag, double timeout_ms) {
  std::optional<model::Tensor> got = recv_opt(tag, timeout_ms);
  if (!got.has_value()) {
    throw StageFailure(FailureKind::Timeout, -1,
                       "channel recv deadline expired (peer hung or dead)");
  }
  return std::move(*got);
}

std::optional<model::Tensor> Channel::recv_opt(const MessageTag& tag,
                                               double timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto key = key_of(tag);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  arrived_.wait_until(lock, deadline,
                      [&] { return closed_ || box_.count(key) > 0; });
  if (box_.count(key) > 0) return take_locked(tag, lock);
  if (closed_) throw_closed_locked();
  return std::nullopt;
}

void Channel::close(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!closed_) {
      closed_ = true;
      close_reason_ = reason;
    }
    box_.clear();  // poisoned: undelivered messages are gone either way
  }
  arrived_.notify_all();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::string Channel::close_reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return close_reason_;
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return box_.size();
}

}  // namespace autopipe::runtime
