// Lock-free per-device health board: heartbeats and progress watermarks.
//
// Every stage worker publishes, through plain atomic stores, (a) how many
// schedule ops it has completed and (b) when it last made progress, plus a
// coarse lifecycle state. The supervisor's watchdog samples the board from
// outside the iteration without taking any lock the workers could be
// holding -- the publish path is wait-free (one relaxed store per op, two
// on state changes), so health reporting can never itself stall a worker,
// and a wedged worker is visible precisely because its slot stops moving.
//
// Timestamps are milliseconds on a steady clock relative to the board's
// epoch (reset()), stored as integer microseconds so the 64-bit slots stay
// plain atomics on every platform the repo targets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace autopipe::runtime {

enum class DeviceHealth : int {
  Idle = 0,     ///< slot allocated, worker not started yet
  Running = 1,  ///< worker executing its op list
  Done = 2,     ///< worker finished its op list normally
  Failed = 3,   ///< worker threw (StageFailure or otherwise)
};

class HealthBoard {
 public:
  explicit HealthBoard(int max_devices);

  /// Re-arms the board for a new iteration attempt over `devices` devices
  /// (<= max_devices): zeroes watermarks, stamps every slot "now", states
  /// to Idle. Not safe concurrently with beats -- call it between attempts.
  void reset(int devices);

  int devices() const { return devices_; }

  /// Worker-side: `ops_done` schedule ops complete on `device`, progress
  /// stamp refreshed. Wait-free.
  void beat(int device, int ops_done);

  /// Worker-side lifecycle transition (also refreshes the progress stamp).
  void mark(int device, DeviceHealth state);

  // Watchdog-side samples. All tolerate concurrent beats.
  int ops_done(int device) const;
  DeviceHealth state(int device) const;
  /// ms on the steady clock since `device` last beat (or since reset()).
  double silent_ms(int device) const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> ops{0};
    std::atomic<std::int64_t> beat_us{0};  ///< since epoch_
    std::atomic<int> state{0};
  };

  std::int64_t now_us() const;

  int max_devices_;
  int devices_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace autopipe::runtime
