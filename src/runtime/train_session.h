// Checkpointing training driver over the thread-per-device runtime.
//
// TrainSession owns the full training loop state -- model, Adam optimizer,
// synthetic data stream, pipeline runtime and schedule -- and checkpoints
// it at iteration boundaries through ckpt::CheckpointWriter (DESIGN.md §7).
// The checkpoint moment is *after* the optimizer step and after the data
// stream advanced, so a resumed session continues with exactly the batch
// the uninterrupted run would have drawn next: for the same partition, a
// run resumed from step k reproduces the uninterrupted run's parameters and
// losses bit-identically (the exact-state acceptance test of
// tests/ckpt_test.cpp and the fault_lab `ckpt` verb).
//
// Checkpoint writes that fail with a StorageError are absorbed: the failure
// is counted and training continues -- losing a checkpoint must never lose
// the run. Restores go through the ckpt reader's newest-valid-wins scan.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/schedule.h"
#include "costmodel/memory.h"
#include "guard/guard.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"

namespace autopipe::runtime {

struct TrainSessionOptions {
  model::TinySpec spec;
  std::vector<int> counts;  ///< blocks per stage (one chunk per device)
  costmodel::ScheduleKind kind = costmodel::ScheduleKind::OneFOneB;
  int sliced = 0;           ///< sliced micro-batches for AutoPipeSliced
  int micro_batch = 4;      ///< samples per micro-batch
  int num_micro_batches = 6;
  double lr = 0.01;
  std::uint64_t data_seed = 7;

  /// Checkpointing; disabled while `ckpt_dir` is empty or interval <= 0.
  std::string ckpt_dir;
  int ckpt_interval = 0;  ///< write every k-th iteration
  int ckpt_keep = 2;
  /// Storage backend for checkpoints (fault injection, in-memory tests);
  /// nullptr = a process-local PosixStorage.
  ckpt::Storage* storage = nullptr;

  /// Per-iteration runtime knobs (fault injection, health board, cancel
  /// token, recv deadlines). The pointer fields are re-read every step(),
  /// so a supervisor can re-arm fault plans and tokens between attempts via
  /// run_options().
  RunOptions run;

  /// SDC guards (guard/guard.h). All-off (the default) trains bitwise
  /// identically to a guard-free build; any detection surfaces as
  /// StageFailure(FailureKind::Corruption). Independent of the guards, a
  /// non-finite loss always fails the step with the same typed failure.
  guard::GuardOptions guard;
};

class TrainSession {
 public:
  /// Fresh run from the spec's deterministic initialisation.
  explicit TrainSession(const TrainSessionOptions& options);
  /// Resumed run: adopts a restored TrainState (parameters, optimizer,
  /// data stream, step counter). `options.counts` decides the partition the
  /// resumed run executes on -- pass `state.counts` for a bit-identical
  /// same-shape resume or a re-planned partition for elastic resume; the
  /// per-block state is independent of stage boundaries either way.
  TrainSession(const TrainSessionOptions& options,
               const ckpt::TrainState& state);

  /// One training iteration: draw the next mini-batch, run the pipeline,
  /// apply Adam, maybe checkpoint. Returns the iteration's loss.
  ///
  /// Atomic on failure: if the pipeline throws (StageFailure or otherwise),
  /// the data stream is rewound to its pre-step state and the step counter
  /// is untouched before the exception propagates, so a supervisor can
  /// retry the *same* logical iteration in place -- the retried step draws
  /// the identical batch, and since gradients are re-zeroed on entry the
  /// half-accumulated gradients of the failed attempt cannot leak into it.
  ///
  /// Guard checks run in the same atomic envelope: a weight-sentinel
  /// mismatch fails before the batch is drawn; a non-finite loss or a norm
  /// trip fails after the pipeline but *before* the optimizer mutates
  /// anything, with the stream rewound -- so every Corruption failure
  /// leaves the session retryable in place.
  double step();

  int iteration() const { return step_; }
  const std::vector<double>& losses() const { return losses_; }
  int checkpoints_written() const { return checkpoints_written_; }
  int checkpoint_failures() const { return checkpoint_failures_; }
  const std::string& last_checkpoint_error() const {
    return last_checkpoint_error_;
  }
  const std::vector<int>& counts() const { return options_.counts; }
  model::TransformerModel& model() { return model_; }
  const model::TransformerModel& model() const { return model_; }
  /// Mutable per-iteration runtime knobs -- the supervisor points
  /// `run.health` / `run.cancel` / `run.faults` at fresh objects between
  /// attempts. Takes effect on the next step().
  RunOptions& run_options() { return options_.run; }
  const core::Schedule& schedule() const { return schedule_; }
  int num_devices() const { return runtime_->num_devices(); }
  /// Detection bookkeeping across all guards (cumulative for this session).
  const guard::GuardCounters& guard_counters() const {
    return guard_counters_;
  }
  /// The optimizer, exposed so chaos harnesses can corrupt moment state
  /// between steps (the weight guard's job to catch).
  Adam& optimizer() { return adam_; }

  /// The session's state as of the last completed iteration -- exactly what
  /// a checkpoint written now would contain.
  ckpt::TrainState capture() const;

 private:
  void init_runtime();
  void maybe_checkpoint();
  /// Recomputes the weight-state sentinel from the live (params, moments).
  void refresh_weight_sentinel();

  TrainSessionOptions options_;
  model::TransformerModel model_;
  model::SyntheticCorpus corpus_;
  Adam adam_;
  std::unique_ptr<PipelineRuntime> runtime_;
  core::Schedule schedule_;
  double loss_scale_ = 0;
  int step_ = 0;
  std::vector<double> losses_;
  ckpt::PosixStorage posix_;
  std::unique_ptr<ckpt::CheckpointWriter> writer_;
  int checkpoints_written_ = 0;
  int checkpoint_failures_ = 0;
  std::string last_checkpoint_error_;
  guard::GuardCounters guard_counters_;
  guard::NormGuard norm_guard_;
  /// CRC32 over (params, Adam moments) as of the last clean mutation; only
  /// maintained when the weight guard is on.
  std::uint32_t weight_sentinel_ = 0;
  bool weight_sentinel_valid_ = false;
};

}  // namespace autopipe::runtime
