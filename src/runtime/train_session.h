// Checkpointing training driver over the thread-per-device runtime.
//
// TrainSession owns the full training loop state -- model, Adam optimizer,
// synthetic data stream, pipeline runtime and schedule -- and checkpoints
// it at iteration boundaries through ckpt::CheckpointWriter (DESIGN.md §7).
// The checkpoint moment is *after* the optimizer step and after the data
// stream advanced, so a resumed session continues with exactly the batch
// the uninterrupted run would have drawn next: for the same partition, a
// run resumed from step k reproduces the uninterrupted run's parameters and
// losses bit-identically (the exact-state acceptance test of
// tests/ckpt_test.cpp and the fault_lab `ckpt` verb).
//
// Checkpoint writes that fail with a StorageError are absorbed: the failure
// is counted and training continues -- losing a checkpoint must never lose
// the run. Restores go through the ckpt reader's newest-valid-wins scan.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/schedule.h"
#include "costmodel/memory.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"

namespace autopipe::runtime {

struct TrainSessionOptions {
  model::TinySpec spec;
  std::vector<int> counts;  ///< blocks per stage (one chunk per device)
  costmodel::ScheduleKind kind = costmodel::ScheduleKind::OneFOneB;
  int sliced = 0;           ///< sliced micro-batches for AutoPipeSliced
  int micro_batch = 4;      ///< samples per micro-batch
  int num_micro_batches = 6;
  double lr = 0.01;
  std::uint64_t data_seed = 7;

  /// Checkpointing; disabled while `ckpt_dir` is empty or interval <= 0.
  std::string ckpt_dir;
  int ckpt_interval = 0;  ///< write every k-th iteration
  int ckpt_keep = 2;
  /// Storage backend for checkpoints (fault injection, in-memory tests);
  /// nullptr = a process-local PosixStorage.
  ckpt::Storage* storage = nullptr;
};

class TrainSession {
 public:
  /// Fresh run from the spec's deterministic initialisation.
  explicit TrainSession(const TrainSessionOptions& options);
  /// Resumed run: adopts a restored TrainState (parameters, optimizer,
  /// data stream, step counter). `options.counts` decides the partition the
  /// resumed run executes on -- pass `state.counts` for a bit-identical
  /// same-shape resume or a re-planned partition for elastic resume; the
  /// per-block state is independent of stage boundaries either way.
  TrainSession(const TrainSessionOptions& options,
               const ckpt::TrainState& state);

  /// One training iteration: draw the next mini-batch, run the pipeline,
  /// apply Adam, maybe checkpoint. Returns the iteration's loss.
  double step();

  int iteration() const { return step_; }
  const std::vector<double>& losses() const { return losses_; }
  int checkpoints_written() const { return checkpoints_written_; }
  int checkpoint_failures() const { return checkpoint_failures_; }
  const std::string& last_checkpoint_error() const {
    return last_checkpoint_error_;
  }
  const std::vector<int>& counts() const { return options_.counts; }
  model::TransformerModel& model() { return model_; }
  const model::TransformerModel& model() const { return model_; }

  /// The session's state as of the last completed iteration -- exactly what
  /// a checkpoint written now would contain.
  ckpt::TrainState capture() const;

 private:
  void init_runtime();
  void maybe_checkpoint();

  TrainSessionOptions options_;
  model::TransformerModel model_;
  model::SyntheticCorpus corpus_;
  Adam adam_;
  std::unique_ptr<PipelineRuntime> runtime_;
  core::Schedule schedule_;
  double loss_scale_ = 0;
  int step_ = 0;
  std::vector<double> losses_;
  ckpt::PosixStorage posix_;
  std::unique_ptr<ckpt::CheckpointWriter> writer_;
  int checkpoints_written_ = 0;
  int checkpoint_failures_ = 0;
  std::string last_checkpoint_error_;
};

}  // namespace autopipe::runtime
