// Optimizers for the training runtime: SGD and Adam (the paper's optimizer,
// §II-A). State is held per parameter tensor inside the optimizer, so the
// same model can be stepped by different optimizers in different tests.
#pragma once

#include <vector>

#include "model/transformer.h"

namespace autopipe::runtime {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies accumulated gradients to the model's parameters and clears
  /// nothing -- callers zero gradients when starting the next iteration.
  virtual void step(model::TransformerModel& model) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void step(model::TransformerModel& model) override;

 private:
  double lr_;
};

/// Adam's full mutable state, exposed so checkpoints can persist and
/// restore the optimizer bit-exactly (ckpt/checkpoint.h). m/v are empty
/// until the first step.
struct AdamState {
  long t = 0;
  std::vector<std::vector<float>> m, v;  ///< per parameter tensor, flat order
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(model::TransformerModel& model) override;

  AdamState state() const { return {t_, m_, v_}; }
  /// Copy-free views for integrity checks (guard::weight_crc) that hash the
  /// moments in place every step and must not clone them.
  long t() const { return t_; }
  const std::vector<std::vector<float>>& m() const { return m_; }
  const std::vector<std::vector<float>>& v() const { return v_; }
  /// Adopts a checkpointed state; set_state(state()) is an exact no-op.
  void set_state(AdamState s) {
    t_ = s.t;
    m_ = std::move(s.m);
    v_ = std::move(s.v);
  }

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  /// First/second moment per parameter tensor, lazily sized on first step.
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace autopipe::runtime
