// Cooperative cancellation for one pipeline iteration.
//
// A CancelToken is the single abort lever an external observer (the
// supervisor's watchdog, or the runtime's own failure cascade) pulls to get
// every worker of an in-flight iteration out of whatever it is blocked on:
// the stage workers poll it between bounded channel waits, and an injected
// hard hang (faults::HangFault) parks on the token's condition variable, so
// cancellation wakes even a worker that would otherwise never wake -- the
// model of an aborted collective (ncclCommAbort) in the thread runtime.
//
// The token is one-shot and idempotent: the first cancel() wins and its
// reason sticks; later calls are no-ops. The token must outlive the
// iteration it governs (the supervisor owns one per attempt); the runtime
// never stores it beyond the run_iteration call it was passed to.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>

namespace autopipe::runtime {

class CancelToken {
 public:
  /// Cancels with `reason` and wakes every wait(). Idempotent: only the
  /// first reason is kept.
  void cancel(const std::string& reason) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cancelled_) return;
      cancelled_ = true;
      reason_ = reason;
    }
    cv_.notify_all();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reason_;
  }

  /// Blocks until cancelled.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return cancelled_; });
  }

  /// Blocks until cancelled or `timeout_ms` elapsed; true iff cancelled.
  bool wait_for_ms(double timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock,
                        std::chrono::duration<double, std::milli>(timeout_ms),
                        [this] { return cancelled_; });
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool cancelled_ = false;
  std::string reason_;
};

}  // namespace autopipe::runtime
