#include "ckpt/storage.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

namespace autopipe::ckpt {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path,
                       const std::string& detail) {
  throw StorageError(op + " " + path + ": " + detail);
}

void fsync_or_throw(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) fail("fsync-open", path, std::strerror(errno));
  const bool ok = ::fsync(fd) == 0;
  const int err = errno;
  ::close(fd);
  if (!ok) fail("fsync", path, std::strerror(err));
}

}  // namespace

// ------------------------------------------------------------ PosixStorage

void PosixStorage::create_dirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) fail("mkdir", path, ec.message());
}

void PosixStorage::write_file(const std::string& path, std::string_view bytes) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) fail("open", path, "cannot open for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) fail("write", path, "short write");
  }
  fsync_or_throw(path, O_WRONLY);
}

void PosixStorage::rename_file(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    fail("rename", from + " -> " + to, std::strerror(errno));
  }
  // Make the rename durable: fsync the containing directory (best-effort;
  // some filesystems reject directory fsync but order metadata anyway).
  const auto slash = to.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? "/" : to.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string PosixStorage::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("open", path, "cannot open for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) fail("read", path, "read error");
  return buffer.str();
}

bool PosixStorage::exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

std::vector<std::string> PosixStorage::list_dir(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    out.push_back(entry.path().filename().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PosixStorage::remove_file(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

void PosixStorage::remove_dir(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

// -------------------------------------------------------------- MemStorage

std::vector<std::pair<std::string, std::string>>::iterator MemStorage::find(
    const std::string& path) {
  return std::find_if(files_.begin(), files_.end(),
                      [&](const auto& f) { return f.first == path; });
}

void MemStorage::create_dirs(const std::string& path) {
  // Record the directory and every ancestor.
  std::string p = path;
  while (!p.empty() && p != "/" && p != ".") {
    const auto it = std::lower_bound(dirs_.begin(), dirs_.end(), p);
    if (it == dirs_.end() || *it != p) dirs_.insert(it, p);
    const auto slash = p.find_last_of('/');
    if (slash == std::string::npos || slash == 0) break;
    p = p.substr(0, slash);
  }
}

void MemStorage::write_file(const std::string& path, std::string_view bytes) {
  const auto it = find(path);
  if (it != files_.end()) {
    it->second.assign(bytes);
    return;
  }
  const auto pos = std::lower_bound(
      files_.begin(), files_.end(), path,
      [](const auto& f, const std::string& p) { return f.first < p; });
  files_.insert(pos, {path, std::string(bytes)});
}

void MemStorage::rename_file(const std::string& from, const std::string& to) {
  const auto it = find(from);
  if (it == files_.end()) fail("rename", from, "no such file");
  std::string bytes = std::move(it->second);
  files_.erase(it);
  write_file(to, bytes);
}

std::string MemStorage::read_file(const std::string& path) {
  const auto it = find(path);
  if (it == files_.end()) fail("open", path, "no such file");
  return it->second;
}

bool MemStorage::exists(const std::string& path) {
  if (find(path) != files_.end()) return true;
  return std::binary_search(dirs_.begin(), dirs_.end(), path);
}

std::vector<std::string> MemStorage::list_dir(const std::string& dir) {
  std::vector<std::string> out;
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  auto note = [&](const std::string& path) {
    if (path.rfind(prefix, 0) != 0) return;
    const std::string rest = path.substr(prefix.size());
    if (rest.empty()) return;
    const auto slash = rest.find('/');
    const std::string name =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  };
  for (const auto& f : files_) note(f.first);
  for (const auto& d : dirs_) note(d);
  std::sort(out.begin(), out.end());
  return out;
}

void MemStorage::remove_file(const std::string& path) {
  const auto it = find(path);
  if (it != files_.end()) files_.erase(it);
}

void MemStorage::remove_dir(const std::string& path) {
  const auto it = std::lower_bound(dirs_.begin(), dirs_.end(), path);
  if (it != dirs_.end() && *it == path) dirs_.erase(it);
}

bool MemStorage::has_file(const std::string& path) const {
  return std::any_of(files_.begin(), files_.end(),
                     [&](const auto& f) { return f.first == path; });
}

std::string& MemStorage::bytes(const std::string& path) {
  const auto it = find(path);
  if (it == files_.end()) fail("bytes", path, "no such file");
  return it->second;
}

// ------------------------------------------------------------ atomic_write

void atomic_write(Storage& storage, const std::string& path,
                  std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  storage.write_file(tmp, bytes);  // durable but tearable
  storage.rename_file(tmp, path);  // the commit point
}

}  // namespace autopipe::ckpt
