#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/partition.h"
#include "guard/guard.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace autopipe::ckpt {

namespace {

constexpr char kRecordMagic[4] = {'A', 'P', 'C', 'R'};
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "# autopipe-checkpoint v1";
constexpr const char* kVerifiedName = "VERIFIED";
constexpr const char* kVerifiedHeader = "# autopipe-verified v1";

// ------------------------------------------------- binary (de)serialization

struct ByteWriter {
  std::string out;

  void raw(const void* data, std::size_t size) {
    out.append(static_cast<const char*>(data), size);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void floats(const std::vector<float>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
};

/// Throws CkptError(Corrupt) on any overrun -- a record whose CRC passes
/// but whose structure is inconsistent is still corruption, never UB.
struct ByteReader {
  std::string_view in;
  std::size_t pos = 0;

  void raw(void* data, std::size_t size) {
    if (pos + size > in.size()) {
      throw CkptError(CkptErrorKind::Corrupt,
                      "record payload truncated mid-field");
    }
    std::memcpy(data, in.data() + pos, size);
    pos += size;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (pos + n > in.size()) {
      throw CkptError(CkptErrorKind::Corrupt, "record string truncated");
    }
    std::string s(in.substr(pos, n));
    pos += n;
    return s;
  }
  std::vector<float> floats() {
    const std::uint64_t n = u64();
    if (pos + n * sizeof(float) > in.size()) {
      throw CkptError(CkptErrorKind::Corrupt, "record float array truncated");
    }
    std::vector<float> v(n);
    raw(v.data(), n * sizeof(float));
    return v;
  }
  void done() const {
    if (pos != in.size()) {
      throw CkptError(CkptErrorKind::Corrupt,
                      "record payload has trailing bytes");
    }
  }
};

std::string serialize_stage(const TrainState& state, int first_block,
                            int num_blocks) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(first_block));
  w.u32(static_cast<std::uint32_t>(num_blocks));
  for (int b = first_block; b < first_block + num_blocks; ++b) {
    const BlockState& block = state.blocks[static_cast<std::size_t>(b)];
    w.str(block.kind);
    w.u32(static_cast<std::uint32_t>(block.params.size()));
    for (const ParamState& p : block.params) {
      w.str(p.name);
      w.floats(p.value);
      const bool has_adam = !p.adam_m.empty();
      w.u8(has_adam ? 1 : 0);
      if (has_adam) {
        w.floats(p.adam_m);
        w.floats(p.adam_v);
      }
    }
  }
  return w.out;
}

/// Parses one stage payload into state.blocks[first..first+n). Expects the
/// destination slots to exist already (sized from the manifest's counts).
void deserialize_stage(std::string_view payload, TrainState& state,
                       int expect_first, int expect_blocks) {
  ByteReader r{payload};
  const int first = static_cast<int>(r.u32());
  const int blocks = static_cast<int>(r.u32());
  if (first != expect_first || blocks != expect_blocks) {
    throw CkptError(CkptErrorKind::Corrupt,
                    "record block range disagrees with manifest counts");
  }
  for (int b = first; b < first + blocks; ++b) {
    BlockState& block = state.blocks[static_cast<std::size_t>(b)];
    block.kind = r.str();
    const std::uint32_t nparams = r.u32();
    block.params.resize(nparams);
    for (ParamState& p : block.params) {
      p.name = r.str();
      p.value = r.floats();
      if (r.u8() != 0) {
        p.adam_m = r.floats();
        p.adam_v = r.floats();
        if (p.adam_m.size() != p.value.size() ||
            p.adam_v.size() != p.value.size()) {
          throw CkptError(CkptErrorKind::Corrupt,
                          "optimizer moments disagree with parameter shape");
        }
      }
    }
  }
  r.done();
}

// ----------------------------------------------------------- record frames

std::string frame_record(std::string_view payload) {
  ByteWriter w;
  w.raw(kRecordMagic, 4);
  w.u32(static_cast<std::uint32_t>(kCheckpointVersion));
  w.u64(payload.size());
  w.raw(payload.data(), payload.size());
  w.u32(util::crc32(payload));
  return w.out;
}

/// Validates the frame and returns the payload view. Throws CkptError with
/// the precise defect (torn tail, flipped bit, wrong version...).
std::string_view unframe_record(std::string_view bytes) {
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (bytes.size() < kHeader + 4) {
    throw CkptError(CkptErrorKind::Corrupt, "record shorter than its frame");
  }
  if (std::memcmp(bytes.data(), kRecordMagic, 4) != 0) {
    throw CkptError(CkptErrorKind::Corrupt, "record magic mismatch");
  }
  std::uint32_t version;
  std::uint64_t payload_size;
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&payload_size, bytes.data() + 8, 8);
  if (version != static_cast<std::uint32_t>(kCheckpointVersion)) {
    throw CkptError(CkptErrorKind::Version,
                    "record format v" + std::to_string(version) +
                        " (expected v" + std::to_string(kCheckpointVersion) +
                        ")");
  }
  if (bytes.size() != kHeader + payload_size + 4) {
    throw CkptError(CkptErrorKind::Corrupt, "record length mismatch (torn?)");
  }
  const std::string_view payload = bytes.substr(kHeader, payload_size);
  std::uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + kHeader + payload_size, 4);
  if (stored_crc != util::crc32(payload)) {
    throw CkptError(CkptErrorKind::Corrupt, "record CRC mismatch");
  }
  return payload;
}

std::string record_name(int stage) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "stage-%03d.rec", stage);
  return buf;
}

std::uint64_t parse_u64_hex(const std::string& s) {
  std::uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else throw CkptError(CkptErrorKind::Corrupt, "bad hex field '" + s + "'");
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  return v;
}

std::string u64_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xFu];
    v >>= 4;
  }
  return out;
}

}  // namespace

const char* to_string(CkptErrorKind kind) {
  switch (kind) {
    case CkptErrorKind::NotFound: return "NotFound";
    case CkptErrorKind::Corrupt:  return "Corrupt";
    case CkptErrorKind::Version:  return "Version";
    case CkptErrorKind::Mismatch: return "Mismatch";
  }
  return "?";
}

std::string step_dir_name(int step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "step-%08d", step);
  return buf;
}

// ------------------------------------------------------------ capture/apply

TrainState capture_train_state(const model::TransformerModel& model,
                               const runtime::AdamState& adam,
                               const util::Rng::State& data_rng, int step,
                               const std::vector<int>& counts,
                               int schedule_kind) {
  TrainState state;
  state.step = step;
  state.adam_t = adam.t;
  state.data_rng = data_rng;
  state.counts = counts;
  state.schedule_kind = schedule_kind;
  state.scheme_fingerprint = core::scheme_hash(counts);

  const bool has_adam = adam.t > 0;
  std::size_t slot = 0;
  for (int b = 0; b < model.num_blocks(); ++b) {
    BlockState block;
    block.kind = model.block(b).kind();
    for (const model::ParamTensor& p : model.block(b).params()) {
      ParamState ps;
      ps.name = p.name;
      ps.value.assign(p.value.data(), p.value.data() + p.value.numel());
      if (has_adam) {
        if (slot >= adam.m.size() || adam.m[slot].size() != ps.value.size()) {
          throw CkptError(CkptErrorKind::Mismatch,
                          "optimizer state does not cover parameter '" +
                              p.name + "'");
        }
        ps.adam_m = adam.m[slot];
        ps.adam_v = adam.v[slot];
      }
      ++slot;
      block.params.push_back(std::move(ps));
    }
    state.blocks.push_back(std::move(block));
  }
  return state;
}

runtime::AdamState apply_train_state(const TrainState& state,
                                     model::TransformerModel& model) {
  if (static_cast<int>(state.blocks.size()) != model.num_blocks()) {
    throw CkptError(CkptErrorKind::Mismatch,
                    "checkpoint holds " + std::to_string(state.blocks.size()) +
                        " block(s), model has " +
                        std::to_string(model.num_blocks()));
  }
  runtime::AdamState adam;
  adam.t = state.adam_t;
  for (int b = 0; b < model.num_blocks(); ++b) {
    const BlockState& cs = state.blocks[static_cast<std::size_t>(b)];
    model::Block& block = model.block(b);
    if (cs.kind != block.kind()) {
      throw CkptError(CkptErrorKind::Mismatch,
                      "block " + std::to_string(b) + " is " + block.kind() +
                          ", checkpoint says " + cs.kind);
    }
    if (cs.params.size() != block.params().size()) {
      throw CkptError(CkptErrorKind::Mismatch,
                      "block " + std::to_string(b) + " parameter count");
    }
    for (std::size_t i = 0; i < cs.params.size(); ++i) {
      const ParamState& ps = cs.params[i];
      model::ParamTensor& p = block.params()[i];
      if (ps.name != p.name || ps.value.size() != p.value.numel()) {
        throw CkptError(CkptErrorKind::Mismatch,
                        "parameter '" + p.name + "' shape/name mismatch");
      }
      std::copy(ps.value.begin(), ps.value.end(), p.value.data());
      p.grad.fill_(0.0f);
      if (adam.t > 0) {
        if (ps.adam_m.size() != ps.value.size()) {
          throw CkptError(CkptErrorKind::Mismatch,
                          "parameter '" + p.name + "' missing Adam moments");
        }
        adam.m.push_back(ps.adam_m);
        adam.v.push_back(ps.adam_v);
      }
    }
  }
  return adam;
}

// ------------------------------------------------------------------ writer

CheckpointWriter::CheckpointWriter(Storage& storage, std::string dir,
                                   WriterOptions options)
    : storage_(storage), dir_(std::move(dir)), options_(options) {
  if (options_.keep_last < 1) {
    throw std::invalid_argument("CheckpointWriter: keep_last must be >= 1");
  }
}

std::string CheckpointWriter::write(const TrainState& state,
                                    const std::uint32_t* verified_weights) {
  const int stages = static_cast<int>(state.counts.size());
  int total = 0;
  for (int c : state.counts) total += c;
  if (stages < 1 || total != static_cast<int>(state.blocks.size())) {
    throw std::invalid_argument(
        "CheckpointWriter: counts do not cover the block array");
  }

  const std::string step_dir = dir_ + "/" + step_dir_name(state.step);
  storage_.create_dirs(step_dir);

  // Phase 1: per-stage records to their final names. Durable but not yet
  // visible -- nothing consults a step directory without a manifest.
  std::ostringstream manifest;
  manifest << kManifestHeader << "\n";
  manifest << "step " << state.step << "\n";
  manifest << "schedule_kind " << state.schedule_kind << "\n";
  manifest << "adam_t " << state.adam_t << "\n";
  manifest << "rng";
  for (std::uint64_t w : state.data_rng) manifest << " " << w;
  manifest << "\n";
  manifest << "counts";
  for (int c : state.counts) manifest << " " << c;
  manifest << "\n";
  manifest << "scheme " << u64_hex(state.scheme_fingerprint) << "\n";

  int first = 0;
  for (int s = 0; s < stages; ++s) {
    const std::string payload = serialize_stage(state, first, state.counts[s]);
    const std::string framed = frame_record(payload);
    storage_.write_file(step_dir + "/" + record_name(s), framed);
    manifest << "record " << record_name(s) << " bytes=" << framed.size()
             << " crc32=" << util::crc32_hex(util::crc32(payload)) << "\n";
    first += state.counts[s];
  }

  // Phase 2: the manifest commits last, atomically. Its own CRC covers
  // every preceding manifest byte, so a torn or flipped manifest can never
  // validate.
  std::string body = manifest.str();
  body += "crc " + util::crc32_hex(util::crc32(body)) + "\n";
  atomic_write(storage_, step_dir + "/" + kManifestName, body);

  // Phase 3 (optional): the verified-clean stamp, after the commit point so
  // a stamp can never outlive or predate the checkpoint it vouches for. The
  // stamp records the guard's weight-state checksum and is cross-checked
  // against the restored state, so a stamp cannot be transplanted onto a
  // different (e.g. silently corrupted) checkpoint.
  if (verified_weights != nullptr) {
    std::string stamp = std::string(kVerifiedHeader) + "\n";
    stamp += "weights " + util::crc32_hex(*verified_weights) + "\n";
    stamp += "crc " + util::crc32_hex(util::crc32(stamp)) + "\n";
    atomic_write(storage_, step_dir + "/" + kVerifiedName, stamp);
  }

  prune();
  return step_dir;
}

void CheckpointWriter::prune() {
  // Best-effort retention: never let pruning failures poison a commit that
  // already succeeded.
  try {
    CheckpointReader reader(storage_, dir_);
    std::vector<int> steps = reader.committed_steps();  // descending
    for (std::size_t i = static_cast<std::size_t>(options_.keep_last);
         i < steps.size(); ++i) {
      const std::string victim = dir_ + "/" + step_dir_name(steps[i]);
      // Manifest first: the checkpoint stops being a restore candidate
      // before its records disappear.
      storage_.remove_file(victim + "/" + kManifestName);
      for (const std::string& name : storage_.list_dir(victim)) {
        storage_.remove_file(victim + "/" + name);
      }
      storage_.remove_dir(victim);
    }
  } catch (const StorageError& e) {
    AP_LOG(warn) << "checkpoint retention: " << e.what();
  }
}

// ------------------------------------------------------------------ reader

CheckpointReader::CheckpointReader(Storage& storage, std::string dir)
    : storage_(storage), dir_(std::move(dir)) {}

namespace {

/// step-XXXXXXXX -> step number, or -1 when the name does not match.
int parse_step_dir(const std::string& name) {
  if (name.rfind("step-", 0) != 0 || name.size() != 13) return -1;
  int step = 0;
  for (std::size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    step = step * 10 + (name[i] - '0');
  }
  return step;
}

struct ManifestEntry {
  std::string name;
  std::size_t bytes = 0;
  std::uint32_t crc = 0;
};

struct Manifest {
  TrainState meta;  ///< blocks left empty; sized by the caller
  std::vector<ManifestEntry> records;
};

Manifest parse_manifest(const std::string& text) {
  // Verify the whole-file CRC first: the trailer must be EXACTLY the last
  // 13 bytes, "crc " + 8 hex digits + newline. An exact-suffix match keeps
  // every byte of the file inside detection coverage -- the trailer's own
  // bytes are pinned by the fixed shape, everything before it by the CRC.
  constexpr std::size_t kTrailer = 4 + 8 + 1;
  if (text.size() < kTrailer) {
    throw CkptError(CkptErrorKind::Corrupt, "manifest missing crc trailer");
  }
  const std::size_t crc_pos = text.size() - kTrailer;
  if (text.compare(crc_pos, 4, "crc ") != 0 || text.back() != '\n' ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    throw CkptError(CkptErrorKind::Corrupt, "manifest missing crc trailer");
  }
  const std::string crc_hex = text.substr(crc_pos + 4, 8);
  if (static_cast<std::uint32_t>(parse_u64_hex(crc_hex)) !=
      util::crc32(std::string_view(text).substr(0, crc_pos))) {
    throw CkptError(CkptErrorKind::Corrupt, "manifest CRC mismatch");
  }

  Manifest m;
  std::istringstream in(text.substr(0, crc_pos));
  std::string line;
  bool saw_header = false, saw_step = false, saw_counts = false,
       saw_scheme = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == kManifestHeader) saw_header = true;
      continue;
    }
    std::istringstream tokens(line);
    std::string directive;
    tokens >> directive;
    if (directive == "step") {
      tokens >> m.meta.step;
      saw_step = true;
    } else if (directive == "schedule_kind") {
      tokens >> m.meta.schedule_kind;
    } else if (directive == "adam_t") {
      tokens >> m.meta.adam_t;
    } else if (directive == "rng") {
      for (auto& w : m.meta.data_rng) tokens >> w;
    } else if (directive == "counts") {
      int c;
      while (tokens >> c) m.meta.counts.push_back(c);
      saw_counts = true;
    } else if (directive == "scheme") {
      std::string hex;
      tokens >> hex;
      m.meta.scheme_fingerprint = parse_u64_hex(hex);
      saw_scheme = true;
    } else if (directive == "record") {
      ManifestEntry e;
      std::string bytes_kv, crc_kv;
      tokens >> e.name >> bytes_kv >> crc_kv;
      if (bytes_kv.rfind("bytes=", 0) != 0 || crc_kv.rfind("crc32=", 0) != 0) {
        throw CkptError(CkptErrorKind::Corrupt, "malformed record line");
      }
      const std::string digits = bytes_kv.substr(6);
      if (digits.empty()) {
        throw CkptError(CkptErrorKind::Corrupt, "malformed record line");
      }
      for (char c : digits) {
        if (c < '0' || c > '9') {
          throw CkptError(CkptErrorKind::Corrupt, "malformed record line");
        }
        e.bytes = e.bytes * 10 + static_cast<std::size_t>(c - '0');
      }
      e.crc = static_cast<std::uint32_t>(parse_u64_hex(crc_kv.substr(6)));
      m.records.push_back(std::move(e));
    } else {
      throw CkptError(CkptErrorKind::Corrupt,
                      "unknown manifest directive '" + directive + "'");
    }
    if (tokens.fail() && directive != "counts") {
      throw CkptError(CkptErrorKind::Corrupt,
                      "malformed manifest line '" + line + "'");
    }
  }
  if (!saw_header) {
    throw CkptError(CkptErrorKind::Version, "manifest header missing");
  }
  if (!saw_step || !saw_counts || !saw_scheme ||
      m.records.size() != m.meta.counts.size()) {
    throw CkptError(CkptErrorKind::Corrupt, "manifest incomplete");
  }
  return m;
}

TrainState validate_candidate(Storage& storage, const std::string& step_dir,
                              int expected_step) {
  std::string manifest_text;
  try {
    manifest_text = storage.read_file(step_dir + "/" + kManifestName);
  } catch (const StorageError& e) {
    throw CkptError(CkptErrorKind::Corrupt,
                    std::string("manifest unreadable: ") + e.what());
  }
  Manifest manifest = parse_manifest(manifest_text);
  TrainState state = std::move(manifest.meta);
  if (state.step != expected_step) {
    throw CkptError(CkptErrorKind::Corrupt,
                    "manifest step disagrees with directory name");
  }
  // The counts line is covered by the manifest CRC; the scheme fingerprint
  // cross-checks it against what the writer saw.
  if (state.scheme_fingerprint != core::scheme_hash(state.counts)) {
    throw CkptError(CkptErrorKind::Corrupt,
                    "partition fingerprint does not match counts");
  }
  int total = 0;
  for (int c : state.counts) {
    if (c < 1) {
      throw CkptError(CkptErrorKind::Corrupt, "non-positive stage count");
    }
    total += c;
  }
  state.blocks.assign(static_cast<std::size_t>(total), BlockState{});

  int first = 0;
  for (std::size_t s = 0; s < manifest.records.size(); ++s) {
    const ManifestEntry& entry = manifest.records[s];
    std::string bytes;
    try {
      bytes = storage.read_file(step_dir + "/" + entry.name);
    } catch (const StorageError& e) {
      throw CkptError(CkptErrorKind::Corrupt,
                      entry.name + " unreadable: " + e.what());
    }
    if (bytes.size() != entry.bytes) {
      throw CkptError(CkptErrorKind::Corrupt,
                      entry.name + " length disagrees with manifest (torn?)");
    }
    const std::string_view payload = unframe_record(bytes);
    if (util::crc32(payload) != entry.crc) {
      throw CkptError(CkptErrorKind::Corrupt,
                      entry.name + " CRC disagrees with manifest");
    }
    deserialize_stage(payload, state, first,
                      state.counts[s]);
    first += state.counts[s];
  }
  return state;
}

/// True when `step_dir` carries a well-formed VERIFIED stamp whose recorded
/// weight checksum matches the state actually restored from the records.
/// Any defect (missing, unreadable, torn, flipped, transplanted) simply
/// reads as "not verified" -- the stamp is an attestation, never a gate on
/// ordinary restores.
bool verified_stamp_ok(Storage& storage, const std::string& step_dir,
                       const TrainState& state) {
  const std::string path = step_dir + "/" + kVerifiedName;
  std::string text;
  try {
    if (!storage.exists(path)) return false;
    text = storage.read_file(path);
  } catch (const StorageError&) {
    return false;
  }
  // Same exact-suffix trailer rule as the manifest: "crc <8 hex>\n" must
  // be the literal last 13 bytes, so no stamp byte escapes detection.
  constexpr std::size_t kTrailer = 4 + 8 + 1;
  if (text.size() < kTrailer) return false;
  const std::size_t crc_pos = text.size() - kTrailer;
  if (text.compare(crc_pos, 4, "crc ") != 0 || text.back() != '\n' ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return false;
  }
  const std::string crc_hex = text.substr(crc_pos + 4, 8);
  try {
    if (static_cast<std::uint32_t>(parse_u64_hex(crc_hex)) !=
        util::crc32(std::string_view(text).substr(0, crc_pos))) {
      return false;
    }
    std::istringstream in(text.substr(0, crc_pos));
    std::string line;
    bool saw_header = false;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line[0] == '#') {
        if (line == kVerifiedHeader) saw_header = true;
        continue;
      }
      std::istringstream tokens(line);
      std::string directive, hex;
      tokens >> directive >> hex;
      if (directive != "weights" || hex.size() != 8) return false;
      return saw_header &&
             static_cast<std::uint32_t>(parse_u64_hex(hex)) ==
                 guard::weight_state_crc(state);
    }
  } catch (const CkptError&) {
    return false;  // bad hex in a flipped stamp
  }
  return false;
}

}  // namespace

std::vector<int> CheckpointReader::committed_steps() {
  std::vector<int> steps;
  for (const std::string& name : storage_.list_dir(dir_)) {
    const int step = parse_step_dir(name);
    if (step < 0) continue;
    if (storage_.exists(dir_ + "/" + name + "/" + kManifestName)) {
      steps.push_back(step);
    }
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

RestoreResult CheckpointReader::restore(const RestoreOptions& options) {
  RestoreResult result;
  const std::vector<int> steps = committed_steps();
  if (steps.empty()) {
    throw CkptError(CkptErrorKind::NotFound,
                    "no committed checkpoint under " + dir_);
  }
  bool all_version = true;
  for (int step : steps) {
    CandidateReport report;
    report.step = step;
    report.dir = dir_ + "/" + step_dir_name(step);
    try {
      result.state = validate_candidate(storage_, report.dir, step);
      report.verified = verified_stamp_ok(storage_, report.dir, result.state);
      if (options.require_verified && !report.verified) {
        // Structurally valid, but nothing attests the *content* is clean --
        // exactly the candidate the corruption rung must not trust.
        report.reason =
            "not stamped verified-clean (VERIFIED missing or mismatched)";
        all_version = false;
        result.candidates.push_back(std::move(report));
        continue;
      }
      report.valid = true;
      result.candidates.push_back(report);
      result.dir = report.dir;
      return result;
    } catch (const CkptError& e) {
      report.reason = std::string(to_string(e.kind())) + ": " + e.what();
      if (e.kind() != CkptErrorKind::Version) all_version = false;
      result.candidates.push_back(std::move(report));
      AP_LOG(warn) << "checkpoint " << step_dir_name(step)
                   << " rejected: " << e.what();
    }
  }
  std::string summary =
      std::string(options.require_verified ? "no verified-clean checkpoint under "
                                           : "no valid checkpoint under ") +
      dir_ + " (";
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    if (i) summary += "; ";
    summary += step_dir_name(result.candidates[i].step) + ": " +
               result.candidates[i].reason;
  }
  summary += ")";
  throw CkptError(all_version ? CkptErrorKind::Version
                              : CkptErrorKind::Corrupt,
                  summary);
}

}  // namespace autopipe::ckpt
