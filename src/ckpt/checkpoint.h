// Versioned, checksummed, crash-consistent training checkpoints
// (DESIGN.md §7).
//
// A checkpoint captures everything needed to continue training as if the
// process had never died: per-block parameters, Adam moments, the data
// stream's RNG state, the schedule position (iteration number) and the
// active partition/schedule fingerprint. On disk a checkpoint is one
// directory per committed step:
//
//   <dir>/step-00000012/stage-000.rec     framed binary record per stage
//   <dir>/step-00000012/...
//   <dir>/step-00000012/MANIFEST          commits the checkpoint, written
//                                         last via temp+fsync+atomic-rename
//
// Each record frames its payload with a magic, a format version, the
// payload length and a trailing CRC32; the manifest lists every record with
// its size and CRC and carries its own whole-file CRC. The MANIFEST rename
// is the commit point: a crash (or injected storage fault) at any earlier
// moment leaves at most an uncommitted step directory, which the reader
// treats as if it did not exist. Restore scans candidates newest-first and
// returns the first one that fully validates -- torn, flipped or truncated
// state is *never* loaded; when nothing validates, a typed CkptError is
// raised instead.
//
// Records store raw IEEE-754 float32 and little-endian integers (the only
// platforms this repo targets), so a same-partition restore is bit-exact.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/storage.h"
#include "model/transformer.h"
#include "runtime/optimizer.h"
#include "util/rng.h"

namespace autopipe::ckpt {

/// Bumped on any incompatible change to the record framing, the payload
/// layout or the manifest schema; older checkpoints are then rejected as
/// CkptErrorKind::Version instead of being misread.
inline constexpr int kCheckpointVersion = 1;

enum class CkptErrorKind {
  NotFound,  ///< no committed checkpoint exists at all
  Corrupt,   ///< candidates exist but none validates
  Version,   ///< only incompatible-format candidates found
  Mismatch,  ///< valid checkpoint, wrong model/cluster for this restore
};

const char* to_string(CkptErrorKind kind);

class CkptError : public std::runtime_error {
 public:
  CkptError(CkptErrorKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  CkptErrorKind kind() const { return kind_; }

 private:
  CkptErrorKind kind_;
};

/// One parameter tensor's checkpointed state. adam_m/adam_v are empty until
/// the optimizer has taken its first step (all-or-nothing across the whole
/// checkpoint).
struct ParamState {
  std::string name;
  std::vector<float> value;
  std::vector<float> adam_m;
  std::vector<float> adam_v;

  bool operator==(const ParamState&) const = default;
};

struct BlockState {
  std::string kind;  ///< Block::kind(), validated on apply
  std::vector<ParamState> params;

  bool operator==(const BlockState&) const = default;
};

/// Everything a resumed run needs, in block order (stage boundaries are
/// metadata, not structure -- which is what makes elastic resume a pure
/// re-grouping of the same per-block records).
struct TrainState {
  int step = 0;       ///< completed iterations (schedule position)
  long adam_t = 0;    ///< optimizer step counter
  util::Rng::State data_rng{};   ///< sampling stream, mid-sequence
  std::vector<int> counts;       ///< partition at save time (blocks/stage)
  int schedule_kind = 0;         ///< costmodel::ScheduleKind as int
  /// core::scheme_hash(counts) at save time; cross-checked on restore so a
  /// manifest whose counts line was tampered with cannot validate.
  std::uint64_t scheme_fingerprint = 0;
  std::vector<BlockState> blocks;

  bool operator==(const TrainState&) const = default;
};

/// Snapshot of (model, optimizer, data stream, schedule position) at an
/// iteration boundary. `adam` may be a default AdamState when training
/// has not stepped yet.
TrainState capture_train_state(const model::TransformerModel& model,
                               const runtime::AdamState& adam,
                               const util::Rng::State& data_rng, int step,
                               const std::vector<int>& counts,
                               int schedule_kind);

/// Writes `state` back into a freshly-constructed model of the same
/// architecture and returns the optimizer state to adopt. Gradients are
/// zeroed. Throws CkptError(Mismatch) when block kinds, parameter names or
/// shapes disagree with the model.
runtime::AdamState apply_train_state(const TrainState& state,
                                     model::TransformerModel& model);

struct WriterOptions {
  /// Committed checkpoints retained after each successful write (>= 1);
  /// older step directories are pruned best-effort.
  int keep_last = 2;
};

class CheckpointWriter {
 public:
  CheckpointWriter(Storage& storage, std::string dir,
                   WriterOptions options = {});

  /// Commits `state` as checkpoint step `state.step` under the protocol
  /// described above and returns the step directory. Throws StorageError
  /// when an I/O fault (real or injected) interrupts the protocol -- in
  /// that case no new checkpoint became visible and every previously
  /// committed checkpoint is intact; training can simply continue.
  ///
  /// When `verified_weights` is non-null it is the caller's live
  /// weight-state checksum (guard::weight_crc), asserted clean by the
  /// weight guard; the writer then stamps the checkpoint "verified-clean"
  /// with a VERIFIED file written *after* the manifest commit. A crash
  /// between the two leaves a valid-but-unverified checkpoint, which is
  /// safe: restore(require_verified) simply skips it.
  std::string write(const TrainState& state,
                    const std::uint32_t* verified_weights = nullptr);

 private:
  void prune();

  Storage& storage_;
  std::string dir_;
  WriterOptions options_;
};

/// Per-candidate verdict from a restore scan, newest first.
struct CandidateReport {
  int step = 0;
  std::string dir;
  bool valid = false;
  /// Candidate carries a VERIFIED stamp whose checksum matches the restored
  /// weight state (only meaningful when the records themselves validate).
  bool verified = false;
  std::string reason;  ///< why the candidate was rejected (when !valid)
};

struct RestoreResult {
  TrainState state;
  std::string dir;  ///< the winning step directory
  /// Every candidate examined (the winner last, since the scan stops there).
  std::vector<CandidateReport> candidates;
};

struct RestoreOptions {
  /// Accept only candidates stamped verified-clean by the weight guard --
  /// the supervisor's corruption rung, where "newest valid" is not enough
  /// because a silently corrupted state checkpoints as perfectly valid.
  bool require_verified = false;
};

class CheckpointReader {
 public:
  CheckpointReader(Storage& storage, std::string dir);

  /// Newest checkpoint that fully validates (manifest committed, every
  /// record present with matching length and CRC, fingerprint consistent).
  /// Throws CkptError(NotFound) when no committed candidate exists,
  /// CkptError(Version) when only incompatible versions exist, and
  /// CkptError(Corrupt) when candidates exist but none validates (or,
  /// under require_verified, none is stamped verified-clean).
  RestoreResult restore(const RestoreOptions& options = {});

  /// Steps with a committed (present, not necessarily valid) manifest,
  /// descending.
  std::vector<int> committed_steps();

 private:
  Storage& storage_;
  std::string dir_;
};

/// "step-00000012" -- the on-disk spelling of a step directory name.
std::string step_dir_name(int step);

}  // namespace autopipe::ckpt
