// Storage abstraction under the checkpoint subsystem (DESIGN.md §7).
//
// CheckpointWriter/Reader never touch the filesystem directly; they speak
// this narrow primitive interface so that
//   * PosixStorage gives real durable checkpoints (fsync'd files, atomic
//     rename) in production and the examples,
//   * MemStorage gives hermetic, fast unit tests, and
//   * faults::FaultyStorage (faults/storage_faults.h) wraps either one to
//     inject torn writes, bit flips, short reads and rename failures
//     deterministically -- every crash-consistency claim is testable.
//
// All paths are '/'-separated strings. Primitive failures throw
// StorageError; the checkpoint layer translates what it can into typed
// ckpt::CkptError and otherwise lets the caller decide (a failed checkpoint
// write must never kill training).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace autopipe::ckpt {

/// I/O failure at the primitive layer: real (errno) or injected by the
/// storage-fault plan. The failed operation had no effect beyond what the
/// message describes (a torn write names the bytes that did land).
class StorageError : public std::runtime_error {
 public:
  explicit StorageError(const std::string& what) : std::runtime_error(what) {}
};

class Storage {
 public:
  virtual ~Storage() = default;

  /// mkdir -p. Idempotent.
  virtual void create_dirs(const std::string& path) = 0;
  /// Creates/truncates `path` with `bytes` and makes it durable (fsync on
  /// the POSIX backend). NOT atomic -- a crash mid-call can leave a torn
  /// file, which is exactly why the writer only targets temp names here.
  virtual void write_file(const std::string& path, std::string_view bytes) = 0;
  /// Atomic replace (POSIX rename semantics): after return, `to` is the new
  /// file; on a crash before return, `to` is untouched.
  virtual void rename_file(const std::string& from, const std::string& to) = 0;
  /// Whole-file read; throws StorageError when absent/unreadable.
  virtual std::string read_file(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// Immediate children (names, not paths) of a directory, sorted
  /// ascending; empty when the directory does not exist.
  virtual std::vector<std::string> list_dir(const std::string& dir) = 0;
  /// Best-effort removals for retention pruning; missing targets are fine.
  virtual void remove_file(const std::string& path) = 0;
  virtual void remove_dir(const std::string& path) = 0;
};

/// Real filesystem backend: std::filesystem + fsync.
class PosixStorage final : public Storage {
 public:
  void create_dirs(const std::string& path) override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void remove_file(const std::string& path) override;
  void remove_dir(const std::string& path) override;
};

/// Hermetic in-memory backend for tests: a flat map of path -> bytes plus a
/// directory set. Deterministic listing order (sorted).
class MemStorage final : public Storage {
 public:
  void create_dirs(const std::string& path) override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void remove_file(const std::string& path) override;
  void remove_dir(const std::string& path) override;

  /// Test hooks: direct access for corrupting / inspecting stored bytes.
  bool has_file(const std::string& path) const;
  std::string& bytes(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::string>>::iterator find(
      const std::string& path);
  std::vector<std::pair<std::string, std::string>> files_;  ///< sorted by path
  std::vector<std::string> dirs_;                           ///< sorted
};

/// The write-to-temp -> fsync -> atomic-rename protocol over any backend:
/// after return, `path` holds `bytes` durably; on a StorageError (real or
/// injected), `path` is untouched (at worst `<path>.tmp` holds a torn copy,
/// which readers never consult).
void atomic_write(Storage& storage, const std::string& path,
                  std::string_view bytes);

}  // namespace autopipe::ckpt
