#include "model/blocks.h"

#include <cmath>
#include <stdexcept>

namespace autopipe::model {

void Block::zero_grads() {
  for (auto& p : params_) p.grad.fill_(0.0f);
}

std::size_t Block::param_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.value.numel();
  return n;
}

std::unique_ptr<Block::Cache> Block::forward_cached(const Tensor& x,
                                                    Tensor* y) const {
  auto cache = std::make_unique<InputCache>();
  cache->x = x;
  if (y) *y = forward(x);
  return cache;
}

Tensor Block::backward_cached(const Cache& cache, const Tensor& dy) {
  const auto& input = dynamic_cast<const InputCache&>(cache);
  return backward(input.x, dy);
}

Tensor Block::backward_input(const Tensor& x, const Tensor& dy,
                             std::unique_ptr<BwState>* state) {
  // Fused fallback: accumulate parameter gradients now; nothing deferred.
  if (state) state->reset();
  return backward(x, dy);
}

void Block::backward_weight(const BwState&) {}

std::size_t Block::cache_bytes(const Tensor& x) const {
  return x.numel() * sizeof(float);
}

ParamTensor& Block::add_param(std::string name, Tensor value) {
  ParamTensor p;
  p.name = std::move(name);
  p.grad = Tensor(value.shape());
  p.value = std::move(value);
  params_.push_back(std::move(p));
  return params_.back();
}

namespace {

/// Copies rows [r0, r1) of a [rows, d] tensor.
Tensor take_rows(const Tensor& x, int r0, int r1) {
  const int d = x.dim(1);
  Tensor out({r1 - r0, d});
  std::copy(x.data() + static_cast<std::size_t>(r0) * d,
            x.data() + static_cast<std::size_t>(r1) * d, out.data());
  return out;
}

void put_rows(Tensor* dst, const Tensor& src, int r0) {
  const int d = dst->dim(1);
  std::copy(src.data(), src.data() + src.numel(),
            dst->data() + static_cast<std::size_t>(r0) * d);
}

/// Copies columns [c0, c1) of a [rows, d] tensor.
Tensor take_cols(const Tensor& x, int c0, int c1) {
  const int rows = x.dim(0), d = x.dim(1);
  Tensor out({rows, c1 - c0});
  for (int i = 0; i < rows; ++i) {
    std::copy(x.data() + i * d + c0, x.data() + i * d + c1,
              out.data() + static_cast<std::size_t>(i) * (c1 - c0));
  }
  return out;
}

void add_cols(Tensor* dst, const Tensor& src, int c0) {
  const int rows = dst->dim(0), d = dst->dim(1), w = src.dim(1);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < w; ++j) {
      dst->data()[i * d + c0 + j] += src.data()[i * w + j];
    }
  }
}

/// [s, s] transpose.
Tensor transpose(const Tensor& x) {
  Tensor out({x.dim(1), x.dim(0)});
  for (int i = 0; i < x.dim(0); ++i) {
    for (int j = 0; j < x.dim(1); ++j) {
      out.data()[j * x.dim(0) + i] = x.data()[i * x.dim(1) + j];
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- Embedding

EmbeddingBlock::EmbeddingBlock(int vocab, int hidden, int seq_len,
                               util::Rng& rng)
    : vocab_(vocab), hidden_(hidden), seq_len_(seq_len) {
  const float scale = 0.02f;
  add_param("tok_embed", Tensor::randn({vocab, hidden}, rng, scale));
  add_param("pos_embed", Tensor::randn({seq_len, hidden}, rng, scale));
}

std::vector<int> EmbeddingBlock::decode_ids(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != 1) {
    throw std::invalid_argument("embedding expects [tokens, 1] id tensor");
  }
  std::vector<int> ids(x.dim(0));
  for (int i = 0; i < x.dim(0); ++i) {
    ids[i] = static_cast<int>(std::lround(x.at(i)));
    if (ids[i] < 0 || ids[i] >= vocab_) {
      throw std::invalid_argument("token id out of range");
    }
  }
  return ids;
}

Tensor EmbeddingBlock::forward(const Tensor& x) const {
  const std::vector<int> ids = decode_ids(x);
  Tensor y = embedding_lookup(params_[0].value, ids);
  for (int i = 0; i < y.dim(0); ++i) {
    const int pos = i % seq_len_;
    for (int j = 0; j < hidden_; ++j) {
      y.data()[i * hidden_ + j] += params_[1].value.at(pos * hidden_ + j);
    }
  }
  return y;
}

Tensor EmbeddingBlock::backward(const Tensor& x, const Tensor& dy) {
  const std::vector<int> ids = decode_ids(x);
  embedding_backward(ids, dy, &params_[0].grad);
  for (int i = 0; i < dy.dim(0); ++i) {
    const int pos = i % seq_len_;
    for (int j = 0; j < hidden_; ++j) {
      params_[1].grad.data()[pos * hidden_ + j] += dy.at(i * hidden_ + j);
    }
  }
  // Ids have no gradient; return a zero tensor of the input shape so the
  // runtime's message plumbing stays uniform.
  return Tensor(x.shape());
}

// The embedding's entire backward is weight work (ids carry no gradient),
// so the input half only stashes state and returns the uniform zero dx.
struct EmbeddingBlock::EmbedBwState : Block::BwState {
  std::vector<int> ids;
  Tensor dy;
};

Tensor EmbeddingBlock::backward_input(const Tensor& x, const Tensor& dy,
                                      std::unique_ptr<BwState>* state) {
  auto s = std::make_unique<EmbedBwState>();
  s->ids = decode_ids(x);
  s->dy = dy;
  if (state) *state = std::move(s);
  return Tensor(x.shape());
}

void EmbeddingBlock::backward_weight(const BwState& state) {
  const auto& s = dynamic_cast<const EmbedBwState&>(state);
  embedding_backward(s.ids, s.dy, &params_[0].grad);
  for (int i = 0; i < s.dy.dim(0); ++i) {
    const int pos = i % seq_len_;
    for (int j = 0; j < hidden_; ++j) {
      params_[1].grad.data()[pos * hidden_ + j] += s.dy.at(i * hidden_ + j);
    }
  }
}

// ---------------------------------------------------------------- Attention

ResidualAttentionBlock::ResidualAttentionBlock(int hidden, int heads,
                                               int seq_len, bool causal,
                                               util::Rng& rng)
    : hidden_(hidden), heads_(heads), seq_len_(seq_len), causal_(causal) {
  if (hidden % heads != 0) {
    throw std::invalid_argument("hidden must be divisible by heads");
  }
  const float scale = 0.02f;
  add_param("ln_gamma", Tensor::full({hidden}, 1.0f));
  add_param("ln_beta", Tensor({hidden}));
  add_param("w_qkv", Tensor::randn({hidden, 3 * hidden}, rng, scale));
  add_param("b_qkv", Tensor({3 * hidden}));
  add_param("w_out", Tensor::randn({hidden, hidden}, rng, scale));
  add_param("b_out", Tensor({hidden}));
}

Tensor ResidualAttentionBlock::forward(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != hidden_ || x.dim(0) % seq_len_ != 0) {
    throw std::invalid_argument("attention: bad input shape");
  }
  const int batch = x.dim(0) / seq_len_;
  const int hd = hidden_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  const Tensor qkv = linear(normed, params_[2].value, params_[3].value);

  // The loop below assigns every element of y as residual + projection, so
  // start from uninitialized storage instead of a counted copy of x.
  Tensor y = Tensor::uninitialized(x.shape());
  for (int b = 0; b < batch; ++b) {
    const Tensor qkv_b = take_rows(qkv, b * seq_len_, (b + 1) * seq_len_);
    Tensor ctx({seq_len_, hidden_});
    for (int h = 0; h < heads_; ++h) {
      const Tensor q = take_cols(qkv_b, h * hd, (h + 1) * hd);
      const Tensor k = take_cols(qkv_b, hidden_ + h * hd, hidden_ + (h + 1) * hd);
      const Tensor v =
          take_cols(qkv_b, 2 * hidden_ + h * hd, 2 * hidden_ + (h + 1) * hd);
      Tensor scores = matmul(q, transpose(k));
      scores.scale_(inv_sqrt);
      if (causal_) {
        for (int i = 0; i < seq_len_; ++i) {
          for (int j = i + 1; j < seq_len_; ++j) {
            scores.data()[i * seq_len_ + j] = -1e9f;
          }
        }
      }
      const Tensor probs = softmax_rows(scores);
      add_cols(&ctx, matmul(probs, v), h * hd);
    }
    const Tensor out = linear(ctx, params_[4].value, params_[5].value);
    for (int i = 0; i < seq_len_; ++i) {
      for (int j = 0; j < hidden_; ++j) {
        const std::size_t row = (b * seq_len_ + i) * hidden_ + j;
        y.data()[row] = x.at(row) + out.at(i * hidden_ + j);
      }
    }
  }
  return y;
}

Tensor ResidualAttentionBlock::backward(const Tensor& x, const Tensor& dy) {
  const int batch = x.dim(0) / seq_len_;
  const int hd = hidden_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));

  // Recompute forward intermediates (activation checkpointing).
  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  const Tensor qkv = linear(normed, params_[2].value, params_[3].value);

  Tensor dqkv({x.dim(0), 3 * hidden_});
  for (int b = 0; b < batch; ++b) {
    const Tensor qkv_b = take_rows(qkv, b * seq_len_, (b + 1) * seq_len_);
    const Tensor dy_b = take_rows(dy, b * seq_len_, (b + 1) * seq_len_);

    // Recompute per-head probs and ctx for this sample.
    Tensor ctx({seq_len_, hidden_});
    std::vector<Tensor> probs_h(heads_);
    for (int h = 0; h < heads_; ++h) {
      const Tensor q = take_cols(qkv_b, h * hd, (h + 1) * hd);
      const Tensor k = take_cols(qkv_b, hidden_ + h * hd, hidden_ + (h + 1) * hd);
      const Tensor v =
          take_cols(qkv_b, 2 * hidden_ + h * hd, 2 * hidden_ + (h + 1) * hd);
      Tensor scores = matmul(q, transpose(k));
      scores.scale_(inv_sqrt);
      if (causal_) {
        for (int i = 0; i < seq_len_; ++i) {
          for (int j = i + 1; j < seq_len_; ++j) {
            scores.data()[i * seq_len_ + j] = -1e9f;
          }
        }
      }
      probs_h[h] = softmax_rows(scores);
      add_cols(&ctx, matmul(probs_h[h], v), h * hd);
    }

    // Output projection.
    LinearGrads og = linear_backward(ctx, params_[4].value, dy_b);
    params_[4].grad.add_(og.dw);
    params_[5].grad.add_(og.dbias);

    // Heads.
    Tensor dqkv_b({seq_len_, 3 * hidden_});
    for (int h = 0; h < heads_; ++h) {
      const Tensor q = take_cols(qkv_b, h * hd, (h + 1) * hd);
      const Tensor k = take_cols(qkv_b, hidden_ + h * hd, hidden_ + (h + 1) * hd);
      const Tensor v =
          take_cols(qkv_b, 2 * hidden_ + h * hd, 2 * hidden_ + (h + 1) * hd);
      const Tensor dctx_h = take_cols(og.dx, h * hd, (h + 1) * hd);
      const Tensor dprobs = matmul(dctx_h, transpose(v));
      const Tensor dv = matmul(transpose(probs_h[h]), dctx_h);
      Tensor dscores = softmax_backward(probs_h[h], dprobs);
      dscores.scale_(inv_sqrt);
      const Tensor dq = matmul(dscores, k);
      const Tensor dk = matmul(transpose(dscores), q);
      add_cols(&dqkv_b, dq, h * hd);
      add_cols(&dqkv_b, dk, hidden_ + h * hd);
      add_cols(&dqkv_b, dv, 2 * hidden_ + h * hd);
    }
    put_rows(&dqkv, dqkv_b, b * seq_len_);
  }

  LinearGrads qg = linear_backward(normed, params_[2].value, dqkv);
  params_[2].grad.add_(qg.dw);
  params_[3].grad.add_(qg.dbias);

  LayerNormGrads lg = layernorm_backward(ln_cache, params_[0].value, qg.dx);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
  // Residual path: reuse lg.dx's storage instead of copying dy (addition
  // commutes, so dy + lg.dx and lg.dx + dy are the same bits).
  Tensor dx = std::move(lg.dx);
  dx.add_(dy);
  return dx;
}

// Weight-half state: the recomputed activations feeding each parameter
// gradient (ctx for w_out/b_out, normed for w_qkv/b_qkv, the layer-norm
// cache for gamma/beta) plus the gradients flowing into them.
struct ResidualAttentionBlock::AttnBwState : Block::BwState {
  Tensor ctx;     ///< [tokens, hidden], all samples
  Tensor dy;
  Tensor dqkv;
  Tensor normed;
  Tensor qg_dx;   ///< d(qkv linear input) == layer-norm output grad
  LayerNormCache ln;
};

Tensor ResidualAttentionBlock::backward_input(const Tensor& x,
                                              const Tensor& dy,
                                              std::unique_ptr<BwState>* state) {
  const int batch = x.dim(0) / seq_len_;
  const int hd = hidden_ / heads_;
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
  auto s = std::make_unique<AttnBwState>();

  // Recompute forward intermediates, exactly as the fused backward does.
  s->normed = layernorm(x, params_[0].value, params_[1].value, &s->ln);
  const Tensor qkv = linear(s->normed, params_[2].value, params_[3].value);

  s->ctx = Tensor({x.dim(0), hidden_});
  s->dqkv = Tensor({x.dim(0), 3 * hidden_});
  for (int b = 0; b < batch; ++b) {
    const Tensor qkv_b = take_rows(qkv, b * seq_len_, (b + 1) * seq_len_);
    const Tensor dy_b = take_rows(dy, b * seq_len_, (b + 1) * seq_len_);

    Tensor ctx({seq_len_, hidden_});
    std::vector<Tensor> probs_h(heads_);
    for (int h = 0; h < heads_; ++h) {
      const Tensor q = take_cols(qkv_b, h * hd, (h + 1) * hd);
      const Tensor k = take_cols(qkv_b, hidden_ + h * hd, hidden_ + (h + 1) * hd);
      const Tensor v =
          take_cols(qkv_b, 2 * hidden_ + h * hd, 2 * hidden_ + (h + 1) * hd);
      Tensor scores = matmul(q, transpose(k));
      scores.scale_(inv_sqrt);
      if (causal_) {
        for (int i = 0; i < seq_len_; ++i) {
          for (int j = i + 1; j < seq_len_; ++j) {
            scores.data()[i * seq_len_ + j] = -1e9f;
          }
        }
      }
      probs_h[h] = softmax_rows(scores);
      add_cols(&ctx, matmul(probs_h[h], v), h * hd);
    }

    // Output projection, input half only; ctx is stashed for the W op.
    const Tensor dctx = linear_backward_input(params_[4].value, dy_b);
    put_rows(&s->ctx, ctx, b * seq_len_);

    Tensor dqkv_b({seq_len_, 3 * hidden_});
    for (int h = 0; h < heads_; ++h) {
      const Tensor q = take_cols(qkv_b, h * hd, (h + 1) * hd);
      const Tensor k = take_cols(qkv_b, hidden_ + h * hd, hidden_ + (h + 1) * hd);
      const Tensor v =
          take_cols(qkv_b, 2 * hidden_ + h * hd, 2 * hidden_ + (h + 1) * hd);
      const Tensor dctx_h = take_cols(dctx, h * hd, (h + 1) * hd);
      const Tensor dprobs = matmul(dctx_h, transpose(v));
      const Tensor dv = matmul(transpose(probs_h[h]), dctx_h);
      Tensor dscores = softmax_backward(probs_h[h], dprobs);
      dscores.scale_(inv_sqrt);
      const Tensor dq = matmul(dscores, k);
      const Tensor dk = matmul(transpose(dscores), q);
      add_cols(&dqkv_b, dq, h * hd);
      add_cols(&dqkv_b, dk, hidden_ + h * hd);
      add_cols(&dqkv_b, dv, 2 * hidden_ + h * hd);
    }
    put_rows(&s->dqkv, dqkv_b, b * seq_len_);
  }

  s->qg_dx = linear_backward_input(params_[2].value, s->dqkv);
  Tensor dx = layernorm_backward_input(s->ln, params_[0].value, s->qg_dx);
  dx.add_(dy);
  s->dy = dy;
  if (state) *state = std::move(s);
  return dx;
}

void ResidualAttentionBlock::backward_weight(const BwState& state) {
  const auto& s = dynamic_cast<const AttnBwState&>(state);
  const int batch = s.dy.dim(0) / seq_len_;
  // Accumulation order mirrors the fused backward exactly: per-sample
  // w_out/b_out in ascending b, then w_qkv/b_qkv, then gamma/beta.
  for (int b = 0; b < batch; ++b) {
    const Tensor ctx_b = take_rows(s.ctx, b * seq_len_, (b + 1) * seq_len_);
    const Tensor dy_b = take_rows(s.dy, b * seq_len_, (b + 1) * seq_len_);
    const LinearWeightGrads og = linear_backward_weight(ctx_b, dy_b);
    params_[4].grad.add_(og.dw);
    params_[5].grad.add_(og.dbias);
  }
  const LinearWeightGrads qg = linear_backward_weight(s.normed, s.dqkv);
  params_[2].grad.add_(qg.dw);
  params_[3].grad.add_(qg.dbias);
  const LayerNormWeightGrads lg = layernorm_backward_weight(s.ln, s.qg_dx);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
}

// ---------------------------------------------------------------------- FFN

ResidualFFNBlock::ResidualFFNBlock(int hidden, util::Rng& rng)
    : hidden_(hidden) {
  const float scale = 0.02f;
  add_param("ln_gamma", Tensor::full({hidden}, 1.0f));
  add_param("ln_beta", Tensor({hidden}));
  add_param("w_fc1", Tensor::randn({hidden, 4 * hidden}, rng, scale));
  add_param("b_fc1", Tensor({4 * hidden}));
  add_param("w_fc2", Tensor::randn({4 * hidden, hidden}, rng, scale));
  add_param("b_fc2", Tensor({hidden}));
}

Tensor ResidualFFNBlock::forward(const Tensor& x) const {
  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  const Tensor pre = linear(normed, params_[2].value, params_[3].value);
  const Tensor act = gelu(pre);
  // Accumulate the residual into the projection's storage (commutative, so
  // same bits as x + out) rather than copying x.
  Tensor y = linear(act, params_[4].value, params_[5].value);
  y.add_(x);
  return y;
}

Tensor ResidualFFNBlock::backward(const Tensor& x, const Tensor& dy) {
  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  const Tensor pre = linear(normed, params_[2].value, params_[3].value);
  const Tensor act = gelu(pre);

  LinearGrads g2 = linear_backward(act, params_[4].value, dy);
  params_[4].grad.add_(g2.dw);
  params_[5].grad.add_(g2.dbias);

  const Tensor dpre = gelu_backward(pre, g2.dx);
  LinearGrads g1 = linear_backward(normed, params_[2].value, dpre);
  params_[2].grad.add_(g1.dw);
  params_[3].grad.add_(g1.dbias);

  LayerNormGrads lg = layernorm_backward(ln_cache, params_[0].value, g1.dx);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);

  Tensor dx = std::move(lg.dx);
  dx.add_(dy);
  return dx;
}

struct ResidualFFNBlock::FFNBwState : Block::BwState {
  Tensor act;     ///< gelu output, feeds w_fc2/b_fc2
  Tensor dy;
  Tensor normed;  ///< layer-norm output, feeds w_fc1/b_fc1
  Tensor dpre;    ///< grad into fc1's output, pairs with normed
  Tensor g1_dx;   ///< grad into the layer norm, feeds gamma/beta
  LayerNormCache ln;
};

Tensor ResidualFFNBlock::backward_input(const Tensor& x, const Tensor& dy,
                                        std::unique_ptr<BwState>* state) {
  auto s = std::make_unique<FFNBwState>();
  s->normed = layernorm(x, params_[0].value, params_[1].value, &s->ln);
  const Tensor pre = linear(s->normed, params_[2].value, params_[3].value);
  s->act = gelu(pre);

  const Tensor g2_dx = linear_backward_input(params_[4].value, dy);
  s->dpre = gelu_backward(pre, g2_dx);
  s->g1_dx = linear_backward_input(params_[2].value, s->dpre);
  Tensor dx = layernorm_backward_input(s->ln, params_[0].value, s->g1_dx);
  dx.add_(dy);
  s->dy = dy;
  if (state) *state = std::move(s);
  return dx;
}

void ResidualFFNBlock::backward_weight(const BwState& state) {
  const auto& s = dynamic_cast<const FFNBwState&>(state);
  // Fused order: fc2, then fc1, then the layer norm.
  const LinearWeightGrads g2 = linear_backward_weight(s.act, s.dy);
  params_[4].grad.add_(g2.dw);
  params_[5].grad.add_(g2.dbias);
  const LinearWeightGrads g1 = linear_backward_weight(s.normed, s.dpre);
  params_[2].grad.add_(g1.dw);
  params_[3].grad.add_(g1.dbias);
  const LayerNormWeightGrads lg = layernorm_backward_weight(s.ln, s.g1_dx);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
}

// backward_cached reconstructs everything it needs from the layer-norm
// state, pre and act -- the input itself is not stashed.
struct ResidualFFNBlock::FullCache : Block::Cache {
  Tensor pre, act;
  LayerNormCache ln;
};

std::unique_ptr<Block::Cache> ResidualFFNBlock::forward_cached(
    const Tensor& x, Tensor* y) const {
  auto cache = std::make_unique<FullCache>();
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &cache->ln);
  cache->pre = linear(normed, params_[2].value, params_[3].value);
  cache->act = gelu(cache->pre);
  if (y) {
    *y = linear(cache->act, params_[4].value, params_[5].value);
    y->add_(x);
  }
  return cache;
}

Tensor ResidualFFNBlock::backward_cached(const Cache& cache,
                                         const Tensor& dy) {
  const auto& full = dynamic_cast<const FullCache&>(cache);
  LinearGrads g2 = linear_backward(full.act, params_[4].value, dy);
  params_[4].grad.add_(g2.dw);
  params_[5].grad.add_(g2.dbias);
  const Tensor dpre = gelu_backward(full.pre, g2.dx);
  // The normed input is recoverable from the cached layer-norm state.
  Tensor normed(full.ln.normalized.shape());
  for (int i = 0; i < normed.dim(0); ++i) {
    for (int j = 0; j < normed.dim(1); ++j) {
      normed.data()[i * normed.dim(1) + j] =
          full.ln.normalized.at(i * normed.dim(1) + j) * params_[0].value.at(j) +
          params_[1].value.at(j);
    }
  }
  LinearGrads g1 = linear_backward(normed, params_[2].value, dpre);
  params_[2].grad.add_(g1.dw);
  params_[3].grad.add_(g1.dbias);
  LayerNormGrads lg = layernorm_backward(full.ln, params_[0].value, g1.dx);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
  Tensor dx = std::move(lg.dx);
  dx.add_(dy);
  return dx;
}

std::size_t ResidualFFNBlock::cache_bytes(const Tensor& x) const {
  // normalized + inv_std + pre + act.
  return (x.numel() + 2 * x.numel() * 4 + x.dim(0)) * sizeof(float);
}

// --------------------------------------------------------------------- Head

HeadBlock::HeadBlock(int hidden, int vocab, util::Rng& rng)
    : hidden_(hidden), vocab_(vocab) {
  add_param("ln_gamma", Tensor::full({hidden}, 1.0f));
  add_param("ln_beta", Tensor({hidden}));
  add_param("w_unembed", Tensor::randn({hidden, vocab}, rng, 0.02f));
}

Tensor HeadBlock::forward(const Tensor& x) const {
  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  return matmul(normed, params_[2].value);
}

Tensor HeadBlock::backward(const Tensor& x, const Tensor& dy) {
  LayerNormCache ln_cache;
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &ln_cache);
  params_[2].grad.add_(matmul_grad_b(normed, dy));
  const Tensor dnormed = matmul_grad_a(dy, params_[2].value);
  LayerNormGrads lg = layernorm_backward(ln_cache, params_[0].value, dnormed);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
  // Struct members get no NRVO; move out explicitly to avoid a deep copy.
  return std::move(lg.dx);
}

struct HeadBlock::HeadBwState : Block::BwState {
  Tensor normed;   ///< feeds w_unembed
  Tensor dy;
  Tensor dnormed;  ///< grad into the layer norm, feeds gamma/beta
  LayerNormCache ln;
};

Tensor HeadBlock::backward_input(const Tensor& x, const Tensor& dy,
                                 std::unique_ptr<BwState>* state) {
  auto s = std::make_unique<HeadBwState>();
  s->normed = layernorm(x, params_[0].value, params_[1].value, &s->ln);
  s->dnormed = matmul_grad_a(dy, params_[2].value);
  Tensor dx = layernorm_backward_input(s->ln, params_[0].value, s->dnormed);
  s->dy = dy;
  if (state) *state = std::move(s);
  return dx;
}

void HeadBlock::backward_weight(const BwState& state) {
  const auto& s = dynamic_cast<const HeadBwState&>(state);
  // Fused order: the unembedding first, then gamma/beta.
  params_[2].grad.add_(matmul_grad_b(s.normed, s.dy));
  const LayerNormWeightGrads lg = layernorm_backward_weight(s.ln, s.dnormed);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
}

struct HeadBlock::FullCache : Block::Cache {
  LayerNormCache ln;
};

std::unique_ptr<Block::Cache> HeadBlock::forward_cached(const Tensor& x,
                                                        Tensor* y) const {
  auto cache = std::make_unique<FullCache>();
  const Tensor normed =
      layernorm(x, params_[0].value, params_[1].value, &cache->ln);
  if (y) *y = matmul(normed, params_[2].value);
  return cache;
}

Tensor HeadBlock::backward_cached(const Cache& cache, const Tensor& dy) {
  const auto& full = dynamic_cast<const FullCache&>(cache);
  // Reconstruct normed from the cached normalization.
  Tensor normed(full.ln.normalized.shape());
  const int d = normed.dim(1);
  for (int i = 0; i < normed.dim(0); ++i) {
    for (int j = 0; j < d; ++j) {
      normed.data()[i * d + j] =
          full.ln.normalized.at(i * d + j) * params_[0].value.at(j) +
          params_[1].value.at(j);
    }
  }
  params_[2].grad.add_(matmul_grad_b(normed, dy));
  const Tensor dnormed = matmul_grad_a(dy, params_[2].value);
  LayerNormGrads lg = layernorm_backward(full.ln, params_[0].value, dnormed);
  params_[0].grad.add_(lg.dgamma);
  params_[1].grad.add_(lg.dbeta);
  return std::move(lg.dx);
}

std::size_t HeadBlock::cache_bytes(const Tensor& x) const {
  return (x.numel() + x.dim(0)) * sizeof(float);
}

}  // namespace autopipe::model
