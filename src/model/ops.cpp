#include "model/ops.h"

#include <cmath>
#include <stdexcept>

namespace autopipe::model {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
          "matmul: shape mismatch");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      const float av = pa[i * k + l];
      if (av == 0.0f) continue;
      const float* brow = pb + l * n;
      float* crow = pc + i * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_grad_a(const Tensor& dc, const Tensor& b) {
  require(dc.rank() == 2 && b.rank() == 2 && dc.dim(1) == b.dim(1),
          "matmul_grad_a: shape mismatch");
  const int m = dc.dim(0), n = dc.dim(1), k = b.dim(0);
  Tensor da({m, k});
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      float acc = 0;
      const float* dcrow = dc.data() + i * n;
      const float* brow = b.data() + l * n;
      for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
      da.data()[i * k + l] = acc;
    }
  }
  return da;
}

Tensor matmul_grad_b(const Tensor& a, const Tensor& dc) {
  require(a.rank() == 2 && dc.rank() == 2 && a.dim(0) == dc.dim(0),
          "matmul_grad_b: shape mismatch");
  const int m = a.dim(0), k = a.dim(1), n = dc.dim(1);
  Tensor db({k, n});
  for (int i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    const float* dcrow = dc.data() + i * n;
    for (int l = 0; l < k; ++l) {
      const float av = arow[l];
      if (av == 0.0f) continue;
      float* dbrow = db.data() + l * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
    }
  }
  return db;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  Tensor y = matmul(x, w);
  require(bias.rank() == 1 && bias.dim(0) == y.dim(1), "linear: bias shape");
  const int n = y.dim(1);
  for (int i = 0; i < y.dim(0); ++i) {
    float* row = y.data() + i * n;
    for (int j = 0; j < n; ++j) row[j] += bias.at(j);
  }
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  LinearGrads g;
  g.dx = matmul_grad_a(dy, w);
  g.dw = matmul_grad_b(x, dy);
  g.dbias = Tensor({dy.dim(1)});
  for (int i = 0; i < dy.dim(0); ++i) {
    const float* row = dy.data() + i * dy.dim(1);
    for (int j = 0; j < dy.dim(1); ++j) g.dbias.data()[j] += row[j];
  }
  return g;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float v = x.at(i);
    y.data()[i] =
        0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
  }
  return y;
}

Tensor gelu_backward(const Tensor& x, const Tensor& dy) {
  require(x.same_shape(dy), "gelu_backward: shape mismatch");
  Tensor dx(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float v = x.at(i);
    const float u = kGeluC * (v + 0.044715f * v * v * v);
    const float t = std::tanh(u);
    const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
    const float grad = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
    dx.data()[i] = dy.at(i) * grad;
  }
  return dx;
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache) {
  require(x.rank() == 2, "layernorm: rank");
  const int rows = x.dim(0), d = x.dim(1);
  require(gamma.dim(0) == d && beta.dim(0) == d, "layernorm: params");
  Tensor y({rows, d});
  if (cache) {
    cache->normalized = Tensor({rows, d});
    cache->inv_std.assign(rows, 0.0f);
  }
  constexpr float kEps = 1e-5f;
  for (int i = 0; i < rows; ++i) {
    const float* row = x.data() + i * d;
    float mean = 0;
    for (int j = 0; j < d; ++j) mean += row[j];
    mean /= d;
    float var = 0;
    for (int j = 0; j < d; ++j) var += (row[j] - mean) * (row[j] - mean);
    var /= d;
    const float inv = 1.0f / std::sqrt(var + kEps);
    for (int j = 0; j < d; ++j) {
      const float norm = (row[j] - mean) * inv;
      if (cache) cache->normalized.data()[i * d + j] = norm;
      y.data()[i * d + j] = norm * gamma.at(j) + beta.at(j);
    }
    if (cache) cache->inv_std[i] = inv;
  }
  return y;
}

LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy) {
  const int rows = dy.dim(0), d = dy.dim(1);
  LayerNormGrads g;
  g.dx = Tensor({rows, d});
  g.dgamma = Tensor({d});
  g.dbeta = Tensor({d});
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy.data() + i * d;
    const float* nr = cache.normalized.data() + i * d;
    float sum_dn = 0, sum_dnn = 0;
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      sum_dn += dnorm;
      sum_dnn += dnorm * nr[j];
      g.dgamma.data()[j] += dyr[j] * nr[j];
      g.dbeta.data()[j] += dyr[j];
    }
    const float inv = cache.inv_std[i];
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      g.dx.data()[i * d + j] =
          inv * (dnorm - sum_dn / d - nr[j] * sum_dnn / d);
    }
  }
  return g;
}

Tensor softmax_rows(const Tensor& scores) {
  require(scores.rank() == 2, "softmax: rank");
  const int rows = scores.dim(0), n = scores.dim(1);
  Tensor probs({rows, n});
  for (int i = 0; i < rows; ++i) {
    const float* row = scores.data() + i * n;
    float mx = row[0];
    for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0;
    for (int j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - mx);
      probs.data()[i * n + j] = e;
      denom += e;
    }
    for (int j = 0; j < n; ++j) probs.data()[i * n + j] /= denom;
  }
  return probs;
}

Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs) {
  require(probs.same_shape(dprobs), "softmax_backward: shape");
  const int rows = probs.dim(0), n = probs.dim(1);
  Tensor ds({rows, n});
  for (int i = 0; i < rows; ++i) {
    const float* p = probs.data() + i * n;
    const float* dp = dprobs.data() + i * n;
    float dot = 0;
    for (int j = 0; j < n; ++j) dot += p[j] * dp[j];
    for (int j = 0; j < n; ++j) ds.data()[i * n + j] = p[j] * (dp[j] - dot);
  }
  return ds;
}

double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits) {
  require(logits.rank() == 2 &&
              logits.dim(0) == static_cast<int>(targets.size()),
          "cross_entropy: shape");
  const int rows = logits.dim(0), v = logits.dim(1);
  if (dlogits) *dlogits = Tensor({rows, v});
  double loss = 0;
  for (int i = 0; i < rows; ++i) {
    const float* row = logits.data() + i * v;
    require(targets[i] >= 0 && targets[i] < v, "cross_entropy: target range");
    float mx = row[0];
    for (int j = 1; j < v; ++j) mx = std::max(mx, row[j]);
    double denom = 0;
    for (int j = 0; j < v; ++j) denom += std::exp(static_cast<double>(row[j]) - mx);
    const double log_denom = std::log(denom) + mx;
    loss += (log_denom - row[targets[i]]) * scale;
    if (dlogits) {
      for (int j = 0; j < v; ++j) {
        const double p = std::exp(static_cast<double>(row[j]) - log_denom);
        dlogits->data()[i * v + j] =
            static_cast<float>((p - (j == targets[i] ? 1.0 : 0.0)) * scale);
      }
    }
  }
  return loss;
}

Tensor embedding_lookup(const Tensor& table, std::span<const int> ids) {
  require(table.rank() == 2, "embedding: table rank");
  const int h = table.dim(1);
  Tensor out({static_cast<int>(ids.size()), h});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(ids[i] >= 0 && ids[i] < table.dim(0), "embedding: id range");
    const float* src = table.data() + static_cast<std::size_t>(ids[i]) * h;
    std::copy(src, src + h, out.data() + i * h);
  }
  return out;
}

void embedding_backward(std::span<const int> ids, const Tensor& dy,
                        Tensor* dtable) {
  require(dtable && dtable->rank() == 2 && dy.rank() == 2 &&
              dy.dim(1) == dtable->dim(1) &&
              dy.dim(0) == static_cast<int>(ids.size()),
          "embedding_backward: shape");
  const int h = dy.dim(1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    float* dst = dtable->data() + static_cast<std::size_t>(ids[i]) * h;
    const float* src = dy.data() + i * h;
    for (int j = 0; j < h; ++j) dst[j] += src[j];
  }
}

}  // namespace autopipe::model
