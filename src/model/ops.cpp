#include "model/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/thread_pool.h"

namespace autopipe::model {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// ------------------------------------------------------- hot-path config
//
// The fast kernels share one process-wide pool, created lazily so programs
// that never touch the tensor hot path pay nothing. threads == 1 keeps the
// pool null and every kernel inline -- the bitwise result is the same
// either way, because panel boundaries never change any per-element
// summation order.

std::atomic<bool> g_fast{true};
std::mutex g_pool_mu;
std::atomic<util::ThreadPool*> g_pool{nullptr};
std::atomic<int> g_resolved{0};  // 0 = pool not yet resolved
int g_requested = 0;             // guarded by g_pool_mu

util::ThreadPool* ops_pool() {
  if (g_resolved.load(std::memory_order_acquire) != 0) {
    return g_pool.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_resolved.load(std::memory_order_acquire) == 0) {
    const int n = util::resolve_threads(g_requested);
    if (n > 1) {
      g_pool.store(new util::ThreadPool(n), std::memory_order_release);
    }
    g_resolved.store(n, std::memory_order_release);
  }
  return g_pool.load(std::memory_order_acquire);
}

/// Rows per parallel task. Fixed -- never derived from the worker count --
/// so the panel grid (and thus which task owns which output row) is
/// identical for every thread count.
constexpr int kPanelRows = 32;
/// Column width of the GEMM register tiles: 4 rows x kTileJ accumulators
/// (two SSE vectors wide) live in registers across the whole reduction.
constexpr int kTileJ = 8;
/// Below this many flops a kernel runs inline: pool handoff costs more
/// than the loop (attention's per-head [s,s] matmuls live here).
constexpr double kMinParallelFlops = 1 << 18;

/// Runs fn(r0, r1) over [0, rows) split into kPanelRows panels, fanned out
/// over the shared pool when the work is worth it. fn must touch only rows
/// in its panel.
void panel_for(int rows, double flops,
               const std::function<void(int, int)>& fn) {
  util::ThreadPool* pool = ops_pool();
  const int panels = (rows + kPanelRows - 1) / kPanelRows;
  if (pool == nullptr || panels <= 1 || flops < kMinParallelFlops) {
    fn(0, rows);
    return;
  }
  util::parallel_for(pool, panels, [&](int p) {
    const int r0 = p * kPanelRows;
    fn(r0, std::min(rows, r0 + kPanelRows));
  });
}

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

float gelu_one(float v) {
  return 0.5f * v * (1.0f + std::tanh(kGeluC * (v + 0.044715f * v * v * v)));
}

float gelu_grad_one(float v) {
  const float u = kGeluC * (v + 0.044715f * v * v * v);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
  return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
}

void layernorm_row(const float* row, const float* gamma, const float* beta,
                   int d, float* norm_out, float* y_out, float* inv_out) {
  constexpr float kEps = 1e-5f;
  float mean = 0;
  for (int j = 0; j < d; ++j) mean += row[j];
  mean /= d;
  float var = 0;
  for (int j = 0; j < d; ++j) var += (row[j] - mean) * (row[j] - mean);
  var /= d;
  const float inv = 1.0f / std::sqrt(var + kEps);
  for (int j = 0; j < d; ++j) {
    const float norm = (row[j] - mean) * inv;
    if (norm_out) norm_out[j] = norm;
    y_out[j] = norm * gamma[j] + beta[j];
  }
  if (inv_out) *inv_out = inv;
}

void softmax_row(const float* row, int n, float* out) {
  float mx = row[0];
  for (int j = 1; j < n; ++j) mx = std::max(mx, row[j]);
  float denom = 0;
  for (int j = 0; j < n; ++j) {
    const float e = std::exp(row[j] - mx);
    out[j] = e;
    denom += e;
  }
  for (int j = 0; j < n; ++j) out[j] /= denom;
}

/// Per-row cross entropy: returns the row's scaled loss term and fills
/// dlogits (when non-null) -- the shared body of ref:: and the fast path.
double cross_entropy_row(const float* row, int v, int target, double scale,
                         float* dlogits_row) {
  float mx = row[0];
  for (int j = 1; j < v; ++j) mx = std::max(mx, row[j]);
  double denom = 0;
  for (int j = 0; j < v; ++j) {
    denom += std::exp(static_cast<double>(row[j]) - mx);
  }
  const double log_denom = std::log(denom) + mx;
  if (dlogits_row) {
    for (int j = 0; j < v; ++j) {
      const double p = std::exp(static_cast<double>(row[j]) - log_denom);
      dlogits_row[j] =
          static_cast<float>((p - (j == target ? 1.0 : 0.0)) * scale);
    }
  }
  return (log_denom - row[target]) * scale;
}

void check_matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
          "matmul: shape mismatch");
}

void check_grad_a(const Tensor& dc, const Tensor& b) {
  require(dc.rank() == 2 && b.rank() == 2 && dc.dim(1) == b.dim(1),
          "matmul_grad_a: shape mismatch");
}

void check_grad_b(const Tensor& a, const Tensor& dc) {
  require(a.rank() == 2 && dc.rank() == 2 && a.dim(0) == dc.dim(0),
          "matmul_grad_b: shape mismatch");
}

void check_cross_entropy(const Tensor& logits, std::span<const int> targets) {
  require(logits.rank() == 2 &&
              logits.dim(0) == static_cast<int>(targets.size()),
          "cross_entropy: shape");
  const int v = logits.dim(1);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    require(targets[i] >= 0 && targets[i] < v, "cross_entropy: target range");
  }
}

}  // namespace

void set_ops_threads(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested = threads;
  util::ThreadPool* old = g_pool.exchange(nullptr, std::memory_order_acq_rel);
  g_resolved.store(0, std::memory_order_release);
  delete old;  // joins idle workers; callers must be quiescent
}

int ops_threads() {
  const int resolved = g_resolved.load(std::memory_order_acquire);
  if (resolved != 0) return resolved;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return util::resolve_threads(g_requested);
}

void set_fast_ops(bool enabled) {
  g_fast.store(enabled, std::memory_order_release);
}

bool fast_ops_enabled() { return g_fast.load(std::memory_order_acquire); }

// ------------------------------------------------------ naive references
//
// Plain loops, ascending-index summation, one accumulator per output
// element. The fast kernels below must reproduce these bit for bit.

namespace ref {

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matmul(a, b);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      const float av = pa[i * k + l];
      const float* brow = pb + l * n;
      float* crow = pc + i * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_grad_a(const Tensor& dc, const Tensor& b) {
  check_grad_a(dc, b);
  const int m = dc.dim(0), n = dc.dim(1), k = b.dim(0);
  Tensor da({m, k});
  for (int i = 0; i < m; ++i) {
    for (int l = 0; l < k; ++l) {
      float acc = 0;
      const float* dcrow = dc.data() + i * n;
      const float* brow = b.data() + l * n;
      for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
      da.data()[i * k + l] = acc;
    }
  }
  return da;
}

Tensor matmul_grad_b(const Tensor& a, const Tensor& dc) {
  check_grad_b(a, dc);
  const int m = a.dim(0), k = a.dim(1), n = dc.dim(1);
  Tensor db({k, n});
  for (int i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    const float* dcrow = dc.data() + i * n;
    for (int l = 0; l < k; ++l) {
      const float av = arow[l];
      float* dbrow = db.data() + l * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * dcrow[j];
    }
  }
  return db;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  Tensor y = ref::matmul(x, w);
  require(bias.rank() == 1 && bias.dim(0) == y.dim(1), "linear: bias shape");
  const int n = y.dim(1);
  for (int i = 0; i < y.dim(0); ++i) {
    float* row = y.data() + i * n;
    for (int j = 0; j < n; ++j) row[j] += bias.at(j);
  }
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  LinearGrads g;
  g.dx = ref::matmul_grad_a(dy, w);
  g.dw = ref::matmul_grad_b(x, dy);
  g.dbias = Tensor({dy.dim(1)});
  for (int i = 0; i < dy.dim(0); ++i) {
    const float* row = dy.data() + i * dy.dim(1);
    for (int j = 0; j < dy.dim(1); ++j) g.dbias.data()[j] += row[j];
  }
  return g;
}

Tensor linear_backward_input(const Tensor& w, const Tensor& dy) {
  return ref::matmul_grad_a(dy, w);
}

LinearWeightGrads linear_backward_weight(const Tensor& x, const Tensor& dy) {
  LinearWeightGrads g;
  g.dw = ref::matmul_grad_b(x, dy);
  g.dbias = Tensor({dy.dim(1)});
  for (int i = 0; i < dy.dim(0); ++i) {
    const float* row = dy.data() + i * dy.dim(1);
    for (int j = 0; j < dy.dim(1); ++j) g.dbias.data()[j] += row[j];
  }
  return g;
}

Tensor gelu(const Tensor& x) {
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y.data()[i] = gelu_one(x.at(i));
  return y;
}

Tensor gelu_backward(const Tensor& x, const Tensor& dy) {
  require(x.same_shape(dy), "gelu_backward: shape mismatch");
  Tensor dx(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) {
    dx.data()[i] = dy.at(i) * gelu_grad_one(x.at(i));
  }
  return dx;
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache) {
  require(x.rank() == 2, "layernorm: rank");
  const int rows = x.dim(0), d = x.dim(1);
  require(gamma.dim(0) == d && beta.dim(0) == d, "layernorm: params");
  Tensor y({rows, d});
  if (cache) {
    cache->normalized = Tensor({rows, d});
    cache->inv_std.assign(rows, 0.0f);
  }
  for (int i = 0; i < rows; ++i) {
    layernorm_row(x.data() + i * d, gamma.data(), beta.data(), d,
                  cache ? cache->normalized.data() + i * d : nullptr,
                  y.data() + i * d, cache ? &cache->inv_std[i] : nullptr);
  }
  return y;
}

LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy) {
  const int rows = dy.dim(0), d = dy.dim(1);
  LayerNormGrads g;
  g.dx = Tensor({rows, d});
  g.dgamma = Tensor({d});
  g.dbeta = Tensor({d});
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy.data() + i * d;
    const float* nr = cache.normalized.data() + i * d;
    float sum_dn = 0, sum_dnn = 0;
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      sum_dn += dnorm;
      sum_dnn += dnorm * nr[j];
      g.dgamma.data()[j] += dyr[j] * nr[j];
      g.dbeta.data()[j] += dyr[j];
    }
    const float inv = cache.inv_std[i];
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      g.dx.data()[i * d + j] =
          inv * (dnorm - sum_dn / d - nr[j] * sum_dnn / d);
    }
  }
  return g;
}

Tensor layernorm_backward_input(const LayerNormCache& cache,
                                const Tensor& gamma, const Tensor& dy) {
  const int rows = dy.dim(0), d = dy.dim(1);
  Tensor dx({rows, d});
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy.data() + i * d;
    const float* nr = cache.normalized.data() + i * d;
    float sum_dn = 0, sum_dnn = 0;
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      sum_dn += dnorm;
      sum_dnn += dnorm * nr[j];
    }
    const float inv = cache.inv_std[i];
    for (int j = 0; j < d; ++j) {
      const float dnorm = dyr[j] * gamma.at(j);
      dx.data()[i * d + j] = inv * (dnorm - sum_dn / d - nr[j] * sum_dnn / d);
    }
  }
  return dx;
}

LayerNormWeightGrads layernorm_backward_weight(const LayerNormCache& cache,
                                               const Tensor& dy) {
  const int rows = dy.dim(0), d = dy.dim(1);
  LayerNormWeightGrads g;
  g.dgamma = Tensor({d});
  g.dbeta = Tensor({d});
  for (int i = 0; i < rows; ++i) {
    const float* dyr = dy.data() + i * d;
    const float* nr = cache.normalized.data() + i * d;
    for (int j = 0; j < d; ++j) {
      g.dgamma.data()[j] += dyr[j] * nr[j];
      g.dbeta.data()[j] += dyr[j];
    }
  }
  return g;
}

Tensor softmax_rows(const Tensor& scores) {
  require(scores.rank() == 2, "softmax: rank");
  const int rows = scores.dim(0), n = scores.dim(1);
  Tensor probs({rows, n});
  for (int i = 0; i < rows; ++i) {
    softmax_row(scores.data() + i * n, n, probs.data() + i * n);
  }
  return probs;
}

Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs) {
  require(probs.same_shape(dprobs), "softmax_backward: shape");
  const int rows = probs.dim(0), n = probs.dim(1);
  Tensor ds({rows, n});
  for (int i = 0; i < rows; ++i) {
    const float* p = probs.data() + i * n;
    const float* dp = dprobs.data() + i * n;
    float dot = 0;
    for (int j = 0; j < n; ++j) dot += p[j] * dp[j];
    for (int j = 0; j < n; ++j) ds.data()[i * n + j] = p[j] * (dp[j] - dot);
  }
  return ds;
}

double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits) {
  check_cross_entropy(logits, targets);
  const int rows = logits.dim(0), v = logits.dim(1);
  if (dlogits) *dlogits = Tensor({rows, v});
  double loss = 0;
  for (int i = 0; i < rows; ++i) {
    loss += cross_entropy_row(logits.data() + i * v, v, targets[i], scale,
                              dlogits ? dlogits->data() + i * v : nullptr);
  }
  return loss;
}

}  // namespace ref

// ----------------------------------------------------------- fast kernels
//
// Bit-for-bit contract with ref:: -- for every output element the same
// multiplications and additions happen in the same (ascending-index)
// order; the kernels only (a) re-tile the loop nest so each B/dC tile is
// reused across a whole row panel, (b) unroll across *independent*
// accumulator chains so the FP-add latency of one chain overlaps the next
// (the naive dot product is a single serial dependency chain -- the main
// single-core win), and (c) hand disjoint row panels to pool workers.

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (!fast_ops_enabled()) return ref::matmul(a, b);
  check_matmul(a, b);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::uninitialized({m, n});  // every element stored below
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const double flops = 2.0 * m * k * n;
  // Register-tiled: a 4-row x kTileJ-column block of C lives in registers
  // across the whole l loop (one accumulator per element, l ascending --
  // the ref order, since 0 + sum == ref's zero-init accumulate), so each
  // B element loaded feeds 4 outputs and C is stored exactly once.
  panel_for(m, flops, [&](int i0, int i1) {
    int i = i0;
    for (; i + 4 <= i1; i += 4) {
      const float* a0 = pa + static_cast<std::size_t>(i) * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = pc + static_cast<std::size_t>(i) * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      int j = 0;
#if defined(__SSE2__)
      // Packed variant of the scalar tile below: each xmm lane holds ONE
      // output element's accumulator, so per lane the mul/add sequence
      // (and its per-step rounding) is exactly the scalar chain -- packed
      // single-precision ops round per lane like mulss/addss and nothing
      // here contracts to FMA. Bitwise equal to ref::, just 4 lanes wide.
      for (; j + kTileJ <= n; j += kTileJ) {
        __m128 s0a = _mm_setzero_ps(), s0b = _mm_setzero_ps();
        __m128 s1a = _mm_setzero_ps(), s1b = _mm_setzero_ps();
        __m128 s2a = _mm_setzero_ps(), s2b = _mm_setzero_ps();
        __m128 s3a = _mm_setzero_ps(), s3b = _mm_setzero_ps();
        const float* bp = pb + j;
        for (int l = 0; l < k; ++l, bp += n) {
          const __m128 bva = _mm_loadu_ps(bp);
          const __m128 bvb = _mm_loadu_ps(bp + 4);
          __m128 w = _mm_set1_ps(a0[l]);
          s0a = _mm_add_ps(s0a, _mm_mul_ps(w, bva));
          s0b = _mm_add_ps(s0b, _mm_mul_ps(w, bvb));
          w = _mm_set1_ps(a1[l]);
          s1a = _mm_add_ps(s1a, _mm_mul_ps(w, bva));
          s1b = _mm_add_ps(s1b, _mm_mul_ps(w, bvb));
          w = _mm_set1_ps(a2[l]);
          s2a = _mm_add_ps(s2a, _mm_mul_ps(w, bva));
          s2b = _mm_add_ps(s2b, _mm_mul_ps(w, bvb));
          w = _mm_set1_ps(a3[l]);
          s3a = _mm_add_ps(s3a, _mm_mul_ps(w, bva));
          s3b = _mm_add_ps(s3b, _mm_mul_ps(w, bvb));
        }
        _mm_storeu_ps(c0 + j, s0a);
        _mm_storeu_ps(c0 + j + 4, s0b);
        _mm_storeu_ps(c1 + j, s1a);
        _mm_storeu_ps(c1 + j + 4, s1b);
        _mm_storeu_ps(c2 + j, s2a);
        _mm_storeu_ps(c2 + j + 4, s2b);
        _mm_storeu_ps(c3 + j, s3a);
        _mm_storeu_ps(c3 + j + 4, s3b);
      }
#else
      for (; j + kTileJ <= n; j += kTileJ) {
        float s0[kTileJ] = {}, s1[kTileJ] = {}, s2[kTileJ] = {},
              s3[kTileJ] = {};
        const float* bp = pb + j;
        for (int l = 0; l < k; ++l, bp += n) {
          const float w0 = a0[l], w1 = a1[l], w2 = a2[l], w3 = a3[l];
          for (int t = 0; t < kTileJ; ++t) {
            const float bv = bp[t];
            s0[t] += w0 * bv;
            s1[t] += w1 * bv;
            s2[t] += w2 * bv;
            s3[t] += w3 * bv;
          }
        }
        for (int t = 0; t < kTileJ; ++t) {
          c0[j + t] = s0[t];
          c1[j + t] = s1[t];
          c2[j + t] = s2[t];
          c3[j + t] = s3[t];
        }
      }
#endif
      for (; j < n; ++j) {  // ragged column tail: strided scalar dots
        const float* bp = pb + j;
        float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int l = 0; l < k; ++l, bp += n) {
          const float bv = bp[0];
          s0 += a0[l] * bv;
          s1 += a1[l] * bv;
          s2 += a2[l] * bv;
          s3 += a3[l] * bv;
        }
        c0[j] = s0;
        c1[j] = s1;
        c2[j] = s2;
        c3[j] = s3;
      }
    }
    for (; i < i1; ++i) {  // ragged row tail: single-row tiles
      const float* ar = pa + static_cast<std::size_t>(i) * k;
      float* cr = pc + static_cast<std::size_t>(i) * n;
      int j = 0;
#if defined(__SSE2__)
      for (; j + kTileJ <= n; j += kTileJ) {
        __m128 sa = _mm_setzero_ps(), sb = _mm_setzero_ps();
        const float* bp = pb + j;
        for (int l = 0; l < k; ++l, bp += n) {
          const __m128 w = _mm_set1_ps(ar[l]);
          sa = _mm_add_ps(sa, _mm_mul_ps(w, _mm_loadu_ps(bp)));
          sb = _mm_add_ps(sb, _mm_mul_ps(w, _mm_loadu_ps(bp + 4)));
        }
        _mm_storeu_ps(cr + j, sa);
        _mm_storeu_ps(cr + j + 4, sb);
      }
#else
      for (; j + kTileJ <= n; j += kTileJ) {
        float s[kTileJ] = {};
        const float* bp = pb + j;
        for (int l = 0; l < k; ++l, bp += n) {
          const float w = ar[l];
          for (int t = 0; t < kTileJ; ++t) s[t] += w * bp[t];
        }
        for (int t = 0; t < kTileJ; ++t) cr[j + t] = s[t];
      }
#endif
      for (; j < n; ++j) {
        const float* bp = pb + j;
        float s = 0;
        for (int l = 0; l < k; ++l, bp += n) s += ar[l] * bp[0];
        cr[j] = s;
      }
    }
  });
  return c;
}

Tensor matmul_grad_a(const Tensor& dc, const Tensor& b) {
  if (!fast_ops_enabled()) return ref::matmul_grad_a(dc, b);
  check_grad_a(dc, b);
  const int m = dc.dim(0), n = dc.dim(1), k = b.dim(0);
  Tensor da = Tensor::uninitialized({m, k});  // every element assigned
  const float* pdc = dc.data();
  const float* pb = b.data();
  float* pda = da.data();
  const double flops = 2.0 * m * k * n;
  // The reduction here runs along rows (a dot over j), so the serial
  // FP-add chain of each output element cannot be vectorized without
  // reassociating -- instead, 2 dA rows x 8 columns = 16 independent
  // chains (each in the reference's ascending-j order) overlap the add
  // latency, and every B element loaded feeds both rows.
  panel_for(m, flops, [&](int i0, int i1) {
    int i = i0;
    for (; i + 2 <= i1; i += 2) {
      const float* dc0 = pdc + static_cast<std::size_t>(i) * n;
      const float* dc1 = dc0 + n;
      float* da0 = pda + static_cast<std::size_t>(i) * k;
      float* da1 = da0 + k;
      int l = 0;
      for (; l + 8 <= k; l += 8) {
        const float* b0 = pb + static_cast<std::size_t>(l) * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        const float* b4 = b3 + n;
        const float* b5 = b4 + n;
        const float* b6 = b5 + n;
        const float* b7 = b6 + n;
        float s0[8] = {}, s1[8] = {};
        for (int j = 0; j < n; ++j) {
          const float d0 = dc0[j], d1 = dc1[j];
          const float v0 = b0[j], v1 = b1[j], v2 = b2[j], v3 = b3[j];
          const float v4 = b4[j], v5 = b5[j], v6 = b6[j], v7 = b7[j];
          s0[0] += d0 * v0;
          s0[1] += d0 * v1;
          s0[2] += d0 * v2;
          s0[3] += d0 * v3;
          s0[4] += d0 * v4;
          s0[5] += d0 * v5;
          s0[6] += d0 * v6;
          s0[7] += d0 * v7;
          s1[0] += d1 * v0;
          s1[1] += d1 * v1;
          s1[2] += d1 * v2;
          s1[3] += d1 * v3;
          s1[4] += d1 * v4;
          s1[5] += d1 * v5;
          s1[6] += d1 * v6;
          s1[7] += d1 * v7;
        }
        for (int t = 0; t < 8; ++t) {
          da0[l + t] = s0[t];
          da1[l + t] = s1[t];
        }
      }
      for (; l < k; ++l) {
        const float* brow = pb + static_cast<std::size_t>(l) * n;
        float acc0 = 0, acc1 = 0;
        for (int j = 0; j < n; ++j) {
          const float bv = brow[j];
          acc0 += dc0[j] * bv;
          acc1 += dc1[j] * bv;
        }
        da0[l] = acc0;
        da1[l] = acc1;
      }
    }
    for (; i < i1; ++i) {  // ragged row tail: single-row, 8 chains
      const float* dcrow = pdc + static_cast<std::size_t>(i) * n;
      float* darow = pda + static_cast<std::size_t>(i) * k;
      int l = 0;
      for (; l + 8 <= k; l += 8) {
        const float* b0 = pb + static_cast<std::size_t>(l) * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        const float* b4 = b3 + n;
        const float* b5 = b4 + n;
        const float* b6 = b5 + n;
        const float* b7 = b6 + n;
        float s[8] = {};
        for (int j = 0; j < n; ++j) {
          const float d = dcrow[j];
          s[0] += d * b0[j];
          s[1] += d * b1[j];
          s[2] += d * b2[j];
          s[3] += d * b3[j];
          s[4] += d * b4[j];
          s[5] += d * b5[j];
          s[6] += d * b6[j];
          s[7] += d * b7[j];
        }
        for (int t = 0; t < 8; ++t) darow[l + t] = s[t];
      }
      for (; l < k; ++l) {
        const float* brow = pb + static_cast<std::size_t>(l) * n;
        float acc = 0;
        for (int j = 0; j < n; ++j) acc += dcrow[j] * brow[j];
        darow[l] = acc;
      }
    }
  });
  return da;
}

Tensor matmul_grad_b(const Tensor& a, const Tensor& dc) {
  if (!fast_ops_enabled()) return ref::matmul_grad_b(a, dc);
  check_grad_b(a, dc);
  const int m = a.dim(0), k = a.dim(1), n = dc.dim(1);
  Tensor db = Tensor::uninitialized({k, n});  // every element stored below
  const float* pa = a.data();
  const float* pdc = dc.data();
  float* pdb = db.data();
  const double flops = 2.0 * m * k * n;
  // Panels over dB rows (the k axis): each output row is owned by one
  // task. A 4-row x kTileJ block of dB lives in registers across the whole
  // i reduction (ascending i, one accumulator per element -- the ref
  // order), so each dC element loaded feeds 4 outputs.
  panel_for(k, flops, [&](int l0, int l1) {
    int l = l0;
    for (; l + 4 <= l1; l += 4) {
      float* o0 = pdb + static_cast<std::size_t>(l) * n;
      float* o1 = o0 + n;
      float* o2 = o1 + n;
      float* o3 = o2 + n;
      int j = 0;
#if defined(__SSE2__)
      // Same lane-per-element layout as the fast matmul tile: packed ops
      // reproduce the scalar per-element chains (ascending i) bit for bit.
      for (; j + kTileJ <= n; j += kTileJ) {
        __m128 s0a = _mm_setzero_ps(), s0b = _mm_setzero_ps();
        __m128 s1a = _mm_setzero_ps(), s1b = _mm_setzero_ps();
        __m128 s2a = _mm_setzero_ps(), s2b = _mm_setzero_ps();
        __m128 s3a = _mm_setzero_ps(), s3b = _mm_setzero_ps();
        const float* ap = pa + l;   // a[i, l + t] == ap[t] at row i
        const float* dp = pdc + j;  // dc[i, j + t] == dp[t] at row i
        for (int i = 0; i < m; ++i, ap += k, dp += n) {
          const __m128 dva = _mm_loadu_ps(dp);
          const __m128 dvb = _mm_loadu_ps(dp + 4);
          __m128 w = _mm_set1_ps(ap[0]);
          s0a = _mm_add_ps(s0a, _mm_mul_ps(w, dva));
          s0b = _mm_add_ps(s0b, _mm_mul_ps(w, dvb));
          w = _mm_set1_ps(ap[1]);
          s1a = _mm_add_ps(s1a, _mm_mul_ps(w, dva));
          s1b = _mm_add_ps(s1b, _mm_mul_ps(w, dvb));
          w = _mm_set1_ps(ap[2]);
          s2a = _mm_add_ps(s2a, _mm_mul_ps(w, dva));
          s2b = _mm_add_ps(s2b, _mm_mul_ps(w, dvb));
          w = _mm_set1_ps(ap[3]);
          s3a = _mm_add_ps(s3a, _mm_mul_ps(w, dva));
          s3b = _mm_add_ps(s3b, _mm_mul_ps(w, dvb));
        }
        _mm_storeu_ps(o0 + j, s0a);
        _mm_storeu_ps(o0 + j + 4, s0b);
        _mm_storeu_ps(o1 + j, s1a);
        _mm_storeu_ps(o1 + j + 4, s1b);
        _mm_storeu_ps(o2 + j, s2a);
        _mm_storeu_ps(o2 + j + 4, s2b);
        _mm_storeu_ps(o3 + j, s3a);
        _mm_storeu_ps(o3 + j + 4, s3b);
      }
#else
      for (; j + kTileJ <= n; j += kTileJ) {
        float s0[kTileJ] = {}, s1[kTileJ] = {}, s2[kTileJ] = {},
              s3[kTileJ] = {};
        const float* ap = pa + l;   // a[i, l + t] == ap[t] at row i
        const float* dp = pdc + j;  // dc[i, j + t] == dp[t] at row i
        for (int i = 0; i < m; ++i, ap += k, dp += n) {
          const float w0 = ap[0], w1 = ap[1], w2 = ap[2], w3 = ap[3];
          for (int t = 0; t < kTileJ; ++t) {
            const float dv = dp[t];
            s0[t] += w0 * dv;
            s1[t] += w1 * dv;
            s2[t] += w2 * dv;
            s3[t] += w3 * dv;
          }
        }
        for (int t = 0; t < kTileJ; ++t) {
          o0[j + t] = s0[t];
          o1[j + t] = s1[t];
          o2[j + t] = s2[t];
          o3[j + t] = s3[t];
        }
      }
#endif
      for (; j < n; ++j) {  // ragged column tail
        const float* ap = pa + l;
        const float* dp = pdc + j;
        float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int i = 0; i < m; ++i, ap += k, dp += n) {
          const float dv = dp[0];
          s0 += ap[0] * dv;
          s1 += ap[1] * dv;
          s2 += ap[2] * dv;
          s3 += ap[3] * dv;
        }
        o0[j] = s0;
        o1[j] = s1;
        o2[j] = s2;
        o3[j] = s3;
      }
    }
    for (; l < l1; ++l) {  // ragged row tail: single-row tiles
      float* orow = pdb + static_cast<std::size_t>(l) * n;
      int j = 0;
#if defined(__SSE2__)
      for (; j + kTileJ <= n; j += kTileJ) {
        __m128 sa = _mm_setzero_ps(), sb = _mm_setzero_ps();
        const float* ap = pa + l;
        const float* dp = pdc + j;
        for (int i = 0; i < m; ++i, ap += k, dp += n) {
          const __m128 w = _mm_set1_ps(ap[0]);
          sa = _mm_add_ps(sa, _mm_mul_ps(w, _mm_loadu_ps(dp)));
          sb = _mm_add_ps(sb, _mm_mul_ps(w, _mm_loadu_ps(dp + 4)));
        }
        _mm_storeu_ps(orow + j, sa);
        _mm_storeu_ps(orow + j + 4, sb);
      }
#else
      for (; j + kTileJ <= n; j += kTileJ) {
        float s[kTileJ] = {};
        const float* ap = pa + l;
        const float* dp = pdc + j;
        for (int i = 0; i < m; ++i, ap += k, dp += n) {
          const float w = ap[0];
          for (int t = 0; t < kTileJ; ++t) s[t] += w * dp[t];
        }
        for (int t = 0; t < kTileJ; ++t) orow[j + t] = s[t];
      }
#endif
      for (; j < n; ++j) {
        const float* ap = pa + l;
        const float* dp = pdc + j;
        float s = 0;
        for (int i = 0; i < m; ++i, ap += k, dp += n) s += ap[0] * dp[0];
        orow[j] = s;
      }
    }
  });
  return db;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  if (!fast_ops_enabled()) return ref::linear(x, w, bias);
  Tensor y = matmul(x, w);
  require(bias.rank() == 1 && bias.dim(0) == y.dim(1), "linear: bias shape");
  const int rows = y.dim(0), n = y.dim(1);
  float* py = y.data();
  const float* pbias = bias.data();
  panel_for(rows, static_cast<double>(rows) * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      float* row = py + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) row[j] += pbias[j];
    }
  });
  return y;
}

LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::linear_backward(x, w, dy);
  LinearGrads g;
  g.dx = matmul_grad_a(dy, w);
  g.dw = matmul_grad_b(x, dy);
  const int rows = dy.dim(0), n = dy.dim(1);
  g.dbias = Tensor({n});
  // Column sums stay serial: ascending-i accumulation per column is the
  // reference order, and n floats of output don't repay a fan-out.
  float* pdb = g.dbias.data();
  const float* pdy = dy.data();
  for (int i = 0; i < rows; ++i) {
    const float* row = pdy + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) pdb[j] += row[j];
  }
  return g;
}

Tensor linear_backward_input(const Tensor& w, const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::linear_backward_input(w, dy);
  return matmul_grad_a(dy, w);
}

LinearWeightGrads linear_backward_weight(const Tensor& x, const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::linear_backward_weight(x, dy);
  LinearWeightGrads g;
  g.dw = matmul_grad_b(x, dy);
  const int rows = dy.dim(0), n = dy.dim(1);
  g.dbias = Tensor({n});
  // Serial ascending-i column sums, exactly as the fused fast path.
  float* pdb = g.dbias.data();
  const float* pdy = dy.data();
  for (int i = 0; i < rows; ++i) {
    const float* row = pdy + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) pdb[j] += row[j];
  }
  return g;
}

Tensor gelu(const Tensor& x) {
  if (!fast_ops_enabled()) return ref::gelu(x);
  Tensor y = Tensor::uninitialized(x.shape());
  const float* px = x.data();
  float* py = y.data();
  const int total = static_cast<int>(x.numel());
  // Elementwise: chunk the flat index range. tanh is expensive enough that
  // the flop estimate undercounts, so weigh it up.
  panel_for((total + 255) / 256, 32.0 * total, [&](int c0, int c1) {
    const int e0 = c0 * 256, e1 = std::min(total, c1 * 256);
    for (int i = e0; i < e1; ++i) py[i] = gelu_one(px[i]);
  });
  return y;
}

Tensor gelu_backward(const Tensor& x, const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::gelu_backward(x, dy);
  require(x.same_shape(dy), "gelu_backward: shape mismatch");
  Tensor dx = Tensor::uninitialized(x.shape());
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  const int total = static_cast<int>(x.numel());
  panel_for((total + 255) / 256, 32.0 * total, [&](int c0, int c1) {
    const int e0 = c0 * 256, e1 = std::min(total, c1 * 256);
    for (int i = e0; i < e1; ++i) pdx[i] = pdy[i] * gelu_grad_one(px[i]);
  });
  return dx;
}

Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache) {
  if (!fast_ops_enabled()) return ref::layernorm(x, gamma, beta, cache);
  require(x.rank() == 2, "layernorm: rank");
  const int rows = x.dim(0), d = x.dim(1);
  require(gamma.dim(0) == d && beta.dim(0) == d, "layernorm: params");
  Tensor y = Tensor::uninitialized({rows, d});
  if (cache) {
    cache->normalized = Tensor::uninitialized({rows, d});
    cache->inv_std.resize(rows);
  }
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pbt = beta.data();
  float* py = y.data();
  float* pn = cache ? cache->normalized.data() : nullptr;
  float* pinv = cache ? cache->inv_std.data() : nullptr;
  panel_for(rows, 8.0 * rows * d, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      layernorm_row(px + static_cast<std::size_t>(i) * d, pg, pbt, d,
                    pn ? pn + static_cast<std::size_t>(i) * d : nullptr,
                    py + static_cast<std::size_t>(i) * d,
                    pinv ? pinv + i : nullptr);
    }
  });
  return y;
}

LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::layernorm_backward(cache, gamma, dy);
  const int rows = dy.dim(0), d = dy.dim(1);
  LayerNormGrads g;
  g.dx = Tensor::uninitialized({rows, d});
  g.dgamma = Tensor({d});
  g.dbeta = Tensor({d});
  const float* pdy = dy.data();
  const float* pn = cache.normalized.data();
  const float* pg = gamma.data();
  float* pdx = g.dx.data();
  // Pass 1 (parallel): dx rows are independent; the row-local sums run in
  // the reference's j order.
  panel_for(rows, 10.0 * rows * d, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      const float* dyr = pdy + static_cast<std::size_t>(i) * d;
      const float* nr = pn + static_cast<std::size_t>(i) * d;
      float sum_dn = 0, sum_dnn = 0;
      for (int j = 0; j < d; ++j) {
        const float dnorm = dyr[j] * pg[j];
        sum_dn += dnorm;
        sum_dnn += dnorm * nr[j];
      }
      const float inv = cache.inv_std[i];
      float* dxr = pdx + static_cast<std::size_t>(i) * d;
      for (int j = 0; j < d; ++j) {
        const float dnorm = dyr[j] * pg[j];
        dxr[j] = inv * (dnorm - sum_dn / d - nr[j] * sum_dnn / d);
      }
    }
  });
  // Pass 2 (serial): parameter gradients accumulate over rows in ascending
  // i -- per column exactly the reference's addition order.
  float* pdg = g.dgamma.data();
  float* pdb = g.dbeta.data();
  for (int i = 0; i < rows; ++i) {
    const float* dyr = pdy + static_cast<std::size_t>(i) * d;
    const float* nr = pn + static_cast<std::size_t>(i) * d;
    for (int j = 0; j < d; ++j) {
      pdg[j] += dyr[j] * nr[j];
      pdb[j] += dyr[j];
    }
  }
  return g;
}

Tensor layernorm_backward_input(const LayerNormCache& cache,
                                const Tensor& gamma, const Tensor& dy) {
  if (!fast_ops_enabled()) {
    return ref::layernorm_backward_input(cache, gamma, dy);
  }
  const int rows = dy.dim(0), d = dy.dim(1);
  Tensor dx = Tensor::uninitialized({rows, d});
  const float* pdy = dy.data();
  const float* pn = cache.normalized.data();
  const float* pg = gamma.data();
  float* pdx = dx.data();
  // The fused kernel's pass 1, verbatim: dx rows are independent and each
  // row's sums run in the reference's j order.
  panel_for(rows, 10.0 * rows * d, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      const float* dyr = pdy + static_cast<std::size_t>(i) * d;
      const float* nr = pn + static_cast<std::size_t>(i) * d;
      float sum_dn = 0, sum_dnn = 0;
      for (int j = 0; j < d; ++j) {
        const float dnorm = dyr[j] * pg[j];
        sum_dn += dnorm;
        sum_dnn += dnorm * nr[j];
      }
      const float inv = cache.inv_std[i];
      float* dxr = pdx + static_cast<std::size_t>(i) * d;
      for (int j = 0; j < d; ++j) {
        const float dnorm = dyr[j] * pg[j];
        dxr[j] = inv * (dnorm - sum_dn / d - nr[j] * sum_dnn / d);
      }
    }
  });
  return dx;
}

LayerNormWeightGrads layernorm_backward_weight(const LayerNormCache& cache,
                                               const Tensor& dy) {
  if (!fast_ops_enabled()) return ref::layernorm_backward_weight(cache, dy);
  const int rows = dy.dim(0), d = dy.dim(1);
  LayerNormWeightGrads g;
  g.dgamma = Tensor({d});
  g.dbeta = Tensor({d});
  // The fused kernel's pass 2, verbatim: serial ascending-i accumulation.
  const float* pdy = dy.data();
  const float* pn = cache.normalized.data();
  float* pdg = g.dgamma.data();
  float* pdb = g.dbeta.data();
  for (int i = 0; i < rows; ++i) {
    const float* dyr = pdy + static_cast<std::size_t>(i) * d;
    const float* nr = pn + static_cast<std::size_t>(i) * d;
    for (int j = 0; j < d; ++j) {
      pdg[j] += dyr[j] * nr[j];
      pdb[j] += dyr[j];
    }
  }
  return g;
}

Tensor softmax_rows(const Tensor& scores) {
  if (!fast_ops_enabled()) return ref::softmax_rows(scores);
  require(scores.rank() == 2, "softmax: rank");
  const int rows = scores.dim(0), n = scores.dim(1);
  Tensor probs = Tensor::uninitialized({rows, n});
  const float* ps = scores.data();
  float* pp = probs.data();
  panel_for(rows, 16.0 * rows * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      softmax_row(ps + static_cast<std::size_t>(i) * n, n,
                  pp + static_cast<std::size_t>(i) * n);
    }
  });
  return probs;
}

Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs) {
  if (!fast_ops_enabled()) return ref::softmax_backward(probs, dprobs);
  require(probs.same_shape(dprobs), "softmax_backward: shape");
  const int rows = probs.dim(0), n = probs.dim(1);
  Tensor ds = Tensor::uninitialized({rows, n});
  const float* pp = probs.data();
  const float* pdp = dprobs.data();
  float* pds = ds.data();
  panel_for(rows, 4.0 * rows * n, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      const float* p = pp + static_cast<std::size_t>(i) * n;
      const float* dp = pdp + static_cast<std::size_t>(i) * n;
      float* out = pds + static_cast<std::size_t>(i) * n;
      float dot = 0;
      for (int j = 0; j < n; ++j) dot += p[j] * dp[j];
      for (int j = 0; j < n; ++j) out[j] = p[j] * (dp[j] - dot);
    }
  });
  return ds;
}

double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits) {
  if (!fast_ops_enabled()) {
    return ref::cross_entropy(logits, targets, scale, dlogits);
  }
  check_cross_entropy(logits, targets);
  const int rows = logits.dim(0), v = logits.dim(1);
  if (dlogits) *dlogits = Tensor::uninitialized({rows, v});
  // Row terms land in a scratch vector so the final reduction can add them
  // in the reference's ascending-row order regardless of panel timing.
  std::vector<double> row_loss(rows);
  const float* pl = logits.data();
  float* pd = dlogits ? dlogits->data() : nullptr;
  panel_for(rows, 20.0 * rows * v, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      row_loss[i] = cross_entropy_row(
          pl + static_cast<std::size_t>(i) * v, v, targets[i], scale,
          pd ? pd + static_cast<std::size_t>(i) * v : nullptr);
    }
  });
  double loss = 0;
  for (int i = 0; i < rows; ++i) loss += row_loss[i];
  return loss;
}

Tensor embedding_lookup(const Tensor& table, std::span<const int> ids) {
  require(table.rank() == 2, "embedding: table rank");
  const int h = table.dim(1);
  Tensor out = Tensor::uninitialized({static_cast<int>(ids.size()), h});
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(ids[i] >= 0 && ids[i] < table.dim(0), "embedding: id range");
    const float* src = table.data() + static_cast<std::size_t>(ids[i]) * h;
    std::copy(src, src + h, out.data() + i * h);
  }
  return out;
}

void embedding_backward(std::span<const int> ids, const Tensor& dy,
                        Tensor* dtable) {
  require(dtable && dtable->rank() == 2 && dy.rank() == 2 &&
              dy.dim(1) == dtable->dim(1) &&
              dy.dim(0) == static_cast<int>(ids.size()),
          "embedding_backward: shape");
  const int h = dy.dim(1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    float* dst = dtable->data() + static_cast<std::size_t>(ids[i]) * h;
    const float* src = dy.data() + i * h;
    for (int j = 0; j < h; ++j) dst[j] += src[j];
  }
}

}  // namespace autopipe::model
