#include "model/transformer.h"

#include <stdexcept>

namespace autopipe::model {

TransformerModel::TransformerModel(const TinySpec& spec) : spec_(spec) {
  util::Rng rng(spec.seed);
  blocks_.push_back(
      std::make_unique<EmbeddingBlock>(spec.vocab, spec.hidden, spec.seq, rng));
  for (int layer = 0; layer < spec.layers; ++layer) {
    blocks_.push_back(std::make_unique<ResidualAttentionBlock>(
        spec.hidden, spec.heads, spec.seq, spec.causal, rng));
    blocks_.push_back(std::make_unique<ResidualFFNBlock>(spec.hidden, rng));
  }
  blocks_.push_back(std::make_unique<HeadBlock>(spec.hidden, spec.vocab, rng));
}

void TransformerModel::zero_grads() {
  for (auto& b : blocks_) b->zero_grads();
}

std::size_t TransformerModel::param_count() const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += b->param_count();
  return n;
}

Tensor TransformerModel::forward(const Tensor& ids) const {
  Tensor x = ids;
  for (const auto& b : blocks_) x = b->forward(x);
  return x;
}

double TransformerModel::reference_step(const Tensor& ids,
                                        std::span<const int> targets,
                                        double scale) {
  std::vector<Tensor> inputs;
  inputs.reserve(blocks_.size());
  Tensor x = ids;
  for (auto& b : blocks_) {
    inputs.push_back(x);
    x = b->forward(x);
  }
  Tensor dlogits;
  const double loss = cross_entropy(x, targets, scale, &dlogits);
  Tensor dy = std::move(dlogits);
  for (int i = num_blocks() - 1; i >= 0; --i) {
    dy = blocks_[i]->backward(inputs[i], dy);
  }
  return loss;
}

double TransformerModel::max_grad_diff(const TransformerModel& other) const {
  if (num_blocks() != other.num_blocks()) {
    throw std::invalid_argument("model shape mismatch");
  }
  double worst = 0;
  for (int i = 0; i < num_blocks(); ++i) {
    const auto& a = blocks_[i]->params();
    const auto& b = other.blocks_[i]->params();
    for (std::size_t p = 0; p < a.size(); ++p) {
      worst = std::max(worst, max_abs_diff(a[p].grad, b[p].grad));
    }
  }
  return worst;
}

void TransformerModel::copy_params_from(const TransformerModel& other) {
  for (int i = 0; i < num_blocks(); ++i) {
    auto& mine = blocks_[i]->params();
    const auto& theirs = other.blocks_[i]->params();
    for (std::size_t p = 0; p < mine.size(); ++p) {
      mine[p].value = theirs[p].value;
    }
  }
}

}  // namespace autopipe::model
