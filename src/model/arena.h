// Caching arena allocator for tensor storage -- the training hot path's
// answer to per-op malloc churn.
//
// Design (borrowing the c10 caching-allocator idea at CPU scale): memory is
// carved from large bump-allocated slabs that are never returned to the OS
// while the arena lives. A fresh request first consults a per-size free
// list (a *hit*: pointer reuse, no system allocator involved); only when
// the free list is empty does the bump pointer advance (a *miss*). Freed
// blocks go back to their size-class free list, so a steady-state training
// loop -- whose tensor shapes repeat every micro-batch -- allocates
// entirely from free lists after the first iteration. The regression test
// in tests/arena_test.cpp pins exactly that: zero mallocs (no slab
// growth) and a ~100% hit rate on the steady-state path.
//
// Sizes are rounded up to 64-float (256-byte) granules, which keeps
// distinct-but-close shapes (ragged micro-batch halves) in a few shared
// buckets while wasting < 1% on transformer-sized blocks. Blocks handed
// out are *dirty*: callers (Tensor) decide whether to zero-fill.
//
// Thread safety: all public methods are safe to call concurrently (the
// pipeline runtime allocates from every stage worker at once); a single
// mutex guards the free lists and the bump pointer. Counters are plain
// fields under the same mutex so stats() is a consistent snapshot.
//
// Lifetime: the process-wide Arena::global() instance is created on first
// use and intentionally never destroyed (it stays reachable, so leak
// checkers are happy), which frees tensor storage from any
// static-destruction-order concerns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace autopipe::model {

struct ArenaStats {
  std::uint64_t hits = 0;    ///< allocations served from a free list
  std::uint64_t misses = 0;  ///< allocations that advanced the bump pointer
  std::uint64_t slab_allocs = 0;  ///< system allocations (new slabs)
  std::size_t bytes_in_use = 0;   ///< currently handed out to live tensors
  std::size_t bytes_free = 0;     ///< cached in free lists
  std::size_t high_water_bytes = 0;  ///< max bytes_in_use ever observed
  std::size_t slab_bytes = 0;        ///< total bytes owned in slabs
};

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The process-wide arena every Tensor draws from. Never destroyed.
  static Arena& global();

  /// Returns a (dirty) buffer of at least `numel` floats. numel == 0
  /// returns nullptr.
  float* allocate(std::size_t numel);

  /// Returns a buffer from allocate() to its size-class free list. `numel`
  /// must be the value passed to allocate(). Null is ignored.
  void release(float* p, std::size_t numel);

  /// Pre-grows the arena so that `bytes` of tensor storage can be handed
  /// out without further system allocation -- the runtime sizes this from
  /// the cost model's activation estimate. No-op when the arena already
  /// owns enough slab space.
  void reserve(std::size_t bytes);

  ArenaStats stats() const;

  /// Drops every cached free block and every slab with no live allocation.
  /// Live blocks are unaffected. Mostly for tests that want a cold arena.
  void trim();

 private:
  struct Slab {
    std::unique_ptr<float[]> data;
    std::size_t capacity = 0;  ///< floats
    std::size_t used = 0;      ///< bump offset, floats
  };

  /// Size-class granularity: 64 floats = 256 bytes.
  static std::size_t rounded(std::size_t numel) {
    return (numel + 63) & ~std::size_t{63};
  }

  float* bump_locked(std::size_t granules);

  mutable std::mutex mu_;
  std::vector<Slab> slabs_;
  std::unordered_map<std::size_t, std::vector<float*>> free_lists_;
  ArenaStats stats_;
};

/// RAII float buffer owned by the global arena: the storage cell behind
/// Tensor. Copies are deep (and counted -- see copy_count()); moves steal
/// the pointer, which is what makes channel handoff and stash shuffling in
/// the runtime copy-free.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  /// Allocates `numel` floats; `zeroed` controls whether the (recycled,
  /// dirty) arena block is cleared. Ops whose kernels assign every output
  /// element skip the clear.
  explicit ArenaBuffer(std::size_t numel, bool zeroed = true);
  ArenaBuffer(const ArenaBuffer& other);
  ArenaBuffer& operator=(const ArenaBuffer& other);
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ~ArenaBuffer();

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::size_t size() const { return size_; }

  /// Deep copies performed process-wide since start -- the runtime's
  /// copy-free handoff tests freeze this around a channel round trip.
  static std::uint64_t copy_count();

 private:
  void reset();

  float* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace autopipe::model
