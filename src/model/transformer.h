// Whole-model assembly and the single-process reference implementation.
//
// TransformerModel owns the block list in exactly the order the cost model
// and Planner see it; the reference train step (forward all blocks, cross
// entropy, backward all blocks) is the ground truth the pipelined runtime's
// gradients are checked against -- the "consistency between distributed
// pipeline running and single machine running" property of §II-B.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "model/blocks.h"

namespace autopipe::model {

/// A laptop-scale transformer; defaults keep tests fast.
struct TinySpec {
  int layers = 2;
  int hidden = 16;
  int heads = 2;
  int vocab = 64;
  int seq = 8;
  bool causal = true;
  std::uint64_t seed = 42;
};

class TransformerModel {
 public:
  explicit TransformerModel(const TinySpec& spec);

  const TinySpec& spec() const { return spec_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  Block& block(int i) { return *blocks_[i]; }
  const Block& block(int i) const { return *blocks_[i]; }

  void zero_grads();
  std::size_t param_count() const;

  /// Forward the whole model; ids is [tokens, 1].
  Tensor forward(const Tensor& ids) const;

  /// Reference training step with recompute semantics: stashes every block
  /// input, computes scaled cross entropy against targets, and walks the
  /// blocks backward. Gradients accumulate into the blocks. Returns loss.
  double reference_step(const Tensor& ids, std::span<const int> targets,
                        double scale);

  /// Largest |grad difference| across all parameters vs `other` (models
  /// must have identical architecture).
  double max_grad_diff(const TransformerModel& other) const;

  /// Copies parameter VALUES from `other` (for twin-model experiments).
  void copy_params_from(const TransformerModel& other);

 private:
  TinySpec spec_;
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace autopipe::model
