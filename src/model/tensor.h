// Minimal dense float32 tensor for the training-runtime substrate.
//
// The runtime exists to prove schedule *correctness* (pipelined gradients
// match single-process gradients bit-closely), not performance, so the
// representation is deliberately simple: contiguous row-major float storage
// with rank <= 3 shapes.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.h"

namespace autopipe::model {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float value);
  /// Gaussian init with the given stddev (deterministic via rng).
  static Tensor randn(std::vector<int> shape, util::Rng& rng,
                      float stddev = 1.0f);

  int rank() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[i]; }
  const std::vector<int>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::size_t i) { return data_[i]; }
  float at(std::size_t i) const { return data_[i]; }

  /// Elementwise in-place accumulate; shapes must match.
  void add_(const Tensor& other);
  void scale_(float factor);
  void fill_(float value);

  /// Splits along dim 0 into [0, rows) and [rows, dim0) -- micro-batch
  /// slicing (§III-C) splits the batch dimension this way.
  std::pair<Tensor, Tensor> split_rows(int rows) const;
  /// Inverse of split_rows.
  static Tensor concat_rows(const Tensor& a, const Tensor& b);

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Max |a-b| over all elements; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace autopipe::model
