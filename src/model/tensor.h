// Minimal dense float32 tensor for the training-runtime substrate.
//
// Contiguous row-major float storage with rank <= 3 shapes. Storage comes
// from the process-wide model::Arena (arena.h): construction is a
// size-class cache hit in steady state, destruction returns the block to
// the cache, and moves are pointer swaps -- which is what lets the pipeline
// runtime hand micro-batch tensors across Channels without copying
// payloads. Copies remain deep (value semantics), and are counted by the
// arena so the hot path can prove it makes none.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "model/arena.h"
#include "util/rng.h"

namespace autopipe::model {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-filled, like the std::vector storage this replaced.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  /// Storage is NOT cleared: for op outputs whose kernel assigns every
  /// element, skipping the zero-fill pass saves a full write sweep.
  static Tensor uninitialized(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  /// Gaussian init with the given stddev (deterministic via rng).
  static Tensor randn(std::vector<int> shape, util::Rng& rng,
                      float stddev = 1.0f);

  int rank() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[i]; }
  const std::vector<int>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& at(std::size_t i) { return data_.data()[i]; }
  float at(std::size_t i) const { return data_.data()[i]; }

  /// Elementwise in-place accumulate; shapes must match.
  void add_(const Tensor& other);
  void scale_(float factor);
  void fill_(float value);

  /// Splits along dim 0 into [0, rows) and [rows, dim0) -- micro-batch
  /// slicing (§III-C) splits the batch dimension this way.
  std::pair<Tensor, Tensor> split_rows(int rows) const;
  /// Inverse of split_rows.
  static Tensor concat_rows(const Tensor& a, const Tensor& b);

  std::string shape_string() const;

 private:
  Tensor(std::vector<int> shape, bool zeroed);

  std::vector<int> shape_;
  ArenaBuffer data_;
};

/// Max |a-b| over all elements; shapes must match.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace autopipe::model
