#include "model/arena.h"

#include <algorithm>
#include <atomic>
#include <cstring>

namespace autopipe::model {

namespace {
// Slabs grow in 4 MiB steps (1M floats); a single over-sized request gets
// its own exactly-sized slab instead of bloating the step.
constexpr std::size_t kSlabFloats = std::size_t{1} << 20;

std::atomic<std::uint64_t> g_buffer_copies{0};
}  // namespace

Arena& Arena::global() {
  // Intentionally leaked (still reachable): tensor storage must outlive
  // every static object that might hold a Tensor.
  static Arena* instance = new Arena();
  return *instance;
}

float* Arena::bump_locked(std::size_t granules) {
  for (Slab& slab : slabs_) {
    if (slab.capacity - slab.used >= granules) {
      float* p = slab.data.get() + slab.used;
      slab.used += granules;
      return p;
    }
  }
  Slab slab;
  slab.capacity = std::max(granules, kSlabFloats);
  slab.data = std::make_unique<float[]>(slab.capacity);
  slab.used = granules;
  ++stats_.slab_allocs;
  stats_.slab_bytes += slab.capacity * sizeof(float);
  slabs_.push_back(std::move(slab));
  return slabs_.back().data.get();
}

float* Arena::allocate(std::size_t numel) {
  if (numel == 0) return nullptr;
  const std::size_t granules = rounded(numel);
  std::lock_guard<std::mutex> lock(mu_);
  float* p = nullptr;
  auto it = free_lists_.find(granules);
  if (it != free_lists_.end() && !it->second.empty()) {
    p = it->second.back();
    it->second.pop_back();
    ++stats_.hits;
    stats_.bytes_free -= granules * sizeof(float);
  } else {
    p = bump_locked(granules);
    ++stats_.misses;
  }
  stats_.bytes_in_use += granules * sizeof(float);
  stats_.high_water_bytes =
      std::max(stats_.high_water_bytes, stats_.bytes_in_use);
  return p;
}

void Arena::release(float* p, std::size_t numel) {
  if (p == nullptr || numel == 0) return;
  const std::size_t granules = rounded(numel);
  std::lock_guard<std::mutex> lock(mu_);
  free_lists_[granules].push_back(p);
  stats_.bytes_in_use -= granules * sizeof(float);
  stats_.bytes_free += granules * sizeof(float);
}

void Arena::reserve(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t want = (bytes + sizeof(float) - 1) / sizeof(float);
  // Only un-bumped slab space counts as spare: free-listed blocks are
  // bound to their size class and cannot serve arbitrary new shapes, so
  // counting them would let reserve() under-provision.
  std::size_t spare = 0;
  for (const Slab& slab : slabs_) spare += slab.capacity - slab.used;
  if (spare >= want) return;
  Slab slab;
  slab.capacity = std::max(want - spare, kSlabFloats);
  slab.data = std::make_unique<float[]>(slab.capacity);
  ++stats_.slab_allocs;
  stats_.slab_bytes += slab.capacity * sizeof(float);
  slabs_.push_back(std::move(slab));
}

ArenaStats Arena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Arena::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  // Free-listed blocks point into slabs, so the lists must be dropped
  // before any slab can be. A slab is removable only when nothing of it
  // was ever handed out or everything handed out has been freed -- the
  // conservative test here is "no live bytes anywhere": with live
  // allocations outstanding we only drop the free lists.
  free_lists_.clear();
  stats_.bytes_free = 0;
  if (stats_.bytes_in_use == 0) {
    for (const Slab& slab : slabs_) {
      stats_.slab_bytes -= slab.capacity * sizeof(float);
    }
    slabs_.clear();
  }
}

ArenaBuffer::ArenaBuffer(std::size_t numel, bool zeroed) : size_(numel) {
  data_ = Arena::global().allocate(numel);
  if (zeroed && data_ != nullptr) {
    std::memset(data_, 0, numel * sizeof(float));
  }
}

ArenaBuffer::ArenaBuffer(const ArenaBuffer& other) : size_(other.size_) {
  data_ = Arena::global().allocate(size_);
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, size_ * sizeof(float));
    g_buffer_copies.fetch_add(1, std::memory_order_relaxed);
  }
}

ArenaBuffer& ArenaBuffer::operator=(const ArenaBuffer& other) {
  if (this == &other) return *this;
  // Reuse the existing block only on an exact size match; mismatched
  // assignment swaps in a fresh allocation.
  if (size_ != other.size_) {
    reset();
    data_ = Arena::global().allocate(other.size_);
    size_ = other.size_;
  }
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_, size_ * sizeof(float));
    g_buffer_copies.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

ArenaBuffer::~ArenaBuffer() { reset(); }

void ArenaBuffer::reset() {
  Arena::global().release(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

std::uint64_t ArenaBuffer::copy_count() {
  return g_buffer_copies.load(std::memory_order_relaxed);
}

}  // namespace autopipe::model
