// Trainable transformer blocks at AutoPipe's sub-layer granularity (Fig. 3).
//
// A model is a sequence of Blocks: [Embedding][ResidualAttentionBlock
// ResidualFFNBlock]*L [Head] -- exactly the decomposition the cost model and
// the Planner partition. Blocks use recompute semantics (activation
// checkpointing, §II-C, used in all the paper's runs): `forward` is pure,
// and `backward(x, dy)` re-runs the forward internally from the stashed
// block input x before accumulating parameter gradients. That means a
// pipeline stage only ever stashes block inputs, matching the memory model.
//
// Activations are [tokens, hidden] matrices with tokens = batch * seq; the
// embedding consumes token ids encoded as a [tokens, 1] float tensor so
// every inter-stage message is a plain Tensor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/ops.h"

namespace autopipe::model {

struct ParamTensor {
  std::string name;
  Tensor value;
  Tensor grad;
};

class Block {
 public:
  /// Opaque per-micro-batch forward state for the no-recompute path
  /// (§II-C's speed side of the tradeoff). The base-class default caches
  /// only the block input and recomputes in backward_cached -- exactly
  /// activation checkpointing; blocks whose intermediates are cheap to
  /// keep (FFN, head) override with a full cache, mirroring Megatron-LM's
  /// selective checkpointing (attention is always recomputed).
  struct Cache {
    virtual ~Cache() = default;
  };

  /// Opaque per-micro-batch state carried from backward_input to the
  /// deferred backward_weight (the zero-bubble B/W split). Holds whatever
  /// the weight half needs -- typically the recomputed activations feeding
  /// each parameter gradient plus the upstream dy slices.
  struct BwState {
    virtual ~BwState() = default;
  };

  virtual ~Block() = default;
  virtual const char* kind() const = 0;

  /// Pure forward of one (possibly sliced) micro-batch.
  virtual Tensor forward(const Tensor& x) const = 0;
  /// Recompute-style backward: recomputes intermediates from x, accumulates
  /// parameter gradients, returns dx.
  virtual Tensor backward(const Tensor& x, const Tensor& dy) = 0;

  /// Grad-input half of the split backward (zero-bubble schedules):
  /// recomputes intermediates from x, returns dx *without* touching
  /// parameter gradients, and stashes what the deferred weight half needs
  /// into *state. The pair
  ///   backward_input(x, dy, &s); ...; backward_weight(*s);
  /// must accumulate parameter gradients bit-identically to
  /// backward(x, dy) -- same additions into the same grad elements in the
  /// same order (float addition is not associative; the runtime equivalence
  /// sweeps rely on this). The base default is the fused fallback: it runs
  /// backward() immediately and leaves *state null (a null state means
  /// backward_weight has nothing to do), which preserves per-parameter
  /// accumulation order because a device retires weight gradients in
  /// micro-batch order either way.
  virtual Tensor backward_input(const Tensor& x, const Tensor& dy,
                                std::unique_ptr<BwState>* state);
  /// Deferred grad-weight half: accumulates parameter gradients from a
  /// state produced by backward_input.
  virtual void backward_weight(const BwState& state);

  /// Forward that also returns the state backward_cached needs. The
  /// default keeps just x (checkpointing).
  virtual std::unique_ptr<Cache> forward_cached(const Tensor& x,
                                                Tensor* y) const;
  /// Backward from a cache produced by forward_cached. Must compute the
  /// same gradients as backward(x, dy).
  virtual Tensor backward_cached(const Cache& cache, const Tensor& dy);

  /// Approximate bytes held by a cache from forward_cached (for memory
  /// accounting in tests and reports).
  virtual std::size_t cache_bytes(const Tensor& x) const;

  std::vector<ParamTensor>& params() { return params_; }
  const std::vector<ParamTensor>& params() const { return params_; }
  void zero_grads();
  std::size_t param_count() const;

 protected:
  struct InputCache : Cache {
    Tensor x;
  };
  ParamTensor& add_param(std::string name, Tensor value);
  std::vector<ParamTensor> params_;
};

/// Token + positional embedding. Input: ids as [tokens, 1] floats; output
/// [tokens, hidden]. Positions are row index modulo seq_len.
class EmbeddingBlock final : public Block {
 public:
  EmbeddingBlock(int vocab, int hidden, int seq_len, util::Rng& rng);
  const char* kind() const override { return "Embedding"; }
  Tensor forward(const Tensor& x) const override;
  Tensor backward(const Tensor& x, const Tensor& dy) override;
  Tensor backward_input(const Tensor& x, const Tensor& dy,
                        std::unique_ptr<BwState>* state) override;
  void backward_weight(const BwState& state) override;

 private:
  struct EmbedBwState;
  std::vector<int> decode_ids(const Tensor& x) const;
  int vocab_, hidden_, seq_len_;
};

/// Pre-LN multi-head self-attention with residual connection.
class ResidualAttentionBlock final : public Block {
 public:
  ResidualAttentionBlock(int hidden, int heads, int seq_len, bool causal,
                         util::Rng& rng);
  const char* kind() const override { return "ResidualAttentionBlock"; }
  Tensor forward(const Tensor& x) const override;
  Tensor backward(const Tensor& x, const Tensor& dy) override;
  Tensor backward_input(const Tensor& x, const Tensor& dy,
                        std::unique_ptr<BwState>* state) override;
  void backward_weight(const BwState& state) override;

 private:
  struct AttnBwState;
  int hidden_, heads_, seq_len_;
  bool causal_;
};

/// Pre-LN two-layer GELU MLP (hidden -> 4*hidden -> hidden) with residual.
class ResidualFFNBlock final : public Block {
 public:
  ResidualFFNBlock(int hidden, util::Rng& rng);
  const char* kind() const override { return "ResidualFFNBlock"; }
  Tensor forward(const Tensor& x) const override;
  Tensor backward(const Tensor& x, const Tensor& dy) override;
  Tensor backward_input(const Tensor& x, const Tensor& dy,
                        std::unique_ptr<BwState>* state) override;
  void backward_weight(const BwState& state) override;
  std::unique_ptr<Cache> forward_cached(const Tensor& x,
                                        Tensor* y) const override;
  Tensor backward_cached(const Cache& cache, const Tensor& dy) override;
  std::size_t cache_bytes(const Tensor& x) const override;

 private:
  struct FullCache;
  struct FFNBwState;
  int hidden_;
};

/// Final layer norm + vocabulary projection (untied head weight; Megatron
/// keeps a separate gradient buffer for the tied weight anyway).
class HeadBlock final : public Block {
 public:
  HeadBlock(int hidden, int vocab, util::Rng& rng);
  const char* kind() const override { return "FinalNormHead"; }
  Tensor forward(const Tensor& x) const override;
  Tensor backward(const Tensor& x, const Tensor& dy) override;
  Tensor backward_input(const Tensor& x, const Tensor& dy,
                        std::unique_ptr<BwState>* state) override;
  void backward_weight(const BwState& state) override;
  std::unique_ptr<Cache> forward_cached(const Tensor& x,
                                        Tensor* y) const override;
  Tensor backward_cached(const Cache& cache, const Tensor& dy) override;
  std::size_t cache_bytes(const Tensor& x) const override;

 private:
  struct FullCache;
  struct HeadBwState;
  int hidden_, vocab_;
};

}  // namespace autopipe::model
