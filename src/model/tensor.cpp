#include "model/tensor.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace autopipe::model {

namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("non-positive tensor dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return t;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float factor) {
  for (auto& x : data_) x *= factor;
}

void Tensor::fill_(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::pair<Tensor, Tensor> Tensor::split_rows(int rows) const {
  if (rank() < 1 || rows <= 0 || rows >= dim(0)) {
    throw std::invalid_argument("split_rows: bad row count");
  }
  std::vector<int> head_shape = shape_, tail_shape = shape_;
  head_shape[0] = rows;
  tail_shape[0] = dim(0) - rows;
  Tensor head(head_shape), tail(tail_shape);
  const std::size_t stride = numel() / static_cast<std::size_t>(dim(0));
  std::copy(data_.begin(), data_.begin() + rows * stride, head.data_.begin());
  std::copy(data_.begin() + rows * stride, data_.end(), tail.data_.begin());
  return {std::move(head), std::move(tail)};
}

Tensor Tensor::concat_rows(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank() || a.rank() < 1) {
    throw std::invalid_argument("concat_rows: rank mismatch");
  }
  for (int i = 1; i < a.rank(); ++i) {
    if (a.dim(i) != b.dim(i)) {
      throw std::invalid_argument("concat_rows: trailing shape mismatch");
    }
  }
  std::vector<int> shape = a.shape_;
  shape[0] = a.dim(0) + b.dim(0);
  Tensor out(shape);
  std::copy(a.data_.begin(), a.data_.end(), out.data_.begin());
  std::copy(b.data_.begin(), b.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(a.numel()));
  return out;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < rank(); ++i) os << (i ? "x" : "") << shape_[i];
  os << ']';
  return os.str();
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shapes");
  double worst = 0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return worst;
}

}  // namespace autopipe::model
