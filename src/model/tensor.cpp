#include "model/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace autopipe::model {

namespace {

std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("non-positive tensor dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), /*zeroed=*/true) {}

Tensor::Tensor(std::vector<int> shape, bool zeroed)
    : shape_(std::move(shape)), data_(shape_numel(shape_), zeroed) {}

Tensor Tensor::uninitialized(std::vector<int> shape) {
  return Tensor(std::move(shape), /*zeroed=*/false);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t = uninitialized(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, util::Rng& rng, float stddev) {
  Tensor t = uninitialized(std::move(shape));
  float* p = t.data();
  for (std::size_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.next_gaussian()) * stddev;
  }
  return t;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("add_: shape mismatch");
  float* a = data();
  const float* b = other.data();
  for (std::size_t i = 0; i < numel(); ++i) a[i] += b[i];
}

void Tensor::scale_(float factor) {
  float* p = data();
  for (std::size_t i = 0; i < numel(); ++i) p[i] *= factor;
}

void Tensor::fill_(float value) {
  std::fill(data(), data() + numel(), value);
}

std::pair<Tensor, Tensor> Tensor::split_rows(int rows) const {
  if (rank() < 1 || rows <= 0 || rows >= dim(0)) {
    throw std::invalid_argument("split_rows: bad row count");
  }
  std::vector<int> head_shape = shape_, tail_shape = shape_;
  head_shape[0] = rows;
  tail_shape[0] = dim(0) - rows;
  Tensor head = uninitialized(head_shape), tail = uninitialized(tail_shape);
  const std::size_t stride = numel() / static_cast<std::size_t>(dim(0));
  std::memcpy(head.data(), data(), rows * stride * sizeof(float));
  std::memcpy(tail.data(), data() + rows * stride,
              (numel() - rows * stride) * sizeof(float));
  return {std::move(head), std::move(tail)};
}

Tensor Tensor::concat_rows(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank() || a.rank() < 1) {
    throw std::invalid_argument("concat_rows: rank mismatch");
  }
  for (int i = 1; i < a.rank(); ++i) {
    if (a.dim(i) != b.dim(i)) {
      throw std::invalid_argument("concat_rows: trailing shape mismatch");
    }
  }
  std::vector<int> shape = a.shape_;
  shape[0] = a.dim(0) + b.dim(0);
  Tensor out = uninitialized(shape);
  std::memcpy(out.data(), a.data(), a.numel() * sizeof(float));
  std::memcpy(out.data() + a.numel(), b.data(), b.numel() * sizeof(float));
  return out;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '[';
  for (int i = 0; i < rank(); ++i) os << (i ? "x" : "") << shape_[i];
  os << ']';
  return os.str();
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("max_abs_diff: shapes");
  double worst = 0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(a.at(i)) - b.at(i)));
  }
  return worst;
}

}  // namespace autopipe::model
