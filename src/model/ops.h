// Forward and backward primitive ops over 2-D views.
//
// Activations between transformer blocks are [tokens, features] matrices
// (batch and sequence flattened); every primitive here has a hand-written
// backward so the runtime's pipelined gradients can be checked exactly
// against the single-process reference.
//
// Two implementations live behind each primitive:
//
//  - model::ref:: -- the retained naive reference: plain loops, one
//    accumulator per output element, summation in index order. This is the
//    semantic ground truth of the op-level golden tests.
//  - the default fast path -- cache-blocked, ILP-unrolled kernels that fan
//    row panels out over a shared thread pool. The kernels perform, for
//    every output element, the *same additions in the same order* as the
//    reference (panels only re-tile the iteration space, and each output
//    element is owned by exactly one task), so results are bit-identical
//    to ref:: at every thread count. tests/ops_golden_test.cpp enforces
//    this for every primitive, including ragged panel-edge shapes.
//
// set_fast_ops(false) routes the public entry points through ref::, which
// is how the naive-vs-fast end-to-end equivalence sweeps and the hot-path
// benchmark baseline run.
#pragma once

#include <span>

#include "model/tensor.h"

namespace autopipe::model {

// -------------------------------------------------------- hot-path config

/// Worker threads the fast kernels fan out over: 0 = auto (hardware
/// concurrency), 1 = run inline (no pool), n = a shared pool of n workers.
/// Results are bit-identical for every setting. Not safe to call while ops
/// are executing on other threads (reconfigures the shared pool).
void set_ops_threads(int threads);
int ops_threads();

/// Toggles the fast kernels (default on). Off routes every primitive
/// through the naive model::ref:: implementations.
void set_fast_ops(bool enabled);
bool fast_ops_enabled();

// ------------------------------------------------------------- primitives

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// dA = dC * B^T.
Tensor matmul_grad_a(const Tensor& dc, const Tensor& b);
/// dB = A^T * dC.
Tensor matmul_grad_b(const Tensor& a, const Tensor& dc);

/// y = x*W + bias (bias broadcast over rows).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias);
struct LinearGrads {
  Tensor dx, dw, dbias;
};
LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy);

// Split backward (zero-bubble B/W decomposition): linear_backward's three
// outputs factor cleanly into an input half (dx, needed immediately to keep
// the pipeline draining) and a weight half (dw/dbias, deferrable into
// bubbles). Each half performs exactly the additions the fused form does
// for its outputs, so
//   {linear_backward_input, linear_backward_weight} == linear_backward
// bit for bit -- the op-level golden tests enforce this.
struct LinearWeightGrads {
  Tensor dw, dbias;
};
/// dx = dy * W^T.
Tensor linear_backward_input(const Tensor& w, const Tensor& dy);
/// dw = x^T * dy, dbias = column sums of dy (ascending-row order).
LinearWeightGrads linear_backward_weight(const Tensor& x, const Tensor& dy);

/// GELU, tanh approximation (as GPT-2 uses).
Tensor gelu(const Tensor& x);
Tensor gelu_backward(const Tensor& x, const Tensor& dy);

/// Per-row layer norm with scale gamma and shift beta (both [features]).
struct LayerNormCache {
  Tensor normalized;          ///< (x - mean) / std, per row
  std::vector<float> inv_std; ///< 1/std per row
};
Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache);
struct LayerNormGrads {
  Tensor dx, dgamma, dbeta;
};
LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy);

// Split layer-norm backward. dx depends only on (cache, gamma, dy) and the
// dgamma/dbeta accumulation only on (cache, dy), so the two halves are
// independent; each runs the fused kernel's loops for its outputs verbatim
// (bit-identical, golden-tested).
struct LayerNormWeightGrads {
  Tensor dgamma, dbeta;
};
Tensor layernorm_backward_input(const LayerNormCache& cache,
                                const Tensor& gamma, const Tensor& dy);
LayerNormWeightGrads layernorm_backward_weight(const LayerNormCache& cache,
                                               const Tensor& dy);

/// Row-wise softmax (optionally causal when rows index query positions of a
/// [s, s] score matrix).
Tensor softmax_rows(const Tensor& scores);
/// dScores from dProbs with probs = softmax(scores):
/// dS = P o (dP - rowsum(dP o P)).
Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs);

/// Mean-free cross entropy: loss = -sum_i log softmax(logits_i)[target_i]
/// * scale. Returns loss and writes dlogits (same scale) -- using an
/// explicit scale (1 / total mini-batch tokens) makes micro-batch gradients
/// add up to exactly the full-batch gradients.
double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits);

/// Gather rows of table[vocab, h] by ids.
Tensor embedding_lookup(const Tensor& table, std::span<const int> ids);
/// Scatter-add dy rows back into dtable.
void embedding_backward(std::span<const int> ids, const Tensor& dy,
                        Tensor* dtable);

// ----------------------------------------- retained naive reference (ref)

/// The naive single-thread implementations the fast kernels are golden-
/// tested against, bit for bit. Summation order per output element is the
/// contract: ascending index, one accumulator.
namespace ref {

Tensor matmul(const Tensor& a, const Tensor& b);
Tensor matmul_grad_a(const Tensor& dc, const Tensor& b);
Tensor matmul_grad_b(const Tensor& a, const Tensor& dc);
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias);
LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy);
Tensor linear_backward_input(const Tensor& w, const Tensor& dy);
LinearWeightGrads linear_backward_weight(const Tensor& x, const Tensor& dy);
Tensor gelu(const Tensor& x);
Tensor gelu_backward(const Tensor& x, const Tensor& dy);
Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache);
LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy);
Tensor layernorm_backward_input(const LayerNormCache& cache,
                                const Tensor& gamma, const Tensor& dy);
LayerNormWeightGrads layernorm_backward_weight(const LayerNormCache& cache,
                                               const Tensor& dy);
Tensor softmax_rows(const Tensor& scores);
Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs);
double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits);

}  // namespace ref

}  // namespace autopipe::model
