// Forward and backward primitive ops over 2-D views.
//
// Activations between transformer blocks are [tokens, features] matrices
// (batch and sequence flattened); every primitive here has a hand-written
// backward so the runtime's pipelined gradients can be checked exactly
// against the single-process reference.
#pragma once

#include <span>

#include "model/tensor.h"

namespace autopipe::model {

/// C[m,n] = A[m,k] * B[k,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// dA = dC * B^T.
Tensor matmul_grad_a(const Tensor& dc, const Tensor& b);
/// dB = A^T * dC.
Tensor matmul_grad_b(const Tensor& a, const Tensor& dc);

/// y = x*W + bias (bias broadcast over rows).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias);
struct LinearGrads {
  Tensor dx, dw, dbias;
};
LinearGrads linear_backward(const Tensor& x, const Tensor& w,
                            const Tensor& dy);

/// GELU, tanh approximation (as GPT-2 uses).
Tensor gelu(const Tensor& x);
Tensor gelu_backward(const Tensor& x, const Tensor& dy);

/// Per-row layer norm with scale gamma and shift beta (both [features]).
struct LayerNormCache {
  Tensor normalized;          ///< (x - mean) / std, per row
  std::vector<float> inv_std; ///< 1/std per row
};
Tensor layernorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 LayerNormCache* cache);
struct LayerNormGrads {
  Tensor dx, dgamma, dbeta;
};
LayerNormGrads layernorm_backward(const LayerNormCache& cache,
                                  const Tensor& gamma, const Tensor& dy);

/// Row-wise softmax (optionally causal when rows index query positions of a
/// [s, s] score matrix).
Tensor softmax_rows(const Tensor& scores);
/// dScores from dProbs with probs = softmax(scores):
/// dS = P o (dP - rowsum(dP o P)).
Tensor softmax_backward(const Tensor& probs, const Tensor& dprobs);

/// Mean-free cross entropy: loss = -sum_i log softmax(logits_i)[target_i]
/// * scale. Returns loss and writes dlogits (same scale) -- using an
/// explicit scale (1 / total mini-batch tokens) makes micro-batch gradients
/// add up to exactly the full-batch gradients.
double cross_entropy(const Tensor& logits, std::span<const int> targets,
                     double scale, Tensor* dlogits);

/// Gather rows of table[vocab, h] by ids.
Tensor embedding_lookup(const Tensor& table, std::span<const int> ids);
/// Scatter-add dy rows back into dtable.
void embedding_backward(std::span<const int> ids, const Tensor& dy,
                        Tensor* dtable);

}  // namespace autopipe::model
