// Synthetic token streams (substitute for Wikipedia/BookCorpus/OpenWebText;
// convergence is out of scope in the paper, §IV-A, so the data only needs
// to be learnable and deterministic).
#pragma once

#include <vector>

#include "model/tensor.h"

namespace autopipe::model {

struct Batch {
  Tensor ids;                ///< [batch*seq, 1] input token ids as floats
  std::vector<int> targets;  ///< next-token targets, batch*seq entries
};

/// Deterministic first-order Markov "language": token t+1 depends on token t
/// through a fixed random transition table, which a causal LM can learn.
class SyntheticCorpus {
 public:
  SyntheticCorpus(int vocab, std::uint64_t seed = 7);

  /// Samples a [batch, seq] batch with next-token targets.
  Batch next_batch(int batch, int seq);

  /// Splits a batch into micro-batches of `micro` samples each; batch must
  /// divide evenly.
  static std::vector<Batch> split_micro_batches(const Batch& batch, int seq,
                                                int micro);

  /// Sampling-stream state, persisted by checkpoints so a resumed run draws
  /// exactly the batches the uninterrupted run would have drawn. The
  /// transition table is derived from the constructor seed alone and is not
  /// part of the stream state.
  util::Rng::State rng_state() const { return rng_.state(); }
  void set_rng_state(const util::Rng::State& s) { rng_.set_state(s); }

 private:
  int vocab_;
  std::vector<int> transition_;  ///< vocab entries: preferred successor
  util::Rng rng_;
};

}  // namespace autopipe::model
