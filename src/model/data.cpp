#include "model/data.h"

#include <stdexcept>

namespace autopipe::model {

SyntheticCorpus::SyntheticCorpus(int vocab, std::uint64_t seed)
    : vocab_(vocab), rng_(seed) {
  transition_.resize(vocab);
  for (int t = 0; t < vocab; ++t) {
    transition_[t] = static_cast<int>(rng_.next_below(vocab));
  }
}

Batch SyntheticCorpus::next_batch(int batch, int seq) {
  Batch out;
  out.ids = Tensor({batch * seq, 1});
  out.targets.resize(static_cast<std::size_t>(batch) * seq);
  for (int b = 0; b < batch; ++b) {
    int token = static_cast<int>(rng_.next_below(vocab_));
    for (int s = 0; s < seq; ++s) {
      out.ids.data()[b * seq + s] = static_cast<float>(token);
      // 80% of the time follow the Markov rule; 20% noise.
      int next = transition_[token];
      if (rng_.next_double() < 0.2) {
        next = static_cast<int>(rng_.next_below(vocab_));
      }
      out.targets[static_cast<std::size_t>(b) * seq + s] = next;
      token = next;
    }
  }
  return out;
}

std::vector<Batch> SyntheticCorpus::split_micro_batches(const Batch& batch,
                                                        int seq, int micro) {
  const int samples = batch.ids.dim(0) / seq;
  if (micro <= 0 || samples % micro != 0) {
    throw std::invalid_argument("micro-batch size must divide the batch");
  }
  std::vector<Batch> out;
  for (int first = 0; first < samples; first += micro) {
    Batch mb;
    mb.ids = Tensor({micro * seq, 1});
    mb.targets.resize(static_cast<std::size_t>(micro) * seq);
    for (int i = 0; i < micro * seq; ++i) {
      mb.ids.data()[i] = batch.ids.at(first * seq + i);
      mb.targets[i] = batch.targets[first * seq + i];
    }
    out.push_back(std::move(mb));
  }
  return out;
}

}  // namespace autopipe::model
