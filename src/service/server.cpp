#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>

#include "util/logging.h"

namespace autopipe::service {

namespace {

bool write_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

PlanServer::PlanServer(PlanService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

bool PlanServer::should_stop() const {
  return stop_.load(std::memory_order_acquire) ||
         service_.shutdown_requested() ||
         (options_.external_stop != nullptr &&
          options_.external_stop->load(std::memory_order_acquire));
}

PlanServer::~PlanServer() {
  stop_.store(true, std::memory_order_release);
  if (listener_.joinable()) listener_.join();
  for (std::thread& t : connections_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

int PlanServer::run() {
  if (!options_.socket_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      AP_LOG(error) << "socket(AF_UNIX) failed: " << std::strerror(errno);
      return 1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      AP_LOG(error) << "socket path too long: " << options_.socket_path;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return 1;
    }
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.socket_path.c_str());  // stale socket from a past run
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      AP_LOG(error) << "bind/listen on " << options_.socket_path
                    << " failed: " << std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return 1;
    }
    AP_LOG(info) << "listening on " << options_.socket_path;
    listener_ = std::thread([this] { listener_loop(); });
  }

  if (options_.stdio) {
    // A SIGTERM/SIGINT installed without SA_RESTART interrupts the blocked
    // read with EINTR, so getline fails and the loop falls through to the
    // graceful drain below even while idle on stdin.
    std::string line;
    while (!should_stop() && std::getline(std::cin, line)) {
      std::cout << service_.handle_line(line) << "\n" << std::flush;
      if (should_stop()) break;
    }
  } else {
    // Socket-only daemon: park until a connection (or a signal) requests
    // shutdown.
    while (!should_stop()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  stop_.store(true, std::memory_order_release);
  return 0;
}

void PlanServer::listener_loop() {
  // Only this thread mutates connections_; the destructor reads it after
  // joining this thread, so no lock is needed.
  while (!should_stop()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;  // timeout: re-check the stop flags
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    connections_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void PlanServer::serve_connection(int fd) {
  // A receive timeout turns the blocking read into a poll, so the
  // connection notices a shutdown initiated elsewhere.
  timeval tv{};
  tv.tv_usec = 100'000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string buffer;
  char chunk[4096];
  while (!should_stop()) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!write_all(fd, service_.handle_line(line) + "\n")) break;
    }
  }
  ::close(fd);
}

}  // namespace autopipe::service
