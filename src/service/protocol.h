// Wire protocol of the plan daemon (plan_serve / plan_client).
//
// Requests and responses are single lines of space-separated `key=value`
// tokens -- the same self-describing text convention as config_io, so a
// request is greppable, diffable and composable with shell tools. Verbs:
//
//   plan [id=<tok>] model=<zoo-name> [mbs=<B>] [seq=<S>] [recompute=0|1]
//        [gpus=<G>] [gbs=<N>] [stages=<0|D>] [slicer=0|1]
//        [source=analytic|cache] [warm=auto|off|<c0,c1,...>]
//        [perturb=<idx>:<fwd>:<bwd>[,...]]
//   ping | stats | shutdown
//
// A `plan` response is one line: a canonical part that is a *pure function
// of the request plus the echoed warm hint*, then optional ` # ...`
// diagnostics that may depend on daemon state (memo hits, history, queue):
//
//   ok id=<id> model=... seq=<effective> ... warm=<hint|-> stages=<D>
//      dp=<N> counts=<c0,c1,...> sliced=<m'> iter_ms=<%.17g>
//      # src=planned sims=3 hits=41 ...
//
// The determinism contract the CI byte-diffs: the canonical part a warm,
// long-lived daemon serves is byte-identical to what offline_response()
// computes in a fresh process from the same request and hint. Everything
// state-dependent (shared memo, plan history, admission queue) is either
// behaviour-neutral by construction (simulations are pure; the warm seed
// joins the wave behind the balanced seed) or quarantined after the `#`.
//
// Failure replies are single lines too: `error id=<id> <message>` for
// malformed/unsatisfiable requests, `busy id=<id> queue=<n>` when admission
// control sheds the request.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/autopipe.h"
#include "costmodel/analytic.h"

namespace autopipe::service {

/// Multiplicative drift applied to one config block's measured timings --
/// how a client describes "the same model, but block 7 now measures 5%
/// slower" without shipping a whole profile.
struct BlockPerturb {
  int block = 0;
  double fwd = 1.0;
  double bwd = 1.0;
};

struct PlanRequest {
  std::string id = "0";
  std::string model;          ///< zoo name (model_by_name) or "tiny"
  int micro_batch = 4;
  int seq_len = 0;            ///< 0 -> the model's default sequence length
  bool recompute = true;
  int gpus = 4;
  long global_batch = 512;
  int stages = 0;             ///< 0 -> sweep divisors of gpus
  bool slicer = true;
  std::string source = "analytic";  ///< "analytic" | "cache"
  /// "auto": the daemon picks a warm seed from its plan history; "off":
  /// always cold; "c0,c1,...": explicit prior partition counts.
  std::string warm = "auto";
  std::vector<BlockPerturb> perturbs;
};

enum class Verb { Plan, Ping, Stats, Shutdown };

struct ParsedLine {
  Verb verb = Verb::Ping;
  PlanRequest request;  ///< valid when verb == Plan
  std::string error;    ///< non-empty -> the line was rejected
};

/// Parses one request line. Unknown verbs, unknown keys, malformed numbers
/// and out-of-range values all land in `error` (with the offending token),
/// never in a throw -- a daemon must survive arbitrary input.
ParsedLine parse_line(const std::string& line);

/// Canonical token string of a request, excluding `id`: the plan history
/// fingerprint. Two requests with equal canonical strings are served the
/// identical canonical response.
std::string canonical_request(const PlanRequest& req);

/// The request minus its block-timing content (no perturb, no warm): the
/// key under which the daemon remembers "the last plan for this shape" as
/// a warm-start candidate for drifted re-requests.
std::string family_key(const PlanRequest& req);

/// Model spec for a request: the zoo by name, plus "tiny" (the
/// CPU-friendly spec of `autopipe_profile --model tiny`, so the
/// source=cache measuring path stays fast enough to smoke-test). Throws
/// std::invalid_argument for unknown models.
costmodel::ModelSpec request_spec(const PlanRequest& req);

/// Analytic config for a request: request_spec + train knobs + perturbs.
/// Throws std::invalid_argument for unknown models or out-of-range perturb
/// indices.
costmodel::ModelConfig request_config(const PlanRequest& req);

/// Applies `perturbs` to an already-obtained config (the cache-sourced
/// path). Throws std::invalid_argument on out-of-range block indices.
void apply_perturbs(costmodel::ModelConfig& config,
                    const std::vector<BlockPerturb>& perturbs);

/// Performance-only knobs threaded into the solver: they never change the
/// canonical bytes (simulations are pure and memoized; threads only fan the
/// same waves out).
struct SolveHooks {
  int threads = 1;
  std::function<core::SimMemo*(const costmodel::ModelConfig& config,
                               int micro_batches,
                               const costmodel::CommModel& comm)>
      memo_provider;
};

struct Solved {
  /// Canonical response tokens *after* "ok id=<id> " -- the id is rendered
  /// by the caller so a history hit can be re-served under a new id.
  std::string canonical;
  core::AutoPipeResult result;
};

/// THE single solver both the daemon and the offline replay call: plans
/// `config` for `req`, seeding the search from `warm_hint` when non-empty.
/// `canonical` depends only on (req, config, warm_hint).
Solved solve_plan(const PlanRequest& req, const costmodel::ModelConfig& config,
                  const std::vector<int>& warm_hint,
                  const SolveHooks& hooks = {});

/// Offline replay: analytic config, cold state, no daemon. Returns the full
/// response line ("ok id=..."), byte-identical in its canonical part to
/// what a daemon serves for the same request + hint. Throws like
/// request_config on bad requests.
std::string offline_response(const PlanRequest& req,
                             const std::vector<int>& warm_hint = {});

/// Strips the ` # ...` diagnostics suffix (returns the line unchanged when
/// there is none).
std::string canonical_part(const std::string& response_line);

/// Extracts the echoed warm hint from a response's `warm=` token; empty for
/// `warm=-` (cold) or when the token is absent.
std::vector<int> parse_warm_hint(const std::string& response_line);

}  // namespace autopipe::service
