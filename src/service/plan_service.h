// Planner-as-a-service: the long-lived request handler behind plan_serve.
//
// A PlanService turns the offline auto_plan facade into a daemon-grade
// handler with three kinds of cross-request state, all behaviour-neutral by
// construction (the canonical response stays a pure function of the request
// plus the echoed warm hint -- see protocol.h):
//
//  * a shared simulation memo pool, keyed by (config digest, micro-batch
//    count): repeated or near-repeated requests skip simulations entirely
//    (simulations are pure, so sharing never changes bytes);
//  * a plan history: an exact repeat (same canonical request) is served in
//    O(1) from the stored canonical response, and the latest plan of each
//    request *family* (same shape, any block timings) seeds warm-started
//    incremental re-planning when a request drifts in at most
//    `warm_max_changed` blocks;
//  * admission control: plan requests run on a bounded worker pool
//    (util::ThreadPool::try_submit); when the backlog reaches `max_queue`
//    the request is shed with a `busy` reply instead of queueing unboundedly.
//
// handle_line() is thread-safe and blocking: transports (stdio loop, unix
// socket connections, bench storm threads) call it concurrently and each
// call returns exactly one response line.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/planner.h"
#include "profiler/session.h"
#include "service/protocol.h"
#include "util/thread_pool.h"

namespace autopipe::service {

struct ServiceOptions {
  int workers = 2;             ///< concurrent plan requests
  std::size_t max_queue = 16;  ///< backlog bound before `busy` shedding
  int planner_threads = 1;     ///< threads inside each planner search
  std::size_t max_memos = 8;   ///< live (config, m) memo entries
  std::size_t max_history = 256;  ///< remembered plans (FIFO eviction)
  /// Auto warm-start bound: seed from the family's last plan only when at
  /// most this many blocks changed timing; beyond it the neighbourhood is
  /// unlikely to transfer and the search runs cold.
  int warm_max_changed = 8;
  /// Profile source for `source=cache` requests (cache_dir, staleness,
  /// drift detection). The daemon's long life is exactly when profiles go
  /// stale, so SessionOptions::drift pays off here.
  profiler::SessionOptions session;
};

struct ServiceStats {
  long requests = 0;
  long planned = 0;       ///< full planner searches run
  long history_hits = 0;  ///< served from the plan history
  long warm_planned = 0;  ///< searches seeded from a warm hint
  long busy_rejected = 0;
  long errors = 0;
  long memo_lookups = 0;  ///< across live + evicted memo entries
  long memo_misses = 0;
  std::size_t memo_pool = 0;
  std::size_t history_size = 0;
  std::size_t queue_depth = 0;

  std::string to_line() const;  ///< the `stats` verb's response line
};

class PlanService {
 public:
  explicit PlanService(ServiceOptions options = {});
  ~PlanService();
  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  /// One request line in, exactly one response line out. Never throws;
  /// malformed or failing requests produce `error ...` lines. Safe to call
  /// from any number of transport threads.
  std::string handle_line(const std::string& line);

  ServiceStats stats() const;
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

 private:
  /// One shared simulation memo plus the config copy it references (SimMemo
  /// holds a reference, so the config must live exactly as long).
  struct MemoEntry {
    std::shared_ptr<const costmodel::ModelConfig> config;
    std::unique_ptr<core::SimMemo> memo;
  };

  struct HistoryEntry {
    std::string canonical;  ///< response tokens after "ok id=<id> "
    std::vector<int> counts;
    std::shared_ptr<const costmodel::ModelConfig> config;
    std::string fingerprint;
    std::string family;
  };

  std::string handle_plan(const PlanRequest& req);
  std::vector<int> resolve_warm_hint(const PlanRequest& req,
                                     const costmodel::ModelConfig& config,
                                     bool& from_family);
  core::SimMemo* memo_for(std::uint64_t config_digest,
                          const std::shared_ptr<const costmodel::ModelConfig>&
                              config,
                          int micro_batches, const costmodel::CommModel& comm,
                          std::vector<std::shared_ptr<MemoEntry>>& pinned);
  void remember(const PlanRequest& req, const std::string& canonical,
                const std::vector<int>& counts,
                std::shared_ptr<const costmodel::ModelConfig> config);

  ServiceOptions options_;
  util::ThreadPool pool_;
  std::atomic<bool> shutdown_{false};

  // --- memo pool (config digest + micro-batch count -> shared SimMemo).
  mutable std::mutex memo_mu_;
  std::unordered_map<std::string, std::shared_ptr<MemoEntry>> memos_;
  std::deque<std::string> memo_order_;
  long retired_memo_lookups_ = 0;
  long retired_memo_misses_ = 0;

  // --- plan history (exact fingerprints + latest plan per family).
  mutable std::mutex history_mu_;
  std::list<HistoryEntry> history_;
  std::unordered_map<std::string, std::list<HistoryEntry>::iterator>
      by_fingerprint_;
  std::unordered_map<std::string, std::list<HistoryEntry>::iterator>
      by_family_;

  // --- counters.
  std::atomic<long> requests_{0};
  std::atomic<long> planned_{0};
  std::atomic<long> history_hits_{0};
  std::atomic<long> warm_planned_{0};
  std::atomic<long> busy_rejected_{0};
  std::atomic<long> errors_{0};
};

}  // namespace autopipe::service
