#include "service/plan_service.h"

#include <exception>
#include <sstream>

#include "costmodel/config_io.h"
#include "costmodel/model_zoo.h"
#include "util/logging.h"

namespace autopipe::service {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Digest of a config's full serialized content (timings included): the
/// memo-pool key component that makes "same shape, drifted timings" a
/// different memo.
std::uint64_t config_digest(const costmodel::ModelConfig& config) {
  std::ostringstream out;
  costmodel::save_model_config(config, out);
  return fnv1a(out.str());
}

std::vector<int> parse_counts(const std::string& csv) {
  std::vector<int> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

/// Blocks whose timings differ between two structurally equal configs --
/// the "how much did this request drift from the family's last plan"
/// distance that gates warm starting.
int changed_blocks(const costmodel::ModelConfig& a,
                   const costmodel::ModelConfig& b) {
  if (a.num_blocks() != b.num_blocks()) return a.num_blocks() + b.num_blocks();
  int changed = 0;
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    if (a.blocks[i].fwd_ms != b.blocks[i].fwd_ms ||
        a.blocks[i].bwd_ms != b.blocks[i].bwd_ms) {
      ++changed;
    }
  }
  return changed;
}

}  // namespace

std::string ServiceStats::to_line() const {
  std::ostringstream out;
  out << "stats requests=" << requests << " planned=" << planned
      << " history_hits=" << history_hits << " warm_planned=" << warm_planned
      << " busy=" << busy_rejected << " errors=" << errors
      << " memo_lookups=" << memo_lookups << " memo_misses=" << memo_misses
      << " memos=" << memo_pool << " history=" << history_size
      << " queue=" << queue_depth;
  return out.str();
}

PlanService::PlanService(ServiceOptions options)
    : options_(std::move(options)), pool_(options_.workers) {}

PlanService::~PlanService() = default;

std::string PlanService::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const ParsedLine parsed = parse_line(line);
  if (!parsed.error.empty()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return "error id=" + parsed.request.id + " " + parsed.error;
  }
  switch (parsed.verb) {
    case Verb::Ping:
      return "pong";
    case Verb::Stats:
      return stats().to_line();
    case Verb::Shutdown:
      shutdown_.store(true, std::memory_order_release);
      return "bye";
    case Verb::Plan:
      break;
  }

  // Admission control: the plan runs on the bounded worker pool; a full
  // backlog sheds the request instead of queueing it unboundedly. The
  // caller's thread blocks on the result, so concurrency comes from the
  // transports (one handle_line per connection/storm thread).
  const PlanRequest req = parsed.request;
  auto submitted = pool_.try_submit([this, req] { return handle_plan(req); },
                                    options_.max_queue);
  if (!submitted) {
    busy_rejected_.fetch_add(1, std::memory_order_relaxed);
    return "busy id=" + req.id +
           " queue=" + std::to_string(pool_.queue_depth());
  }
  return submitted->get();
}

std::vector<int> PlanService::resolve_warm_hint(
    const PlanRequest& req, const costmodel::ModelConfig& config,
    bool& from_family) {
  from_family = false;
  if (req.warm == "off") return {};
  if (req.warm != "auto") return parse_counts(req.warm);

  // auto: seed from the family's last plan when the request drifted in few
  // enough blocks for the old plan's neighbourhood to transfer.
  std::lock_guard<std::mutex> lock(history_mu_);
  const auto it = by_family_.find(family_key(req));
  if (it == by_family_.end()) return {};
  const HistoryEntry& entry = *it->second;
  if (entry.config == nullptr) return {};
  if (changed_blocks(*entry.config, config) > options_.warm_max_changed) {
    return {};
  }
  from_family = true;
  return entry.counts;
}

core::SimMemo* PlanService::memo_for(
    std::uint64_t config_digest,
    const std::shared_ptr<const costmodel::ModelConfig>& config,
    int micro_batches, const costmodel::CommModel& comm,
    std::vector<std::shared_ptr<MemoEntry>>& pinned) {
  if (options_.max_memos == 0) return nullptr;
  const std::string key =
      std::to_string(config_digest) + ":" + std::to_string(micro_batches);

  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = memos_.find(key);
  if (it == memos_.end()) {
    auto entry = std::make_shared<MemoEntry>();
    entry->config = config;
    entry->memo =
        std::make_unique<core::SimMemo>(*entry->config, micro_batches, comm);
    it = memos_.emplace(key, std::move(entry)).first;
    memo_order_.push_back(key);
    // FIFO eviction. In-flight users keep evicted entries alive via their
    // pin; the stats they add after retirement are the one thing this
    // accounting can miss.
    while (memo_order_.size() > options_.max_memos) {
      const std::string victim = memo_order_.front();
      memo_order_.pop_front();
      if (victim == key) {
        memo_order_.push_back(key);
        break;
      }
      const auto vit = memos_.find(victim);
      if (vit != memos_.end()) {
        retired_memo_lookups_ += vit->second->memo->lookups();
        retired_memo_misses_ += vit->second->memo->misses();
        memos_.erase(vit);
      }
    }
  }
  pinned.push_back(it->second);
  return it->second->memo.get();
}

void PlanService::remember(
    const PlanRequest& req, const std::string& canonical,
    const std::vector<int>& counts,
    std::shared_ptr<const costmodel::ModelConfig> config) {
  HistoryEntry entry;
  entry.canonical = canonical;
  entry.counts = counts;
  entry.config = std::move(config);
  entry.fingerprint = canonical_request(req);
  entry.family = family_key(req);

  std::lock_guard<std::mutex> lock(history_mu_);
  if (by_fingerprint_.count(entry.fingerprint) != 0) return;
  history_.push_back(std::move(entry));
  const auto it = std::prev(history_.end());
  by_fingerprint_[it->fingerprint] = it;
  by_family_[it->family] = it;
  while (history_.size() > options_.max_history) {
    const auto victim = history_.begin();
    const auto fit = by_fingerprint_.find(victim->fingerprint);
    if (fit != by_fingerprint_.end() && fit->second == victim) {
      by_fingerprint_.erase(fit);
    }
    const auto fam = by_family_.find(victim->family);
    if (fam != by_family_.end() && fam->second == victim) {
      by_family_.erase(fam);
    }
    history_.pop_front();
  }
}

std::string PlanService::handle_plan(const PlanRequest& req) {
  try {
    // O(1) fast path: an exact repeat is served from the stored canonical
    // response (same fingerprint -> same bytes by the purity contract).
    const std::string fingerprint = canonical_request(req);
    {
      std::lock_guard<std::mutex> lock(history_mu_);
      const auto it = by_fingerprint_.find(fingerprint);
      if (it != by_fingerprint_.end()) {
        history_hits_.fetch_add(1, std::memory_order_relaxed);
        return "ok id=" + req.id + " " + it->second->canonical +
               " # src=history";
      }
    }

    // Obtain the config: analytic zoo build, or the profile session (cache
    // hit / drift-repaired / re-measured) for source=cache.
    std::string profile_note;
    costmodel::ModelConfig config;
    if (req.source == "cache") {
      const costmodel::ModelSpec spec = request_spec(req);
      const profiler::SessionResult session = profiler::obtain_profile(
          spec, {req.micro_batch, req.seq_len, req.recompute},
          options_.session);
      config = session.config;
      apply_perturbs(config, req.perturbs);
      profile_note = session.from_cache
                         ? (session.drift_checked ? "drift_clean" : "hit")
                         : (session.drifted.empty()
                                ? "measured:" + session.miss_reason
                                : "drift_repaired");
    } else {
      config = request_config(req);
    }
    const auto config_sp =
        std::make_shared<const costmodel::ModelConfig>(std::move(config));
    const std::uint64_t digest = config_digest(*config_sp);

    bool from_family = false;
    const std::vector<int> hint =
        resolve_warm_hint(req, *config_sp, from_family);

    // Pins keep shared memo entries alive across this solve even if the
    // pool evicts them concurrently.
    std::vector<std::shared_ptr<MemoEntry>> pinned;
    SolveHooks hooks;
    hooks.threads = options_.planner_threads;
    hooks.memo_provider = [this, digest, config_sp, &pinned](
                              const costmodel::ModelConfig& cfg,
                              int micro_batches,
                              const costmodel::CommModel& comm) {
      (void)cfg;  // the service's own copy backs the memo
      return memo_for(digest, config_sp, micro_batches, comm, pinned);
    };

    const Solved solved = solve_plan(req, *config_sp, hint, hooks);
    planned_.fetch_add(1, std::memory_order_relaxed);
    if (solved.result.warm_started) {
      warm_planned_.fetch_add(1, std::memory_order_relaxed);
    }
    remember(req, solved.canonical, solved.result.plan.partition.counts,
             config_sp);

    std::ostringstream diag;
    diag << " # src=planned evals=" << solved.result.evaluations
         << " sims=" << solved.result.unique_simulations
         << " hits=" << solved.result.cache_hits
         << " warm=" << (solved.result.warm_started ? 1 : 0)
         << " family=" << (from_family ? 1 : 0);
    if (!profile_note.empty()) diag << " profile=" << profile_note;
    return "ok id=" + req.id + " " + solved.canonical + diag.str();
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return "error id=" + req.id + " " + e.what();
  }
}

ServiceStats PlanService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.planned = planned_.load(std::memory_order_relaxed);
  out.history_hits = history_hits_.load(std::memory_order_relaxed);
  out.warm_planned = warm_planned_.load(std::memory_order_relaxed);
  out.busy_rejected = busy_rejected_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    out.memo_lookups = retired_memo_lookups_;
    out.memo_misses = retired_memo_misses_;
    for (const auto& [key, entry] : memos_) {
      (void)key;
      out.memo_lookups += entry->memo->lookups();
      out.memo_misses += entry->memo->misses();
    }
    out.memo_pool = memos_.size();
  }
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    out.history_size = history_.size();
  }
  out.queue_depth = pool_.queue_depth();
  return out;
}

}  // namespace autopipe::service
