#include "service/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "costmodel/model_zoo.h"

namespace autopipe::service {

namespace {

/// %.17g: the shortest-round-trip-safe printf format for doubles -- the
/// canonical response must re-parse to the exact same value.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool parse_long_strict(const std::string& s, long& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_double_strict(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v)) {
    return false;
  }
  out = v;
  return true;
}

bool parse_counts_csv(const std::string& s, std::vector<int>& out) {
  out.clear();
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    long v = 0;
    if (!parse_long_strict(item, v) || v < 1) return false;
    out.push_back(static_cast<int>(v));
  }
  return !out.empty();
}

/// "idx:fwd:bwd[,...]" -> perturb list.
bool parse_perturbs(const std::string& s, std::vector<BlockPerturb>& out) {
  out.clear();
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    std::istringstream fields(item);
    std::string idx, fwd, bwd;
    if (!std::getline(fields, idx, ':') || !std::getline(fields, fwd, ':') ||
        !std::getline(fields, bwd, ':') || fields.rdbuf()->in_avail() != 0) {
      return false;
    }
    BlockPerturb p;
    long block = 0;
    if (!parse_long_strict(idx, block) || block < 0) return false;
    p.block = static_cast<int>(block);
    if (!parse_double_strict(fwd, p.fwd) || p.fwd <= 0) return false;
    if (!parse_double_strict(bwd, p.bwd) || p.bwd <= 0) return false;
    out.push_back(p);
  }
  return true;
}

std::string perturbs_canonical(const std::vector<BlockPerturb>& perturbs) {
  if (perturbs.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < perturbs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(perturbs[i].block) + ":" +
           fmt_double(perturbs[i].fwd) + ":" + fmt_double(perturbs[i].bwd);
  }
  return out;
}

std::string counts_csv(const std::vector<int>& counts) {
  std::string out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(counts[i]);
  }
  return out;
}

}  // namespace

ParsedLine parse_line(const std::string& line) {
  ParsedLine out;
  std::vector<std::string> tokens = split_ws(line);
  if (tokens.empty()) {
    out.error = "empty request";
    return out;
  }
  const std::string& verb = tokens.front();
  if (verb == "ping") {
    out.verb = Verb::Ping;
    return out;
  }
  if (verb == "stats") {
    out.verb = Verb::Stats;
    return out;
  }
  if (verb == "shutdown") {
    out.verb = Verb::Shutdown;
    return out;
  }
  if (verb != "plan") {
    out.error = "unknown verb '" + verb + "'";
    return out;
  }

  out.verb = Verb::Plan;
  PlanRequest& req = out.request;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      out.error = "malformed token '" + tok + "' (want key=value)";
      return out;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    long n = 0;
    if (key == "id") {
      req.id = value;
    } else if (key == "model") {
      req.model = value;
    } else if (key == "mbs") {
      if (!parse_long_strict(value, n) || n < 1) {
        out.error = "bad mbs '" + value + "'";
        return out;
      }
      req.micro_batch = static_cast<int>(n);
    } else if (key == "seq") {
      if (!parse_long_strict(value, n) || n < 0) {
        out.error = "bad seq '" + value + "'";
        return out;
      }
      req.seq_len = static_cast<int>(n);
    } else if (key == "recompute") {
      if (!parse_long_strict(value, n) || (n != 0 && n != 1)) {
        out.error = "bad recompute '" + value + "' (want 0|1)";
        return out;
      }
      req.recompute = n == 1;
    } else if (key == "gpus") {
      if (!parse_long_strict(value, n) || n < 1) {
        out.error = "bad gpus '" + value + "'";
        return out;
      }
      req.gpus = static_cast<int>(n);
    } else if (key == "gbs") {
      if (!parse_long_strict(value, n) || n < 1) {
        out.error = "bad gbs '" + value + "'";
        return out;
      }
      req.global_batch = n;
    } else if (key == "stages") {
      if (!parse_long_strict(value, n) || n < 0) {
        out.error = "bad stages '" + value + "'";
        return out;
      }
      req.stages = static_cast<int>(n);
    } else if (key == "slicer") {
      if (!parse_long_strict(value, n) || (n != 0 && n != 1)) {
        out.error = "bad slicer '" + value + "' (want 0|1)";
        return out;
      }
      req.slicer = n == 1;
    } else if (key == "source") {
      if (value != "analytic" && value != "cache") {
        out.error = "bad source '" + value + "' (want analytic|cache)";
        return out;
      }
      req.source = value;
    } else if (key == "warm") {
      std::vector<int> counts;
      if (value == "auto" || value == "off") {
        req.warm = value;
      } else if (parse_counts_csv(value, counts)) {
        req.warm = counts_csv(counts);
      } else {
        out.error = "bad warm '" + value + "' (want auto|off|c0,c1,...)";
        return out;
      }
    } else if (key == "perturb") {
      if (value != "-" && !parse_perturbs(value, req.perturbs)) {
        out.error = "bad perturb '" + value + "' (want idx:fwd:bwd,...)";
        return out;
      }
    } else {
      out.error = "unknown key '" + key + "'";
      return out;
    }
  }
  if (req.model.empty()) {
    out.error = "plan needs model=<name>";
    return out;
  }
  return out;
}

std::string family_key(const PlanRequest& req) {
  std::ostringstream out;
  out << "model=" << req.model << " mbs=" << req.micro_batch
      << " seq=" << req.seq_len << " recompute=" << (req.recompute ? 1 : 0)
      << " gpus=" << req.gpus << " gbs=" << req.global_batch
      << " stages=" << req.stages << " slicer=" << (req.slicer ? 1 : 0)
      << " source=" << req.source;
  return out.str();
}

std::string canonical_request(const PlanRequest& req) {
  return family_key(req) + " perturb=" + perturbs_canonical(req.perturbs) +
         " warm=" + req.warm;
}

void apply_perturbs(costmodel::ModelConfig& config,
                    const std::vector<BlockPerturb>& perturbs) {
  for (const BlockPerturb& p : perturbs) {
    if (p.block < 0 || p.block >= config.num_blocks()) {
      throw std::invalid_argument("perturb block " + std::to_string(p.block) +
                                  " out of range (config has " +
                                  std::to_string(config.num_blocks()) +
                                  " blocks)");
    }
    config.blocks[static_cast<std::size_t>(p.block)].fwd_ms *= p.fwd;
    config.blocks[static_cast<std::size_t>(p.block)].bwd_ms *= p.bwd;
  }
}

costmodel::ModelSpec request_spec(const PlanRequest& req) {
  if (req.model == "tiny") {
    // The same CPU-friendly spec as `autopipe_profile --model tiny`: small
    // enough that a source=cache miss measures in milliseconds, so the
    // daemon's profile path stays demoable and smokeable end to end.
    costmodel::ModelSpec spec;
    spec.name = "tiny";
    spec.num_layers = 2;
    spec.hidden = 32;
    spec.heads = 4;
    spec.vocab = 128;
    spec.default_seq = 16;
    spec.causal = true;
    return spec;
  }
  return costmodel::model_by_name(req.model);
}

costmodel::ModelConfig request_config(const PlanRequest& req) {
  costmodel::ModelConfig config = costmodel::build_model_config(
      request_spec(req), {req.micro_batch, req.seq_len, req.recompute});
  apply_perturbs(config, req.perturbs);
  return config;
}

Solved solve_plan(const PlanRequest& req, const costmodel::ModelConfig& config,
                  const std::vector<int>& warm_hint, const SolveHooks& hooks) {
  core::AutoPipeOptions options;
  options.num_gpus = req.gpus;
  options.global_batch = req.global_batch;
  options.forced_stages = req.stages;
  options.enable_slicer = req.slicer;
  options.threads = hooks.threads;
  options.warm_start = warm_hint;
  options.memo_provider = hooks.memo_provider;

  Solved out;
  out.result = core::auto_plan(config, options);

  std::ostringstream canonical;
  canonical << family_key(req) << " perturb="
            << perturbs_canonical(req.perturbs) << " warm="
            << (warm_hint.empty() ? "-" : counts_csv(warm_hint)) << " stages="
            << out.result.plan.num_stages() << " dp="
            << out.result.plan.data_parallel << " counts="
            << counts_csv(out.result.plan.partition.counts) << " sliced="
            << out.result.slicing.sliced_micro_batches << " iter_ms="
            << fmt_double(out.result.evaluation.iteration_ms);
  out.canonical = canonical.str();
  return out;
}

std::string offline_response(const PlanRequest& req,
                             const std::vector<int>& warm_hint) {
  const costmodel::ModelConfig config = request_config(req);
  const Solved solved = solve_plan(req, config, warm_hint);
  return "ok id=" + req.id + " " + solved.canonical;
}

std::string canonical_part(const std::string& response_line) {
  const std::size_t pos = response_line.find(" # ");
  return pos == std::string::npos ? response_line
                                  : response_line.substr(0, pos);
}

std::vector<int> parse_warm_hint(const std::string& response_line) {
  std::vector<int> out;
  for (const std::string& tok : split_ws(canonical_part(response_line))) {
    if (tok.rfind("warm=", 0) != 0) continue;
    const std::string value = tok.substr(5);
    if (value == "-" || value == "auto" || value == "off") return {};
    if (!parse_counts_csv(value, out)) out.clear();
    return out;
  }
  return out;
}

}  // namespace autopipe::service
