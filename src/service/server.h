// Transports for the plan daemon: a stdin/stdout line loop and an optional
// AF_UNIX stream socket listener, both feeding PlanService::handle_line.
//
// Protocol framing is one request line in, one response line out, on both
// transports. Responses go to stdout (stdio) or back down the connection
// (socket); all logging stays on stderr, so stdout carries nothing but
// response lines and can be byte-diffed in CI.
//
// Shutdown: a `shutdown` request on any transport, EOF on stdin, or the
// caller's external stop flag (plan_serve wires SIGTERM/SIGINT to it) stops
// the whole server *gracefully*: the listener stops accepting, in-flight
// connections drain their buffered requests and are joined, and the socket
// file is unlinked on exit. The socket listener polls with a short timeout
// so it notices a shutdown initiated on the other transport or the flag.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/plan_service.h"

namespace autopipe::service {

struct ServerOptions {
  bool stdio = true;          ///< serve stdin -> stdout
  std::string socket_path;    ///< empty: no unix-socket listener
  /// Optional external stop flag polled by every serving loop -- the
  /// async-signal-safe bridge from a SIGTERM/SIGINT handler (which may only
  /// touch a lock-free atomic) to a graceful drain. Null = internal
  /// triggers only.
  const std::atomic<bool>* external_stop = nullptr;
};

class PlanServer {
 public:
  PlanServer(PlanService& service, ServerOptions options);
  ~PlanServer();
  PlanServer(const PlanServer&) = delete;
  PlanServer& operator=(const PlanServer&) = delete;

  /// Serves until shutdown (or stdin EOF in stdio mode). Returns 0 on a
  /// clean exit, 1 when the socket listener could not be set up.
  int run();

 private:
  bool should_stop() const;
  void listener_loop();
  void serve_connection(int fd);

  PlanService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::thread listener_;
  std::vector<std::thread> connections_;
  std::atomic<bool> stop_{false};
};

}  // namespace autopipe::service
