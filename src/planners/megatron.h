// Megatron-LM baseline partitioner and interleaved-schedule helper.
//
// Megatron-LM "evenly divides transformer layers into each pipeline stage"
// (§IV-B) and therefore requires the pipeline depth to be a factor of the
// layer count (which is why the paper's GPT-2 762M run uses a 9-stage
// pipeline where the other models use 8). The interleaved schedule
// additionally places `chunks` model chunks per device and needs the
// per-stage layer count to divide evenly into chunks -- the "X" cells of
// Fig. 14(b).
#pragma once

#include "core/autopipe.h"
#include "core/partition.h"
#include "costmodel/topology.h"

namespace autopipe::planners {

/// Does Megatron's uniform partition exist for this depth?
bool megatron_supports(const core::ModelConfig& config, int stages);

/// Uniform partition: layers/stages transformer layers per stage, embedding
/// on the first stage, head on the last. Throws when unsupported.
core::Partition megatron_partition(const core::ModelConfig& config,
                                   int stages);

/// Can the interleaved schedule run with `chunks` model chunks per device?
bool megatron_interleaved_supports(const core::ModelConfig& config, int stages,
                                   int chunks);

/// Per-device, per-chunk stage costs for the interleaved schedule: global
/// model stage (chunk*stages + device) holds layers/(stages*chunks) layers.
std::vector<std::vector<core::StageCost>> megatron_interleaved_costs(
    const core::ModelConfig& config, int stages, int chunks);

/// Full plan: uniform partition with data-parallel size gpus/stages.
core::ParallelPlan megatron_plan(const core::ModelConfig& config, int gpus,
                                 int stages);

/// Comm-aware depth selection: among the supported depths that divide
/// `gpus`, picks the one whose uniform partition simulates fastest (1F1B,
/// m = global_batch / (micro_batch * data_parallel)) under `comm` --
/// heterogeneous links change which depth wins because deeper pipelines
/// cross more (and possibly slower) boundaries. Throws when no depth is
/// supported.
core::ParallelPlan megatron_plan(const core::ModelConfig& config, int gpus,
                                 long global_batch,
                                 const costmodel::CommModel& comm);

}  // namespace autopipe::planners
