#include "planners/units.h"

#include <limits>
#include <stdexcept>

namespace autopipe::planners {

std::vector<LayerUnit> layer_units(const core::ModelConfig& config) {
  std::vector<LayerUnit> units;
  int block = 0;
  const int n = config.num_blocks();
  auto push = [&](int count) {
    LayerUnit u;
    u.first_block = block;
    u.num_blocks = count;
    for (int i = 0; i < count; ++i, ++block) {
      const auto& b = config.blocks[block];
      u.fwd_ms += b.fwd_ms;
      u.bwd_ms += b.bwd_ms;
      u.load_ms += b.fwd_ms + b.bwd_ms;
      u.param_bytes += b.param_bytes;
    }
    units.push_back(u);
  };
  push(1);  // embedding
  for (int layer = 0; layer < config.spec.num_layers; ++layer) {
    push(2);  // attention + FFN stay fused at layer granularity
  }
  push(1);  // head
  if (block != n) throw std::logic_error("unexpected block layout");
  return units;
}

core::Partition partition_from_unit_counts(
    const std::vector<LayerUnit>& units, const std::vector<int>& unit_counts) {
  core::Partition p;
  std::size_t unit = 0;
  for (int count : unit_counts) {
    int blocks = 0;
    for (int i = 0; i < count; ++i, ++unit) blocks += units[unit].num_blocks;
    p.counts.push_back(blocks);
  }
  if (unit != units.size()) {
    throw std::invalid_argument("unit counts do not cover the model");
  }
  return p;
}

std::vector<int> weighted_balanced_split(const std::vector<LayerUnit>& units,
                                         const std::vector<double>& weights) {
  const int n = static_cast<int>(units.size());
  const int p = static_cast<int>(weights.size());
  if (p < 1 || p > n) throw std::invalid_argument("bad stage count");

  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 1; i <= n; ++i) prefix[i] = prefix[i - 1] + units[i - 1].load_ms;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(n + 1, std::vector<double>(p + 1, kInf));
  std::vector<std::vector<int>> parent(n + 1, std::vector<int>(p + 1, -1));
  best[0][0] = 0.0;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= std::min(p, i); ++j) {
      for (int k = j - 1; k <= i - 1; ++k) {
        if (best[k][j - 1] == kInf) continue;
        const double cand = std::max(
            best[k][j - 1], (prefix[i] - prefix[k]) * weights[j - 1]);
        if (cand < best[i][j]) {
          best[i][j] = cand;
          parent[i][j] = k;
        }
      }
    }
  }
  std::vector<int> counts(p);
  int i = n;
  for (int j = p; j >= 1; --j) {
    counts[j - 1] = i - parent[i][j];
    i = parent[i][j];
  }
  return counts;
}

void for_each_composition(
    int total, int parts,
    const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> current(parts, 0);
  const std::function<void(int, int)> recurse = [&](int index, int remaining) {
    if (index == parts - 1) {
      current[index] = remaining;
      fn(current);
      return;
    }
    for (int take = 1; take <= remaining - (parts - 1 - index); ++take) {
      current[index] = take;
      recurse(index + 1, remaining - take);
    }
  };
  if (parts >= 1 && total >= parts) recurse(0, total);
}

}  // namespace autopipe::planners
