#include "planners/megatron.h"

#include <algorithm>
#include <stdexcept>

#include "core/simulator.h"

namespace autopipe::planners {

bool megatron_supports(const core::ModelConfig& config, int stages) {
  return stages >= 1 && config.spec.num_layers % stages == 0;
}

core::Partition megatron_partition(const core::ModelConfig& config,
                                   int stages) {
  if (!megatron_supports(config, stages)) {
    throw std::invalid_argument(
        "Megatron-LM requires the pipeline depth to be a factor of the "
        "model layer count");
  }
  const int per_stage = config.spec.num_layers / stages;
  core::Partition p;
  for (int s = 0; s < stages; ++s) {
    int blocks = 2 * per_stage;
    if (s == 0) ++blocks;           // embedding
    if (s == stages - 1) ++blocks;  // head
    p.counts.push_back(blocks);
  }
  core::validate(config, p);
  return p;
}

bool megatron_interleaved_supports(const core::ModelConfig& config, int stages,
                                   int chunks) {
  return chunks >= 1 && stages >= 1 &&
         config.spec.num_layers % (stages * chunks) == 0;
}

std::vector<std::vector<core::StageCost>> megatron_interleaved_costs(
    const core::ModelConfig& config, int stages, int chunks) {
  if (!megatron_interleaved_supports(config, stages, chunks)) {
    throw std::invalid_argument(
        "interleaved schedule needs layers divisible by stages*chunks");
  }
  const int per_chunk = config.spec.num_layers / (stages * chunks);
  std::vector<std::vector<core::StageCost>> costs(
      stages, std::vector<core::StageCost>(chunks));
  // Global model stage g = chunk*stages + device holds layers
  // [g*per_chunk, (g+1)*per_chunk); block array is [emb][2 per layer][head].
  for (int dev = 0; dev < stages; ++dev) {
    for (int c = 0; c < chunks; ++c) {
      const int g = c * stages + dev;
      const int first_layer = g * per_chunk;
      core::StageCost& sc = costs[dev][c];
      for (int layer = first_layer; layer < first_layer + per_chunk; ++layer) {
        for (int b = 1 + 2 * layer; b < 3 + 2 * layer; ++b) {
          sc.fwd_ms += config.blocks[b].fwd_ms;
          sc.bwd_ms += config.blocks[b].bwd_ms;
        }
      }
      if (g == 0) {
        sc.fwd_ms += config.blocks[0].fwd_ms;
        sc.bwd_ms += config.blocks[0].bwd_ms;
      }
      if (g == stages * chunks - 1) {
        const auto& head = config.blocks[config.num_blocks() - 1];
        sc.fwd_ms += head.fwd_ms;
        sc.bwd_ms += head.bwd_ms;
      }
    }
  }
  return costs;
}

core::ParallelPlan megatron_plan(const core::ModelConfig& config, int gpus,
                                 int stages) {
  if (gpus % stages != 0) {
    throw std::invalid_argument("gpus must be a multiple of stages");
  }
  core::ParallelPlan plan;
  plan.algorithm = "megatron";
  plan.partition = megatron_partition(config, stages);
  plan.uniform_dp = true;
  plan.data_parallel = gpus / stages;
  return plan;
}

core::ParallelPlan megatron_plan(const core::ModelConfig& config, int gpus,
                                 long global_batch,
                                 const costmodel::CommModel& comm) {
  if (gpus < 1) throw std::invalid_argument("need at least one GPU");
  const long mbs = config.train.micro_batch_size;
  int best_depth = -1;
  double best_ms = 0;
  for (int d = 1; d <= gpus; ++d) {
    if (gpus % d != 0 || !megatron_supports(config, d)) continue;
    const long m = std::max<long>(1, global_batch / (mbs * (gpus / d)));
    if (m < d) continue;  // pipeline deeper than its micro-batch stream
    const core::Partition p = megatron_partition(config, d);
    const double ms =
        core::simulate_pipeline(core::stage_costs(config, p),
                                static_cast<int>(m), comm)
            .iteration_ms;
    // Ties break toward the shallower pipeline (fewer boundaries to cross).
    if (best_depth < 0 || ms < best_ms) {
      best_depth = d;
      best_ms = ms;
    }
  }
  if (best_depth < 0) {
    throw std::invalid_argument(
        "no supported Megatron-LM pipeline depth for this GPU count");
  }
  return megatron_plan(config, gpus, best_depth);
}

}  // namespace autopipe::planners
