#include "planners/piper.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "costmodel/memory.h"
#include "planners/units.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace autopipe::planners {

namespace {

long ceil_div(long a, long b) { return (a + b - 1) / b; }

struct StageView {
  double load_ms = 0;
  double param_bytes = 0;
  double stash_bytes = 0;
  double work_bytes = 0;
};

std::vector<StageView> views(const core::ModelConfig& config,
                             const std::vector<LayerUnit>& units,
                             const std::vector<int>& unit_counts) {
  std::vector<StageView> out(unit_counts.size());
  std::size_t unit = 0;
  for (std::size_t s = 0; s < unit_counts.size(); ++s) {
    for (int i = 0; i < unit_counts[s]; ++i, ++unit) {
      const LayerUnit& u = units[unit];
      out[s].load_ms += u.load_ms;
      out[s].param_bytes += u.param_bytes;
      for (int b = u.first_block; b < u.first_block + u.num_blocks; ++b) {
        out[s].stash_bytes += config.blocks[b].stash_bytes;
        out[s].work_bytes =
            std::max(out[s].work_bytes, config.blocks[b].work_bytes);
      }
    }
  }
  return out;
}

}  // namespace

core::ParallelPlan piper_plan(const core::ModelConfig& config, int gpus,
                              const PiperOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<LayerUnit> units = layer_units(config);
  const int mbs = config.train.micro_batch_size;
  const long m = std::max<long>(1, options.global_batch / mbs);
  const costmodel::CommModel comm =
      options.comm.value_or(costmodel::CommModel(config.comm_ms));

  core::ParallelPlan best;
  best.algorithm = "piper";
  best.uniform_dp = false;
  best.shard_micro_batches = false;  // replicas process whole micro-batches
  double best_obj = std::numeric_limits<double>::infinity();

  // Materialize the DP search space (depth x device composition) up front
  // so candidates can be scored on a pool; the reduction below walks them
  // in enumeration order, which makes the parallel plan identical to the
  // serial scan (first strict minimum wins).
  struct Candidate {
    int d;
    std::vector<int> replicas;
  };
  std::vector<Candidate> candidates;
  const int max_d =
      std::min({gpus, options.max_stages, static_cast<int>(units.size())});
  for (int d = 1; d <= max_d; ++d) {
    for_each_composition(gpus, d, [&](const std::vector<int>& replicas) {
      candidates.push_back({d, replicas});
    });
  }

  struct Score {
    bool ok = false;
    double obj = 0;
    std::vector<int> unit_counts;
  };
  std::vector<Score> scores(candidates.size());
  auto score_one = [&](int idx) {
    const Candidate& cand = candidates[static_cast<std::size_t>(idx)];
    Score& out = scores[static_cast<std::size_t>(idx)];
    const int d = cand.d;
    const std::vector<int>& replicas = cand.replicas;
    // Replicas of a stage process whole micro-batches round-robin:
    // effective per-micro-batch throughput cost is load * ceil(m/g)/m.
    std::vector<double> weights(d);
    for (int s = 0; s < d; ++s) {
      if (replicas[s] > m) return;  // an idle replica is never optimal
      weights[s] = static_cast<double>(ceil_div(m, replicas[s])) /
                   static_cast<double>(m);
    }
    const std::vector<int> unit_counts =
        weighted_balanced_split(units, weights);
    const std::vector<StageView> stage = views(config, units, unit_counts);

    // Memory constraint with activation accounting. Whole-micro-batch
    // replication keeps full-size activations on every replica, and
    // Piper's model is coarser than exact 1F1B accounting -- it charges
    // every stage the full pipeline depth of in-flight stashes. Both
    // steer it away from shallow pipelines toward the deeper schemes the
    // paper observes (4 stages at 4 GPUs, 5-6 at 8 GPUs).
    for (int s = 0; s < d; ++s) {
      const double total =
          stage[s].param_bytes * costmodel::kStateBytesPerParamByte +
          stage[s].stash_bytes * d + stage[s].work_bytes;
      if (total > config.device.mem_capacity_bytes) return;
    }

    // TPS objective: (m + d - 1) * bottleneck plus the slowest stage
    // all-reduce, per iteration (constant 1/global_batch factor dropped).
    double bottleneck = 0, allreduce = 0;
    for (int s = 0; s < d; ++s) {
      bottleneck = std::max(bottleneck, stage[s].load_ms * weights[s]);
      allreduce = std::max(allreduce,
                           costmodel::ring_allreduce_ms(
                               config.link, stage[s].param_bytes,
                               replicas[s]));
    }
    // Uniform pricing keeps the historical closed form as one multiply for
    // bit-identity; heterogeneous boundaries pay one round trip per hop.
    double round_trip_comm = 0;
    if (comm.is_uniform()) {
      round_trip_comm = 2.0 * (d - 1) * comm.uniform_ms();
    } else {
      for (int g = 0; g + 1 < d; ++g) round_trip_comm += 2.0 * comm.hop_ms(g);
    }
    out.obj = static_cast<double>(m + d - 1) * bottleneck + round_trip_comm +
              allreduce;
    out.unit_counts = unit_counts;
    out.ok = true;
  };

  const int threads = util::resolve_threads(options.threads);
  if (threads > 1 && candidates.size() > 1) {
    util::ThreadPool pool(threads);
    // Chunked fan-out: one task per slab of candidates keeps the
    // per-task overhead negligible against the split DP inside.
    const int n = static_cast<int>(candidates.size());
    const int chunks = std::min(n, threads * 4);
    const int chunk = (n + chunks - 1) / chunks;
    util::parallel_for(&pool, chunks, [&](int c) {
      const int lo = c * chunk;
      const int hi = std::min(n, lo + chunk);
      for (int i = lo; i < hi; ++i) score_one(i);
    });
  } else {
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
      score_one(i);
    }
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (scores[i].ok && scores[i].obj < best_obj) {
      best_obj = scores[i].obj;
      best.partition = partition_from_unit_counts(units, scores[i].unit_counts);
      best.stage_devices = candidates[i].replicas;
    }
  }

  best.planning_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  AP_LOG(info) << "piper: " << best.num_stages() << " stages, objective "
               << best_obj << ", " << best.planning_ms << " ms ("
               << candidates.size() << " candidates, " << threads
               << " threads)";
  return best;
}

}  // namespace autopipe::planners
