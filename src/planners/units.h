// Shared helpers for the baseline planners (DAPPLE, Piper).
//
// Both baselines plan at *layer* granularity (the paper's point: neither
// splits transformer layers into sub-layer blocks, which is why their
// schemes cannot balance the embedding/head asymmetry). A LayerUnit is one
// indivisible planning unit: the embedding, one full transformer layer
// (attention + FFN), or the head.
#pragma once

#include <functional>
#include <vector>

#include "core/partition.h"

namespace autopipe::planners {

struct LayerUnit {
  double load_ms = 0;      ///< f + b of one micro-batch
  double fwd_ms = 0;
  double bwd_ms = 0;
  double param_bytes = 0;
  int first_block = 0;     ///< range into the config's block array
  int num_blocks = 0;
};

/// Collapses a model's sub-layer blocks into layer-granularity units:
/// [embedding][layer 0]...[layer L-1][head].
std::vector<LayerUnit> layer_units(const core::ModelConfig& config);

/// Converts a units-per-stage assignment back to a block partition.
core::Partition partition_from_unit_counts(
    const std::vector<LayerUnit>& units, const std::vector<int>& unit_counts);

/// Contiguous split of `units` into `stages` parts minimizing
/// max_s(stage_load_s * weight_s); weight_s models per-stage micro-batch
/// sharding (e.g. 1/replicas). Returns units-per-stage counts.
std::vector<int> weighted_balanced_split(const std::vector<LayerUnit>& units,
                                         const std::vector<double>& weights);

/// Enumerates all compositions of `total` devices into `parts` positive
/// integers, invoking `fn` for each. Used by the baselines' device-
/// assignment search (this is the dimension AutoPipe deliberately skips,
/// §IV-D).
void for_each_composition(int total, int parts,
                          const std::function<void(const std::vector<int>&)>& fn);

}  // namespace autopipe::planners
