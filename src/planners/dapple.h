// DAPPLE Planner baseline (reimplementation).
//
// DAPPLE [12] plans at layer granularity and, unlike AutoPipe, searches the
// device-assignment dimension: each pipeline stage may get a different
// number of replicas, and each candidate is evaluated across device
// placements (which GPUs of which node host which stage). Micro-batches are
// sharded sample-wise across a stage's replicas.
//
// The reimplementation keeps DAPPLE's documented behaviours that the paper
// measures against:
//   * steady-state throughput objective with *smooth* 1/replicas scaling --
//     it ignores sample-lumpiness (ceil(mbs/g)/mbs), so it happily picks
//     shapes like 1+3 GPUs whose real throughput is worse (Table III);
//   * all-reduce avoidance pushes the parameter-heavy embedding onto a
//     single unreplicated first stage and crams the remaining layers into a
//     heavily replicated second stage (the 7/17-layer split and the
//     16-GPU 1+15 assignment whose 15 replicas exceed micro-batch size 4,
//     the "-" runtime-error cells);
//   * a parameters-only memory model that misses activations, so it selects
//     2-stage plans for GPT-2 1.3B that OOM in practice (Table IV);
//   * the largest search space of the three planners (Fig. 12).
#pragma once

#include <optional>

#include "core/autopipe.h"
#include "costmodel/topology.h"

namespace autopipe::planners {

struct DappleOptions {
  int max_stages = 8;
  int gpus_per_node = 4;
  long global_batch = 512;
  /// Worker threads for scoring the (depth x composition x placement)
  /// search space (1 = serial, 0 = auto). Scoring is parallel; the
  /// tie-band reduction stays sequential in enumeration order, so the
  /// chosen plan is identical for every value.
  int threads = 1;
  /// Cluster links the placement search prices stage boundaries with.
  /// Unset = gpus_per_node-wide nodes with PCIe inside and 100G InfiniBand
  /// across -- the historical hard-coded behaviour, bit-identically.
  std::optional<costmodel::ClusterTopology> topology = std::nullopt;
};

core::ParallelPlan dapple_plan(const core::ModelConfig& config, int gpus,
                               const DappleOptions& options);

}  // namespace autopipe::planners
