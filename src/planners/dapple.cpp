#include "planners/dapple.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "costmodel/memory.h"
#include "planners/units.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace autopipe::planners {

namespace {

/// DAPPLE's internal estimate of one iteration: steady-state bottleneck
/// throughput (smooth 1/g scaling -- the optimism the paper exposes) plus a
/// warmup/cooldown term and the slowest per-stage gradient all-reduce.
double dapple_objective(const core::ModelConfig& config,
                        const std::vector<LayerUnit>& units,
                        const std::vector<int>& unit_counts,
                        const std::vector<int>& replicas, long micro_batches,
                        const costmodel::LinkProfile& link) {
  const int d = static_cast<int>(replicas.size());
  double bottleneck = 0, warmup = 0, allreduce = 0;
  std::size_t unit = 0;
  for (int s = 0; s < d; ++s) {
    double load = 0, params = 0;
    for (int i = 0; i < unit_counts[s]; ++i, ++unit) {
      load += units[unit].load_ms;
      params += units[unit].param_bytes;
    }
    bottleneck = std::max(bottleneck, load / replicas[s]);
    warmup += load / replicas[s];
    allreduce = std::max(
        allreduce, costmodel::ring_allreduce_ms(link, params, replicas[s]));
  }
  return static_cast<double>(micro_batches) * bottleneck + warmup +
         2.0 * (d - 1) * config.comm_ms + allreduce;
}

/// DAPPLE's memory check: parameter state only, and at the classic
/// mixed-precision cost of 16 bytes/param (fp16 weight+grad + fp32 master
/// and Adam moments). It misses both the activations and the fp32 main
/// gradients the Megatron-LM backend actually allocates -- which is why its
/// GPT-2 1.3B plans pass this check and then OOM at runtime (Table IV).
bool dapple_memory_ok(const std::vector<LayerUnit>& units,
                      const std::vector<int>& unit_counts,
                      double capacity_bytes) {
  constexpr double kDappleStateBytesPerParamByte = 8.0;  // 16 B / 2 B fp16
  std::size_t unit = 0;
  for (int count : unit_counts) {
    double params = 0;
    for (int i = 0; i < count; ++i, ++unit) params += units[unit].param_bytes;
    if (params * kDappleStateBytesPerParamByte > capacity_bytes) {
      return false;
    }
  }
  return true;
}

}  // namespace

core::ParallelPlan dapple_plan(const core::ModelConfig& config, int gpus,
                               const DappleOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<LayerUnit> units = layer_units(config);
  const long m = std::max<long>(
      1, options.global_batch / config.train.micro_batch_size);

  core::ParallelPlan best;
  best.algorithm = "dapple";
  best.uniform_dp = false;
  double best_obj = std::numeric_limits<double>::infinity();
  // DAPPLE prefers larger data parallelism in later stages (§IV-D); among
  // near-tied candidates (its cost model cannot distinguish configurations
  // within its profiling noise) it keeps the one with the most replicas on
  // the last stage.
  constexpr double kTieBand = 1.10;
  int best_tail_replicas = 0;

  // DAPPLE's search space is pipelined hybrid configurations; plain data
  // parallelism is outside it -- the paper observes it "tends to partition
  // the model into a two-stage pipeline" even when pure DP is optimal
  // (Table III). Materialized up front so scoring can fan out on a pool;
  // the tie-band update below is order-sensitive, so the reduction stays a
  // sequential walk in enumeration order (making the result independent of
  // the thread count).
  struct Candidate {
    int d;
    std::vector<int> replicas;
  };
  std::vector<Candidate> candidates;
  const int max_d =
      std::min({gpus, options.max_stages, static_cast<int>(units.size())});
  for (int d = std::min(2, gpus); d <= max_d; ++d) {
    for_each_composition(gpus, d, [&](const std::vector<int>& replicas) {
      candidates.push_back({d, replicas});
    });
  }

  struct Score {
    bool ok = false;
    std::vector<int> unit_counts;
    std::vector<double> offset_objs;  ///< objective at each placement offset
  };
  std::vector<Score> scores(candidates.size());
  const costmodel::ClusterTopology topo = options.topology.value_or(
      costmodel::ClusterTopology{options.gpus_per_node, costmodel::pcie_p2p(),
                                 costmodel::infiniband_100g()});
  auto score_one = [&](int idx) {
    const Candidate& cand = candidates[static_cast<std::size_t>(idx)];
    Score& out = scores[static_cast<std::size_t>(idx)];
    const int d = cand.d;
    const std::vector<int>& replicas = cand.replicas;
    // Balance per-replica load under DAPPLE's smooth scaling.
    std::vector<double> weights(d);
    for (int s = 0; s < d; ++s) weights[s] = 1.0 / replicas[s];
    const std::vector<int> unit_counts =
        weighted_balanced_split(units, weights);
    if (!dapple_memory_ok(units, unit_counts,
                          config.device.mem_capacity_bytes)) {
      return;
    }
    // Device-placement search (the dimension that blows up DAPPLE's
    // planning time, Fig. 12): lay the replicas out contiguously at every
    // cyclic device offset and score the stage-boundary hops with the
    // node-aware link (PCIe inside a node, InfiniBand across).
    out.offset_objs.resize(gpus);
    for (int offset = 0; offset < gpus; ++offset) {
      double boundary_penalty = 0;
      int device = offset;
      for (int s = 0; s + 1 < d; ++s) {
        device = (device + replicas[s]) % gpus;
        const auto& link = topo.link_between((device - 1 + gpus) % gpus, device);
        boundary_penalty +=
            2.0 * costmodel::transfer_ms(
                      link, config.train.micro_batch_size *
                                static_cast<double>(config.train.seq_len) *
                                config.spec.hidden * 2.0);
      }
      out.offset_objs[offset] =
          dapple_objective(config, units, unit_counts, replicas, m,
                           config.link) +
          boundary_penalty;
    }
    out.unit_counts = unit_counts;
    out.ok = true;
  };

  const int threads = util::resolve_threads(options.threads);
  if (threads > 1 && candidates.size() > 1) {
    util::ThreadPool pool(threads);
    const int n = static_cast<int>(candidates.size());
    const int chunks = std::min(n, threads * 4);
    const int chunk = (n + chunks - 1) / chunks;
    util::parallel_for(&pool, chunks, [&](int c) {
      const int lo = c * chunk;
      const int hi = std::min(n, lo + chunk);
      for (int i = lo; i < hi; ++i) score_one(i);
    });
  } else {
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
      score_one(i);
    }
  }

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!scores[i].ok) continue;
    const std::vector<int>& replicas = candidates[i].replicas;
    for (int offset = 0; offset < gpus; ++offset) {
      const double obj = scores[i].offset_objs[offset];
      const bool clearly_better = obj * kTieBand < best_obj;
      const bool tie_preferred = obj < best_obj * kTieBand &&
                                 replicas.back() > best_tail_replicas;
      if (clearly_better || tie_preferred) {
        best_obj = std::min(best_obj, obj);
        best_tail_replicas = replicas.back();
        best.partition = partition_from_unit_counts(units, scores[i].unit_counts);
        best.stage_devices = replicas;
      }
    }
  }

  best.planning_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  AP_LOG(info) << "dapple: " << best.num_stages() << " stages, objective "
               << best_obj << ", " << best.planning_ms << " ms ("
               << candidates.size() << " candidates x " << gpus
               << " placements, " << threads << " threads)";
  return best;
}

}  // namespace autopipe::planners
