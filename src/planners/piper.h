// Piper baseline (reimplementation).
//
// Piper [23] minimizes Time-Per-Sample with a two-level search: contiguous
// layer-granularity pipeline splits times a per-stage data-parallel width.
// Relative to AutoPipe it
//   * models activations in its memory constraint (so, unlike DAPPLE, it
//     avoids OOM on GPT-2 1.3B, Table IV);
//   * accounts for sample lumpiness when sharding micro-batches, so it
//     never produces DAPPLE's infeasible 15-replica stages;
//   * still plans at layer granularity and tolerates imbalance through its
//     TPS objective, preferring deeper pipelines (4-6 stages) whose loads
//     are uneven (Fig. 13);
//   * searches the data-parallel dimension exhaustively, which makes its
//     planning an order of magnitude slower than AutoPipe's heuristic
//     (Fig. 12).
#pragma once

#include <optional>

#include "core/autopipe.h"
#include "costmodel/topology.h"

namespace autopipe::planners {

struct PiperOptions {
  int max_stages = 8;
  long global_batch = 512;
  /// Worker threads for scoring the (depth x replica-assignment) DP
  /// candidates (1 = serial, 0 = auto). Candidates are scored in parallel
  /// but reduced in enumeration order, so the chosen plan is identical for
  /// every value.
  int threads = 1;
  /// Per-boundary comm model the TPS objective prices pipeline hops with.
  /// Unset = uniform at config.comm_ms (the historical scalar term,
  /// bit-identically).
  std::optional<costmodel::CommModel> comm = std::nullopt;
};

core::ParallelPlan piper_plan(const core::ModelConfig& config, int gpus,
                              const PiperOptions& options);

}  // namespace autopipe::planners
