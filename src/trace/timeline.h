// ASCII pipeline timelines, in the style of the paper's Fig. 5/8 diagrams.
#pragma once

#include <string>

#include "sim/executor.h"

namespace autopipe::trace {

struct TimelineOptions {
  int width = 100;  ///< character columns for the whole iteration
  bool show_legend = true;
};

/// Renders one text row per device: forwards as digits (micro-batch id mod
/// 10, uppercase-shifted when sliced halves), backwards as letters, idle as
/// '.'. Useful for eyeballing Warmup/1F1B/Cooldown structure and bubbles.
std::string render_timeline(const sim::ExecResult& result,
                            const TimelineOptions& options = {});

}  // namespace autopipe::trace
