// Chrome-trace (chrome://tracing / Perfetto) export of executed schedules.
#pragma once

#include <string>

#include "sim/executor.h"

namespace autopipe::trace {

/// Serializes an execution trace as a Chrome trace-event JSON document:
/// one row per device, one complete event per op ("F3" = forward of
/// micro-batch 3, halves suffixed "a"/"b", chunks ".c<k>").
std::string to_chrome_trace(const sim::ExecResult& result);

/// Writes to_chrome_trace() output to `path`; returns false on I/O failure.
bool write_chrome_trace(const sim::ExecResult& result, const std::string& path);

}  // namespace autopipe::trace
