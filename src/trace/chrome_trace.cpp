#include "trace/chrome_trace.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace autopipe::trace {

namespace {

const char* type_letter(core::OpType type) {
  switch (type) {
    case core::OpType::Forward:        return "F";
    case core::OpType::Backward:       return "B";
    case core::OpType::BackwardInput:  return "Bi";
    case core::OpType::BackwardWeight: return "Bw";
  }
  return "?";
}

const char* type_category(core::OpType type) {
  switch (type) {
    case core::OpType::Forward:        return "forward";
    case core::OpType::Backward:       return "backward";
    case core::OpType::BackwardInput:  return "backward_input";
    case core::OpType::BackwardWeight: return "backward_weight";
  }
  return "?";
}

std::string op_label(const core::ScheduleOp& op) {
  // Built up with += (not `"F" + to_string(...)`): gcc 12's -Wrestrict
  // false-positives on the temporary-concatenation form at -O2.
  std::string label = type_letter(op.type);
  label += std::to_string(op.micro_batch);
  if (op.half == 0) label += "a";
  if (op.half == 1) label += "b";
  if (op.chunk > 0) label += ".c" + std::to_string(op.chunk);
  return label;
}

}  // namespace

std::string to_chrome_trace(const sim::ExecResult& result) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const sim::TimedOp& t : result.trace) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << op_label(t.op) << "\",\"ph\":\"X\",\"pid\":0"
       << ",\"tid\":" << t.device
       << ",\"ts\":" << static_cast<long long>(t.start_ms * 1000.0)
       << ",\"dur\":"
       << static_cast<long long>((t.end_ms - t.start_ms) * 1000.0)
       << ",\"cat\":\"" << type_category(t.op.type) << "\"}";
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const sim::ExecResult& result,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    AP_LOG(error) << "cannot open " << path;
    return false;
  }
  out << to_chrome_trace(result);
  return static_cast<bool>(out);
}

}  // namespace autopipe::trace
