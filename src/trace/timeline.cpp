#include "trace/timeline.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace autopipe::trace {

std::string render_timeline(const sim::ExecResult& result,
                            const TimelineOptions& options) {
  int devices = 0;
  for (const auto& t : result.trace) devices = std::max(devices, t.device + 1);
  const double span = std::max(result.iteration_ms, 1e-9);
  const int width = std::max(10, options.width);

  std::vector<std::string> rows(devices, std::string(width, '.'));
  for (const auto& t : result.trace) {
    const int c0 = static_cast<int>(t.start_ms / span * width);
    int c1 = static_cast<int>(t.end_ms / span * width);
    c1 = std::max(c1, c0 + 1);
    char glyph = '?';
    switch (t.op.type) {
      case core::OpType::Forward:
        glyph = static_cast<char>('0' + t.op.micro_batch % 10);
        break;
      case core::OpType::BackwardWeight:
        // Deferred grad-weight ops render as uppercase so the zero-bubble
        // fill pattern is visible next to the lowercase grad-input letters.
        glyph = static_cast<char>('A' + t.op.micro_batch % 26);
        break;
      case core::OpType::Backward:
      case core::OpType::BackwardInput:
        glyph = static_cast<char>('a' + t.op.micro_batch % 26);
        break;
    }
    for (int c = c0; c < std::min(c1, width); ++c) {
      rows[t.device][c] = glyph;
    }
    // Mark the start of a sliced half so halves are visible.
    if (t.op.half >= 0 && c0 < width) {
      rows[t.device][c0] = t.op.type == core::OpType::Forward ? '^' : 'v';
    }
  }

  std::ostringstream os;
  for (int d = 0; d < devices; ++d) {
    os << "stage " << d << " |" << rows[d] << "|\n";
  }
  if (options.show_legend) {
    os << "(digits: forward micro-batch, lowercase: backward/grad-input, "
          "uppercase: deferred grad-weight, ^/v: sliced half "
          "start, '.': idle; iteration "
       << span << " ms)\n";
  }
  return os.str();
}

}  // namespace autopipe::trace
