// AutoPipe Slicer (§III-C, Algorithm 2).
//
// Halves the pipeline startup overhead by splitting the first `mb`
// micro-batches into two halves and rescheduling the Warmup phase (Fig. 8).
// Algorithm 2 solves the minimal `mb`: it tracks when each stage becomes
// free for its first 1F1B forward (`startt`), rolls the half micro-batches
// through the pipeline (`endt`, with halved forward and communication
// costs), and stops as soon as the first unbroken micro-batch can be fed
// without stalling behind the split halves.
//
// Slicing doubles the forward-communication count, so the first-half
// transfer of the Warmup phase's last sliced forward is cancelled and
// aggregated with the second half (the blockage fix of §III-C); the
// schedule builder in core/schedule.h encodes that.
#pragma once

#include <span>

#include "core/partition.h"
#include "costmodel/topology.h"

namespace autopipe::core {

struct SlicerResult {
  /// Number of micro-batches to split (0 when slicing cannot help, e.g.
  /// single-stage pipelines).
  int sliced_micro_batches = 0;
  /// Startup overhead estimate of the plain 1F1B schedule: the full-size
  /// first micro-batch flowing to the last stage.
  double startup_before_ms = 0;
  /// Startup overhead estimate after slicing: the first half flowing to the
  /// last stage (the "halve the startup overhead" claim).
  double startup_after_ms = 0;
};

/// Runs Algorithm 2 on the per-stage costs of a partition scheme. `comm`
/// prices each stage boundary (a plain double converts to the uniform model
/// and reproduces the paper's scalar arithmetic); every halved transfer pays
/// half the hop's cost. `micro_batches` bounds the answer (cannot slice more
/// micro-batches than an iteration has).
SlicerResult solve_slicing(std::span<const StageCost> stages,
                           const costmodel::CommModel& comm,
                           int micro_batches);

SlicerResult solve_slicing(const ModelConfig& config,
                           const Partition& partition, int micro_batches);

}  // namespace autopipe::core
