// Concrete pipeline schedules as per-device op orders.
//
// The analytic simulator (simulator.h) evaluates 1F1B timing in closed
// recurrences; this module instead *constructs* the schedules -- including
// the baselines (GPipe, Megatron-LM's interleaved 1F1B) and AutoPipe's
// sliced 1F1B -- as explicit per-device execution orders that the
// discrete-event executor (sim/executor.h) times and the thread runtime
// (runtime/pipeline_runtime.h) really executes.
#pragma once

#include <span>
#include <vector>

#include "core/simulator.h"
#include "costmodel/memory.h"

namespace autopipe::core {

using costmodel::ScheduleKind;

struct ScheduleOp {
  OpType type = OpType::Forward;
  int micro_batch = 0;
  /// -1: whole micro-batch; 0/1: first/second half of a sliced micro-batch.
  int half = -1;
  /// Virtual model chunk (Megatron interleaved schedule); 0 otherwise.
  int chunk = 0;
  /// §III-C blockage fix: this op's outgoing activation transfer is
  /// cancelled and aggregated with its sibling half's transfer.
  bool aggregated_comm = false;

  bool is_half() const { return half >= 0; }
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::OneFOneB;
  int num_stages = 0;
  int num_micro_batches = 0;
  int chunks = 1;
  int sliced_micro_batches = 0;
  double comm_ms = 0;  ///< full activation-tensor hop cost
  /// durations[device][chunk]: per-chunk whole-micro-batch fwd/bwd times.
  std::vector<std::vector<StageCost>> durations;
  /// order[device]: the exact execution order on that device.
  std::vector<std::vector<ScheduleOp>> order;

  double op_duration_ms(int device, const ScheduleOp& op) const;
  /// Global model-stage index of (device, chunk): chunk*num_stages + device.
  int global_stage(int device, int chunk) const {
    return chunk * num_stages + device;
  }
};

/// Plain non-interleaved 1F1B (Megatron-LM default). Requires m >= stages.
Schedule build_1f1b(std::span<const StageCost> stages, int micro_batches,
                    double comm_ms);

/// GPipe: all forwards, then all backwards in reverse micro-batch order.
Schedule build_gpipe(std::span<const StageCost> stages, int micro_batches,
                     double comm_ms);

/// AutoPipe: 1F1B with the first `sliced` micro-batches split in half and
/// the Warmup phase rescheduled (Fig. 8(b)); `sliced == 0` degenerates to
/// plain 1F1B.
Schedule build_sliced_1f1b(std::span<const StageCost> stages,
                           int micro_batches, double comm_ms, int sliced);

/// Megatron-LM interleaved 1F1B: `chunk_costs[device][chunk]` are the
/// per-chunk costs; every device hosts the same number of chunks and
/// micro_batches must be a multiple of the device count.
Schedule build_interleaved(
    const std::vector<std::vector<StageCost>>& chunk_costs, int micro_batches,
    double comm_ms);

/// Structural invariants: every (micro-batch, chunk, half-pair) appears on
/// every device exactly once per direction, forwards precede their own
/// backwards in device order. Throws std::logic_error on violation.
void validate(const Schedule& schedule);

}  // namespace autopipe::core
