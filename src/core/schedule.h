// Concrete pipeline schedules as per-device op orders.
//
// The analytic simulator (simulator.h) evaluates 1F1B timing in closed
// recurrences; this module instead *constructs* the schedules -- including
// the baselines (GPipe, Megatron-LM's interleaved 1F1B) and AutoPipe's
// sliced 1F1B -- as explicit per-device execution orders that the
// discrete-event executor (sim/executor.h) times and the thread runtime
// (runtime/pipeline_runtime.h) really executes.
#pragma once

#include <span>
#include <vector>

#include "core/simulator.h"
#include "costmodel/memory.h"

namespace autopipe::core {

using costmodel::ScheduleKind;

struct ScheduleOp {
  OpType type = OpType::Forward;
  int micro_batch = 0;
  /// -1: whole micro-batch; 0/1: first/second half of a sliced micro-batch.
  int half = -1;
  /// Virtual model chunk (Megatron interleaved schedule); 0 otherwise.
  int chunk = 0;
  /// §III-C blockage fix: this op's outgoing activation transfer is
  /// cancelled and aggregated with its sibling half's transfer.
  bool aggregated_comm = false;

  bool is_half() const { return half >= 0; }
};

struct Schedule {
  ScheduleKind kind = ScheduleKind::OneFOneB;
  int num_stages = 0;
  int num_micro_batches = 0;
  int chunks = 1;
  int sliced_micro_batches = 0;
  /// Full activation-tensor transfer time across each global stage boundary
  /// (size chunks*num_stages - 1), frozen from the CommModel at build time
  /// so a schedule is self-contained for execution.
  std::vector<double> boundary_comm_ms;
  /// durations[device][chunk]: per-chunk whole-micro-batch fwd/bwd times.
  std::vector<std::vector<StageCost>> durations;
  /// order[device]: the exact execution order on that device.
  std::vector<std::vector<ScheduleOp>> order;

  double op_duration_ms(int device, const ScheduleOp& op) const;
  /// Transfer time across global boundary g -> g+1. Throws (out_of_range,
  /// a logic_error) when the boundary vector is malformed.
  double hop_ms(int boundary) const {
    return boundary_comm_ms.at(static_cast<std::size_t>(boundary));
  }
  /// Global model-stage index of (device, chunk): chunk*num_stages + device.
  int global_stage(int device, int chunk) const {
    return chunk * num_stages + device;
  }
};

/// Plain non-interleaved 1F1B (Megatron-LM default). Requires m >= stages.
/// `comm` prices each boundary; a plain double converts to the uniform model.
Schedule build_1f1b(std::span<const StageCost> stages, int micro_batches,
                    const CommModel& comm);

/// GPipe: all forwards, then all backwards in reverse micro-batch order.
Schedule build_gpipe(std::span<const StageCost> stages, int micro_batches,
                     const CommModel& comm);

/// AutoPipe: 1F1B with the first `sliced` micro-batches split in half and
/// the Warmup phase rescheduled (Fig. 8(b)); `sliced == 0` degenerates to
/// plain 1F1B.
Schedule build_sliced_1f1b(std::span<const StageCost> stages,
                           int micro_batches, const CommModel& comm,
                           int sliced);

/// Megatron-LM interleaved 1F1B: `chunk_costs[device][chunk]` are the
/// per-chunk costs; every device hosts the same number of chunks and
/// micro_batches must be a multiple of the device count.
Schedule build_interleaved(
    const std::vector<std::vector<StageCost>>& chunk_costs, int micro_batches,
    const CommModel& comm);

/// Zero-bubble (2BP-style) schedule: backward is split into a grad-input op
/// (BackwardInput, propagates dx upstream) and a grad-weight op
/// (BackwardWeight, local). A deterministic event-driven greedy places each
/// device's ops: warmup forwards up to n - device in flight, grad-input as
/// soon as its downstream dx arrives, and deferred grad-weight ops filling
/// the bubbles -- capped at n - device deferred micro-batches so the memory
/// model's W-deferral bound holds. When `stages` carries no B/W split
/// (bwd_input_ms == bwd_weight_ms == 0) the builder assumes 2/3 : 1/3 of
/// bwd_ms. Requires m >= stages.
Schedule make_zero_bubble(std::span<const StageCost> stages, int micro_batches,
                          const CommModel& comm);

/// Options for the shared ScheduleKind dispatch below.
struct BuildScheduleOptions {
  int sliced = 0;  ///< AutoPipeSliced: leading micro-batches split in half
  int chunks = 1;  ///< Interleaved: virtual model chunks per device
};

/// Single-site ScheduleKind -> builder dispatch: every caller that needs "a
/// schedule of kind K over these per-device costs" (runtime, supervisor,
/// planner, CLIs) routes through here so a new kind is a one-switch change.
/// Interleaved replicates `stages[d]` across `opts.chunks` chunks per
/// device. Throws std::invalid_argument on an out-of-range kind.
Schedule build_schedule(ScheduleKind kind, std::span<const StageCost> stages,
                        int micro_batches, const CommModel& comm,
                        const BuildScheduleOptions& opts = {});

/// Structural invariants: every (micro-batch, chunk, half-pair) appears on
/// every device exactly once per direction -- where "backward direction"
/// means either one fused Backward or a BackwardInput/BackwardWeight pair in
/// that order -- forwards precede their own backwards in device order, and
/// the boundary cost vector has one finite non-negative entry per global
/// stage boundary. Throws std::logic_error on violation.
void validate(const Schedule& schedule);

/// One scheduled op with its analytic timing (evaluate_schedule).
struct EvalOp {
  ScheduleOp op;
  int device = 0;
  double start_ms = 0;
  double end_ms = 0;
  /// Binding predecessor index into ScheduleEval::ops (-1 at sources).
  int critical_pred = -1;
  bool on_critical_path = false;
};

/// Analytic longest-path timing of a Schedule: the schedule-graph analogue
/// of simulate_pipeline's recurrences, valid for every ScheduleKind.
struct ScheduleEval {
  double iteration_ms = 0;
  /// When the last device starts its first forward (startup overhead §II-B).
  double startup_ms = 0;
  std::vector<EvalOp> ops;
  /// Indices into `ops` along the critical path, in execution order.
  std::vector<int> critical_path;
};

/// Evaluates `schedule` by longest-path relaxation over the same dependency
/// graph sim::execute builds (intra-device order, cross-stage transfers with
/// halved/aggregated sliced-half lags), with ties broken toward the higher
/// device ("closest to the last pipeline stage", Fig. 4). Matches
/// sim::execute's fault-free, zero-overhead timing exactly. Validates the
/// schedule; throws std::logic_error on malformed or cyclic schedules.
ScheduleEval evaluate_schedule(const Schedule& schedule);

}  // namespace autopipe::core
