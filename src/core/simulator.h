// Pipeline simulator (§III-B.1).
//
// Simulates one training iteration of a synchronous 1F1B pipeline from the
// per-stage forward/backward durations and the per-boundary communication
// model (costmodel::CommModel; the paper's scalar `Comm` is its uniform
// degenerate case), implementing the paper's three-phase recurrences with
// `Comm` generalized to Comm(g) -- the cost of crossing boundary g -> g+1:
//
//   Warmup    start(x,k) tracks the straightforward FP chain;
//   1F1B      t(x,y,0) = max(t(x-1,y-1,0)+f_{x-1}, t(x,y-1,1)+b_x)
//                        [+Comm(x-1), x!=0]
//             t(x,y,1) = max(t(x+1,y,1)+b_{x+1}, t(x,y,0)+f_x)
//                        [+Comm(x), x!=n-1]
//             with stage x owning max(0, m-n+x+1) blocks;
//   Cooldown  t(x,y) = max(t(x,y+1)+b_x, t(x+1,y)+b_{x+1}) + Comm(x).
//
// It then reconstructs the critical path by backtracking the argmax of every
// max, breaking ties toward the higher stage so the path is the unique one
// "closest to the last pipeline stage" (Fig. 4), and derives the master
// stage: the stage whose intra-stage FP/BP chain the path rides in the 1F1B
// phase.
#pragma once

#include <span>
#include <vector>

#include "core/partition.h"
#include "costmodel/topology.h"

namespace autopipe::core {

using costmodel::CommModel;

enum class Phase { Warmup, Steady, Cooldown };
/// Backward is the fused backward pass; zero-bubble schedules split it into
/// BackwardInput (grad-input, B -- propagates dx upstream) and
/// BackwardWeight (grad-weight, W -- local, deferrable to fill bubbles).
enum class OpType { Forward, Backward, BackwardInput, BackwardWeight };

struct SimOp {
  int id = -1;
  int stage = 0;
  int micro_batch = 0;
  Phase phase = Phase::Warmup;
  OpType type = OpType::Forward;
  double start_ms = 0;
  double end_ms = 0;
  /// Predecessor op on the longest path ending here (-1 at sources).
  int critical_pred = -1;
  bool on_critical_path = false;
};

struct SimResult {
  double iteration_ms = 0;
  /// Startup overhead (§II-B): when the last stage starts its first FP,
  /// i.e. the time spent receiving the first micro-batch's activations.
  double startup_ms = 0;
  /// The paper's Warmup-phase estimate: total FP time of one micro-batch
  /// plus the n-1 hops of communication.
  double warmup_estimate_ms = 0;
  int master_stage = 0;
  std::vector<SimOp> ops;
  /// Op ids along the critical path, in execution order.
  std::vector<int> critical_path;
};

/// Simulates `micro_batches` >= num_stages micro-batches through the given
/// stages under `comm` (a plain double converts to the uniform model and
/// reproduces the paper's scalar arithmetic bit-for-bit). Throws
/// std::invalid_argument on fewer micro-batches than stages (the paper's
/// configurations always satisfy m >= n).
SimResult simulate_pipeline(std::span<const StageCost> stages,
                            int micro_batches, const CommModel& comm);

/// Convenience: derive stage costs from a partition of `config` and price
/// every hop uniformly at `config.comm_ms`.
SimResult simulate_pipeline(const ModelConfig& config,
                            const Partition& partition, int micro_batches);

}  // namespace autopipe::core
