#include "core/autopipe.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "core/balanced_dp.h"
#include "core/planner.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/stats.h"
#include "util/table.h"

namespace autopipe::core {

namespace {

long ceil_div(long a, long b) { return (a + b - 1) / b; }

/// Gradient all-reduce time: every stage's replica group reduces that
/// stage's fp16 gradients concurrently on disjoint devices, so the slowest
/// group binds.
double allreduce_ms(const ModelConfig& config, const Partition& partition,
                    const std::vector<int>& replicas,
                    const costmodel::LinkProfile& link) {
  double worst = 0;
  for (int s = 0; s < partition.num_stages(); ++s) {
    const double grads = stage_param_bytes(config, partition, s);
    worst = std::max(worst,
                     costmodel::ring_allreduce_ms(link, grads, replicas[s]));
  }
  return worst;
}

/// Peak bytes on one replica of stage `s` under 1F1B: parameter state
/// (18 B/param), in-flight activation stashes (scaled by sample sharding
/// and split across whole-micro-batch replicas), and the transient
/// working set.
double detail_stage_bytes(const ModelConfig& config, const Partition& p,
                          int s, int d, int m, double act_shard,
                          int inflight_div) {
  const double params = stage_param_bytes(config, p, s);
  const double stash = stage_stash_bytes(config, p, s) * act_shard;
  const double work = stage_work_bytes(config, p, s) * act_shard;
  const int in_flight = std::min(m, d - s);
  const int per_replica = (in_flight + inflight_div - 1) / inflight_div;
  return params * costmodel::kStateBytesPerParamByte + stash * per_replica +
         work;
}

}  // namespace

bool partition_fits_memory(const ModelConfig& config,
                           const Partition& partition, int micro_batches) {
  const int d = partition.num_stages();
  for (int s = 0; s < d; ++s) {
    if (detail_stage_bytes(config, partition, s, d, micro_batches, 1.0, 1) >
        config.device.mem_capacity_bytes) {
      return false;
    }
  }
  return true;
}

int ParallelPlan::total_devices() const {
  if (uniform_dp) return data_parallel * num_stages();
  return std::accumulate(stage_devices.begin(), stage_devices.end(), 0);
}

PlanEvaluation evaluate_plan(
    const ModelConfig& config, const ParallelPlan& plan, long global_batch,
    const std::optional<costmodel::CommModel>& comm_opt) {
  const CommModel comm = comm_opt.value_or(CommModel(config.comm_ms));
  PlanEvaluation ev;
  const int d = plan.num_stages();
  const int mbs = config.train.micro_batch_size;
  const auto costs = stage_costs(config, plan.partition);

  ev.stage_loads_ms = stage_loads(config, plan.partition);
  ev.balance_stddev_ms = util::stddev(ev.stage_loads_ms);

  std::vector<int> replicas(d, 1);
  if (plan.uniform_dp) {
    replicas.assign(d, plan.data_parallel);
  } else {
    if (static_cast<int>(plan.stage_devices.size()) != d) {
      throw std::invalid_argument("stage_devices size mismatch");
    }
    replicas = plan.stage_devices;
  }

  // A single-stage "pipeline" replicated g ways is plain data parallelism:
  // replicas process whole micro-batches, nothing is sharded.
  const bool pure_dp = d == 1;
  const bool sharded = !plan.uniform_dp && !pure_dp && plan.shard_micro_batches;

  // --- Runtime feasibility: sharding one micro-batch across more replicas
  // than it has samples fails at runtime (Table III, DAPPLE at 16 GPUs).
  if (sharded) {
    for (int s = 0; s < d; ++s) {
      if (replicas[s] > mbs) {
        ev.runtime_error = true;
        ev.note = "stage " + std::to_string(s) + " has " +
                  std::to_string(replicas[s]) +
                  " replicas > micro-batch size " + std::to_string(mbs);
        return ev;
      }
    }
  }

  // --- Micro-batch count and effective per-micro-batch stage costs.
  long m;
  std::vector<StageCost> effective = costs;
  std::vector<double> act_shard(d, 1.0);  // activation-memory scaling
  std::vector<int> per_replica_inflight_div(d, 1);
  double latency_correction_ms = 0;
  if (plan.uniform_dp || pure_dp) {
    const int dp = plan.uniform_dp ? plan.data_parallel : replicas[0];
    m = ceil_div(global_batch, static_cast<long>(mbs) * dp);
    if (m < 1) m = 1;
  } else if (sharded) {
    // DAPPLE: each micro-batch's samples split across the stage's replicas.
    // Sharding is lumpy (4 samples over 3 replicas -> ceil(4/3) = 2 on the
    // slowest) and small per-replica batches run at lower kernel
    // efficiency; kBatchEff models the fixed per-kernel cost in sample
    // units. DAPPLE's own planner assumes smooth 1/g scaling -- the
    // optimism Table III exposes.
    constexpr double kBatchEff = 4.0;
    m = ceil_div(global_batch, mbs);
    for (int s = 0; s < d; ++s) {
      const int samples = (mbs + replicas[s] - 1) / replicas[s];
      const double factor = (samples + kBatchEff) / (mbs + kBatchEff);
      act_shard[s] = static_cast<double>(samples) / mbs;
      effective[s].fwd_ms *= factor;
      effective[s].bwd_ms *= factor;
    }
  } else {
    // Piper: replicas process whole micro-batches round-robin; throughput
    // scales by the wave count ceil(m/g)/m, activations stay full size.
    // Latency does NOT scale -- one micro-batch still takes the full stage
    // time, so the pipeline's fill/drain path pays the unscaled costs;
    // `latency_correction_ms` restores that difference below.
    m = ceil_div(global_batch, mbs);
    for (int s = 0; s < d; ++s) {
      const double factor =
          static_cast<double>(ceil_div(m, replicas[s])) / static_cast<double>(m);
      latency_correction_ms +=
          (costs[s].fwd_ms + costs[s].bwd_ms) * (1.0 - factor);
      effective[s].fwd_ms *= factor;
      effective[s].bwd_ms *= factor;
      per_replica_inflight_div[s] = replicas[s];
    }
  }

  // --- Memory: each replica holds the whole stage's parameters; activation
  // stashes shrink with micro-batch sharding.
  for (int s = 0; s < d; ++s) {
    const double total = detail_stage_bytes(config, plan.partition, s, d,
                                            static_cast<int>(m), act_shard[s],
                                            per_replica_inflight_div[s]);
    if (total > config.device.mem_capacity_bytes) {
      ev.oom = true;
      ev.note = "stage " + std::to_string(s) + " needs " +
                util::Table::fmt(total / (1ull << 30), 1) + " GiB";
      return ev;
    }
  }

  // --- Iteration time: pipeline + gradient all-reduce.
  double pipeline_ms;
  if (d == 1) {
    pipeline_ms = static_cast<double>(m) *
                  (effective[0].fwd_ms + effective[0].bwd_ms);
  } else if (m >= d) {
    pipeline_ms =
        simulate_pipeline(effective, static_cast<int>(m), comm).iteration_ms;
  } else {
    // Degenerate (fewer micro-batches than stages): GPipe-like bound. The
    // uniform closed form is kept as a single multiply for bit-identity
    // with the historical scalar arithmetic.
    double sum = 0, bottleneck = 0;
    for (const auto& c : effective) {
      sum += c.load();
      bottleneck = std::max(bottleneck, c.load());
    }
    double round_trip_comm = 0;
    if (comm.is_uniform()) {
      round_trip_comm = 2 * (d - 1) * comm.uniform_ms();
    } else {
      for (int g = 0; g + 1 < d; ++g) round_trip_comm += 2 * comm.hop_ms(g);
    }
    pipeline_ms = sum + (m - 1) * bottleneck + round_trip_comm;
  }
  ev.iteration_ms = pipeline_ms + latency_correction_ms +
                    allreduce_ms(config, plan.partition, replicas, config.link);
  return ev;
}

AutoPipeResult auto_plan(const ModelConfig& config,
                         const AutoPipeOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const int G = options.num_gpus;
  if (G < 1) throw std::invalid_argument("need at least one GPU");
  const int mbs = config.train.micro_batch_size;

  const CommModel comm = options.comm.value_or(CommModel(config.comm_ms));
  AutoPipeResult best;
  bool has_best = false;

  // One pool serves every depth's planner search (PlannerOptions::pool),
  // so workers are spawned once per auto_plan call, not once per plan().
  std::unique_ptr<util::ThreadPool> pool;
  if (const int threads = util::resolve_threads(options.threads);
      threads > 1) {
    pool = std::make_unique<util::ThreadPool>(threads);
  }

  std::vector<int> depths;
  if (options.forced_stages > 0) {
    depths.push_back(options.forced_stages);
  } else {
    for (int d = 1; d <= G; ++d) {
      if (G % d == 0 && d <= config.num_blocks()) depths.push_back(d);
    }
  }

  for (int d : depths) {
    ParallelPlan candidate;
    candidate.algorithm = "autopipe";
    candidate.uniform_dp = true;
    candidate.data_parallel = std::max(1, G / d);
    const long m = std::max<long>(
        1, options.global_batch /
               (static_cast<long>(mbs) * candidate.data_parallel));
    if (m < d) continue;  // pipeline deeper than its micro-batch stream

    PlannerResult planned;
    if (d == 1) {
      planned.partition.counts = {config.num_blocks()};
      planned.sim = SimResult{};
    } else {
      // Memory-aware search: when the time-optimal scheme would OOM, the
      // planner keeps looking for the fastest scheme that fits.
      PlannerOptions popts;
      popts.feasible = [&config, m](const Partition& p) {
        return partition_fits_memory(config, p, static_cast<int>(m));
      };
      popts.pool = pool.get();
      popts.comm = comm;
      if (static_cast<int>(options.warm_start.size()) == d) {
        popts.warm_start = Partition{options.warm_start};
      }
      if (options.memo_provider) {
        popts.memo = options.memo_provider(config, static_cast<int>(m), comm);
      }
      planned = plan(config, d, static_cast<int>(m), popts);
      if (!planned.feasible) continue;
    }
    candidate.partition = planned.partition;
    candidate.planning_ms = planned.search_ms;

    const PlanEvaluation ev =
        evaluate_plan(config, candidate, options.global_batch, comm);
    if (ev.oom || ev.runtime_error) continue;
    if (!has_best || ev.iteration_ms < best.evaluation.iteration_ms) {
      has_best = true;
      best.plan = candidate;
      best.evaluation = ev;
      best.sim = planned.sim;
      best.evaluations = planned.evaluations;
      best.unique_simulations = planned.unique_simulations;
      best.cache_hits = planned.cache_hits;
      best.warm_started = planned.warm_started;
    }
  }
  if (!has_best) {
    throw std::runtime_error(
        "no feasible pipeline/data-parallel configuration fits memory");
  }

  // Slicer (Fig. 2: runs on the Planner's output).
  const int d = best.plan.num_stages();
  const long m = std::max<long>(
      1, options.global_batch /
             (static_cast<long>(mbs) * best.plan.data_parallel));
  const auto costs = stage_costs(config, best.plan.partition);
  if (options.enable_slicer && d >= 2) {
    best.slicing = solve_slicing(costs, comm, static_cast<int>(m));
  }
  best.schedule = build_sliced_1f1b(costs, static_cast<int>(m), comm,
                                    best.slicing.sliced_micro_batches);
  // Schedule-kind co-search (opt-in): the zero-bubble split defers weight
  // gradients into bubbles, trading memory (the stashed B/W states) for
  // iteration time. Keep it only when it fits *and* wins.
  if (options.enable_zero_bubble && d >= 2 && m >= d) {
    bool fits = true;
    for (int s = 0; s < d && fits; ++s) {
      const double deferred =
          stage_bw_state_bytes(config, best.plan.partition, s) *
          std::min<long>(m, d - s);
      fits = detail_stage_bytes(config, best.plan.partition, s, d,
                                static_cast<int>(m), 1.0, 1) +
                 deferred <=
             config.device.mem_capacity_bytes;
    }
    if (fits) {
      Schedule zb = make_zero_bubble(costs, static_cast<int>(m), comm);
      if (evaluate_schedule(zb).iteration_ms <
          evaluate_schedule(best.schedule).iteration_ms) {
        best.schedule = std::move(zb);
      }
    }
  }
  best.plan.planning_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  return best;
}

ProfiledPlanResult auto_plan_profiled(const costmodel::ModelSpec& spec,
                                      const costmodel::TrainConfig& train,
                                      const profiler::SessionOptions& source,
                                      const AutoPipeOptions& options) {
  ProfiledPlanResult out;
  out.source = profiler::obtain_profile(spec, train, source);
  out.result = auto_plan(out.source.config, options);
  return out;
}

}  // namespace autopipe::core
