#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

namespace autopipe::core {

double Schedule::op_duration_ms(int device, const ScheduleOp& op) const {
  const StageCost& cost = durations[device][op.chunk];
  double whole = 0;
  switch (op.type) {
    case OpType::Forward:        whole = cost.fwd_ms; break;
    case OpType::Backward:       whole = cost.bwd_ms; break;
    case OpType::BackwardInput:  whole = cost.bwd_input_ms; break;
    case OpType::BackwardWeight: whole = cost.bwd_weight_ms; break;
  }
  return op.is_half() ? whole / 2.0 : whole;
}

namespace {

void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Emits FP or BP of one logical micro-batch, split when mb < sliced.
void emit(std::vector<ScheduleOp>& order, OpType type, int mb, int sliced) {
  if (mb < sliced) {
    order.push_back({type, mb, 0, 0, false});
    order.push_back({type, mb, 1, 0, false});
  } else {
    order.push_back({type, mb, -1, 0, false});
  }
}

}  // namespace

Schedule build_sliced_1f1b(std::span<const StageCost> stages,
                           int micro_batches, const CommModel& comm,
                           int sliced) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  require(n >= 1, "schedule needs at least one stage");
  require(m >= n, "1F1B requires micro_batches >= stages");
  require(sliced >= 0 && sliced <= m, "invalid sliced micro-batch count");

  Schedule s;
  s.kind = sliced > 0 ? ScheduleKind::AutoPipeSliced : ScheduleKind::OneFOneB;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.sliced_micro_batches = sliced;
  s.boundary_comm_ms = comm.boundary_costs(n);
  s.durations.resize(n);
  s.order.resize(n);

  for (int x = 0; x < n; ++x) {
    s.durations[x] = {stages[x]};
    auto& order = s.order[x];
    const int warm = n - 1 - x;
    const int steady = m - n + x + 1;
    for (int k = 0; k < warm; ++k) emit(order, OpType::Forward, k, sliced);
    for (int y = 0; y < steady; ++y) {
      emit(order, OpType::Forward, warm + y, sliced);
      emit(order, OpType::Backward, y, sliced);
    }
    for (int mb = steady; mb < m; ++mb) {
      emit(order, OpType::Backward, mb, sliced);
    }
    // §III-C blockage fix: for sliced micro-batches after the first, the
    // receiving stage is already busy when the first half arrives, so the
    // early transfer only blocks the channel ("once micro-batch 1 is
    // sliced, the communication of the first half will be blocked at stage
    // 2"). Cancel it and aggregate with the second half's transfer.
    // Micro-batch 0 is exempt: its halves pipeline into idle stages and
    // carry the halved startup overhead of Fig. 8(b).
    if (x < n - 1) {
      for (auto& op : order) {
        if (op.type == OpType::Forward && op.half == 0 &&
            op.micro_batch >= 1 && op.micro_batch < sliced) {
          op.aggregated_comm = true;
        }
      }
    }
  }
  return s;
}

Schedule build_1f1b(std::span<const StageCost> stages, int micro_batches,
                    const CommModel& comm) {
  return build_sliced_1f1b(stages, micro_batches, comm, 0);
}

Schedule build_gpipe(std::span<const StageCost> stages, int micro_batches,
                     const CommModel& comm) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  require(n >= 1 && m >= 1, "gpipe needs stages and micro-batches");

  Schedule s;
  s.kind = ScheduleKind::GPipe;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.boundary_comm_ms = comm.boundary_costs(n);
  s.durations.resize(n);
  s.order.resize(n);
  for (int x = 0; x < n; ++x) {
    s.durations[x] = {stages[x]};
    for (int mb = 0; mb < m; ++mb) {
      s.order[x].push_back({OpType::Forward, mb, -1, 0, false});
    }
    for (int mb = m - 1; mb >= 0; --mb) {
      s.order[x].push_back({OpType::Backward, mb, -1, 0, false});
    }
  }
  return s;
}

Schedule build_interleaved(
    const std::vector<std::vector<StageCost>>& chunk_costs, int micro_batches,
    const CommModel& comm) {
  const int n = static_cast<int>(chunk_costs.size());
  require(n >= 1, "interleaved needs devices");
  const int v = static_cast<int>(chunk_costs.front().size());
  for (const auto& per_device : chunk_costs) {
    require(static_cast<int>(per_device.size()) == v,
            "interleaved requires the same chunk count on every device");
  }
  const int m = micro_batches;
  require(v >= 1, "interleaved needs at least one chunk");
  require(m % n == 0,
          "Megatron interleaved schedule requires micro_batches % stages == 0");

  Schedule s;
  s.kind = ScheduleKind::Interleaved;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.chunks = v;
  s.boundary_comm_ms = comm.boundary_costs(n, v);
  s.durations = chunk_costs;
  s.order.resize(n);

  const int total = m * v;  // forward items per device (same for backward)
  const int group = n * v;
  auto forward_of = [&](int item) {
    const int chunk = (item % group) / n;
    const int mb = (item / group) * n + (item % n);
    return ScheduleOp{OpType::Forward, mb, -1, chunk, false};
  };
  auto backward_of = [&](int item) {
    const int chunk = v - 1 - (item % group) / n;
    const int mb = (item / group) * n + (item % n);
    return ScheduleOp{OpType::Backward, mb, -1, chunk, false};
  };

  for (int dev = 0; dev < n; ++dev) {
    auto& order = s.order[dev];
    const int warm = std::min((n - dev - 1) * 2 + (v - 1) * n, total);
    for (int i = 0; i < warm; ++i) order.push_back(forward_of(i));
    for (int i = warm; i < total; ++i) {
      order.push_back(forward_of(i));
      order.push_back(backward_of(i - warm));
    }
    for (int i = total - warm; i < total; ++i) order.push_back(backward_of(i));
  }
  return s;
}

Schedule make_zero_bubble(std::span<const StageCost> stages, int micro_batches,
                          const CommModel& comm) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  require(n >= 1, "schedule needs at least one stage");
  require(m >= n, "zero-bubble requires micro_batches >= stages");

  Schedule s;
  s.kind = ScheduleKind::ZeroBubble;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.boundary_comm_ms = comm.boundary_costs(n);
  s.durations.resize(n);
  s.order.resize(n);
  for (int x = 0; x < n; ++x) {
    StageCost c = stages[x];
    if (c.bwd_input_ms <= 0.0 && c.bwd_weight_ms <= 0.0) {
      // Hand-assembled costs carry only the fused time; assume the usual
      // recompute shape: grad-input (incl. recompute) 2/3, grad-weight 1/3.
      c.bwd_input_ms = c.bwd_ms * (2.0 / 3.0);
      c.bwd_weight_ms = c.bwd_ms - c.bwd_input_ms;
    }
    s.durations[x] = {c};
  }

  // Event-driven greedy list construction. Per device: grad-input the moment
  // its downstream dx has arrived (1F1B discipline), forwards while under the
  // in-flight cap, and deferred grad-weight ops filling gaps that provably
  // fit (or unconditionally once nothing else can be pending). An op is only
  // committed once every producer it needs has a known end time, so the
  // constructed order realizes exactly the timing this greedy saw.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> t_free(n, 0.0);
  std::vector<int> next_f(n, 0), next_b(n, 0), in_flight(n, 0);
  std::vector<std::deque<int>> pending(n);
  std::vector<std::vector<double>> end_f(n, std::vector<double>(m, kInf));
  std::vector<std::vector<double>> end_b(n, std::vector<double>(m, kInf));

  int remaining = 3 * n * m;
  bool progress = true;
  while (remaining > 0) {
    if (!progress) throw std::logic_error("zero-bubble builder stalled");
    progress = false;
    for (int x = 0; x < n; ++x) {
      const int cap_f = n - x;                    // in-flight forwards
      const int cap_w = std::max(0, n - 1 - x);   // deferred grad-weights
      const double f_ms = s.durations[x][0].fwd_ms;
      const double b_ms = s.durations[x][0].bwd_input_ms;
      const double w_ms = s.durations[x][0].bwd_weight_ms;
      for (;;) {
        const double now = t_free[x];
        auto commit = [&](OpType type, int mb, double ready, double dur) {
          s.order[x].push_back({type, mb, -1, 0, false});
          const double end = std::max(now, ready) + dur;
          t_free[x] = end;
          --remaining;
          progress = true;
          return end;
        };
        if (static_cast<int>(pending[x].size()) > cap_w) {
          const int mb = pending[x].front();
          pending[x].pop_front();
          commit(OpType::BackwardWeight, mb, now, w_ms);
          continue;
        }
        const bool has_f = next_f[x] < m;
        const bool has_b = next_b[x] < m;
        double avail_f = kInf, avail_b = kInf;
        if (has_f) {
          avail_f = x == 0 ? 0.0
                    : end_f[x - 1][next_f[x]] == kInf
                        ? kInf
                        : end_f[x - 1][next_f[x]] + s.hop_ms(x - 1);
        }
        if (has_b) {
          avail_b = x == n - 1 ? end_f[x][next_b[x]]
                    : end_b[x + 1][next_b[x]] == kInf
                        ? kInf
                        : end_b[x + 1][next_b[x]] + s.hop_ms(x);
        }
        if (has_b && avail_b <= now) {
          end_b[x][next_b[x]] = commit(OpType::BackwardInput, next_b[x],
                                       avail_b, b_ms);
          pending[x].push_back(next_b[x]);
          ++next_b[x];
          --in_flight[x];
          continue;
        }
        if (has_f && avail_f <= now && in_flight[x] < cap_f) {
          end_f[x][next_f[x]] = commit(OpType::Forward, next_f[x], avail_f,
                                       f_ms);
          ++next_f[x];
          ++in_flight[x];
          continue;
        }
        // Idle until something arrives. Arrivals whose producer is not yet
        // scheduled are unknown; they never gate a decision (the producer's
        // device is itself waiting on this one's forwards in the worst
        // case), only known future arrivals do.
        double next_arrival = kInf;
        if (has_b && avail_b != kInf) {
          next_arrival = std::min(next_arrival, avail_b);
        }
        if (has_f && avail_f != kInf && in_flight[x] < cap_f) {
          next_arrival = std::min(next_arrival, avail_f);
        }
        if (!pending[x].empty() &&
            (next_arrival == kInf ? !has_b && !has_f
                                  : now + w_ms <= next_arrival)) {
          const int mb = pending[x].front();
          pending[x].pop_front();
          commit(OpType::BackwardWeight, mb, now, w_ms);
          continue;
        }
        if (next_arrival != kInf && next_arrival > now) {
          t_free[x] = next_arrival;
          progress = true;
          continue;
        }
        if (!pending[x].empty() && !has_b && !has_f) {
          const int mb = pending[x].front();
          pending[x].pop_front();
          commit(OpType::BackwardWeight, mb, now, w_ms);
          continue;
        }
        break;  // blocked on an unknown producer; revisit next pass
      }
    }
  }
  return s;
}

Schedule build_schedule(ScheduleKind kind, std::span<const StageCost> stages,
                        int micro_batches, const CommModel& comm,
                        const BuildScheduleOptions& opts) {
  switch (kind) {
    case ScheduleKind::OneFOneB:
      return build_1f1b(stages, micro_batches, comm);
    case ScheduleKind::GPipe:
      return build_gpipe(stages, micro_batches, comm);
    case ScheduleKind::AutoPipeSliced:
      return build_sliced_1f1b(stages, micro_batches, comm, opts.sliced);
    case ScheduleKind::Interleaved: {
      std::vector<std::vector<StageCost>> rows;
      rows.reserve(stages.size());
      for (const StageCost& c : stages) {
        rows.push_back(std::vector<StageCost>(
            static_cast<std::size_t>(std::max(1, opts.chunks)), c));
      }
      return build_interleaved(rows, micro_batches, comm);
    }
    case ScheduleKind::ZeroBubble:
      return make_zero_bubble(stages, micro_batches, comm);
  }
  throw std::invalid_argument("unknown schedule kind");
}

void validate(const Schedule& schedule) {
  const int n = schedule.num_stages;
  if (static_cast<int>(schedule.order.size()) != n ||
      static_cast<int>(schedule.durations.size()) != n) {
    throw std::logic_error("schedule arrays disagree with num_stages");
  }
  if (static_cast<int>(schedule.boundary_comm_ms.size()) !=
      schedule.chunks * n - 1) {
    throw std::logic_error(
        "schedule must carry one comm cost per global stage boundary");
  }
  for (double c : schedule.boundary_comm_ms) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::logic_error("schedule boundary comm costs must be finite, >= 0");
    }
  }
  for (int dev = 0; dev < n; ++dev) {
    // key: (type, micro_batch, chunk, half)
    std::map<std::tuple<int, int, int, int>, int> seen;
    std::map<std::tuple<int, int, int>, bool> forward_done;
    std::map<std::tuple<int, int, int>, bool> binput_done;
    for (const auto& op : schedule.order[dev]) {
      if (op.micro_batch < 0 || op.micro_batch >= schedule.num_micro_batches ||
          op.chunk < 0 || op.chunk >= schedule.chunks) {
        throw std::logic_error("schedule op out of range");
      }
      const auto key = std::make_tuple(static_cast<int>(op.type),
                                       op.micro_batch, op.chunk, op.half);
      if (++seen[key] > 1) throw std::logic_error("duplicate schedule op");
      const auto fb_key = std::make_tuple(op.micro_batch, op.chunk, op.half);
      switch (op.type) {
        case OpType::Forward:
          forward_done[fb_key] = true;
          break;
        case OpType::Backward:
        case OpType::BackwardInput:
          if (!forward_done[fb_key]) {
            throw std::logic_error("backward before forward on a device");
          }
          if (op.type == OpType::BackwardInput) binput_done[fb_key] = true;
          break;
        case OpType::BackwardWeight:
          if (!binput_done[fb_key]) {
            throw std::logic_error(
                "grad-weight before its grad-input on a device");
          }
          break;
      }
    }
    // Exactly one forward per (micro-batch, chunk) -- counting a half pair
    // as one -- and exactly one backward: either fused, or a grad-input /
    // grad-weight pair (never both forms for the same micro-batch).
    double forwards = 0, backwards = 0, binputs = 0, bweights = 0;
    for (const auto& [key, count] : seen) {
      const double weight = std::get<3>(key) >= 0 ? 0.5 : 1.0;
      switch (static_cast<OpType>(std::get<0>(key))) {
        case OpType::Forward:        forwards += weight * count; break;
        case OpType::Backward:       backwards += weight * count; break;
        case OpType::BackwardInput:  binputs += weight * count; break;
        case OpType::BackwardWeight: bweights += weight * count; break;
      }
    }
    const double expected =
        static_cast<double>(schedule.num_micro_batches) * schedule.chunks;
    if (forwards != expected || backwards + binputs != expected ||
        backwards + bweights != expected) {
      throw std::logic_error("schedule does not cover every micro-batch");
    }
  }
}

}  // namespace autopipe::core
