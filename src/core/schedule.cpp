#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace autopipe::core {

double Schedule::op_duration_ms(int device, const ScheduleOp& op) const {
  const StageCost& cost = durations[device][op.chunk];
  const double whole =
      op.type == OpType::Forward ? cost.fwd_ms : cost.bwd_ms;
  return op.is_half() ? whole / 2.0 : whole;
}

namespace {

void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Emits FP or BP of one logical micro-batch, split when mb < sliced.
void emit(std::vector<ScheduleOp>& order, OpType type, int mb, int sliced) {
  if (mb < sliced) {
    order.push_back({type, mb, 0, 0, false});
    order.push_back({type, mb, 1, 0, false});
  } else {
    order.push_back({type, mb, -1, 0, false});
  }
}

}  // namespace

Schedule build_sliced_1f1b(std::span<const StageCost> stages,
                           int micro_batches, const CommModel& comm,
                           int sliced) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  require(n >= 1, "schedule needs at least one stage");
  require(m >= n, "1F1B requires micro_batches >= stages");
  require(sliced >= 0 && sliced <= m, "invalid sliced micro-batch count");

  Schedule s;
  s.kind = sliced > 0 ? ScheduleKind::AutoPipeSliced : ScheduleKind::OneFOneB;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.sliced_micro_batches = sliced;
  s.boundary_comm_ms = comm.boundary_costs(n);
  s.durations.resize(n);
  s.order.resize(n);

  for (int x = 0; x < n; ++x) {
    s.durations[x] = {stages[x]};
    auto& order = s.order[x];
    const int warm = n - 1 - x;
    const int steady = m - n + x + 1;
    for (int k = 0; k < warm; ++k) emit(order, OpType::Forward, k, sliced);
    for (int y = 0; y < steady; ++y) {
      emit(order, OpType::Forward, warm + y, sliced);
      emit(order, OpType::Backward, y, sliced);
    }
    for (int mb = steady; mb < m; ++mb) {
      emit(order, OpType::Backward, mb, sliced);
    }
    // §III-C blockage fix: for sliced micro-batches after the first, the
    // receiving stage is already busy when the first half arrives, so the
    // early transfer only blocks the channel ("once micro-batch 1 is
    // sliced, the communication of the first half will be blocked at stage
    // 2"). Cancel it and aggregate with the second half's transfer.
    // Micro-batch 0 is exempt: its halves pipeline into idle stages and
    // carry the halved startup overhead of Fig. 8(b).
    if (x < n - 1) {
      for (auto& op : order) {
        if (op.type == OpType::Forward && op.half == 0 &&
            op.micro_batch >= 1 && op.micro_batch < sliced) {
          op.aggregated_comm = true;
        }
      }
    }
  }
  return s;
}

Schedule build_1f1b(std::span<const StageCost> stages, int micro_batches,
                    const CommModel& comm) {
  return build_sliced_1f1b(stages, micro_batches, comm, 0);
}

Schedule build_gpipe(std::span<const StageCost> stages, int micro_batches,
                     const CommModel& comm) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  require(n >= 1 && m >= 1, "gpipe needs stages and micro-batches");

  Schedule s;
  s.kind = ScheduleKind::GPipe;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.boundary_comm_ms = comm.boundary_costs(n);
  s.durations.resize(n);
  s.order.resize(n);
  for (int x = 0; x < n; ++x) {
    s.durations[x] = {stages[x]};
    for (int mb = 0; mb < m; ++mb) {
      s.order[x].push_back({OpType::Forward, mb, -1, 0, false});
    }
    for (int mb = m - 1; mb >= 0; --mb) {
      s.order[x].push_back({OpType::Backward, mb, -1, 0, false});
    }
  }
  return s;
}

Schedule build_interleaved(
    const std::vector<std::vector<StageCost>>& chunk_costs, int micro_batches,
    const CommModel& comm) {
  const int n = static_cast<int>(chunk_costs.size());
  require(n >= 1, "interleaved needs devices");
  const int v = static_cast<int>(chunk_costs.front().size());
  for (const auto& per_device : chunk_costs) {
    require(static_cast<int>(per_device.size()) == v,
            "interleaved requires the same chunk count on every device");
  }
  const int m = micro_batches;
  require(v >= 1, "interleaved needs at least one chunk");
  require(m % n == 0,
          "Megatron interleaved schedule requires micro_batches % stages == 0");

  Schedule s;
  s.kind = ScheduleKind::Interleaved;
  s.num_stages = n;
  s.num_micro_batches = m;
  s.chunks = v;
  s.boundary_comm_ms = comm.boundary_costs(n, v);
  s.durations = chunk_costs;
  s.order.resize(n);

  const int total = m * v;  // forward items per device (same for backward)
  const int group = n * v;
  auto forward_of = [&](int item) {
    const int chunk = (item % group) / n;
    const int mb = (item / group) * n + (item % n);
    return ScheduleOp{OpType::Forward, mb, -1, chunk, false};
  };
  auto backward_of = [&](int item) {
    const int chunk = v - 1 - (item % group) / n;
    const int mb = (item / group) * n + (item % n);
    return ScheduleOp{OpType::Backward, mb, -1, chunk, false};
  };

  for (int dev = 0; dev < n; ++dev) {
    auto& order = s.order[dev];
    const int warm = std::min((n - dev - 1) * 2 + (v - 1) * n, total);
    for (int i = 0; i < warm; ++i) order.push_back(forward_of(i));
    for (int i = warm; i < total; ++i) {
      order.push_back(forward_of(i));
      order.push_back(backward_of(i - warm));
    }
    for (int i = total - warm; i < total; ++i) order.push_back(backward_of(i));
  }
  return s;
}

void validate(const Schedule& schedule) {
  const int n = schedule.num_stages;
  if (static_cast<int>(schedule.order.size()) != n ||
      static_cast<int>(schedule.durations.size()) != n) {
    throw std::logic_error("schedule arrays disagree with num_stages");
  }
  if (static_cast<int>(schedule.boundary_comm_ms.size()) !=
      schedule.chunks * n - 1) {
    throw std::logic_error(
        "schedule must carry one comm cost per global stage boundary");
  }
  for (double c : schedule.boundary_comm_ms) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::logic_error("schedule boundary comm costs must be finite, >= 0");
    }
  }
  for (int dev = 0; dev < n; ++dev) {
    // key: (type, micro_batch, chunk, half)
    std::map<std::tuple<int, int, int, int>, int> seen;
    std::map<std::tuple<int, int, int>, bool> forward_done;
    for (const auto& op : schedule.order[dev]) {
      if (op.micro_batch < 0 || op.micro_batch >= schedule.num_micro_batches ||
          op.chunk < 0 || op.chunk >= schedule.chunks) {
        throw std::logic_error("schedule op out of range");
      }
      const auto key = std::make_tuple(static_cast<int>(op.type),
                                       op.micro_batch, op.chunk, op.half);
      if (++seen[key] > 1) throw std::logic_error("duplicate schedule op");
      const auto fb_key = std::make_tuple(op.micro_batch, op.chunk, op.half);
      if (op.type == OpType::Forward) {
        forward_done[fb_key] = true;
      } else if (!forward_done[fb_key]) {
        throw std::logic_error("backward before forward on a device");
      }
    }
    // Exactly one forward and one backward per (micro-batch, chunk) --
    // counting a half pair as one.
    double forwards = 0, backwards = 0;
    for (const auto& [key, count] : seen) {
      const double weight = std::get<3>(key) >= 0 ? 0.5 : 1.0;
      (std::get<0>(key) == static_cast<int>(OpType::Forward) ? forwards
                                                             : backwards) +=
          weight * count;
    }
    const double expected =
        static_cast<double>(schedule.num_micro_batches) * schedule.chunks;
    if (forwards != expected || backwards != expected) {
      throw std::logic_error("schedule does not cover every micro-batch");
    }
  }
}

}  // namespace autopipe::core
