// AutoPipe facade: end-to-end planning (Fig. 2) and plan evaluation.
//
// A ParallelPlan captures what every planner in the paper's comparison
// outputs: a pipeline partition plus a data-parallel dimension. AutoPipe and
// Megatron-LM replicate the whole pipeline uniformly (data-parallel size =
// GPUs / pipeline stages, §IV-D); DAPPLE and Piper may replicate individual
// stages unevenly, sharding each micro-batch across a stage's replicas.
//
// evaluate_plan() is the *honest* cost of running a plan -- the paper's
// "apply the algorithms' results to Megatron-LM" step: it simulates the
// pipeline (analytic simulator), adds the gradient all-reduce, and applies
// the memory model, reporting OOM and runtime errors (e.g. a stage with
// more replicas than the micro-batch has samples, the DAPPLE 16-GPU
// failure of Table III).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/slicer.h"
#include "costmodel/memory.h"
#include "profiler/session.h"

namespace autopipe::core {

class SimMemo;  // core/planner.h

struct ParallelPlan {
  std::string algorithm;       ///< "autopipe" | "megatron" | "dapple" | "piper"
  Partition partition;         ///< one pipeline replica's partition
  /// True: `data_parallel` whole-pipeline replicas, each processing its own
  /// micro-batches. False: stage_devices[s] replicas of stage s
  /// (DAPPLE/Piper style).
  bool uniform_dp = true;
  int data_parallel = 1;
  std::vector<int> stage_devices;  ///< used when !uniform_dp; size = stages
  /// Per-stage replica semantics (only when !uniform_dp): true, DAPPLE
  /// style -- every micro-batch's samples are sharded across the stage's
  /// replicas (fails when replicas > micro-batch size); false, Piper style
  /// -- replicas process whole micro-batches round-robin (activations are
  /// not sharded, so memory pressure stays per-replica).
  bool shard_micro_batches = true;
  double planning_ms = 0;          ///< search time (Fig. 12)

  int num_stages() const { return partition.num_stages(); }
  int total_devices() const;
};

struct PlanEvaluation {
  double iteration_ms = 0;
  bool oom = false;
  bool runtime_error = false;
  std::string note;
  /// Unscaled per-micro-batch stage latencies (f+b): the balance metric of
  /// Fig. 13 is their population stddev.
  std::vector<double> stage_loads_ms;
  double balance_stddev_ms = 0;
};

/// Honest evaluation of `plan` training one global batch of `global_batch`
/// samples (micro-batch size comes from `config`). `comm` prices each stage
/// boundary of the pipeline simulation; unset = uniform at config.comm_ms
/// (bit-identical to the historical scalar arithmetic).
PlanEvaluation evaluate_plan(
    const ModelConfig& config, const ParallelPlan& plan, long global_batch,
    const std::optional<costmodel::CommModel>& comm = std::nullopt);

/// Does every stage of `partition` fit device memory under 1F1B with `m`
/// micro-batches? (18 B/param state + in-flight stashes + working set vs
/// the device capacity; the predicate auto_plan hands the Planner.)
bool partition_fits_memory(const ModelConfig& config,
                           const Partition& partition, int micro_batches);

struct AutoPipeOptions {
  int num_gpus = 4;
  long global_batch = 512;
  /// Force a specific pipeline depth (0 = search divisors of num_gpus,
  /// §IV-D: "its data-parallel size is the number of GPUs over the pipeline
  /// stages").
  int forced_stages = 0;
  bool enable_slicer = true;
  /// Planner worker threads (PlannerOptions::threads: 1 = serial, 0 = auto,
  /// N = pool of N). One pool is shared across the whole depth sweep; the
  /// chosen plan is bit-identical for every value.
  int threads = 1;
  /// Co-search the schedule kind on the chosen partition: also build the
  /// zero-bubble (split-backward) schedule and keep it when it beats the
  /// sliced-1F1B one *and* the deferred weight-gradient states still fit
  /// device memory. Off by default so existing plans are unchanged.
  bool enable_zero_bubble = false;
  /// Per-boundary communication model threaded through the Planner, Slicer,
  /// plan evaluation and the built schedule. Unset = uniform pricing at
  /// config.comm_ms, the historical scalar behaviour.
  std::optional<costmodel::CommModel> comm = std::nullopt;
  /// Warm start for incremental re-planning (PlannerOptions::warm_start):
  /// a previously planned partition's per-stage block counts. It joins the
  /// seed wave of the depth whose stage count matches (behind the balanced
  /// seed, so the result is never worse than a cold search); every other
  /// depth of the sweep searches cold. Empty = always cold.
  std::vector<int> warm_start = {};
  /// Optional cross-call simulation memo source (the plan service's shared
  /// memo pool). Called once per swept depth with the exact (config,
  /// micro-batches, comm model) that depth's planner uses; the returned
  /// memo must have been constructed with those values and stay alive for
  /// the duration of the auto_plan call. Return nullptr for "no sharing".
  std::function<SimMemo*(const ModelConfig& config, int micro_batches,
                         const costmodel::CommModel& comm)>
      memo_provider = {};
};

struct AutoPipeResult {
  ParallelPlan plan;
  SlicerResult slicing;
  /// Sliced 1F1B schedule for one pipeline replica (plain 1F1B when the
  /// slicer is disabled or unhelpful).
  Schedule schedule;
  SimResult sim;               ///< analytic simulation of the chosen partition
  PlanEvaluation evaluation;   ///< honest end-to-end estimate
  /// Planner diagnostics of the *chosen* depth's search (all zero when the
  /// winning depth is 1, which needs no search). unique_simulations and
  /// cache_hits are this call's delta even on a shared memo, so the plan
  /// service can report per-request memo effectiveness.
  int evaluations = 0;
  int unique_simulations = 0;
  int cache_hits = 0;
  bool warm_started = false;   ///< chosen depth's search used warm_start
};

/// The full AutoPipe flow of Fig. 2: pick the pipeline/data-parallel split,
/// run the Planner for the pipeline partition, then the Slicer for the
/// Warmup reschedule.
AutoPipeResult auto_plan(const ModelConfig& config,
                         const AutoPipeOptions& options);

struct ProfiledPlanResult {
  profiler::SessionResult source;  ///< where the config came from
  AutoPipeResult result;
};

/// Measurement-driven flavour of auto_plan -- the complete Fig. 2 loop on
/// real hardware: obtain the ModelConfig from the profile cache (running
/// the BlockProfiler on a miss), then plan from it. The Planner/Slicer path
/// is byte-identical to the analytic flow; only the config source differs.
ProfiledPlanResult auto_plan_profiled(const costmodel::ModelSpec& spec,
                                      const costmodel::TrainConfig& train,
                                      const profiler::SessionOptions& source,
                                      const AutoPipeOptions& options);

}  // namespace autopipe::core
