#include "core/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace autopipe::core {

namespace {

/// Flat op-id layout: per stage, m forward ops then m backward ops, indexed
/// by micro-batch. Every (stage, micro-batch, type) combination exists in
/// exactly one phase, so ids are unique.
struct IdMap {
  int n, m;
  int fp(int stage, int micro_batch) const {
    return stage * 2 * m + micro_batch;
  }
  int bp(int stage, int micro_batch) const {
    return stage * 2 * m + m + micro_batch;
  }
};

}  // namespace

SimResult simulate_pipeline(std::span<const StageCost> stages,
                            int micro_batches, const CommModel& comm) {
  const int n = static_cast<int>(stages.size());
  const int m = micro_batches;
  if (n < 1) throw std::invalid_argument("pipeline needs at least one stage");
  if (m < n) {
    throw std::invalid_argument(
        "simulator requires micro_batches >= stages (got m=" +
        std::to_string(m) + ", n=" + std::to_string(n) + ")");
  }

  const IdMap ids{n, m};
  SimResult result;
  result.ops.assign(static_cast<std::size_t>(2) * n * m, SimOp{});

  auto f = [&](int x) { return stages[x].fwd_ms; };
  auto b = [&](int x) { return stages[x].bwd_ms; };
  // Comm(g): the cost of crossing boundary g -> g+1 (either direction;
  // §II-B's links are symmetric).
  auto hop = [&](int g) { return comm.hop_ms(g); };
  // 1F1B block count per stage (paper: max(0, m - n + x + 1)); with m >= n
  // every stage owns at least one block.
  auto blocks_of = [&](int x) { return m - n + x + 1; };
  // Warmup forward count per stage.
  auto warm_of = [&](int x) { return n - 1 - x; };

  auto& ops = result.ops;
  auto init_op = [&](int id, int stage, int mb, Phase phase, OpType type,
                     double start, double dur, int pred) {
    SimOp& op = ops[id];
    op.id = id;
    op.stage = stage;
    op.micro_batch = mb;
    op.phase = phase;
    op.type = type;
    op.start_ms = start;
    op.end_ms = start + dur;
    op.critical_pred = pred;
  };

  // Picks the binding predecessor; ties go to the higher stage ("closest to
  // the last pipeline stage", Fig. 4). Returns {max end, chosen id}.
  auto choose = [&](int id_a, int id_b) -> std::pair<double, int> {
    const double ea = id_a >= 0 ? ops[id_a].end_ms : 0.0;
    const double eb = id_b >= 0 ? ops[id_b].end_ms : 0.0;
    if (id_a < 0 && id_b < 0) return {0.0, -1};
    if (id_b < 0) return {ea, id_a};
    if (id_a < 0) return {eb, id_b};
    if (ea > eb) return {ea, id_a};
    if (eb > ea) return {eb, id_b};
    return ops[id_a].stage >= ops[id_b].stage ? std::pair{ea, id_a}
                                              : std::pair{eb, id_b};
  };

  // ---- Warmup: stage x runs warm_of(x) forward ops; each waits for its
  // predecessor on the same stage and the same micro-batch on stage x-1.
  for (int x = 0; x < n; ++x) {
    for (int k = 0; k < warm_of(x); ++k) {
      const int intra = k > 0 ? ids.fp(x, k - 1) : -1;
      const int inter = x > 0 ? ids.fp(x - 1, k) : -1;
      auto [start, pred] = choose(inter, intra);
      if (x != 0) start += hop(x - 1);
      init_op(ids.fp(x, k), x, k, Phase::Warmup, OpType::Forward, start, f(x),
              pred);
    }
  }

  // ---- 1F1B: block y on stage x is FP of micro-batch warm_of(x)+y followed
  // by BP of micro-batch y. Iterate blocks outer, forwards up then backwards
  // down, which respects every dependency.
  for (int y = 0; y < blocks_of(n - 1); ++y) {
    for (int x = 0; x < n; ++x) {
      if (y >= blocks_of(x)) continue;
      const int fp_mb = warm_of(x) + y;
      // Same micro-batch on stage x-1: its last warmup FP when y == 0,
      // otherwise block y-1 of stage x-1.
      int inter = -1;
      if (x > 0) inter = ids.fp(x - 1, fp_mb);
      // Previous op on this stage: BP of block y-1, or the last warmup FP.
      int intra = -1;
      if (y > 0) {
        intra = ids.bp(x, y - 1);
      } else if (warm_of(x) > 0) {
        intra = ids.fp(x, warm_of(x) - 1);
      }
      auto [start, pred] = choose(inter, intra);
      if (x != 0) start += hop(x - 1);
      init_op(ids.fp(x, fp_mb), x, fp_mb, Phase::Steady, OpType::Forward,
              start, f(x), pred);
    }
    for (int x = n - 1; x >= 0; --x) {
      if (y >= blocks_of(x)) continue;
      const int inter = x < n - 1 ? ids.bp(x + 1, y) : -1;
      const int intra = ids.fp(x, warm_of(x) + y);
      auto [start, pred] = choose(inter, intra);
      if (x != n - 1) start += hop(x);
      init_op(ids.bp(x, y), x, y, Phase::Steady, OpType::Backward, start, b(x),
              pred);
    }
  }

  // ---- Cooldown: stage x still owes BPs for micro-batches
  // blocks_of(x) .. m-1; each waits for its predecessor BP on the same stage
  // and the same micro-batch's BP on stage x+1, plus one communication.
  for (int mb = blocks_of(0); mb < m; ++mb) {
    for (int x = n - 2; x >= 0; --x) {
      if (mb < blocks_of(x)) continue;  // still a 1F1B block on this stage
      const int intra = ids.bp(x, mb - 1);
      const int inter = ids.bp(x + 1, mb);
      auto [start, pred] = choose(inter, intra);
      start += hop(x);
      init_op(ids.bp(x, mb), x, mb, Phase::Cooldown, OpType::Backward, start,
              b(x), pred);
    }
  }

  // ---- Results.
  for (const SimOp& op : ops) {
    result.iteration_ms = std::max(result.iteration_ms, op.end_ms);
  }
  result.startup_ms = n > 1 ? ops[ids.fp(n - 1, 0)].start_ms
                            : 0.0;
  // Uniform fast path keeps the historical closed form bit-identical (a
  // hop-by-hop accumulation of equal doubles can round differently than the
  // single multiply).
  if (comm.is_uniform()) {
    result.warmup_estimate_ms = (n - 1) * comm.uniform_ms();
  } else {
    for (int g = 0; g + 1 < n; ++g) result.warmup_estimate_ms += hop(g);
  }
  for (int x = 0; x < n; ++x) result.warmup_estimate_ms += f(x);

  // Critical path: backtrack from the op that finishes last (ties toward the
  // higher stage, consistent with the forward tie-break).
  int tail = -1;
  for (const SimOp& op : ops) {
    if (tail < 0 || op.end_ms > ops[tail].end_ms ||
        (op.end_ms == ops[tail].end_ms && op.stage > ops[tail].stage)) {
      tail = op.id;
    }
  }
  for (int cur = tail; cur >= 0; cur = ops[cur].critical_pred) {
    ops[cur].on_critical_path = true;
    result.critical_path.push_back(cur);
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());

  // Master stage: the stage the critical path rides in the 1F1B phase
  // (most path ops there; ties toward the last stage). If the path never
  // touches the 1F1B phase -- degenerate shallow cases -- fall back to the
  // heaviest-loaded stage.
  std::vector<int> hits(n, 0);
  for (int id : result.critical_path) {
    if (ops[id].phase == Phase::Steady) ++hits[ops[id].stage];
  }
  int master = -1;
  for (int x = 0; x < n; ++x) {
    if (master < 0 || hits[x] >= hits[master]) {
      if (hits[x] > 0) master = x;
    }
  }
  if (master < 0) {
    master = 0;
    for (int x = 1; x < n; ++x) {
      if (stages[x].load() >= stages[master].load()) master = x;
    }
  }
  result.master_stage = master;
  return result;
}

SimResult simulate_pipeline(const ModelConfig& config,
                            const Partition& partition, int micro_batches) {
  const std::vector<StageCost> costs = stage_costs(config, partition);
  return simulate_pipeline(costs, micro_batches, config.comm_ms);
}

}  // namespace autopipe::core
