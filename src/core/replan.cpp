#include "core/replan.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/logging.h"

namespace autopipe::core {

ReplanResult replan_on_failure(const ModelConfig& config,
                               const AutoPipeOptions& original,
                               int failed_device) {
  if (original.num_gpus < 2) {
    throw std::invalid_argument(
        "replan_on_failure: no surviving device to re-plan on");
  }
  if (failed_device < 0 || failed_device >= original.num_gpus) {
    throw std::invalid_argument("replan_on_failure: failed device index");
  }
  const auto t0 = std::chrono::steady_clock::now();

  ReplanResult out;
  out.failed_device = failed_device;
  out.surviving_devices = original.num_gpus - 1;

  AutoPipeOptions degraded = original;
  degraded.num_gpus = out.surviving_devices;
  if (degraded.forced_stages > 0) {
    degraded.forced_stages =
        std::min(degraded.forced_stages, out.surviving_devices);
  }
  out.result = auto_plan(config, degraded);
  out.replan_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  AP_LOG(info) << "replan_on_failure: device " << failed_device << " lost, "
               << out.surviving_devices << " survivors -> "
               << out.result.plan.num_stages() << " stage(s) in "
               << out.replan_ms << " ms";
  return out;
}

}  // namespace autopipe::core
