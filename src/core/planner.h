// AutoPipe Planner (§III-B.2): heuristic partition search.
//
// The planner seeds with Algorithm 1 (balanced_dp.h), then repeatedly
//   (1) simulates the scheme to find the iteration time and master stage i;
//   (2) removes Cooldown-phase bubbles by enforcing Eq. (1),
//         sum_{j=i+1..s} (f_j + b_j) <= (s - i) * b_i   for all s > i,
//       pushing blocks of post-master stages toward the tail one block at a
//       time and stopping early if the master stage moves;
//   (3) if i > 0, shifts the master forward by moving stage i's first block
//       to stage i-1 or its last block to stage i+1, each combined with and
//       without re-running Algorithm 1 on the affected stage prefix; every
//       candidate is simulated, and candidates whose master stays <= i are
//       searched recursively.
// The best (minimum simulated iteration time) scheme ever seen is returned.
#pragma once

#include <functional>

#include "core/partition.h"
#include "core/simulator.h"

namespace autopipe::core {

struct PlannerOptions {
  /// Safety cap on simulator evaluations; the heuristic needs far fewer
  /// (the search space is bounded by the pipeline depth, §III-B).
  int max_evaluations = 20000;
  /// Optional feasibility predicate (e.g. the per-stage memory model):
  /// infeasible schemes still steer the heuristic but are never returned
  /// as the best. If nothing feasible is found the time-optimal scheme is
  /// returned with `feasible = false` in the result.
  std::function<bool(const Partition&)> feasible;
};

struct PlannerResult {
  Partition partition;
  SimResult sim;              ///< simulation of the winning scheme
  int evaluations = 0;        ///< simulator calls spent
  double search_ms = 0;       ///< wall-clock planning time (Fig. 12)
  bool feasible = true;       ///< satisfied PlannerOptions::feasible
};

/// Plans a `stages`-deep pipeline for `config` processing `micro_batches`
/// micro-batches per iteration.
PlannerResult plan(const ModelConfig& config, int stages, int micro_batches,
                   const PlannerOptions& options = {});

/// One Eq. (1) cooldown adjustment pass used by `plan` (exposed for tests):
/// returns the adjusted partition; stops early when the master stage moves.
Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int micro_batches);

}  // namespace autopipe::core
