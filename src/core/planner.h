// AutoPipe Planner (§III-B.2): heuristic partition search.
//
// The planner seeds with Algorithm 1 (balanced_dp.h), then repeatedly
//   (1) simulates the scheme to find the iteration time and master stage i;
//   (2) removes Cooldown-phase bubbles by enforcing Eq. (1),
//         sum_{j=i+1..s} (f_j + b_j) <= (s - i) * b_i   for all s > i,
//       pushing blocks of post-master stages toward the tail one block at a
//       time and stopping early if the master stage moves;
//   (3) if i > 0, shifts the master forward by moving stage i's first block
//       to stage i-1 or its last block to stage i+1, each combined with and
//       without re-running Algorithm 1 on the affected stage prefix; every
//       candidate is simulated, and candidates whose master stays <= i are
//       searched recursively.
// The best scheme ever seen is returned, ordered by (simulated iteration
// time, scheme_hash) -- the hash tie-break plus a fixed candidate ordering
// make the result independent of evaluation order.
//
// The search runs as a sequence of frontier waves. Within a wave every
// scheme's step (simulate + cooldown + candidate generation) and every
// generated candidate's simulation fan out across a thread pool; the
// best-scheme reduction then replays the wave in its fixed order on the
// calling thread. Simulations are pure and memoized (SimMemo), so the
// returned PlannerResult is bit-identical for every `threads` value,
// including 1 (which also runs the waves, just inline).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/partition.h"
#include "core/simulator.h"
#include "faults/robustness.h"

namespace autopipe::util {
class ThreadPool;
}

namespace autopipe::core {

/// Thread-safe, single-flight memoization of simulate_pipeline() results
/// keyed by the partition scheme (hashed with scheme_hash). "Single-flight"
/// means concurrent lookups of the same scheme simulate it exactly once --
/// the first caller computes, the rest wait on its shared_future -- so the
/// miss count equals the number of unique schemes touched regardless of the
/// thread count. The move/re-balance candidates of the planner re-generate
/// duplicate schemes constantly, which is what makes the cache pay off.
class SimMemo {
 public:
  SimMemo(const ModelConfig& config, int micro_batches)
      : SimMemo(config, micro_batches, CommModel(config.comm_ms)) {}
  SimMemo(const ModelConfig& config, int micro_batches, CommModel comm)
      : config_(config), micro_batches_(micro_batches),
        comm_(std::move(comm)) {}

  /// Returns the simulation of `p`, computing it at most once per scheme.
  /// The reference stays valid for the lifetime of the memo.
  const SimResult& get(const Partition& p);

  int lookups() const { return lookups_.load(std::memory_order_relaxed); }
  int misses() const { return misses_.load(std::memory_order_relaxed); }
  int hits() const { return lookups() - misses(); }

 private:
  struct CountsHash {
    std::size_t operator()(const std::vector<int>& c) const {
      return static_cast<std::size_t>(scheme_hash(c));
    }
  };

  const ModelConfig& config_;
  int micro_batches_;
  CommModel comm_;
  std::mutex mu_;
  std::unordered_map<std::vector<int>, std::shared_future<SimResult>,
                     CountsHash>
      entries_;
  std::atomic<int> lookups_{0};
  std::atomic<int> misses_{0};
};

struct PlannerOptions {
  /// Safety cap on simulator evaluations; the heuristic needs far fewer
  /// (the search space is bounded by the pipeline depth, §III-B).
  int max_evaluations = 20000;
  /// Optional feasibility predicate (e.g. the per-stage memory model):
  /// infeasible schemes still steer the heuristic but are never returned
  /// as the best. If nothing feasible is found the time-optimal scheme is
  /// returned with `feasible = false` in the result. Only invoked from the
  /// calling thread (during the sequential reduction), so it need not be
  /// thread-safe.
  std::function<bool(const Partition&)> feasible;
  /// Worker threads for the wave fan-out: 1 = inline/serial (default),
  /// 0 = hardware concurrency, N = a pool of N workers. The result is
  /// bit-identical for every value.
  int threads = 1;
  /// Optional externally owned pool, reused across plan() calls (e.g. the
  /// auto_plan depth sweep shares one). Overrides `threads` when set.
  util::ThreadPool* pool = nullptr;
  /// Per-boundary communication model used by every simulation and by the
  /// robustness re-ranking schedules. Unset = uniform at config.comm_ms,
  /// which reproduces the historical scalar arithmetic bit-for-bit.
  std::optional<costmodel::CommModel> comm = std::nullopt;
  /// Warm start for incremental re-planning: additionally seed the wave
  /// search from a previously planned partition (typically the plan served
  /// for a config that differs only in a few block profiles). The prior
  /// plan joins the first wave *behind* the Algorithm 1 balanced seed, so
  /// the warm search's considered set is a strict superset of the cold
  /// search's: under the planner's total order the warm result is NEVER
  /// worse than the cold result, and differs only when the prior plan's
  /// neighborhood holds a strictly better scheme the cold descent misses
  /// (the ServiceFuzz never-worse property pins this over seeded profile
  /// perturbations). A converged seed's own descent terminates within a
  /// wave or two, so the extra cost is a handful of memoized simulations.
  /// The search stays a pure function of (config, stages, micro-batches,
  /// options) -- bit-identical for every thread count and memo state. A
  /// seed that does not fit the config/stages is ignored (cold search,
  /// `warm_started = false` in the result).
  std::optional<Partition> warm_start;
  /// Optional externally owned simulation memo shared across plan() calls
  /// (the plan service keys one per (config, micro-batches) so repeated
  /// requests skip simulation entirely). The caller must have constructed
  /// it with the same config, micro-batch count and comm model this call
  /// uses; results are pure, so sharing never changes the returned plan.
  /// PlannerResult's unique_simulations/cache_hits report only this call's
  /// delta.
  SimMemo* memo = nullptr;
  /// Robustness-aware re-ranking (faults/robustness.h): when
  /// `robustness.trials > 0`, the search keeps its `robustness.candidates`
  /// best schemes, Monte-Carlo-simulates each one's 1F1B schedule under
  /// `robustness.dist` straggler/link noise, and returns the scheme with
  /// the lowest `robustness.quantile` iteration time instead of the lowest
  /// nominal time. Every candidate sees the identical fault scenarios
  /// (common random numbers), so the ranking is a paired comparison and --
  /// like the rest of the search -- bit-identical for every thread count.
  faults::RobustnessOptions robustness;
};

struct PlannerResult {
  Partition partition;
  SimResult sim;              ///< simulation of the winning scheme
  int evaluations = 0;        ///< scheme evaluations spent (incl. memo hits)
  int unique_simulations = 0; ///< simulator runs (memo misses, all callers)
  int cache_hits = 0;         ///< memoized lookups that skipped a simulation
  double search_ms = 0;       ///< wall-clock planning time (Fig. 12)
  bool feasible = true;       ///< satisfied PlannerOptions::feasible
  bool warm_started = false;  ///< search was seeded from warm_start
  /// Monte-Carlo report of the winning scheme when robust ranking ran
  /// (PlannerOptions::robustness); default-initialized otherwise.
  faults::RobustnessReport robustness;
  bool robust_ranked = false;  ///< robustness re-ranking picked the winner
};

/// Plans a `stages`-deep pipeline for `config` processing `micro_batches`
/// micro-batches per iteration.
PlannerResult plan(const ModelConfig& config, int stages, int micro_batches,
                   const PlannerOptions& options = {});

/// One Eq. (1) cooldown adjustment pass used by `plan` (exposed for tests):
/// returns the adjusted partition; stops early when the master stage moves.
Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int micro_batches);

/// Memoized flavour used inside plan(): identical result, but intermediate
/// simulations go through (and populate) `memo`.
Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int micro_batches, SimMemo& memo);

}  // namespace autopipe::core
