#include "core/slicer.h"

#include <algorithm>
#include <array>
#include <vector>

namespace autopipe::core {

SlicerResult solve_slicing(std::span<const StageCost> stages,
                           const costmodel::CommModel& comm,
                           int micro_batches) {
  const int p = static_cast<int>(stages.size());
  SlicerResult result;

  auto f = [&](int i) { return stages[i].fwd_ms; };
  auto b = [&](int i) { return stages[i].bwd_ms; };
  // Comm(g): crossing boundary g -> g+1, either direction (§II-B's links
  // are symmetric).
  auto hop = [&](int g) { return comm.hop_ms(g); };

  // Startup overhead (§II-B): the last stage receives the first micro-batch
  // after every earlier stage's FP plus p-1 hops; slicing halves both terms.
  for (int i = 0; i < p - 1; ++i) {
    result.startup_before_ms += f(i) + hop(i);
    result.startup_after_ms += f(i) / 2 + hop(i) / 2;
  }

  if (p < 2 || micro_batches < 1) return result;  // nothing to slice

  // ---- Algorithm 2, lines 4-15: initialise startt.
  // startt[k] records when stage p-1-k is free for its first 1F1B forward:
  // the first (half) micro-batch flows forward through the pipeline and its
  // backward walks back down to each stage.
  std::vector<double> startt(p, 0.0);
  double tempt = 0.0;
  for (int i = 0; i <= p - 2; ++i) tempt += f(i) / 2 + hop(i) / 2;
  tempt += f(p - 1) / 2;
  for (int i = p - 1; i >= 1; --i) {
    // The gradient of stage i lands on stage i-1 across boundary i-1.
    tempt += b(i) + hop(i - 1);
    startt[p - 1 - i] = tempt;
  }
  tempt += b(0);
  startt[p - 1] = tempt;

  // ---- Lines 16-38: roll split micro-batches through the pipeline until
  // the first unbroken micro-batch no longer stalls behind them.
  // endt[i][j]: end of half j of the current split micro-batch on stage i;
  // the array carries over between iterations, so each pass appends the next
  // split micro-batch's two halves.
  std::vector<std::array<double, 2>> endt(p + 1, {0.0, 0.0});
  int mb = 1;
  while (true) {
    for (int i = 0; i <= p - mb && i < p; ++i) {
      for (int j = 0; j <= 1; ++j) {
        endt[i][j] = endt[i][(j + 1) % 2] + f(i) / 2;
        if (i > 0) {
          endt[i][j] = std::max(endt[i][j], endt[i - 1][j] + f(i - 1) / 2);
        }
        if (i != p - 1) endt[i][j] += hop(i) / 2;
        endt[i][j] = std::max(endt[i][j], endt[i + 1][(j + 1) % 2]);
      }
    }
    // When must stage 0 start the first unbroken micro-batch so that it
    // arrives at its consumer stage exactly on time? Walk back from the
    // moment stage p-1-(mb-1)... becomes free (startt[mb-1]).
    tempt = startt[mb - 1];
    for (int i = p - 1 - mb; i >= 1; --i) tempt -= f(i) + hop(i - 1);
    tempt -= f(0);
    // Paper prose: return once the unbroken micro-batch's start time is >=
    // the end of the split second half on stage 0 (the pseudocode's printed
    // `<=` contradicts the prose and would return immediately; the prose
    // direction is the converging one).
    if (tempt >= endt[0][1]) break;
    ++mb;
    // Slicing beyond the Warmup depth cannot reduce startup further
    // ("applying slicing to all micro-batches in Warmup is unnecessary").
    if (mb >= p - 1 || mb >= micro_batches) break;
  }
  result.sliced_micro_batches = std::max(1, std::min({mb, p - 1, micro_batches}));
  return result;
}

SlicerResult solve_slicing(const ModelConfig& config,
                           const Partition& partition, int micro_batches) {
  const std::vector<StageCost> costs = stage_costs(config, partition);
  return solve_slicing(costs, config.comm_ms, micro_batches);
}

}  // namespace autopipe::core
