#include "core/planner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/balanced_dp.h"
#include "core/schedule.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace autopipe::core {

const SimResult& SimMemo::get(const Partition& p) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  std::promise<SimResult> promise;
  std::shared_future<SimResult> future;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(p.counts);
    if (it == entries_.end()) {
      owner = true;
      future = promise.get_future().share();
      entries_.emplace(p.counts, future);
    } else {
      future = it->second;
    }
  }
  if (owner) {
    // Single-flight: exactly one caller simulates; concurrent lookups of
    // the same scheme block on the shared_future instead of re-simulating.
    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
      promise.set_value(
          simulate_pipeline(stage_costs(config_, p), micro_batches_, comm_));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  // The map keeps a shared_future alive for the memo's lifetime, so the
  // reference into its shared state stays valid.
  return future.get();
}

namespace {

/// Does `partition` violate Eq. (1) at any s > master? Returns the smallest
/// violating s, or -1 when the constraint holds everywhere.
int first_violation(const std::vector<StageCost>& costs, int master) {
  const int n = static_cast<int>(costs.size());
  double acc = 0.0;
  for (int s = master + 1; s < n; ++s) {
    acc += costs[s].load();
    if (acc > (s - master) * costs[master].bwd_ms + 1e-9) return s;
  }
  return -1;
}

/// Moves one boundary block from stage `from` to adjacent stage `to`;
/// contiguity makes which block moves (first or last) implicit in the
/// direction.
Partition move_block(const Partition& p, int from, int to) {
  Partition out = p;
  --out.counts[from];
  ++out.counts[to];
  return out;
}

/// Step 3 of the heuristic: the master-stage candidate set of `scheme` with
/// master `i` -- each boundary move with and without re-balancing the
/// affected stage prefix via Algorithm 1. Pure; order is fixed so the
/// downstream reduction is deterministic.
std::vector<Partition> master_shift_candidates(
    const Partition& scheme, int i, const std::vector<double>& loads) {
  std::vector<Partition> candidates;
  if (scheme.counts[i] < 2) return candidates;
  // (a) first block of stage i -> stage i-1.
  const Partition moved = move_block(scheme, i, i - 1);
  candidates.push_back(moved);
  // Re-balance the stages before the master over their enlarged prefix.
  const int prefix_blocks = moved.stage_begin(i);
  if (prefix_blocks >= i) {
    Partition rebal = moved;
    const std::vector<int> head =
        balanced_counts(std::span(loads).subspan(0, prefix_blocks), i);
    for (int s = 0; s < i; ++s) rebal.counts[s] = head[s];
    candidates.push_back(std::move(rebal));
  }
  // (b) last block of stage i -> stage i+1.
  if (i + 1 < scheme.num_stages()) {
    const Partition moved_b = move_block(scheme, i, i + 1);
    candidates.push_back(moved_b);
    const int prefix_b = moved_b.stage_begin(i + 1);
    if (prefix_b >= i + 1) {
      Partition rebal = moved_b;
      const std::vector<int> head =
          balanced_counts(std::span(loads).subspan(0, prefix_b), i + 1);
      for (int s = 0; s <= i; ++s) rebal.counts[s] = head[s];
      candidates.push_back(std::move(rebal));
    }
  }
  return candidates;
}

/// A scheme retained for robustness re-ranking, with the keys of the
/// search's total order so the top-K set is insertion-order independent.
struct RankedScheme {
  Partition partition;
  SimResult sim;
  std::uint64_t hash = 0;
  bool ok = false;  ///< satisfied PlannerOptions::feasible
};

/// One frontier scheme's work in a wave: its simulation, the optional
/// cooldown-adjusted scheme, and the simulated master-shift candidates.
struct Step {
  Partition scheme;
  const SimResult* scheme_sim = nullptr;
  bool adjusted = false;
  Partition adj;
  const SimResult* adj_sim = nullptr;
  std::vector<Partition> candidates;
  std::vector<const SimResult*> cand_sims;
};

}  // namespace

Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int /*micro_batches*/, SimMemo& memo) {
  Partition current = start;
  const int n = current.num_stages();
  // Each move shifts one block toward the tail; bounded by blocks * stages.
  int budget = config.num_blocks() * n + 1;
  while (budget-- > 0) {
    const auto costs = stage_costs(config, current);
    const int s = first_violation(costs, master);
    if (s < 0 || s >= n - 1) break;     // satisfied, or nothing behind s
    if (current.counts[s] <= 1) break;  // cannot empty a stage
    const Partition next = move_block(current, s, s + 1);
    const int next_master = memo.get(next).master_stage;
    current = next;
    if (next_master != master) break;  // paper: stop when master moves
  }
  return current;
}

Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int micro_batches) {
  SimMemo memo(config, micro_batches);
  return cooldown_adjust(config, start, master, micro_batches, memo);
}

PlannerResult plan(const ModelConfig& config, int stages, int micro_batches,
                   const PlannerOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  // threads == 1 runs the identical wave algorithm inline (pool == null);
  // the wave composition never depends on the worker count, so the result
  // is bit-identical for every thread count.
  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> owned;
  if (pool == nullptr) {
    const int threads = util::resolve_threads(options.threads);
    if (threads > 1) {
      owned = std::make_unique<util::ThreadPool>(threads);
      pool = owned.get();
    }
  }

  // The comm model every simulation and re-ranking schedule prices hops
  // with; the unset default reproduces the scalar config.comm_ms exactly.
  const CommModel comm = options.comm.value_or(CommModel(config.comm_ms));
  SimMemo local_memo(config, micro_batches, comm);
  SimMemo& memo = options.memo != nullptr ? *options.memo : local_memo;
  // A shared memo carries counts from earlier plan() calls; report only
  // this call's delta.
  const int memo_lookups0 = memo.lookups();
  const int memo_misses0 = memo.misses();
  const std::vector<double> loads = block_loads(config);

  PlannerResult result;
  int evals = 0;
  bool has_best = false;
  bool best_feasible = false;
  std::uint64_t best_hash = 0;
  Partition fallback;      // time-optimal regardless of feasibility
  SimResult fallback_sim;
  std::uint64_t fallback_hash = 0;
  bool has_fallback = false;

  // Explicit total order on schemes: iteration time, then scheme hash.
  // Every evaluated scheme passes through this reduction in a fixed order,
  // so the winner does not depend on which thread simulated what first.
  const auto better = [](double ms, std::uint64_t h, double best_ms,
                         std::uint64_t best_h) {
    return ms < best_ms || (ms == best_ms && h < best_h);
  };
  // Top-K schemes for robustness re-ranking, kept sorted by the same total
  // order the best-scheme selection uses (feasible first, then time, then
  // hash); with a total order, the retained K-set is independent of the
  // order schemes were considered in.
  const int keep =
      options.robustness.enabled() ? std::max(1, options.robustness.candidates)
                                   : 0;
  std::vector<RankedScheme> ranked;
  const auto ranked_before = [&](const RankedScheme& a, const RankedScheme& b) {
    if (a.ok != b.ok) return a.ok;
    return a.sim.iteration_ms < b.sim.iteration_ms ||
           (a.sim.iteration_ms == b.sim.iteration_ms && a.hash < b.hash);
  };
  auto consider = [&](const Partition& p, const SimResult& sim) {
    const std::uint64_t h = scheme_hash(p);
    if (!has_fallback || better(sim.iteration_ms, h, fallback_sim.iteration_ms,
                                fallback_hash)) {
      has_fallback = true;
      fallback = p;
      fallback_sim = sim;
      fallback_hash = h;
    }
    const bool ok = !options.feasible || options.feasible(p);
    if (keep > 0) {
      // A scheme can be considered twice (as a wave member and earlier as a
      // candidate); the hash dedupes it.
      const bool seen = std::any_of(ranked.begin(), ranked.end(),
                                    [&](const RankedScheme& r) {
                                      return r.hash == h;
                                    });
      if (!seen) {
        RankedScheme r{p, sim, h, ok};
        const auto pos =
            std::upper_bound(ranked.begin(), ranked.end(), r, ranked_before);
        ranked.insert(pos, std::move(r));
        if (static_cast<int>(ranked.size()) > keep) ranked.pop_back();
      }
    }
    // Feasible schemes strictly dominate infeasible ones; among equals the
    // (time, hash) order decides.
    if (!has_best || (ok && !best_feasible) ||
        (ok == best_feasible &&
         better(sim.iteration_ms, h, result.sim.iteration_ms, best_hash))) {
      has_best = true;
      best_feasible = ok;
      result.partition = p;
      result.sim = sim;
      best_hash = h;
    }
  };

  std::set<std::vector<int>> visited;
  std::vector<Partition> frontier;
  // The cold seed always leads the first wave, so the warm search's
  // considered set is a strict superset of the cold search's: a warm
  // re-plan can never return a worse scheme than the cold search would
  // (and returns a different one only when the prior plan's neighborhood
  // holds a strictly better scheme the cold descent misses).
  frontier.push_back(balanced_partition(config, stages));
  // Warm start: additionally seed the wave search from a prior plan. After
  // a small profile drift the prior plan sits inside (or next to) the new
  // optimum's basin, so its descent terminates in a wave or two; an
  // unusable seed (wrong depth/block count) is ignored.
  if (options.warm_start && options.warm_start->num_stages() == stages) {
    const Partition& seed = *options.warm_start;
    const bool usable =
        seed.total_blocks() == config.num_blocks() &&
        std::all_of(seed.counts.begin(), seed.counts.end(),
                    [](int c) { return c >= 1; }) &&
        !(seed == frontier.front());
    if (usable) {
      frontier.push_back(seed);
      result.warm_started = true;
    }
  }

  while (!frontier.empty() && evals < options.max_evaluations) {
    // Wave = the current frontier, deduplicated in order.
    std::vector<Step> steps;
    steps.reserve(frontier.size());
    for (Partition& p : frontier) {
      if (visited.insert(p.counts).second) {
        Step st;
        st.scheme = std::move(p);
        steps.push_back(std::move(st));
      }
    }
    frontier.clear();
    if (steps.empty()) break;

    // Phase 1 (parallel over schemes): simulate, cooldown-adjust (Step 2,
    // Eq. (1)), and generate the master-stage candidate set. `visited` is
    // only read during the wave, so the snapshot filter is race-free.
    util::parallel_for(pool, static_cast<int>(steps.size()), [&](int idx) {
      Step& st = steps[static_cast<std::size_t>(idx)];
      st.scheme_sim = &memo.get(st.scheme);
      const Partition adjusted = cooldown_adjust(
          config, st.scheme, st.scheme_sim->master_stage, micro_batches, memo);
      const SimResult* sim = st.scheme_sim;
      const Partition* base = &st.scheme;
      if (!(adjusted == st.scheme)) {
        st.adjusted = true;
        st.adj = adjusted;
        st.adj_sim = &memo.get(st.adj);
        sim = st.adj_sim;
        base = &st.adj;
      }
      if (sim->master_stage > 0) {  // step 3 terminates at the first stage
        st.candidates = master_shift_candidates(*base, sim->master_stage, loads);
        std::erase_if(st.candidates, [&](const Partition& c) {
          return visited.count(c.counts) > 0;
        });
      }
      st.cand_sims.resize(st.candidates.size());
    });

    // Phase 2 (parallel over all candidates of the wave): the fan-out of
    // the master-stage candidate set. Duplicates across steps collapse in
    // the memo.
    std::vector<std::pair<int, int>> flat;
    for (std::size_t s = 0; s < steps.size(); ++s) {
      for (std::size_t c = 0; c < steps[s].candidates.size(); ++c) {
        flat.emplace_back(static_cast<int>(s), static_cast<int>(c));
      }
    }
    util::parallel_for(pool, static_cast<int>(flat.size()), [&](int idx) {
      const auto [s, c] = flat[static_cast<std::size_t>(idx)];
      steps[s].cand_sims[c] = &memo.get(steps[s].candidates[c]);
    });

    // Phase 3 (sequential, wave order): best-scheme reduction, evaluation
    // budget, and the next frontier. Past the budget, computed results are
    // discarded unseen -- the budget cut-off point is order-defined, hence
    // thread-count independent.
    bool exhausted = false;
    for (Step& st : steps) {
      if (evals >= options.max_evaluations) break;
      ++evals;
      consider(st.scheme, *st.scheme_sim);
      const SimResult* sim = st.scheme_sim;
      if (st.adjusted) {
        if (evals >= options.max_evaluations) break;
        ++evals;
        consider(st.adj, *st.adj_sim);
        sim = st.adj_sim;
      }
      const int i = sim->master_stage;
      for (std::size_t k = 0; k < st.candidates.size(); ++k) {
        if (evals >= options.max_evaluations) {
          exhausted = true;
          break;
        }
        ++evals;
        consider(st.candidates[k], *st.cand_sims[k]);
        if (st.cand_sims[k]->master_stage <= i) {
          frontier.push_back(std::move(st.candidates[k]));
        }
      }
      if (exhausted) break;
    }
  }

  result.feasible = best_feasible || !options.feasible;
  if (!result.feasible && has_fallback) {
    result.partition = fallback;
    result.sim = fallback_sim;
  }

  // Robustness re-ranking: Monte-Carlo each retained scheme's 1F1B schedule
  // under the identical seeded fault scenarios and let the ranking quantile
  // pick the winner. Candidates run sequentially in their fixed order; the
  // trial fan-out inside evaluate_robustness uses the pool.
  if (keep > 0 && !ranked.empty()) {
    // Never let an infeasible scheme beat a feasible one on robustness.
    if (ranked.front().ok) {
      std::erase_if(ranked, [](const RankedScheme& r) { return !r.ok; });
    }
    int best_idx = -1;
    faults::RobustnessReport best_report;
    for (std::size_t k = 0; k < ranked.size(); ++k) {
      const auto costs = stage_costs(config, ranked[k].partition);
      const Schedule schedule = build_1f1b(costs, micro_batches, comm);
      const faults::RobustnessReport report = faults::evaluate_robustness(
          schedule, sim::ExecOptions{}, options.robustness, pool);
      if (best_idx < 0 || report.score_ms < best_report.score_ms ||
          (report.score_ms == best_report.score_ms &&
           ranked[k].hash < ranked[static_cast<std::size_t>(best_idx)].hash)) {
        best_idx = static_cast<int>(k);
        best_report = report;
      }
    }
    RankedScheme& winner = ranked[static_cast<std::size_t>(best_idx)];
    result.partition = std::move(winner.partition);
    result.sim = winner.sim;
    result.robustness = best_report;
    result.robust_ranked = true;
    AP_LOG(info) << "planner: robust re-rank over " << ranked.size()
                 << " scheme(s), winner p" << options.robustness.quantile
                 << " = " << best_report.score_ms << " ms (nominal "
                 << best_report.nominal_ms << " ms)";
  }

  result.evaluations = evals;
  result.unique_simulations = memo.misses() - memo_misses0;
  result.cache_hits =
      (memo.lookups() - memo_lookups0) - result.unique_simulations;
  result.search_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  AP_LOG(info) << "planner: " << evals << " evaluations ("
               << result.unique_simulations << " simulated, "
               << result.cache_hits << " memo hits), best "
               << result.sim.iteration_ms << " ms, master "
               << result.sim.master_stage;
  return result;
}

}  // namespace autopipe::core
