#include "core/planner.h"

#include <chrono>
#include <set>
#include <vector>

#include "core/balanced_dp.h"
#include "util/logging.h"

namespace autopipe::core {

namespace {

/// Does `partition` violate Eq. (1) at any s > master? Returns the smallest
/// violating s, or -1 when the constraint holds everywhere.
int first_violation(const std::vector<StageCost>& costs, int master) {
  const int n = static_cast<int>(costs.size());
  double acc = 0.0;
  for (int s = master + 1; s < n; ++s) {
    acc += costs[s].load();
    if (acc > (s - master) * costs[master].bwd_ms + 1e-9) return s;
  }
  return -1;
}

/// Moves one boundary block from stage `from` to adjacent stage `to`;
/// contiguity makes which block moves (first or last) implicit in the
/// direction.
Partition move_block(const Partition& p, int from, int to) {
  Partition out = p;
  --out.counts[from];
  ++out.counts[to];
  return out;
}

}  // namespace

Partition cooldown_adjust(const ModelConfig& config, const Partition& start,
                          int master, int micro_batches) {
  Partition current = start;
  const int n = current.num_stages();
  // Each move shifts one block toward the tail; bounded by blocks * stages.
  int budget = config.num_blocks() * n + 1;
  while (budget-- > 0) {
    const auto costs = stage_costs(config, current);
    const int s = first_violation(costs, master);
    if (s < 0 || s >= n - 1) break;     // satisfied, or nothing behind s
    if (current.counts[s] <= 1) break;  // cannot empty a stage
    const Partition next = move_block(current, s, s + 1);
    const SimResult sim = simulate_pipeline(config, next, micro_batches);
    current = next;
    if (sim.master_stage != master) break;  // paper: stop when master moves
  }
  return current;
}

PlannerResult plan(const ModelConfig& config, int stages, int micro_batches,
                   const PlannerOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();

  PlannerResult result;
  int evals = 0;
  bool has_best = false;
  bool best_feasible = false;
  Partition fallback;      // time-optimal regardless of feasibility
  SimResult fallback_sim;
  bool has_fallback = false;

  auto evaluate = [&](const Partition& p) -> SimResult {
    ++evals;
    SimResult sim = simulate_pipeline(config, p, micro_batches);
    if (!has_fallback || sim.iteration_ms < fallback_sim.iteration_ms) {
      has_fallback = true;
      fallback = p;
      fallback_sim = sim;
    }
    const bool ok = !options.feasible || options.feasible(p);
    // Feasible schemes strictly dominate infeasible ones; among equals the
    // faster wins.
    if (!has_best || (ok && !best_feasible) ||
        (ok == best_feasible && sim.iteration_ms < result.sim.iteration_ms)) {
      has_best = true;
      best_feasible = ok;
      result.partition = p;
      result.sim = sim;
    }
    return sim;
  };

  const std::vector<double> loads = block_loads(config);

  std::set<std::vector<int>> visited;
  std::vector<Partition> stack;
  stack.push_back(balanced_partition(config, stages));

  while (!stack.empty() && evals < options.max_evaluations) {
    Partition scheme = std::move(stack.back());
    stack.pop_back();
    if (!visited.insert(scheme.counts).second) continue;

    SimResult sim = evaluate(scheme);

    // Step 2: Eq. (1) cooldown adjustment.
    Partition adjusted =
        cooldown_adjust(config, scheme, sim.master_stage, micro_batches);
    if (!(adjusted == scheme)) {
      sim = evaluate(adjusted);
      scheme = std::move(adjusted);
    }
    const int i = sim.master_stage;
    if (i == 0) continue;  // step 3 terminates at the first stage

    // Step 3: shift the master forward. Candidate moves, each with and
    // without re-balancing the affected stage prefix via Algorithm 1.
    std::vector<Partition> candidates;
    if (scheme.counts[i] >= 2) {
      // (a) first block of stage i -> stage i-1.
      const Partition moved = move_block(scheme, i, i - 1);
      candidates.push_back(moved);
      // Re-balance the stages before the master over their enlarged prefix.
      const int prefix_blocks = moved.stage_begin(i);
      if (prefix_blocks >= i) {
        Partition rebal = moved;
        const std::vector<int> head = balanced_counts(
            std::span(loads).subspan(0, prefix_blocks), i);
        for (int s = 0; s < i; ++s) rebal.counts[s] = head[s];
        candidates.push_back(std::move(rebal));
      }
      // (b) last block of stage i -> stage i+1.
      if (i + 1 < scheme.num_stages()) {
        const Partition moved_b = move_block(scheme, i, i + 1);
        candidates.push_back(moved_b);
        const int prefix_b = moved_b.stage_begin(i + 1);
        if (prefix_b >= i + 1) {
          Partition rebal = moved_b;
          const std::vector<int> head = balanced_counts(
              std::span(loads).subspan(0, prefix_b), i + 1);
          for (int s = 0; s <= i; ++s) rebal.counts[s] = head[s];
          candidates.push_back(std::move(rebal));
        }
      }
    }
    for (Partition& c : candidates) {
      if (visited.count(c.counts)) continue;
      const SimResult cs = evaluate(c);
      if (cs.master_stage <= i) stack.push_back(std::move(c));
      if (evals >= options.max_evaluations) break;
    }
  }

  result.feasible = best_feasible || !options.feasible;
  if (!result.feasible && has_fallback) {
    result.partition = fallback;
    result.sim = fallback_sim;
  }
  result.evaluations = evals;
  result.search_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  AP_LOG(info) << "planner: " << evals << " evaluations, best "
               << result.sim.iteration_ms << " ms, master "
               << result.sim.master_stage;
  return result;
}

}  // namespace autopipe::core
