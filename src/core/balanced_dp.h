// Algorithm 1: relatively balanced partition by dynamic programming.
//
// Given per-block loads (forward + backward time) and a pipeline depth p,
// finds the contiguous split into exactly p non-empty stages minimizing the
// maximum stage load, in O(n^2 * p) over prefix sums -- exactly the DP the
// paper's Algorithm 1 spells out. The planner uses it to seed the heuristic
// search and to re-balance stage prefixes after master-stage moves.
#pragma once

#include <span>
#include <vector>

#include "core/partition.h"

namespace autopipe::core {

/// Returns blocks-per-stage counts (size p). Throws std::invalid_argument
/// when p < 1 or p > loads.size().
std::vector<int> balanced_counts(std::span<const double> block_loads, int p);

/// The minimal achievable maximum stage load (same DP, value only).
double balanced_bottleneck(std::span<const double> block_loads, int p);

/// Convenience: Algorithm 1 over a model's block array (load = fwd + bwd).
Partition balanced_partition(const ModelConfig& config, int p);

/// Per-block loads f_i + b_i of the config, in block order.
std::vector<double> block_loads(const ModelConfig& config);

}  // namespace autopipe::core
