// Analytic longest-path evaluation of a Schedule (evaluate_schedule).
//
// Builds the same dependency graph sim::execute does -- intra-device
// serialization edges plus cross-stage transfer edges lagged by the
// schedule's per-boundary comm costs, with the §III-C halved/aggregated
// sliced-half lags -- and relaxes start times in topological order. With
// zero per-op overhead, zero jitter and no faults the executor's
// discrete-event timing is exactly this longest path, so the two agree
// bit-for-bit; unlike the executor this pass also records the binding
// predecessor of every op and backtracks the critical path.
#include "core/schedule.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace autopipe::core {

namespace {

// One logical computation: (global stage, type, micro-batch, half); chunks
// are folded into the global stage. Mirrors the executor's OpKey.
using OpKey = std::tuple<int, int, int, int>;

struct Edge {
  int from = -1;
  int to = -1;
  double lag_ms = 0;
};

}  // namespace

ScheduleEval evaluate_schedule(const Schedule& schedule) {
  validate(schedule);
  const int n = schedule.num_stages;
  const int last_global = schedule.chunks * n - 1;

  ScheduleEval eval;
  std::map<OpKey, int> task_of;
  std::vector<double> duration;
  for (int dev = 0; dev < n; ++dev) {
    for (const ScheduleOp& op : schedule.order[dev]) {
      const int id = static_cast<int>(eval.ops.size());
      const OpKey key{schedule.global_stage(dev, op.chunk),
                      static_cast<int>(op.type), op.micro_batch, op.half};
      if (!task_of.emplace(key, id).second) {
        throw std::logic_error("duplicate op across devices");
      }
      eval.ops.push_back({op, dev, 0, 0, -1, false});
      duration.push_back(schedule.op_duration_ms(dev, op));
    }
  }

  auto find = [&](int global, OpType type, int mb, int half) {
    const auto it = task_of.find({global, static_cast<int>(type), mb, half});
    return it == task_of.end() ? -1 : it->second;
  };

  std::vector<Edge> edges;
  // Intra-device serialization: each op waits for the previous op in its
  // device's order, with no transfer lag.
  {
    int cursor = 0;
    for (int dev = 0; dev < n; ++dev) {
      const int count = static_cast<int>(schedule.order[dev].size());
      for (int i = 1; i < count; ++i) {
        edges.push_back({cursor + i - 1, cursor + i, 0.0});
      }
      cursor += count;
    }
  }
  // Cross-stage transfers, identical to the executor's pass 2.
  for (int id = 0; id < static_cast<int>(eval.ops.size()); ++id) {
    const ScheduleOp& op = eval.ops[id].op;
    const int global = schedule.global_stage(eval.ops[id].device, op.chunk);
    if (op.type == OpType::Forward && global > 0) {
      const double whole_hop = schedule.hop_ms(global - 1);
      int producer = find(global - 1, OpType::Forward, op.micro_batch,
                          op.half);
      double lag = op.is_half() ? whole_hop / 2.0 : whole_hop;
      if (producer >= 0 && op.half == 0 &&
          eval.ops[producer].op.aggregated_comm) {
        // §III-C: the producer defers the first-half transfer and ships both
        // halves after the second half completes, as one full-size message.
        const int second =
            find(global - 1, OpType::Forward, op.micro_batch, 1);
        if (second >= 0) {
          producer = second;
          lag = whole_hop;
        }
      }
      if (producer < 0) {
        throw std::logic_error("forward op has no upstream producer");
      }
      edges.push_back({producer, id, lag});
    }
    if ((op.type == OpType::Backward || op.type == OpType::BackwardInput) &&
        global < last_global) {
      // The dx producer downstream: the same backward form, falling back to
      // the other form so fused and split stages can coexist in one
      // schedule. BackwardWeight is local and adds no cross-stage edge.
      const double whole_hop = schedule.hop_ms(global);
      int producer = find(global + 1, op.type, op.micro_batch, op.half);
      if (producer < 0) {
        producer = find(global + 1,
                        op.type == OpType::Backward ? OpType::BackwardInput
                                                    : OpType::Backward,
                        op.micro_batch, op.half);
      }
      if (producer < 0) {
        throw std::logic_error("backward op has no downstream producer");
      }
      edges.push_back(
          {producer, id, op.is_half() ? whole_hop / 2.0 : whole_hop});
    }
  }

  // Longest-path relaxation in topological (Kahn) order. Among equally late
  // predecessors the binding one is on the higher device -- the same
  // tie-break the analytic simulator uses, keeping the critical path the
  // unique one "closest to the last pipeline stage" (Fig. 4).
  const int total = static_cast<int>(eval.ops.size());
  std::vector<std::vector<int>> out(total);
  std::vector<int> indegree(total, 0);
  for (int e = 0; e < static_cast<int>(edges.size()); ++e) {
    out[edges[e].from].push_back(e);
    ++indegree[edges[e].to];
  }
  std::vector<int> ready;
  for (int id = 0; id < total; ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  int processed = 0;
  while (!ready.empty()) {
    const int id = ready.back();
    ready.pop_back();
    ++processed;
    EvalOp& op = eval.ops[id];
    op.end_ms = op.start_ms + duration[id];
    for (int e : out[id]) {
      EvalOp& to = eval.ops[edges[e].to];
      const double arrival = op.end_ms + edges[e].lag_ms;
      if (arrival > to.start_ms ||
          (arrival == to.start_ms &&
           (to.critical_pred < 0 ||
            op.device > eval.ops[to.critical_pred].device))) {
        to.start_ms = arrival;
        to.critical_pred = id;
      }
      if (--indegree[edges[e].to] == 0) ready.push_back(edges[e].to);
    }
  }
  if (processed != total) {
    throw std::logic_error("schedule dependency graph has a cycle");
  }

  // Results: makespan, startup (first forward on the last device), and the
  // critical path backtracked from the op that finishes last (ties toward
  // the higher device).
  int tail = -1;
  bool startup_found = false;
  for (int id = 0; id < total; ++id) {
    const EvalOp& op = eval.ops[id];
    eval.iteration_ms = std::max(eval.iteration_ms, op.end_ms);
    if (tail < 0 || op.end_ms > eval.ops[tail].end_ms ||
        (op.end_ms == eval.ops[tail].end_ms &&
         op.device > eval.ops[tail].device)) {
      tail = id;
    }
    if (op.op.type == OpType::Forward && op.device == n - 1 &&
        (!startup_found || op.start_ms < eval.startup_ms)) {
      eval.startup_ms = op.start_ms;
      startup_found = true;
    }
  }
  for (int cur = tail; cur >= 0; cur = eval.ops[cur].critical_pred) {
    eval.ops[cur].on_critical_path = true;
    eval.critical_path.push_back(cur);
  }
  std::reverse(eval.critical_path.begin(), eval.critical_path.end());
  return eval;
}

}  // namespace autopipe::core
