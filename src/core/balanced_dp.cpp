#include "core/balanced_dp.h"

#include <limits>
#include <stdexcept>

namespace autopipe::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct DpTables {
  // time[i][j]: minimal max-stage-load splitting the first i blocks into j
  // stages; parent[i][j]: the k achieving it (first i-k blocks form stage j).
  std::vector<std::vector<double>> time;
  std::vector<std::vector<int>> parent;
};

DpTables run_dp(std::span<const double> loads, int p) {
  const int n = static_cast<int>(loads.size());
  if (p < 1) throw std::invalid_argument("pipeline depth must be >= 1");
  if (p > n) {
    throw std::invalid_argument("pipeline depth " + std::to_string(p) +
                                " exceeds block count " + std::to_string(n));
  }

  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 1; i <= n; ++i) prefix[i] = prefix[i - 1] + loads[i - 1];

  DpTables t;
  t.time.assign(n + 1, std::vector<double>(p + 1, kInf));
  t.parent.assign(n + 1, std::vector<int>(p + 1, -1));
  t.time[0][0] = 0.0;

  for (int i = 1; i <= n; ++i) {
    const int jmax = std::min(p, i);
    for (int j = 1; j <= jmax; ++j) {
      for (int k = j - 1; k <= i - 1; ++k) {
        if (t.time[k][j - 1] == kInf) continue;
        const double candidate =
            std::max(t.time[k][j - 1], prefix[i] - prefix[k]);
        if (candidate < t.time[i][j]) {
          t.time[i][j] = candidate;
          t.parent[i][j] = k;
        }
      }
    }
  }
  return t;
}

}  // namespace

std::vector<int> balanced_counts(std::span<const double> block_loads, int p) {
  const DpTables t = run_dp(block_loads, p);
  const int n = static_cast<int>(block_loads.size());
  std::vector<int> counts(p);
  int i = n;
  for (int j = p; j >= 1; --j) {
    const int k = t.parent[i][j];
    counts[j - 1] = i - k;
    i = k;
  }
  return counts;
}

double balanced_bottleneck(std::span<const double> block_loads, int p) {
  const DpTables t = run_dp(block_loads, p);
  return t.time[block_loads.size()][p];
}

std::vector<double> block_loads(const ModelConfig& config) {
  std::vector<double> loads;
  loads.reserve(config.blocks.size());
  for (const auto& b : config.blocks) loads.push_back(b.fwd_ms + b.bwd_ms);
  return loads;
}

Partition balanced_partition(const ModelConfig& config, int p) {
  Partition partition;
  partition.counts = balanced_counts(block_loads(config), p);
  validate(config, partition);
  return partition;
}

}  // namespace autopipe::core
