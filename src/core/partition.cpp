#include "core/partition.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/stats.h"

namespace autopipe::core {

int Partition::stage_begin(int s) const {
  int begin = 0;
  for (int i = 0; i < s; ++i) begin += counts[i];
  return begin;
}

int Partition::total_blocks() const {
  return std::accumulate(counts.begin(), counts.end(), 0);
}

void validate(const ModelConfig& config, const Partition& partition) {
  if (partition.counts.empty()) {
    throw std::invalid_argument("partition has no stages");
  }
  for (int c : partition.counts) {
    if (c < 1) throw std::invalid_argument("partition has an empty stage");
  }
  if (partition.total_blocks() != config.num_blocks()) {
    throw std::invalid_argument("partition covers " +
                                std::to_string(partition.total_blocks()) +
                                " blocks, model has " +
                                std::to_string(config.num_blocks()));
  }
}

std::uint64_t scheme_hash(std::span<const int> counts) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (int c : counts) {
    auto u = static_cast<std::uint32_t>(c);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (u >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;  // FNV prime
    }
  }
  return h;
}

std::vector<StageCost> stage_costs(const ModelConfig& config,
                                   const Partition& partition) {
  validate(config, partition);
  std::vector<StageCost> costs(partition.num_stages());
  int block = 0;
  for (int s = 0; s < partition.num_stages(); ++s) {
    for (int i = 0; i < partition.counts[s]; ++i, ++block) {
      costs[s].fwd_ms += config.blocks[block].fwd_ms;
      costs[s].bwd_ms += config.blocks[block].bwd_ms;
      costs[s].bwd_input_ms += config.blocks[block].bwd_input_ms;
      costs[s].bwd_weight_ms += config.blocks[block].bwd_weight_ms;
    }
  }
  return costs;
}

std::vector<double> stage_loads(const ModelConfig& config,
                                const Partition& partition) {
  std::vector<double> loads;
  for (const StageCost& c : stage_costs(config, partition)) {
    loads.push_back(c.load());
  }
  return loads;
}

double balance_stddev(const ModelConfig& config, const Partition& partition) {
  const std::vector<double> loads = stage_loads(config, partition);
  return util::stddev(loads);
}

std::vector<double> stage_layer_units(const ModelConfig& config,
                                      const Partition& partition) {
  validate(config, partition);
  std::vector<double> units(partition.num_stages(), 0.0);
  int block = 0;
  for (int s = 0; s < partition.num_stages(); ++s) {
    for (int i = 0; i < partition.counts[s]; ++i, ++block) {
      units[s] += config.blocks[block].layer_units;
    }
  }
  return units;
}

double stage_param_bytes(const ModelConfig& config, const Partition& partition,
                         int s) {
  double acc = 0;
  for (int b = partition.stage_begin(s); b < partition.stage_end(s); ++b) {
    acc += config.blocks[b].param_bytes;
  }
  return acc;
}

double stage_stash_bytes(const ModelConfig& config, const Partition& partition,
                         int s) {
  double acc = 0;
  for (int b = partition.stage_begin(s); b < partition.stage_end(s); ++b) {
    acc += config.blocks[b].stash_bytes;
  }
  return acc;
}

double stage_work_bytes(const ModelConfig& config, const Partition& partition,
                        int s) {
  double peak = 0;
  for (int b = partition.stage_begin(s); b < partition.stage_end(s); ++b) {
    peak = std::max(peak, config.blocks[b].work_bytes);
  }
  return peak;
}

double stage_bw_state_bytes(const ModelConfig& config,
                            const Partition& partition, int s) {
  double acc = 0;
  for (int b = partition.stage_begin(s); b < partition.stage_end(s); ++b) {
    acc += config.blocks[b].bw_state_bytes;
  }
  return acc;
}

Partition partition_from_layers(const ModelConfig& config,
                                std::span<const double> layers) {
  Partition p;
  int block = 0;
  const int n = config.num_blocks();
  for (std::size_t s = 0; s < layers.size(); ++s) {
    double remaining = layers[s];
    int count = 0;
    // Stage 0 swallows the leading embedding; the last stage swallows the
    // trailing head (both contribute zero layer units).
    while (block < n &&
           (config.blocks[block].layer_units == 0.0 || remaining > 1e-9)) {
      if (config.blocks[block].layer_units > 0.0) {
        if (remaining + 1e-9 < config.blocks[block].layer_units) break;
        remaining -= config.blocks[block].layer_units;
      } else if (config.blocks[block].kind == costmodel::BlockKind::Head &&
                 s + 1 != layers.size()) {
        break;  // the head belongs to the last stage
      }
      ++count;
      ++block;
    }
    if (remaining > 1e-9) {
      throw std::invalid_argument("layer units do not align with blocks");
    }
    p.counts.push_back(count);
  }
  if (block != n) {
    throw std::invalid_argument("layer units do not cover the model");
  }
  validate(config, p);
  return p;
}

std::string describe(const ModelConfig& config, const Partition& partition) {
  const auto units = stage_layer_units(config, partition);
  const auto loads = stage_loads(config, partition);
  std::ostringstream os;
  os << "stages=" << partition.num_stages() << " layers=[";
  for (std::size_t s = 0; s < units.size(); ++s) {
    os << (s ? " " : "") << units[s];
  }
  os << "] load_ms=[";
  for (std::size_t s = 0; s < loads.size(); ++s) {
    os.setf(std::ios::fixed);
    os.precision(1);
    os << (s ? " " : "") << loads[s];
  }
  os << "]";
  return os.str();
}

}  // namespace autopipe::core
