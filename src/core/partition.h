// Pipeline partition schemes over the sub-layer block array.
//
// A Partition assigns each contiguous run of blocks (embedding, attention,
// FFN, head -- see costmodel/analytic.h) to one pipeline stage. The paper
// reports schemes in "number of transformer layers per stage" with halves
// (Table II); helpers convert between that display form and block counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "costmodel/analytic.h"

namespace autopipe::core {

using costmodel::ModelConfig;

struct Partition {
  /// Number of blocks per stage; every entry >= 1 and the sum equals the
  /// model's block count.
  std::vector<int> counts;

  int num_stages() const { return static_cast<int>(counts.size()); }
  /// First block index of stage `s`.
  int stage_begin(int s) const;
  /// One past the last block index of stage `s`.
  int stage_end(int s) const { return stage_begin(s) + counts[s]; }
  int total_blocks() const;

  bool operator==(const Partition&) const = default;
};

/// Throws std::invalid_argument unless the partition is well-formed for the
/// config (all counts >= 1, sum == num_blocks).
void validate(const ModelConfig& config, const Partition& partition);

/// Canonical 64-bit hash (FNV-1a over the per-stage block counts) of a
/// partition scheme. Platform-independent; the planner uses it both as the
/// memoization-cache key hash and as the deterministic tie-break between
/// schemes with bit-equal simulated iteration times.
std::uint64_t scheme_hash(std::span<const int> counts);
inline std::uint64_t scheme_hash(const Partition& p) {
  return scheme_hash(p.counts);
}

/// Per-stage forward/backward durations of one micro-batch. For zero-bubble
/// schedules bwd_ms additionally decomposes into the grad-input pass
/// (bwd_input_ms, includes recompute) and the grad-weight pass
/// (bwd_weight_ms); both stay 0 for hand-assembled costs, in which case
/// make_zero_bubble falls back to a 2/3 : 1/3 split of bwd_ms.
struct StageCost {
  double fwd_ms = 0;
  double bwd_ms = 0;
  double bwd_input_ms = 0;
  double bwd_weight_ms = 0;
  double load() const { return fwd_ms + bwd_ms; }
};

std::vector<StageCost> stage_costs(const ModelConfig& config,
                                   const Partition& partition);

/// f+b per stage (the "load" the balance analysis of Fig. 13 uses).
std::vector<double> stage_loads(const ModelConfig& config,
                                const Partition& partition);

/// Population stddev of per-stage loads -- the paper's balance criterion.
double balance_stddev(const ModelConfig& config, const Partition& partition);

/// Transformer-layer units per stage (Table II display, 0.5 granularity).
std::vector<double> stage_layer_units(const ModelConfig& config,
                                      const Partition& partition);

/// Parameter bytes resident on stage `s`.
double stage_param_bytes(const ModelConfig& config, const Partition& partition,
                         int s);

/// Checkpointed activation stash per in-flight micro-batch on stage `s`.
double stage_stash_bytes(const ModelConfig& config, const Partition& partition,
                         int s);

/// Peak transient working bytes while stage `s` computes one micro-batch.
double stage_work_bytes(const ModelConfig& config, const Partition& partition,
                        int s);

/// B-state bytes stage `s` stashes per micro-batch between the split
/// grad-input (B) and deferred grad-weight (W) passes of a zero-bubble
/// schedule.
double stage_bw_state_bytes(const ModelConfig& config,
                            const Partition& partition, int s);

/// Builds the partition whose per-stage transformer-layer units match
/// `layers` (e.g. {6, 6.5, 6.5, 5} from Table II). The embedding block is
/// always on stage 0 and the head on the last stage. Throws if `layers`
/// does not sum to the model's layer count or a half does not align.
Partition partition_from_layers(const ModelConfig& config,
                                std::span<const double> layers);

/// Human-readable one-line description: per-stage layer units and loads.
std::string describe(const ModelConfig& config, const Partition& partition);

}  // namespace autopipe::core
