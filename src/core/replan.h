// Degraded re-planning after a permanent device loss.
//
// When the runtime reports a StageFailure of kind Crash, the cluster has
// N-1 usable devices. replan_on_failure re-runs the full AutoPipe flow
// (Planner + Slicer, core/autopipe.h) on the surviving device count and
// returns the degraded plan; the caller rebuilds its PipelineRuntime from
// the new partition and re-executes the iteration. The fault-injection
// tests verify that the degraded pipeline computes gradients bit-identical
// to a fault-free run of the same degraded partition, and matches the
// single-process reference -- degraded operation trades throughput, never
// correctness (DESIGN.md §6).
#pragma once

#include "core/autopipe.h"

namespace autopipe::core {

struct ReplanResult {
  AutoPipeResult result;      ///< plan for the surviving cluster
  int failed_device = -1;
  int surviving_devices = 0;
  double replan_ms = 0;       ///< wall-clock spent re-planning
};

/// Re-plans `original` (the options the lost cluster was planned with) on
/// one device fewer. A forced pipeline depth is clamped to the surviving
/// count; an unforced depth re-searches the divisors of N-1 as usual.
/// Throws std::invalid_argument when no device survives and
/// std::runtime_error when nothing feasible fits the smaller cluster.
ReplanResult replan_on_failure(const ModelConfig& config,
                               const AutoPipeOptions& original,
                               int failed_device);

}  // namespace autopipe::core
