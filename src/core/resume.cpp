#include "core/resume.h"

#include <chrono>
#include <numeric>

#include "util/logging.h"

namespace autopipe::core {

ResumeResult resume_from_checkpoint(const ModelConfig& config,
                                    ckpt::Storage& storage,
                                    const std::string& dir,
                                    const ResumeOptions& options) {
  ckpt::CheckpointReader reader(storage, dir);
  ckpt::RestoreResult restored =
      reader.restore({.require_verified = options.require_verified});

  ResumeResult result;
  result.state = std::move(restored.state);
  result.checkpoint_dir = restored.dir;
  result.candidates = std::move(restored.candidates);

  const int blocks = std::accumulate(result.state.counts.begin(),
                                     result.state.counts.end(), 0);
  if (blocks != config.num_blocks()) {
    throw ckpt::CkptError(
        ckpt::CkptErrorKind::Mismatch,
        "checkpoint covers " + std::to_string(blocks) +
            " block(s), config describes " +
            std::to_string(config.num_blocks()));
  }

  const int saved_devices = static_cast<int>(result.state.counts.size());
  const int target = options.num_gpus > 0 ? options.num_gpus : saved_devices;
  if (target == saved_devices) {
    // Same cluster: reuse the checkpointed scheme verbatim so the resumed
    // pipeline is shaped exactly like the interrupted one.
    result.counts = result.state.counts;
    return result;
  }

  // Elastic path: re-plan for the new device count, pipeline-only (forced
  // depth = cluster size), mirroring the crash-recovery replan policy.
  AutoPipeOptions plan_opts = options.plan;
  plan_opts.num_gpus = target;
  plan_opts.forced_stages = target;
  const auto t0 = std::chrono::steady_clock::now();
  const AutoPipeResult planned = auto_plan(config, plan_opts);
  result.replan_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  result.counts = planned.plan.partition.counts;
  result.resharded = true;
  AP_LOG(info) << "elastic resume: step " << result.state.step << " from "
               << saved_devices << " -> " << target << " device(s) in "
               << result.replan_ms << " ms";
  return result;
}

}  // namespace autopipe::core
