// Elastic resume: restart training from a durable checkpoint, on the same
// cluster or a different one (DESIGN.md §7).
//
// resume_from_checkpoint loads the newest valid checkpoint (through the
// ckpt reader's crash-consistency scan) and decides the partition the
// resumed run executes on:
//
//   same device count  -- the checkpointed partition is reused verbatim, so
//     the resumed pipeline is shaped exactly like the interrupted one and
//     the continuation is bit-identical to the uninterrupted run;
//   different count (N-1 after losing a device, N+1 after adding one) -- the
//     Planner re-partitions the model for the new count, replan_on_failure
//     style (pipeline-only: forced depth = device count), and the
//     checkpointed per-block state is resharded onto the new stages. Since
//     checkpoints store state per *block* and stages are just contiguous
//     block ranges, resharding is a pure re-grouping -- no state is
//     approximated, and the resumed run's gradients stay exact.
#pragma once

#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/autopipe.h"

namespace autopipe::core {

struct ResumeOptions {
  /// Device count to resume on; 0 = whatever the checkpoint was written on.
  int num_gpus = 0;
  /// Planner knobs used only when resharding (num_gpus/forced_stages are
  /// overwritten with the target count).
  AutoPipeOptions plan;
  /// Accept only checkpoints stamped verified-clean by the weight guard
  /// (ckpt::RestoreOptions) -- the supervisor's corruption rung.
  bool require_verified = false;
};

struct ResumeResult {
  ckpt::TrainState state;
  /// Partition for the resumed runtime: the checkpointed counts (same-N) or
  /// a freshly planned scheme (resharded).
  std::vector<int> counts;
  bool resharded = false;
  double replan_ms = 0;        ///< wall-clock spent re-planning (0 if not)
  std::string checkpoint_dir;  ///< winning step directory
  /// Candidates the reader examined, newest first (restore diagnostics).
  std::vector<ckpt::CandidateReport> candidates;
};

/// Restores from the newest valid checkpoint under `dir`. Throws
/// ckpt::CkptError (typed: NotFound/Corrupt/Version) when nothing restorable
/// exists, CkptError(Mismatch) when the checkpoint does not describe
/// `config`'s block array, and std::runtime_error when no feasible plan
/// fits the requested device count.
ResumeResult resume_from_checkpoint(const ModelConfig& config,
                                    ckpt::Storage& storage,
                                    const std::string& dir,
                                    const ResumeOptions& options);

}  // namespace autopipe::core
