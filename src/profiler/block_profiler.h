// Offline block profiler -- the measuring front-end of the paper's Fig. 2.
//
// The paper collects per-block runtime statistics by running each block on
// the target hardware for a few minutes before planning; this repo has so
// far substituted the analytic FLOP model (costmodel/analytic.h). The
// BlockProfiler closes that gap for the hardware we *do* have: it times the
// real `model/` tensor blocks (EmbeddingBlock, ResidualAttentionBlock,
// ResidualFFNBlock, HeadBlock) forward and backward on synthetic batches,
// with warmup iterations and repeated timed samples reduced by a robust
// estimator (median / trimmed mean, util/stats), and emits a measured
// costmodel::ModelConfig that is a drop-in replacement for the analytic one:
// the Planner/Slicer consume it through the exact same plan() entry point.
//
// Only fwd_ms/bwd_ms are measured. Memory fields (param/stash/work/output
// bytes), the device capacity, and comm_ms still come from the analytic
// model -- ProfileResult::memory_fields_analytic flags this, and the
// calibration report (calibration.h) quantifies the timing disagreement.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "costmodel/analytic.h"
#include "util/stats.h"

namespace autopipe::profiler {

/// Robust reduction applied to the timed samples of one block+direction.
enum class TimingEstimator { Median, TrimmedMean };

struct ProfilerOptions {
  int warmup = 2;            ///< untimed executions before sampling
  int samples = 5;           ///< timed samples per block and direction
  int inner_iterations = 1;  ///< block executions averaged per sample
  TimingEstimator estimator = TimingEstimator::Median;
  double trim_frac = 0.2;  ///< for TimingEstimator::TrimmedMean
  std::uint64_t seed = 42; ///< weight init + synthetic batch contents
  /// Transformer layers are architecturally identical, so by default one
  /// attention and one FFN block are timed and the result is shared across
  /// every layer (this is what keeps the paper's offline profiling at "a
  /// few minutes"). Set false to time each layer individually.
  bool share_layer_timings = true;
  /// Injectable monotonic clock returning milliseconds. Tests substitute a
  /// deterministic fake so two profiler runs agree bit-exactly; empty means
  /// std::chrono::steady_clock.
  std::function<double()> clock_ms;
  /// Profiles whose *capacity* and comm fields fill the non-measured parts
  /// of the emitted config; empty names mean the default RTX-3090 / 100G
  /// profiles the analytic model uses.
  costmodel::DeviceProfile device{};
  costmodel::LinkProfile link{};
};

struct BlockMeasurement {
  std::string name;
  costmodel::BlockKind kind = costmodel::BlockKind::Attention;
  util::Summary fwd;  ///< raw per-sample statistics (ms)
  util::Summary bwd;
  double fwd_ms = 0;  ///< robust estimate written into the config
  double bwd_ms = 0;
  bool shared = false;  ///< copied from the profiled twin layer, not timed
};

struct ProfileResult {
  /// Measured drop-in for build_model_config(): fwd_ms/bwd_ms from the
  /// clock, everything else analytic.
  costmodel::ModelConfig config;
  /// One entry per config block, in block order.
  std::vector<BlockMeasurement> measurements;
  double wall_ms = 0;  ///< total profiling time
  std::string host;    ///< host fingerprint the timings belong to
  bool memory_fields_analytic = true;
};

/// Fingerprint of the machine the measurements are valid for (arch, OS,
/// hostname, hardware threads). Part of the profile-cache key: a profile
/// measured elsewhere must not silently drive planning here.
std::string host_fingerprint();

class BlockProfiler {
 public:
  explicit BlockProfiler(ProfilerOptions options = {});

  /// Measures every block of the Fig. 3 decomposition for (spec, train) and
  /// returns the measured config plus per-block statistics. Respects
  /// train.recompute: with recompute the timed backward re-runs the forward
  /// from the stashed input (matching the analytic bwd_ms semantics);
  /// without it the cached-activation backward path is timed instead.
  ProfileResult profile(const costmodel::ModelSpec& spec,
                        const costmodel::TrainConfig& train) const;

  /// Targeted re-measurement for drift repair: times only the unique
  /// physical blocks whose kind appears in `kinds` and returns one
  /// measurement per requested kind, in the fixed order Embedding,
  /// Attention, FFN, Head (duplicates ignored). The blocks and synthetic
  /// batches are constructed exactly as profile() constructs them (same
  /// seeded rng stream), so under a deterministic clock a re-measured kind
  /// reproduces the full run's timing bit-exactly. Names are left empty --
  /// the caller merges the per-kind estimate into every config block of
  /// that kind (the share_layer_timings semantics).
  std::vector<BlockMeasurement> profile_kinds(
      const costmodel::ModelSpec& spec, const costmodel::TrainConfig& train,
      const std::vector<costmodel::BlockKind>& kinds) const;

  const ProfilerOptions& options() const { return options_; }

 private:
  ProfilerOptions options_;
};

}  // namespace autopipe::profiler
