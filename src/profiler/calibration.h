// Calibration report: how far the analytic FLOP model is from measured
// per-block times.
//
// The paper trusts its offline profiler; this repo grew up on the analytic
// model, and the two now coexist. calibrate() lines the two configs up
// block-by-block and reports the relative timing error (measured is treated
// as ground truth), so the analytic model's accuracy can be tracked as a
// first-class number -- per block for debugging, mean/max for the
// bench_profiler_calibration trajectory across PRs.
#pragma once

#include <string>
#include <vector>

#include "costmodel/analytic.h"
#include "util/table.h"

namespace autopipe::profiler {

struct CalibrationRow {
  std::string name;
  costmodel::BlockKind kind = costmodel::BlockKind::Attention;
  double measured_fwd_ms = 0;
  double analytic_fwd_ms = 0;
  double fwd_rel_err = 0;  ///< |analytic - measured| / measured
  double measured_bwd_ms = 0;
  double analytic_bwd_ms = 0;
  double bwd_rel_err = 0;
};

struct CalibrationReport {
  std::string model;
  std::vector<CalibrationRow> rows;
  double mean_rel_err = 0;  ///< over every fwd and bwd entry
  double max_rel_err = 0;

  /// Per-block ASCII table (util/table) for the `calibrate` CLI verb.
  util::Table table() const;
  /// One JSON line for the calibration-trajectory bench.
  std::string json() const;
};

/// Compares two configs of identical block structure (same names/kinds in
/// the same order; throws std::invalid_argument otherwise). `measured` is
/// the ground truth the relative errors are computed against.
CalibrationReport calibrate(const costmodel::ModelConfig& measured,
                            const costmodel::ModelConfig& analytic);

}  // namespace autopipe::profiler
