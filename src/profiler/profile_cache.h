// Persistent on-disk cache of measured profiles, keyed by (model spec,
// micro-batch size, sequence length, recompute flag, host fingerprint).
//
// A cache entry is a regular config_io file with metadata riding in comment
// lines ahead of the body:
//
//   # autopipe-model-config v1
//   # autopipe-profile-cache v2
//   # profile-key <fnv1a-64 hex of the canonical key string>
//   # profile-host <fingerprint>
//   # profile-created <unix seconds>
//   # profile-crc32 <crc32 hex of every byte after this line>
//
// Because config_io skips comments, every cache entry is *also* a plain
// model config: load_model_config_file() reads it unchanged, so measured
// profiles reach the Planner through the exact same entry point as analytic
// or hand-written ones (zero API forks). Lookups verify the cache format
// version, the key digest (any change to the model dimensions, batch shape
// or host invalidates the entry in place), the body CRC32 (a torn or
// bit-flipped entry reads as a miss instead of silently poisoning later
// `--from-profile` runs), and optionally the entry's age. Entries are
// written through util::atomic_write_file (temp + fsync + rename), so a
// crash mid-store never leaves a partial entry at the final path.
#pragma once

#include <string>

#include "costmodel/analytic.h"

namespace autopipe::profiler {

/// Bumped whenever the measurement methodology or the entry format changes
/// incompatibly; older entries then re-measure instead of silently feeding
/// stale numbers. v2: entries carry a body CRC32 and are written atomically.
inline constexpr int kProfileCacheVersion = 2;

struct CacheKey {
  costmodel::ModelSpec spec;
  costmodel::TrainConfig train;
  std::string host;  ///< host_fingerprint() unless a test overrides it
};

/// Canonical key string: every field that must invalidate the cache when it
/// changes, including the effective sequence length (train.seq_len == 0
/// resolves to the spec default) and the cache format version.
std::string cache_key_string(const CacheKey& key);

/// FNV-1a 64-bit hex digest of cache_key_string().
std::string cache_key_digest(const CacheKey& key);

/// File name inside the cache directory: "<model>-mb<B>-seq<S>.profile.cfg"
/// (model name sanitised). The host/dimension digest lives in the header,
/// so a foreign or outdated entry at the same path reads as a miss.
std::string cache_file_name(const CacheKey& key);

struct CacheLookup {
  bool hit = false;
  std::string path;         ///< file consulted (may not exist)
  /// "absent" | "version" | "key" | "stale" | "corrupt" | "parse"
  std::string miss_reason;
  /// Valid when hit, and also on a "stale" miss (stale_config below): a
  /// stale entry passed every integrity check except its age, so its body
  /// is still well-formed and usable as a drift-detection baseline.
  costmodel::ModelConfig config;
  /// True on a "stale" miss whose body parsed: `config` holds the outdated
  /// profile so the session can probe it for drift instead of re-measuring
  /// everything from scratch.
  bool stale_config = false;
};

/// Checks dir for a valid entry. max_age_seconds <= 0 disables the
/// staleness check.
CacheLookup load_cached_profile(const std::string& dir, const CacheKey& key,
                                long max_age_seconds = 0);

/// Writes `config` as a cache entry for `key` under dir. Returns the final
/// path, or "" on I/O failure. `created_unix` == 0 stamps the current time
/// (tests pass an old timestamp to exercise staleness).
std::string store_profile(const std::string& dir, const CacheKey& key,
                          const costmodel::ModelConfig& config,
                          long created_unix = 0);

}  // namespace autopipe::profiler
