// Profile-once, plan-forever: the cache-aware profiling session that the
// facade and the CLI drive.
//
// obtain_profile() is the complete Fig. 2 front-end: consult the on-disk
// cache for a profile matching (model spec, micro-batch, seq len, host);
// on a hit return it without touching the hardware, on a miss run the
// BlockProfiler and store the result. The returned ModelConfig feeds the
// unchanged core::auto_plan()/core::plan() entry points.
#pragma once

#include <string>

#include "profiler/block_profiler.h"
#include "profiler/profile_cache.h"

namespace autopipe::profiler {

struct SessionOptions {
  std::string cache_dir = ".";
  bool force_remeasure = false;  ///< skip the lookup, overwrite the entry
  long max_age_seconds = 0;      ///< <= 0: cached profiles never go stale
  ProfilerOptions profiler;
  /// Overrides host_fingerprint() in the cache key (tests simulate foreign
  /// hosts this way).
  std::string host_override;
};

struct SessionResult {
  costmodel::ModelConfig config;
  bool from_cache = false;
  std::string cache_path;
  /// Why the cache missed and a measurement ran ("forced", "absent",
  /// "version", "key", "stale", "parse"); empty on a hit.
  std::string miss_reason;
  /// Populated only when a measurement actually ran.
  ProfileResult measurement;
};

SessionResult obtain_profile(const costmodel::ModelSpec& spec,
                             const costmodel::TrainConfig& train,
                             const SessionOptions& options);

}  // namespace autopipe::profiler
