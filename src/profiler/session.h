// Profile-once, plan-forever: the cache-aware profiling session that the
// facade and the CLI drive.
//
// obtain_profile() is the complete Fig. 2 front-end: consult the on-disk
// cache for a profile matching (model spec, micro-batch, seq len, host);
// on a hit return it without touching the hardware, on a miss run the
// BlockProfiler and store the result. The returned ModelConfig feeds the
// unchanged core::auto_plan()/core::plan() entry points.
#pragma once

#include <string>
#include <vector>

#include "profiler/block_profiler.h"
#include "profiler/profile_cache.h"

namespace autopipe::profiler {

/// Drift detection for stale cache entries: instead of discarding an aged
/// profile wholesale, probe the four unique physical block kinds with a
/// cheap measurement and re-measure *only* the kinds whose timing moved
/// beyond `tolerance` -- the targeted re-profile of a long-lived planning
/// service. Kinds that probe within tolerance keep their cached timings
/// bit-exactly, and a fully clean probe refreshes the entry's timestamp
/// without any full-fidelity measurement. Only applies when
/// ProfilerOptions::share_layer_timings is set (the default): per-layer
/// individual timings cannot be repaired per kind, so they fall back to the
/// ordinary full re-measure.
struct DriftOptions {
  bool check = false;      ///< enable the stale-entry probe path
  double tolerance = 0.25; ///< relative fwd/bwd deviation that counts as drift
  int probe_warmup = 0;    ///< warmup iterations for the cheap probe
  int probe_samples = 1;   ///< timed samples for the cheap probe
};

struct SessionOptions {
  std::string cache_dir = ".";
  bool force_remeasure = false;  ///< skip the lookup, overwrite the entry
  long max_age_seconds = 0;      ///< <= 0: cached profiles never go stale
  ProfilerOptions profiler;
  /// Overrides host_fingerprint() in the cache key (tests simulate foreign
  /// hosts this way).
  std::string host_override;
  DriftOptions drift;
};

struct SessionResult {
  costmodel::ModelConfig config;
  bool from_cache = false;
  std::string cache_path;
  /// Why the cache missed and a measurement ran ("forced", "absent",
  /// "version", "key", "stale", "parse"); empty on a hit, and cleared when
  /// drift detection validated a stale entry without re-measuring.
  std::string miss_reason;
  /// Populated only when a measurement actually ran.
  ProfileResult measurement;
  /// Drift detection diagnostics (DriftOptions::check on a stale entry).
  bool drift_checked = false;
  /// Kinds whose probe deviated beyond tolerance and were re-measured at
  /// full fidelity; empty when the stale entry validated clean.
  std::vector<costmodel::BlockKind> drifted;
  /// Config blocks whose timings the targeted re-measure overwrote.
  int reprofiled_blocks = 0;
};

SessionResult obtain_profile(const costmodel::ModelSpec& spec,
                             const costmodel::TrainConfig& train,
                             const SessionOptions& options);

}  // namespace autopipe::profiler
