#include "profiler/session.h"

#include "util/logging.h"

namespace autopipe::profiler {

SessionResult obtain_profile(const costmodel::ModelSpec& spec,
                             const costmodel::TrainConfig& train,
                             const SessionOptions& options) {
  SessionResult result;
  CacheKey key;
  key.spec = spec;
  key.train = train;
  key.host = options.host_override.empty() ? host_fingerprint()
                                           : options.host_override;

  if (!options.force_remeasure) {
    CacheLookup lookup =
        load_cached_profile(options.cache_dir, key, options.max_age_seconds);
    if (lookup.hit) {
      result.config = std::move(lookup.config);
      result.from_cache = true;
      result.cache_path = std::move(lookup.path);
      AP_LOG(info) << "profile cache hit: " << result.cache_path;
      return result;
    }
    result.miss_reason = lookup.miss_reason;
  } else {
    result.miss_reason = "forced";
  }

  const BlockProfiler profiler(options.profiler);
  result.measurement = profiler.profile(spec, train);
  result.config = result.measurement.config;
  result.cache_path = store_profile(options.cache_dir, key, result.config);
  if (result.cache_path.empty()) {
    AP_LOG(warn) << "measured profile for " << spec.name
                 << " could not be cached in " << options.cache_dir;
  }
  return result;
}

}  // namespace autopipe::profiler
