#include "profiler/session.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace autopipe::profiler {

namespace {

/// Relative deviation of a probe against the cached estimate. The cached
/// value anchors the denominator so a near-zero probe of a non-trivial
/// block still registers as drift.
double relative_deviation(double probed, double cached) {
  const double denom = std::max(std::abs(cached), 1e-9);
  return std::abs(probed - cached) / denom;
}

/// First config block of `kind`, or nullptr. With shared layer timings every
/// block of a kind carries the same estimate, so one representative is
/// enough to compare against.
const costmodel::Block* representative(const costmodel::ModelConfig& config,
                                       costmodel::BlockKind kind) {
  for (const costmodel::Block& b : config.blocks) {
    if (b.kind == kind) return &b;
  }
  return nullptr;
}

/// Probe a stale profile for drift and repair it in place. Returns true when
/// the repaired (or validated) `config` should be used instead of a full
/// re-measure; diagnostics land in `result`.
bool repair_stale_profile(const costmodel::ModelSpec& spec,
                          const costmodel::TrainConfig& train,
                          const SessionOptions& options,
                          costmodel::ModelConfig& config,
                          SessionResult& result) {
  result.drift_checked = true;

  // Cheap probe of every kind the config contains, at reduced fidelity.
  ProfilerOptions probe_opts = options.profiler;
  probe_opts.warmup = options.drift.probe_warmup;
  probe_opts.samples = options.drift.probe_samples;
  std::vector<costmodel::BlockKind> present;
  for (costmodel::BlockKind kind :
       {costmodel::BlockKind::Embedding, costmodel::BlockKind::Attention,
        costmodel::BlockKind::FFN, costmodel::BlockKind::Head}) {
    if (representative(config, kind) != nullptr) present.push_back(kind);
  }
  const BlockProfiler prober(probe_opts);
  const std::vector<BlockMeasurement> probes =
      prober.profile_kinds(spec, train, present);

  for (const BlockMeasurement& probe : probes) {
    const costmodel::Block* cached = representative(config, probe.kind);
    if (cached == nullptr) continue;
    if (relative_deviation(probe.fwd_ms, cached->fwd_ms) >
            options.drift.tolerance ||
        relative_deviation(probe.bwd_ms, cached->bwd_ms) >
            options.drift.tolerance) {
      result.drifted.push_back(probe.kind);
    }
  }

  if (result.drifted.empty()) {
    AP_LOG(info) << "stale profile for " << spec.name
                 << " probed clean; refreshing without re-measuring";
    return true;
  }

  // Full-fidelity re-measure of only the drifted kinds, merged over every
  // config block of those kinds (shared-layer-timing semantics).
  const BlockProfiler profiler(options.profiler);
  const std::vector<BlockMeasurement> fresh =
      profiler.profile_kinds(spec, train, result.drifted);
  for (const BlockMeasurement& m : fresh) {
    for (costmodel::Block& b : config.blocks) {
      if (b.kind != m.kind) continue;
      b.fwd_ms = m.fwd_ms;
      b.bwd_ms = m.bwd_ms;
      ++result.reprofiled_blocks;
    }
  }
  AP_LOG(info) << "stale profile for " << spec.name << " drifted in "
               << result.drifted.size() << " block kind(s); re-measured "
               << result.reprofiled_blocks << " of " << config.blocks.size()
               << " blocks";
  return true;
}

}  // namespace

SessionResult obtain_profile(const costmodel::ModelSpec& spec,
                             const costmodel::TrainConfig& train,
                             const SessionOptions& options) {
  SessionResult result;
  CacheKey key;
  key.spec = spec;
  key.train = train;
  key.host = options.host_override.empty() ? host_fingerprint()
                                           : options.host_override;

  if (!options.force_remeasure) {
    CacheLookup lookup =
        load_cached_profile(options.cache_dir, key, options.max_age_seconds);
    if (lookup.hit) {
      result.config = std::move(lookup.config);
      result.from_cache = true;
      result.cache_path = std::move(lookup.path);
      AP_LOG(info) << "profile cache hit: " << result.cache_path;
      return result;
    }
    result.miss_reason = lookup.miss_reason;

    // Drift repair: a stale-but-intact entry is probed per block kind and
    // only drifted kinds are re-measured; the merged profile is re-stored
    // with a fresh timestamp. Per-layer timings (share_layer_timings off)
    // cannot be repaired per kind and take the full re-measure below.
    if (options.drift.check && lookup.stale_config &&
        options.profiler.share_layer_timings &&
        repair_stale_profile(spec, train, options, lookup.config, result)) {
      result.config = std::move(lookup.config);
      result.from_cache = result.drifted.empty();
      if (result.drifted.empty()) result.miss_reason.clear();
      result.cache_path = store_profile(options.cache_dir, key, result.config);
      if (result.cache_path.empty()) {
        AP_LOG(warn) << "refreshed profile for " << spec.name
                     << " could not be re-stored in " << options.cache_dir;
        result.cache_path = std::move(lookup.path);
      }
      return result;
    }
  } else {
    result.miss_reason = "forced";
  }

  const BlockProfiler profiler(options.profiler);
  result.measurement = profiler.profile(spec, train);
  result.config = result.measurement.config;
  result.cache_path = store_profile(options.cache_dir, key, result.config);
  if (result.cache_path.empty()) {
    AP_LOG(warn) << "measured profile for " << spec.name
                 << " could not be cached in " << options.cache_dir;
  }
  return result;
}

}  // namespace autopipe::profiler
