#include "profiler/profile_cache.h"

#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <string_view>

#include "costmodel/config_io.h"
#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace autopipe::profiler {

namespace {

int effective_seq(const CacheKey& key) {
  return key.train.seq_len > 0 ? key.train.seq_len : key.spec.default_seq;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "model" : out;
}

}  // namespace

std::string cache_key_string(const CacheKey& key) {
  std::ostringstream out;
  out << "cachev" << kProfileCacheVersion << "|model=" << key.spec.name
      << "|layers=" << key.spec.num_layers << "|hidden=" << key.spec.hidden
      << "|heads=" << key.spec.heads << "|vocab=" << key.spec.vocab
      << "|causal=" << (key.spec.causal ? 1 : 0)
      << "|mb=" << key.train.micro_batch_size << "|seq=" << effective_seq(key)
      << "|recompute=" << (key.train.recompute ? 1 : 0)
      << "|host=" << key.host;
  return out.str();
}

std::string cache_key_digest(const CacheKey& key) {
  return hex64(fnv1a(cache_key_string(key)));
}

std::string cache_file_name(const CacheKey& key) {
  return sanitize(key.spec.name) + "-mb" +
         std::to_string(key.train.micro_batch_size) + "-seq" +
         std::to_string(effective_seq(key)) + ".profile.cfg";
}

CacheLookup load_cached_profile(const std::string& dir, const CacheKey& key,
                                long max_age_seconds) {
  CacheLookup out;
  out.path = dir + "/" + cache_file_name(key);

  std::string text;
  if (!util::read_file(out.path, text)) {
    out.miss_reason = "absent";
    return out;
  }

  // Scan the comment header block (metadata precedes the first directive).
  int version = -1;
  std::string digest, crc_hex;
  long created = 0;
  std::size_t body_begin = std::string::npos;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] != '#') break;
      std::istringstream tokens(line);
      std::string hash, tag;
      tokens >> hash >> tag;
      if (tag == "autopipe-profile-cache") {
        std::string v;
        tokens >> v;
        if (v.size() > 1 && v[0] == 'v') version = std::atoi(v.c_str() + 1);
      } else if (tag == "profile-key") {
        tokens >> digest;
      } else if (tag == "profile-created") {
        tokens >> created;
      } else if (tag == "profile-crc32") {
        tokens >> crc_hex;
        // The CRC covers every byte after its own line.
        const std::size_t line_pos = text.find(line);
        if (line_pos != std::string::npos) {
          const std::size_t eol = text.find('\n', line_pos);
          if (eol != std::string::npos) body_begin = eol + 1;
        }
      }
    }
  }

  if (version != kProfileCacheVersion) {
    out.miss_reason = "version";
    return out;
  }
  if (digest != cache_key_digest(key)) {
    out.miss_reason = "key";
    return out;
  }
  // Integrity before staleness: a torn write (crash mid-store, pre-v2
  // entries were not atomic) or a flipped bit must read as a miss, not
  // poison later --from-profile runs with a truncated block table.
  if (crc_hex.empty() || body_begin == std::string::npos ||
      crc_hex != util::crc32_hex(util::crc32(
                     std::string_view(text).substr(body_begin)))) {
    AP_LOG(warn) << "profile cache entry " << out.path
                 << " failed its CRC check; re-measuring";
    out.miss_reason = "corrupt";
    return out;
  }
  bool stale = false;
  if (max_age_seconds > 0) {
    const long age = static_cast<long>(std::time(nullptr)) - created;
    stale = created <= 0 || age > max_age_seconds;
  }

  try {
    std::istringstream body(text.substr(body_begin));
    out.config = costmodel::load_model_config(body);
  } catch (const std::exception& e) {
    AP_LOG(warn) << "profile cache entry " << out.path
                 << " failed to parse: " << e.what();
    out.miss_reason = "parse";
    return out;
  }
  if (stale) {
    // Still a miss, but the parsed body rides along as the drift baseline.
    out.miss_reason = "stale";
    out.stale_config = true;
    return out;
  }
  out.hit = true;
  return out;
}

std::string store_profile(const std::string& dir, const CacheKey& key,
                          const costmodel::ModelConfig& config,
                          long created_unix) {
  const std::string path = dir + "/" + cache_file_name(key);
  if (created_unix == 0) created_unix = static_cast<long>(std::time(nullptr));
  // Cache metadata rides in leading comments; save_model_config writes the
  // config_io header itself, so the file stays a valid plain model config.
  // The CRC line comes last in the metadata block and covers everything
  // after itself, i.e. the config body.
  std::ostringstream body;
  costmodel::save_model_config(config, body);
  const std::string body_text = body.str();

  std::ostringstream entry;
  entry << "# autopipe-profile-cache v" << kProfileCacheVersion << "\n";
  entry << "# profile-key " << cache_key_digest(key) << "\n";
  entry << "# profile-host " << key.host << "\n";
  entry << "# profile-created " << created_unix << "\n";
  entry << "# profile-crc32 " << util::crc32_hex(util::crc32(body_text))
        << "\n";
  entry << body_text;

  if (!util::atomic_write_file(path, entry.str())) return "";
  return path;
}

}  // namespace autopipe::profiler
