#include "profiler/profile_cache.h"

#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "costmodel/config_io.h"
#include "util/logging.h"

namespace autopipe::profiler {

namespace {

int effective_seq(const CacheKey& key) {
  return key.train.seq_len > 0 ? key.train.seq_len : key.spec.default_seq;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? "model" : out;
}

}  // namespace

std::string cache_key_string(const CacheKey& key) {
  std::ostringstream out;
  out << "cachev" << kProfileCacheVersion << "|model=" << key.spec.name
      << "|layers=" << key.spec.num_layers << "|hidden=" << key.spec.hidden
      << "|heads=" << key.spec.heads << "|vocab=" << key.spec.vocab
      << "|causal=" << (key.spec.causal ? 1 : 0)
      << "|mb=" << key.train.micro_batch_size << "|seq=" << effective_seq(key)
      << "|recompute=" << (key.train.recompute ? 1 : 0)
      << "|host=" << key.host;
  return out.str();
}

std::string cache_key_digest(const CacheKey& key) {
  return hex64(fnv1a(cache_key_string(key)));
}

std::string cache_file_name(const CacheKey& key) {
  return sanitize(key.spec.name) + "-mb" +
         std::to_string(key.train.micro_batch_size) + "-seq" +
         std::to_string(effective_seq(key)) + ".profile.cfg";
}

CacheLookup load_cached_profile(const std::string& dir, const CacheKey& key,
                                long max_age_seconds) {
  CacheLookup out;
  out.path = dir + "/" + cache_file_name(key);

  std::ifstream in(out.path);
  if (!in) {
    out.miss_reason = "absent";
    return out;
  }

  // Scan the comment header block (metadata precedes the first directive).
  int version = -1;
  std::string digest;
  long created = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '#') break;
    std::istringstream tokens(line);
    std::string hash, tag;
    tokens >> hash >> tag;
    if (tag == "autopipe-profile-cache") {
      std::string v;
      tokens >> v;
      if (v.size() > 1 && v[0] == 'v') version = std::atoi(v.c_str() + 1);
    } else if (tag == "profile-key") {
      tokens >> digest;
    } else if (tag == "profile-created") {
      tokens >> created;
    }
  }

  if (version != kProfileCacheVersion) {
    out.miss_reason = "version";
    return out;
  }
  if (digest != cache_key_digest(key)) {
    out.miss_reason = "key";
    return out;
  }
  if (max_age_seconds > 0) {
    const long age = static_cast<long>(std::time(nullptr)) - created;
    if (created <= 0 || age > max_age_seconds) {
      out.miss_reason = "stale";
      return out;
    }
  }

  try {
    out.config = costmodel::load_model_config_file(out.path);
  } catch (const std::exception& e) {
    AP_LOG(warn) << "profile cache entry " << out.path
                 << " failed to parse: " << e.what();
    out.miss_reason = "parse";
    return out;
  }
  out.hit = true;
  return out;
}

std::string store_profile(const std::string& dir, const CacheKey& key,
                          const costmodel::ModelConfig& config,
                          long created_unix) {
  const std::string path = dir + "/" + cache_file_name(key);
  std::ofstream out(path);
  if (!out) {
    AP_LOG(error) << "cannot open " << path << " for writing";
    return "";
  }
  if (created_unix == 0) created_unix = static_cast<long>(std::time(nullptr));
  // Cache metadata rides in leading comments; save_model_config writes the
  // config_io header itself, so the file stays a valid plain model config.
  out << "# autopipe-profile-cache v" << kProfileCacheVersion << "\n";
  out << "# profile-key " << cache_key_digest(key) << "\n";
  out << "# profile-host " << key.host << "\n";
  out << "# profile-created " << created_unix << "\n";
  costmodel::save_model_config(config, out);
  if (!out) {
    AP_LOG(error) << "short write to " << path;
    return "";
  }
  return path;
}

}  // namespace autopipe::profiler
