#include "profiler/calibration.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace autopipe::profiler {

namespace {

double rel_err(double truth, double estimate) {
  const double denom = std::max(std::abs(truth), 1e-9);
  return std::abs(estimate - truth) / denom;
}

}  // namespace

CalibrationReport calibrate(const costmodel::ModelConfig& measured,
                            const costmodel::ModelConfig& analytic) {
  if (measured.blocks.size() != analytic.blocks.size()) {
    throw std::invalid_argument("calibrate: block count mismatch");
  }
  CalibrationReport report;
  report.model = measured.spec.name;
  double err_sum = 0;
  for (std::size_t i = 0; i < measured.blocks.size(); ++i) {
    const costmodel::Block& m = measured.blocks[i];
    const costmodel::Block& a = analytic.blocks[i];
    if (m.name != a.name || m.kind != a.kind) {
      throw std::invalid_argument("calibrate: block structure mismatch at '" +
                                  m.name + "' vs '" + a.name + "'");
    }
    CalibrationRow row;
    row.name = m.name;
    row.kind = m.kind;
    row.measured_fwd_ms = m.fwd_ms;
    row.analytic_fwd_ms = a.fwd_ms;
    row.fwd_rel_err = rel_err(m.fwd_ms, a.fwd_ms);
    row.measured_bwd_ms = m.bwd_ms;
    row.analytic_bwd_ms = a.bwd_ms;
    row.bwd_rel_err = rel_err(m.bwd_ms, a.bwd_ms);
    err_sum += row.fwd_rel_err + row.bwd_rel_err;
    report.max_rel_err =
        std::max({report.max_rel_err, row.fwd_rel_err, row.bwd_rel_err});
    report.rows.push_back(std::move(row));
  }
  if (!report.rows.empty()) {
    err_sum /= static_cast<double>(2 * report.rows.size());
  }
  report.mean_rel_err = err_sum;
  return report;
}

util::Table CalibrationReport::table() const {
  util::Table t({"block", "kind", "fwd meas (ms)", "fwd analytic (ms)",
                 "fwd err", "bwd meas (ms)", "bwd analytic (ms)", "bwd err"});
  for (const CalibrationRow& r : rows) {
    t.add_row({r.name, costmodel::to_string(r.kind),
               util::Table::fmt(r.measured_fwd_ms, 4),
               util::Table::fmt(r.analytic_fwd_ms, 4),
               util::Table::fmt(r.fwd_rel_err, 3),
               util::Table::fmt(r.measured_bwd_ms, 4),
               util::Table::fmt(r.analytic_bwd_ms, 4),
               util::Table::fmt(r.bwd_rel_err, 3)});
  }
  return t;
}

std::string CalibrationReport::json() const {
  std::ostringstream out;
  out.precision(6);
  out << "{\"bench\":\"profiler_calibration\",\"model\":\"" << model
      << "\",\"blocks\":" << rows.size()
      << ",\"mean_rel_err\":" << mean_rel_err
      << ",\"max_rel_err\":" << max_rel_err << ",\"per_block\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i) out << ",";
    out << "{\"name\":\"" << rows[i].name
        << "\",\"fwd_rel_err\":" << rows[i].fwd_rel_err
        << ",\"bwd_rel_err\":" << rows[i].bwd_rel_err << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace autopipe::profiler
