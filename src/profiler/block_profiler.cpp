#include "profiler/block_profiler.h"

#include <sys/utsname.h>

#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "model/blocks.h"
#include "util/logging.h"
#include "util/rng.h"

namespace autopipe::profiler {

namespace {

double steady_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `run` with warmup + repeated samples; returns raw stats and the
/// robust estimate.
struct Timed {
  util::Summary stats;
  double estimate_ms = 0;
};

Timed time_callable(const ProfilerOptions& opts,
                    const std::function<double()>& clock,
                    const std::function<void()>& run,
                    const std::function<void()>& between_samples) {
  for (int i = 0; i < opts.warmup; ++i) run();
  if (between_samples) between_samples();

  util::Welford acc;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opts.samples));
  for (int s = 0; s < opts.samples; ++s) {
    const double t0 = clock();
    for (int i = 0; i < opts.inner_iterations; ++i) run();
    const double elapsed =
        (clock() - t0) / static_cast<double>(opts.inner_iterations);
    samples.push_back(elapsed);
    acc.add(elapsed);
    if (between_samples) between_samples();
  }

  Timed out;
  out.stats = acc.summary();
  out.estimate_ms = opts.estimator == TimingEstimator::Median
                        ? util::median(samples)
                        : util::trimmed_mean(samples, opts.trim_frac);
  return out;
}

/// Measures one block: forward, then backward along the path train.recompute
/// selects.
BlockMeasurement measure_block(model::Block& block,
                               const ProfilerOptions& opts,
                               const std::function<double()>& clock,
                               const model::Tensor& x, const model::Tensor& dy,
                               bool recompute) {
  // backward() accumulates parameter gradients; zeroing between samples
  // (outside the timed region) keeps values bounded over long runs.
  BlockMeasurement m;

  const Timed fwd = time_callable(
      opts, clock, [&] { (void)block.forward(x); }, nullptr);
  m.fwd = fwd.stats;
  m.fwd_ms = fwd.estimate_ms;

  Timed bwd;
  if (recompute) {
    bwd = time_callable(
        opts, clock, [&] { (void)block.backward(x, dy); },
        [&] { block.zero_grads(); });
  } else {
    // No-recompute path: the stage kept the forward cache, so only the
    // cached backward is on the timed path.
    model::Tensor y;
    const auto cache = block.forward_cached(x, &y);
    bwd = time_callable(
        opts, clock, [&] { (void)block.backward_cached(*cache, dy); },
        [&] { block.zero_grads(); });
  }
  m.bwd = bwd.stats;
  m.bwd_ms = bwd.estimate_ms;
  return m;
}

/// The four unique physical blocks plus their synthetic inputs, constructed
/// in a fixed order from one seeded rng. Both profile() and profile_kinds()
/// build this identically, so the weights and batches -- and therefore the
/// instruction stream a deterministic clock observes -- match between a full
/// run and a targeted re-measurement.
struct MeasureSetup {
  model::EmbeddingBlock embedding;
  model::ResidualAttentionBlock attention;
  model::ResidualFFNBlock ffn;
  model::HeadBlock head;
  model::Tensor ids;
  model::Tensor x;
  model::Tensor dy_hidden;
  model::Tensor dy_logits;

  MeasureSetup(const costmodel::ModelSpec& spec, int seq, int tokens,
               util::Rng& rng)
      : embedding(spec.vocab, spec.hidden, seq, rng),
        attention(spec.hidden, spec.heads, seq, spec.causal, rng),
        ffn(spec.hidden, rng),
        head(spec.hidden, spec.vocab, rng),
        ids({tokens, 1}) {
    for (std::size_t i = 0; i < ids.numel(); ++i) {
      ids.at(i) = static_cast<float>(
          rng.next_below(static_cast<std::uint64_t>(spec.vocab)));
    }
    x = model::Tensor::randn({tokens, spec.hidden}, rng, 0.02f);
    dy_hidden = model::Tensor::randn({tokens, spec.hidden}, rng, 0.02f);
    dy_logits = model::Tensor::randn({tokens, spec.vocab}, rng, 0.02f);
  }
};

}  // namespace

std::string host_fingerprint() {
  std::string out;
  utsname u{};
  if (uname(&u) == 0) {
    out = std::string(u.machine) + "/" + u.sysname + "/" + u.release + "/" +
          u.nodename;
  } else {
    out = "unknown-host";
  }
  out += "/hw" + std::to_string(std::thread::hardware_concurrency());
  return out;
}

BlockProfiler::BlockProfiler(ProfilerOptions options)
    : options_(std::move(options)) {
  if (options_.warmup < 0 || options_.samples < 1 ||
      options_.inner_iterations < 1) {
    throw std::invalid_argument(
        "profiler needs warmup >= 0, samples >= 1, inner_iterations >= 1");
  }
}

ProfileResult BlockProfiler::profile(const costmodel::ModelSpec& spec,
                                     const costmodel::TrainConfig& train) const {
  const std::function<double()> clock =
      options_.clock_ms ? options_.clock_ms : steady_now_ms;
  const double wall0 = clock();

  // Start from the analytic config: identical block list/order, and it
  // supplies every field the profiler does not measure (memory, comm).
  ProfileResult result;
  if (options_.device.name.empty() && options_.link.name.empty()) {
    result.config = costmodel::build_model_config(spec, train);
  } else {
    result.config =
        costmodel::build_model_config(spec, train, options_.device,
                                      options_.link);
  }
  costmodel::ModelConfig& cfg = result.config;
  result.host = host_fingerprint();

  const int mbs = cfg.train.micro_batch_size;
  const int seq = cfg.train.seq_len;
  const int tokens = mbs * seq;
  const bool recompute = cfg.train.recompute;

  // Deterministic weights and synthetic batch (seeded): two runs with the
  // same options execute the identical instruction stream, so an injected
  // deterministic clock reproduces the measurement bit-exactly.
  util::Rng rng(options_.seed);
  MeasureSetup setup(spec, seq, tokens, rng);

  auto measure = [&](model::Block& block, const model::Tensor& in,
                     const model::Tensor& dy) {
    return measure_block(block, options_, clock, in, dy, recompute);
  };

  // --- Unique physical blocks.
  BlockMeasurement emb = measure(setup.embedding, setup.ids, setup.dy_hidden);
  BlockMeasurement attn = measure(setup.attention, setup.x, setup.dy_hidden);
  BlockMeasurement ffn_m = measure(setup.ffn, setup.x, setup.dy_hidden);
  BlockMeasurement head_m = measure(setup.head, setup.x, setup.dy_logits);

  // Per-layer blocks: either reuse the layer-0 timings (identical
  // architecture -> identical cost) or time freshly constructed twins.
  result.measurements.reserve(cfg.blocks.size());
  for (const costmodel::Block& b : cfg.blocks) {
    BlockMeasurement m;
    switch (b.kind) {
      case costmodel::BlockKind::Embedding:
        m = emb;
        break;
      case costmodel::BlockKind::Head:
        m = head_m;
        break;
      case costmodel::BlockKind::Attention:
        if (options_.share_layer_timings) {
          m = attn;
          m.shared = b.name != cfg.blocks[1].name;
        } else {
          model::ResidualAttentionBlock twin(spec.hidden, spec.heads, seq,
                                             spec.causal, rng);
          m = measure(twin, setup.x, setup.dy_hidden);
        }
        break;
      case costmodel::BlockKind::FFN:
        if (options_.share_layer_timings) {
          m = ffn_m;
          m.shared = b.name != cfg.blocks[2].name;
        } else {
          model::ResidualFFNBlock twin(spec.hidden, rng);
          m = measure(twin, setup.x, setup.dy_hidden);
        }
        break;
    }
    m.name = b.name;
    m.kind = b.kind;
    result.measurements.push_back(std::move(m));
  }

  // --- Overwrite the analytic times with the measurements.
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    cfg.blocks[i].fwd_ms = result.measurements[i].fwd_ms;
    cfg.blocks[i].bwd_ms = result.measurements[i].bwd_ms;
  }
  // Mark provenance where a loaded profile shows it: the device name. The
  // capacity/bandwidth numbers stay analytic (memory_fields_analytic).
  cfg.device.name = "measured(" + result.host + ") " + cfg.device.name;

  result.wall_ms = clock() - wall0;
  AP_LOG(info) << "profiled " << spec.name << " (" << cfg.blocks.size()
               << " blocks, micro-batch " << mbs << ", seq " << seq << ") in "
               << result.wall_ms << " ms";
  return result;
}

std::vector<BlockMeasurement> BlockProfiler::profile_kinds(
    const costmodel::ModelSpec& spec, const costmodel::TrainConfig& train,
    const std::vector<costmodel::BlockKind>& kinds) const {
  const std::function<double()> clock =
      options_.clock_ms ? options_.clock_ms : steady_now_ms;

  // Resolve the effective batch shape exactly as profile() does (seq_len 0
  // falls back to the spec default inside build_model_config).
  const costmodel::ModelConfig cfg = costmodel::build_model_config(spec, train);
  const int seq = cfg.train.seq_len;
  const int tokens = cfg.train.micro_batch_size * seq;
  const bool recompute = cfg.train.recompute;

  util::Rng rng(options_.seed);
  MeasureSetup setup(spec, seq, tokens, rng);

  auto wanted = [&](costmodel::BlockKind k) {
    for (costmodel::BlockKind want : kinds) {
      if (want == k) return true;
    }
    return false;
  };
  auto measure = [&](model::Block& block, const model::Tensor& in,
                     const model::Tensor& dy, costmodel::BlockKind kind) {
    BlockMeasurement m =
        measure_block(block, options_, clock, in, dy, recompute);
    m.kind = kind;
    return m;
  };

  std::vector<BlockMeasurement> out;
  if (wanted(costmodel::BlockKind::Embedding)) {
    out.push_back(measure(setup.embedding, setup.ids, setup.dy_hidden,
                          costmodel::BlockKind::Embedding));
  }
  if (wanted(costmodel::BlockKind::Attention)) {
    out.push_back(measure(setup.attention, setup.x, setup.dy_hidden,
                          costmodel::BlockKind::Attention));
  }
  if (wanted(costmodel::BlockKind::FFN)) {
    out.push_back(measure(setup.ffn, setup.x, setup.dy_hidden,
                          costmodel::BlockKind::FFN));
  }
  if (wanted(costmodel::BlockKind::Head)) {
    out.push_back(measure(setup.head, setup.x, setup.dy_logits,
                          costmodel::BlockKind::Head));
  }
  return out;
}

}  // namespace autopipe::profiler
