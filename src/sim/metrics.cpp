#include "sim/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace autopipe::sim {

PipelineMetrics analyze(const ExecResult& result) {
  PipelineMetrics m;
  m.iteration_ms = result.iteration_ms;
  m.startup_ms = result.startup_ms;
  m.device_busy_ms = result.device_busy_ms;
  const std::size_t devices = result.device_busy_ms.size();
  m.device_first_start_ms.assign(devices, result.iteration_ms);
  m.device_last_end_ms.assign(devices, 0.0);
  for (const TimedOp& op : result.trace) {
    auto& first = m.device_first_start_ms[op.device];
    auto& last = m.device_last_end_ms[op.device];
    first = std::min(first, op.start_ms);
    last = std::max(last, op.end_ms);
  }
  double idle_total = 0, fill_drain_total = 0;
  for (std::size_t d = 0; d < devices; ++d) {
    const double idle = result.iteration_ms - result.device_busy_ms[d];
    m.device_idle_ms.push_back(idle);
    idle_total += idle;
    fill_drain_total += m.device_first_start_ms[d] +
                        (result.iteration_ms - m.device_last_end_ms[d]);
  }
  if (devices > 0 && m.iteration_ms > 0) {
    m.bubble_fraction =
        idle_total / (m.iteration_ms * static_cast<double>(devices));
    if (idle_total > 0) {
      m.fill_drain_fraction = fill_drain_total / idle_total;
    }
  }
  m.busy_stddev_ms = util::stddev(m.device_busy_ms);
  return m;
}

}  // namespace autopipe::sim
