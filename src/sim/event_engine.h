// Generic dependency-graph scheduler.
//
// Tasks have fixed durations and lagged finish-to-start dependencies; the
// engine computes earliest start/end times in topological order (Kahn).
// Device serialization is expressed by chaining each device's ops with
// zero-lag edges, and communication by cross-device edges whose lag is the
// transfer time -- which makes this a compact discrete-event execution model
// for pipeline schedules.
#pragma once

#include <functional>
#include <vector>

namespace autopipe::sim {

class TaskGraph {
 public:
  /// Adds a task and returns its id (dense, starting at 0).
  int add_task(double duration_ms);

  /// `to` may start no earlier than end(`from`) + `lag_ms`. Returns the
  /// edge id (dense, in insertion order) so callers can attach metadata --
  /// the fault-aware executor keys per-edge boundary indices on it.
  int add_dep(int from, int to, double lag_ms = 0.0);

  int size() const { return static_cast<int>(durations_.size()); }
  double duration(int id) const { return durations_[id]; }
  void set_duration(int id, double duration_ms) { durations_[id] = duration_ms; }

  struct Timing {
    std::vector<double> start_ms;
    std::vector<double> end_ms;
    double makespan_ms = 0;
    /// For each task, the predecessor edge that bound its start (-1 if it
    /// started at time zero); lets callers reconstruct critical paths.
    std::vector<int> binding_pred;
  };

  /// Earliest-start schedule. Throws std::logic_error if the graph has a
  /// cycle (a malformed pipeline schedule).
  Timing run() const;

  /// Time-dependent variant for fault injection: `duration_fn(id, start)`
  /// yields a task's actual duration once its start time is known (straggler
  /// windows), `lag_fn(edge, base_lag, producer_end)` the actual lag of an
  /// edge once its producer's end is known (link spikes and outage retries).
  /// Earliest-start times are computed in topological order, so both inputs
  /// are final when each hook runs. Null hooks fall back to the stored
  /// values through the identical arithmetic as run(), making the no-fault
  /// path bit-identical.
  using DurationFn = std::function<double(int id, double start_ms)>;
  using LagFn =
      std::function<double(int edge, double base_lag_ms, double end_ms)>;
  Timing run(const DurationFn& duration_fn, const LagFn& lag_fn) const;

 private:
  struct Edge {
    int from;
    int to;
    double lag_ms;
  };
  std::vector<double> durations_;
  std::vector<Edge> edges_;
};

}  // namespace autopipe::sim
