#include "sim/executor.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "sim/event_engine.h"
#include "util/rng.h"

namespace autopipe::sim {

namespace {

// Key identifying one logical computation: (global stage, type, micro-batch,
// half). Chunks are folded into the global stage.
using OpKey = std::tuple<int, int, int, int>;

}  // namespace

ExecResult execute(const core::Schedule& schedule, const ExecOptions& options) {
  core::validate(schedule);
  const int n = schedule.num_stages;
  const int last_global = schedule.chunks * n - 1;

  // Fault hooks only engage for a non-empty plan: a null or empty FaultPlan
  // follows the exact arithmetic of the fault-free path, keeping its results
  // bit-identical (the determinism contract of DESIGN.md §6).
  const faults::FaultPlan* plan =
      options.faults && !options.faults->empty() ? options.faults : nullptr;
  if (plan) plan->validate(n, std::max(0, schedule.chunks * n - 1));

  util::Rng rng(options.seed);
  TaskGraph graph;
  std::map<OpKey, int> task_of;
  // Flat list mirroring graph task ids.
  std::vector<TimedOp> ops;
  // Per-task device (covers the trailing all-reduce tasks too) and
  // per-edge upstream boundary (-1 for intra-device serialization edges).
  std::vector<int> task_device;
  std::vector<int> edge_boundary;
  std::vector<std::pair<int, int>> edge_ends;  // (from, to) for crash prop
  const auto record_dep = [&](int from, int to, double lag, int boundary) {
    const int e = graph.add_dep(from, to, lag);
    if (static_cast<int>(edge_boundary.size()) <= e) {
      edge_boundary.resize(e + 1, -1);
      edge_ends.resize(e + 1);
    }
    edge_boundary[e] = boundary;
    edge_ends[e] = {from, to};
  };

  // Pass 1: create tasks (with overhead and jitter applied to durations) and
  // intra-device serialization edges.
  for (int dev = 0; dev < n; ++dev) {
    int prev = -1;
    for (const core::ScheduleOp& op : schedule.order[dev]) {
      double duration =
          schedule.op_duration_ms(dev, op) + options.per_op_overhead_ms;
      if (options.jitter_frac > 0) {
        duration *= 1.0 + options.jitter_frac * rng.uniform(-1.0, 1.0);
      }
      const int id = graph.add_task(duration);
      const OpKey key{schedule.global_stage(dev, op.chunk),
                      static_cast<int>(op.type), op.micro_batch, op.half};
      if (!task_of.emplace(key, id).second) {
        throw std::logic_error("duplicate op across devices");
      }
      ops.push_back({op, dev, 0, 0});
      task_device.push_back(dev);
      if (prev >= 0) record_dep(prev, id, 0.0, -1);
      prev = id;
    }
  }

  auto find = [&](int global, core::OpType type, int mb, int half) {
    const auto it =
        task_of.find({global, static_cast<int>(type), mb, half});
    return it == task_of.end() ? -1 : it->second;
  };

  // Per-boundary transfer times come from the schedule itself: the builders
  // freeze the CommModel's prices into Schedule::boundary_comm_ms, so
  // heterogeneous interconnects (intra-node PCIe vs inter-node InfiniBand)
  // need no executor-side override.
  auto hop_of = [&](int upstream_global) {
    return schedule.hop_ms(upstream_global);
  };

  // Pass 2: cross-stage transfer edges.
  for (int id = 0; id < static_cast<int>(ops.size()); ++id) {
    const core::ScheduleOp& op = ops[id].op;
    const int global = schedule.global_stage(ops[id].device, op.chunk);
    if (op.type == core::OpType::Forward && global > 0) {
      const double whole_hop = hop_of(global - 1);
      int producer = find(global - 1, core::OpType::Forward, op.micro_batch,
                          op.half);
      double lag = op.is_half() ? whole_hop / 2.0 : whole_hop;
      if (producer >= 0 && op.half == 0 &&
          ops[producer].op.aggregated_comm) {
        // §III-C: the producer defers the first-half transfer and ships both
        // halves after the second half completes, as one full-size message.
        const int second =
            find(global - 1, core::OpType::Forward, op.micro_batch, 1);
        if (second >= 0) {
          producer = second;
          lag = whole_hop;
        }
      }
      if (producer < 0) {
        throw std::logic_error("forward op has no upstream producer");
      }
      record_dep(producer, id, lag, global - 1);
    }
    if ((op.type == core::OpType::Backward ||
         op.type == core::OpType::BackwardInput) &&
        global < last_global) {
      // The dx producer downstream: the same backward form, falling back to
      // the other form so fused and split stages can coexist in one
      // schedule. BackwardWeight is local and adds no cross-stage edge.
      const double whole_hop = hop_of(global);
      int producer = find(global + 1, op.type, op.micro_batch, op.half);
      if (producer < 0) {
        producer = find(global + 1,
                        op.type == core::OpType::Backward
                            ? core::OpType::BackwardInput
                            : core::OpType::Backward,
                        op.micro_batch, op.half);
      }
      if (producer < 0) {
        throw std::logic_error("backward op has no downstream producer");
      }
      record_dep(producer, id, op.is_half() ? whole_hop / 2.0 : whole_hop,
                 global);
    }
  }

  // Hybrid data parallelism: append one all-reduce task per device, gated
  // on that device's final op.
  if (!options.allreduce_ms.empty()) {
    if (static_cast<int>(options.allreduce_ms.size()) != n) {
      throw std::invalid_argument("allreduce_ms must have one entry per device");
    }
    int cursor = 0;
    for (int dev = 0; dev < n; ++dev) {
      const int count = static_cast<int>(schedule.order[dev].size());
      if (count > 0 && options.allreduce_ms[dev] > 0) {
        const int ar = graph.add_task(options.allreduce_ms[dev]);
        task_device.push_back(dev);
        record_dep(cursor + count - 1, ar, 0.0, -1);
      }
      cursor += count;
    }
  }

  // Actual durations per task: the base value unless a straggler hook
  // stretches it (device_busy_ms and crash truncation use these).
  std::vector<double> actual_ms(graph.size());
  for (int id = 0; id < graph.size(); ++id) actual_ms[id] = graph.duration(id);

  int link_retries = 0;
  TaskGraph::Timing timing;
  if (plan) {
    const TaskGraph::DurationFn dur_fn = [&](int id, double start) {
      const double factor = plan->slowdown(task_device[id], start);
      const double d =
          factor == 1.0 ? graph.duration(id) : graph.duration(id) * factor;
      actual_ms[id] = d;
      return d;
    };
    const TaskGraph::LagFn lag_fn = [&](int e, double base, double end) {
      if (edge_boundary[e] < 0) return base;  // same-device edge, no link
      const faults::TransferOutcome t =
          plan->transfer(edge_boundary[e], end, base);
      link_retries += t.retries;
      return t.lag_ms;
    };
    timing = graph.run(dur_fn, lag_fn);
  } else {
    timing = graph.run();
  }

  // Crash truncation: a task on a crashed device that has not *finished* by
  // the crash instant is lost, and so is -- transitively -- every task that
  // consumes a lost task's output. Edges only point forward in time, so a
  // fixpoint sweep converges in at most graph-diameter passes.
  std::vector<char> lost(graph.size(), 0);
  FailureReport failure;
  // Runtime-only crash triggers (after_ops with an infinite at_ms) do not
  // touch the simulated timeline.
  const auto timed_crash = [&](int device) -> const faults::DeviceCrash* {
    const faults::DeviceCrash* c = plan ? plan->crash_for(device) : nullptr;
    return c && c->at_ms < std::numeric_limits<double>::infinity() ? c
                                                                   : nullptr;
  };
  if (plan && !plan->crashes.empty()) {
    for (int id = 0; id < graph.size(); ++id) {
      if (const faults::DeviceCrash* c = timed_crash(task_device[id])) {
        if (timing.end_ms[id] > c->at_ms) lost[id] = 1;
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (const auto& [from, to] : edge_ends) {
        if (lost[from] && !lost[to]) {
          lost[to] = 1;
          changed = true;
        }
      }
    }
    for (int dev = 0; dev < n; ++dev) {
      if (const faults::DeviceCrash* c = timed_crash(dev)) {
        if (!failure.crashed || c->at_ms < failure.at_ms) {
          failure.crashed = true;
          failure.device = dev;
          failure.at_ms = c->at_ms;
        }
      }
    }
  }

  ExecResult result;
  result.failure = failure;
  result.link_retries = link_retries;
  result.device_busy_ms.assign(n, 0.0);
  result.trace.reserve(ops.size());
  result.startup_ms = 0;
  bool startup_found = false;
  double completed_makespan = 0;
  // Compute ops only; trailing all-reduce tasks count toward the makespan
  // but are not compute busy time.
  for (int id = 0; id < static_cast<int>(ops.size()); ++id) {
    if (lost[id]) {
      ++result.failure.lost_ops;
      continue;
    }
    ++result.failure.completed_ops;
    TimedOp timed = ops[id];
    timed.start_ms = timing.start_ms[id];
    timed.end_ms = timing.end_ms[id];
    result.device_busy_ms[timed.device] += actual_ms[id];
    // Startup overhead (§II-B): when the last *device* starts computing its
    // first forward. Under the interleaved schedule that is the device's
    // first chunk -- the half-size chunks are exactly why interleaving
    // halves startup.
    if (timed.op.type == core::OpType::Forward && timed.device == n - 1 &&
        (!startup_found || timed.start_ms < result.startup_ms)) {
      result.startup_ms = timed.start_ms;
      startup_found = true;
    }
    result.trace.push_back(timed);
  }
  if (failure.crashed) {
    // The iteration never finishes; report how far the pipeline got. Lost
    // all-reduce tasks are excluded along with lost compute ops.
    for (int id = 0; id < graph.size(); ++id) {
      if (!lost[id]) {
        completed_makespan = std::max(completed_makespan, timing.end_ms[id]);
      }
    }
    result.iteration_ms = std::max(completed_makespan, failure.at_ms);
  } else {
    result.iteration_ms = timing.makespan_ms;
  }
  std::sort(result.trace.begin(), result.trace.end(),
            [](const TimedOp& a, const TimedOp& b) {
              return std::tie(a.start_ms, a.device) <
                     std::tie(b.start_ms, b.device);
            });
  return result;
}

}  // namespace autopipe::sim
