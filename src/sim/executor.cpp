#include "sim/executor.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

#include "sim/event_engine.h"
#include "util/rng.h"

namespace autopipe::sim {

namespace {

// Key identifying one logical computation: (global stage, type, micro-batch,
// half). Chunks are folded into the global stage.
using OpKey = std::tuple<int, int, int, int>;

}  // namespace

ExecResult execute(const core::Schedule& schedule, const ExecOptions& options) {
  core::validate(schedule);
  const int n = schedule.num_stages;
  const int last_global = schedule.chunks * n - 1;

  util::Rng rng(options.seed);
  TaskGraph graph;
  std::map<OpKey, int> task_of;
  // Flat list mirroring graph task ids.
  std::vector<TimedOp> ops;

  // Pass 1: create tasks (with overhead and jitter applied to durations) and
  // intra-device serialization edges.
  for (int dev = 0; dev < n; ++dev) {
    int prev = -1;
    for (const core::ScheduleOp& op : schedule.order[dev]) {
      double duration =
          schedule.op_duration_ms(dev, op) + options.per_op_overhead_ms;
      if (options.jitter_frac > 0) {
        duration *= 1.0 + options.jitter_frac * rng.uniform(-1.0, 1.0);
      }
      const int id = graph.add_task(duration);
      const OpKey key{schedule.global_stage(dev, op.chunk),
                      static_cast<int>(op.type), op.micro_batch, op.half};
      if (!task_of.emplace(key, id).second) {
        throw std::logic_error("duplicate op across devices");
      }
      ops.push_back({op, dev, 0, 0});
      if (prev >= 0) graph.add_dep(prev, id, 0.0);
      prev = id;
    }
  }

  auto find = [&](int global, core::OpType type, int mb, int half) {
    const auto it =
        task_of.find({global, static_cast<int>(type), mb, half});
    return it == task_of.end() ? -1 : it->second;
  };

  // Per-boundary transfer times (heterogeneous links) or the scalar.
  if (!options.boundary_comm_ms.empty() &&
      static_cast<int>(options.boundary_comm_ms.size()) !=
          schedule.chunks * n - 1) {
    throw std::invalid_argument(
        "boundary_comm_ms must have one entry per global stage boundary");
  }
  auto hop_of = [&](int upstream_global) {
    return options.boundary_comm_ms.empty()
               ? schedule.comm_ms
               : options.boundary_comm_ms[upstream_global];
  };

  // Pass 2: cross-stage transfer edges.
  for (int id = 0; id < graph.size(); ++id) {
    const core::ScheduleOp& op = ops[id].op;
    const int global = schedule.global_stage(ops[id].device, op.chunk);
    if (op.type == core::OpType::Forward && global > 0) {
      const double whole_hop = hop_of(global - 1);
      int producer = find(global - 1, core::OpType::Forward, op.micro_batch,
                          op.half);
      double lag = op.is_half() ? whole_hop / 2.0 : whole_hop;
      if (producer >= 0 && op.half == 0 &&
          ops[producer].op.aggregated_comm) {
        // §III-C: the producer defers the first-half transfer and ships both
        // halves after the second half completes, as one full-size message.
        const int second =
            find(global - 1, core::OpType::Forward, op.micro_batch, 1);
        if (second >= 0) {
          producer = second;
          lag = whole_hop;
        }
      }
      if (producer < 0) {
        throw std::logic_error("forward op has no upstream producer");
      }
      graph.add_dep(producer, id, lag);
    }
    if (op.type == core::OpType::Backward && global < last_global) {
      const double whole_hop = hop_of(global);
      const int producer =
          find(global + 1, core::OpType::Backward, op.micro_batch, op.half);
      if (producer < 0) {
        throw std::logic_error("backward op has no downstream producer");
      }
      graph.add_dep(producer, id, op.is_half() ? whole_hop / 2.0 : whole_hop);
    }
  }

  // Hybrid data parallelism: append one all-reduce task per device, gated
  // on that device's final op.
  if (!options.allreduce_ms.empty()) {
    if (static_cast<int>(options.allreduce_ms.size()) != n) {
      throw std::invalid_argument("allreduce_ms must have one entry per device");
    }
    int cursor = 0;
    for (int dev = 0; dev < n; ++dev) {
      const int count = static_cast<int>(schedule.order[dev].size());
      if (count > 0 && options.allreduce_ms[dev] > 0) {
        const int ar = graph.add_task(options.allreduce_ms[dev]);
        graph.add_dep(cursor + count - 1, ar, 0.0);
      }
      cursor += count;
    }
  }

  const TaskGraph::Timing timing = graph.run();

  ExecResult result;
  result.iteration_ms = timing.makespan_ms;
  result.device_busy_ms.assign(n, 0.0);
  result.trace.reserve(ops.size());
  result.startup_ms = 0;
  bool startup_found = false;
  // Compute ops only; trailing all-reduce tasks count toward the makespan
  // but are not compute busy time.
  for (int id = 0; id < static_cast<int>(ops.size()); ++id) {
    TimedOp timed = ops[id];
    timed.start_ms = timing.start_ms[id];
    timed.end_ms = timing.end_ms[id];
    result.device_busy_ms[timed.device] += graph.duration(id);
    // Startup overhead (§II-B): when the last *device* starts computing its
    // first forward. Under the interleaved schedule that is the device's
    // first chunk -- the half-size chunks are exactly why interleaving
    // halves startup.
    if (timed.op.type == core::OpType::Forward && timed.device == n - 1 &&
        (!startup_found || timed.start_ms < result.startup_ms)) {
      result.startup_ms = timed.start_ms;
      startup_found = true;
    }
    result.trace.push_back(timed);
  }
  std::sort(result.trace.begin(), result.trace.end(),
            [](const TimedOp& a, const TimedOp& b) {
              return std::tie(a.start_ms, a.device) <
                     std::tie(b.start_ms, b.device);
            });
  return result;
}

}  // namespace autopipe::sim
