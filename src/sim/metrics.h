// Derived pipeline-quality metrics from an execution trace.
#pragma once

#include <vector>

#include "sim/executor.h"

namespace autopipe::sim {

struct PipelineMetrics {
  double iteration_ms = 0;
  double startup_ms = 0;
  /// 1 - busy/makespan, averaged over devices: the pipeline-bubble share.
  double bubble_fraction = 0;
  /// Share of the bubble spent before a device's first op (Warmup fill) or
  /// after its last op (Cooldown drain) -- the startup overhead the Slicer
  /// attacks vs the interior bubbles the Planner attacks.
  double fill_drain_fraction = 0;
  /// Population stddev of per-device busy time (the Fig. 13 balance metric
  /// measured on the executed trace instead of the static loads).
  double busy_stddev_ms = 0;
  std::vector<double> device_busy_ms;
  std::vector<double> device_idle_ms;
  std::vector<double> device_first_start_ms;  ///< Warmup fill per device
  std::vector<double> device_last_end_ms;     ///< Cooldown drain boundary
};

PipelineMetrics analyze(const ExecResult& result);

}  // namespace autopipe::sim
