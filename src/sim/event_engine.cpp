#include "sim/event_engine.h"

#include <algorithm>
#include <stdexcept>

namespace autopipe::sim {

int TaskGraph::add_task(double duration_ms) {
  durations_.push_back(duration_ms);
  return static_cast<int>(durations_.size()) - 1;
}

int TaskGraph::add_dep(int from, int to, double lag_ms) {
  if (from < 0 || from >= size() || to < 0 || to >= size() || from == to) {
    throw std::logic_error("invalid dependency edge");
  }
  edges_.push_back({from, to, lag_ms});
  return static_cast<int>(edges_.size()) - 1;
}

TaskGraph::Timing TaskGraph::run() const { return run(nullptr, nullptr); }

TaskGraph::Timing TaskGraph::run(const DurationFn& duration_fn,
                                 const LagFn& lag_fn) const {
  const int n = size();
  std::vector<std::vector<int>> out(n);
  std::vector<int> indegree(n, 0);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    out[edges_[e].from].push_back(static_cast<int>(e));
    ++indegree[edges_[e].to];
  }

  Timing t;
  t.start_ms.assign(n, 0.0);
  t.binding_pred.assign(n, -1);

  std::vector<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  t.end_ms.assign(n, 0.0);

  int processed = 0;
  while (!ready.empty()) {
    const int id = ready.back();
    ready.pop_back();
    ++processed;
    // All predecessors are final here (Kahn order), so start_ms[id] is the
    // true start and the hooks see committed times.
    const double duration =
        duration_fn ? duration_fn(id, t.start_ms[id]) : durations_[id];
    t.end_ms[id] = t.start_ms[id] + duration;
    t.makespan_ms = std::max(t.makespan_ms, t.end_ms[id]);
    for (int e : out[id]) {
      const Edge& edge = edges_[e];
      const double lag =
          lag_fn ? lag_fn(e, edge.lag_ms, t.end_ms[id]) : edge.lag_ms;
      const double candidate = t.end_ms[id] + lag;
      if (candidate > t.start_ms[edge.to]) {
        t.start_ms[edge.to] = candidate;
        t.binding_pred[edge.to] = id;
      }
      if (--indegree[edge.to] == 0) ready.push_back(edge.to);
    }
  }
  if (processed != n) {
    throw std::logic_error("task graph has a cycle");
  }
  return t;
}

}  // namespace autopipe::sim
