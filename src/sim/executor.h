// Discrete-event execution of a pipeline Schedule.
//
// This is the "actual run" substitute for the paper's GPU cluster: every
// schedule op becomes a task on its device (serialized in schedule order),
// activations and gradients travel over lagged cross-device edges, and --
// unlike the paper-faithful analytic simulator -- each op can pay a fixed
// kernel-launch overhead and multiplicative jitter. The overhead term
// produces the stable simulator-vs-actual bias of Fig. 11.
#pragma once

#include <cstdint>
#include <vector>

#include "core/schedule.h"
#include "faults/fault_plan.h"

namespace autopipe::sim {

struct ExecOptions {
  /// Fixed per-op overhead (kernel launches, framework bookkeeping).
  double per_op_overhead_ms = 0.0;
  /// Uniform multiplicative noise: duration *= 1 + jitter_frac*U(-1,1).
  double jitter_frac = 0.0;
  std::uint64_t seed = 1;
  /// Hybrid data-parallel training: per-device gradient all-reduce time
  /// (size = devices; empty = none). Each device's all-reduce starts after
  /// its last backward, so early stages -- which drain last -- put theirs
  /// on the critical path, exactly as Megatron-LM's non-overlapped reduce
  /// does.
  std::vector<double> allreduce_ms;
  /// Deterministic fault injection (faults/fault_plan.h): straggler windows
  /// multiply op durations, link spikes/outages stretch transfers, and a
  /// device crash truncates the trace (see ExecResult::failure). Null or an
  /// empty plan is bit-identical to the fault-free path.
  const faults::FaultPlan* faults = nullptr;
};

/// What a device crash did to the iteration (sim analogue of the runtime's
/// StageFailure): which device died when, and how many schedule ops were
/// lost -- directly or by depending on a dead op.
struct FailureReport {
  bool crashed = false;
  int device = -1;
  double at_ms = 0;
  int completed_ops = 0;
  int lost_ops = 0;
};

struct TimedOp {
  core::ScheduleOp op;
  int device = 0;
  double start_ms = 0;
  double end_ms = 0;
};

struct ExecResult {
  double iteration_ms = 0;
  /// Startup overhead: when the last device starts its first forward.
  double startup_ms = 0;
  std::vector<TimedOp> trace;          ///< completed ops, in global start order
  std::vector<double> device_busy_ms;  ///< total compute time per device
  /// Crash outcome; `failure.crashed == false` on fault-free runs, in which
  /// case the trace covers every schedule op.
  FailureReport failure;
  /// Failed transfer attempts paid to link outages across the iteration.
  int link_retries = 0;
};

/// Times `schedule` on as many devices as it has stages. Validates the
/// schedule first; throws std::logic_error on malformed schedules.
ExecResult execute(const core::Schedule& schedule, const ExecOptions& = {});

}  // namespace autopipe::sim
