// Seeded chaos scripts: which faults hit which training step.
//
// A ChaosScript is the soak harness's ground truth -- a pure-data list of
// (step, fault) events drawn deterministically from a seed, spanning every
// failure class the supervisor must survive: worker crashes, hard hangs,
// wall-clock stragglers, escalating transients and torn checkpoint writes.
// The supervisor arms each event exactly once, the first time training
// reaches its step; a checkpoint-restore that rolls the step counter back
// does NOT re-arm already-fired events (real hardware does not replay its
// faults because the software recovered), which is what lets a seeded soak
// terminate.
//
// ArmedStorage is the storage-class counterpart of the runtime fault plan:
// a ckpt::Storage decorator whose next write_file can be armed to tear
// (persist a prefix, then throw StorageError), modelling a crash mid
// checkpoint write at a supervisor-chosen moment. Unarmed it is
// bit-identical passthrough.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/storage.h"

namespace autopipe::supervisor {

enum class ChaosKind {
  Crash,           ///< DeviceCrash before an op: worker throws, never returns
  Hang,            ///< HangFault: worker wedges silently, watchdog must act
  Straggler,       ///< SlowOps: real wall-clock delay, step completes slowly
  Transient,       ///< TransientOpFault past the in-place retry budget
  TornCheckpoint,  ///< next checkpoint write tears mid-file
  // Silent-data-corruption classes (faults/sdc.h): a single seeded bit flip
  // that no fail-stop detector sees -- only the guard layer can.
  CorruptActivation,  ///< in-flight flip on a forward boundary tensor
  CorruptGradient,    ///< in-flight flip on a backward boundary tensor
  CorruptWeight,      ///< flip in a parameter between steps
  CorruptOptimizer,   ///< flip in an Adam moment between steps
};

const char* to_string(ChaosKind kind);

/// True for the four Corrupt* classes.
bool is_corruption(ChaosKind kind);

struct ChaosEvent {
  int step = 0;    ///< 0-based training step the event arms at
  ChaosKind kind = ChaosKind::Crash;
  int device = 0;  ///< ignored for TornCheckpoint
  int op_index = 0;
  double delay_ms = 0;  ///< Straggler: per-op extra wall ms
  int op_count = 1;     ///< Straggler: ops affected
  int failures = 1;     ///< Transient: injected failure count
  /// Corrupt* only: which element/bit the flip lands on (reduced modulo the
  /// target's extent at fire time).
  std::uint64_t elem = 0;
  int bit = 0;
};

struct ChaosScriptOptions {
  int steps = 10;       ///< script covers steps [0, steps)
  int devices = 3;
  int ops_per_device = 8;   ///< op_index draw range
  int incidents = 6;        ///< events to draw
  double straggler_delay_ms = 40;
  int transient_failures = 8;  ///< > worker retry budget => escalates
  /// Failure classes the script cycles through. Empty (the default) keeps
  /// the legacy five-class fail-stop cycle, byte-stable for existing seeded
  /// scripts; a corruption soak passes the four Corrupt* classes.
  std::vector<ChaosKind> classes;
};

struct ChaosScript {
  std::vector<ChaosEvent> events;

  /// Events armed at `step`, in script order.
  std::vector<const ChaosEvent*> at_step(int step) const;

  /// Draws `options.incidents` events deterministically from `seed`,
  /// cycling through all five fail-stop classes (or `options.classes` when
  /// set) so any script with >= cycle-length incidents spans every class.
  /// Steps are drawn uniformly; at most one runtime fault lands per
  /// (step, device) -- and at most one Corrupt* event per step, so each
  /// injected corruption maps to exactly one observed incident.
  static ChaosScript sample(const ChaosScriptOptions& options,
                            std::uint64_t seed);
};

class ArmedStorage final : public ckpt::Storage {
 public:
  explicit ArmedStorage(ckpt::Storage& inner) : inner_(inner) {}

  /// The next write_file persists only `keep_bytes` bytes then throws
  /// StorageError. One-shot: the write disarms it.
  void arm_torn_write(std::size_t keep_bytes) {
    armed_ = true;
    keep_bytes_ = keep_bytes;
  }
  bool armed() const { return armed_; }
  int torn_writes() const { return torn_writes_; }

  void create_dirs(const std::string& path) override;
  void write_file(const std::string& path, std::string_view bytes) override;
  void rename_file(const std::string& from, const std::string& to) override;
  std::string read_file(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list_dir(const std::string& dir) override;
  void remove_file(const std::string& path) override;
  void remove_dir(const std::string& path) override;

 private:
  ckpt::Storage& inner_;
  bool armed_ = false;
  std::size_t keep_bytes_ = 0;
  int torn_writes_ = 0;
};

}  // namespace autopipe::supervisor
