#include "supervisor/supervisor.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/partition.h"
#include "core/resume.h"
#include "runtime/stage_failure.h"
#include "util/logging.h"

namespace autopipe::supervisor {

const char* to_string(IncidentClass cls) {
  switch (cls) {
    case IncidentClass::Transient: return "transient";
    case IncidentClass::Crash: return "crash";
    case IncidentClass::Hang: return "hang";
    case IncidentClass::Straggler: return "straggler";
    case IncidentClass::Storage: return "storage";
    case IncidentClass::Corruption: return "corruption";
  }
  return "?";
}

const char* to_string(Action action) {
  switch (action) {
    case Action::RetryInPlace: return "retry-in-place";
    case Action::Restore: return "restore";
    case Action::Replan: return "replan";
    case Action::Absorb: return "absorb";
    case Action::Abort: return "abort";
  }
  return "?";
}

std::vector<const Incident*> SupervisorReport::of_class(
    IncidentClass cls) const {
  std::vector<const Incident*> out;
  for (const Incident& i : incidents) {
    if (i.cls == cls) out.push_back(&i);
  }
  return out;
}

Supervisor::Supervisor(const SupervisorOptions& options)
    : options_(options),
      armed_(options.session.storage != nullptr ? *options.session.storage
                                                : posix_),
      board_(std::max<int>(1, static_cast<int>(options.session.counts.size()))),
      backoff_(options.backoff) {
  if (options_.target_steps < 1) {
    throw std::invalid_argument("supervisor: target_steps must be >= 1");
  }
  if (options_.restart_budget < 0 || options_.retries_per_step < 0) {
    throw std::invalid_argument("supervisor: budgets must be >= 0");
  }
  const int blocks = std::accumulate(options_.session.counts.begin(),
                                     options_.session.counts.end(), 0);
  if (options_.config.num_blocks() != blocks) {
    throw std::invalid_argument(
        "supervisor: config does not describe the session's block array");
  }
  consumed_.assign(
      options_.chaos != nullptr ? options_.chaos->events.size() : 0, false);
  session_opts_ = options_.session;
  session_opts_.storage = &armed_;
  build_session(session_opts_, nullptr);
}

Supervisor::~Supervisor() = default;

const model::TransformerModel& Supervisor::model() const {
  return session_->model();
}

void Supervisor::build_session(const runtime::TrainSessionOptions& opts,
                               const ckpt::TrainState* state) {
  session_ = state != nullptr
                 ? std::make_unique<runtime::TrainSession>(opts, *state)
                 : std::make_unique<runtime::TrainSession>(opts);
  runtime::RunOptions& run = session_->run_options();
  run.health = &board_;
  run.cancel = nullptr;
  run.faults = nullptr;
  run.sdc = &sdc_;
  refresh_plan_timing();
}

void Supervisor::refresh_plan_timing() {
  // Price the session's schedule shape with the analytic per-stage costs so
  // the watchdog deadlines reflect the *plan*: a device whose longest
  // legitimate silent stretch is long (deep bubble) gets a long leash, a
  // busy one a short one.
  core::Partition part;
  part.counts = session_opts_.counts;
  const std::vector<core::StageCost> costs =
      core::stage_costs(options_.config, part);
  const int m = session_opts_.num_micro_batches;
  const double comm = options_.config.comm_ms;
  const core::Schedule priced = core::build_schedule(
      session_opts_.kind, costs, m, comm, {session_opts_.sliced, 1});
  const core::ScheduleEval eval = core::evaluate_schedule(priced);
  sim_gaps_ms_ = max_silent_gaps_ms(priced, eval);
  sim_op_ends_ms_ = device_op_ends_ms(priced, eval);
  sim_iteration_ms_ = eval.iteration_ms;
}

std::vector<double> Supervisor::current_deadlines() const {
  std::vector<double> out(sim_gaps_ms_.size(), 0.0);
  if (wall_per_sim_ <= 0) return out;  // grace_ms floor carries the load
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d] = options_.watchdog.safety_factor * sim_gaps_ms_[d] * wall_per_sim_;
  }
  return out;
}

void Supervisor::arm_chaos(int step, faults::FaultPlan& plan,
                           bool& straggler_armed) {
  if (options_.chaos == nullptr) return;
  const int devices = session_->num_devices();
  for (std::size_t i = 0; i < options_.chaos->events.size(); ++i) {
    if (consumed_[i]) continue;
    const ChaosEvent& e = options_.chaos->events[i];
    if (e.step != step) continue;
    consumed_[i] = true;  // armed exactly once, ever (see chaos.h)
    const int device = devices > 0 ? e.device % devices : 0;
    switch (e.kind) {
      case ChaosKind::Crash:
        plan.crashes.push_back({device,
                                std::numeric_limits<double>::infinity(),
                                e.op_index});
        break;
      case ChaosKind::Hang:
        plan.hangs.push_back({device, e.op_index});
        break;
      case ChaosKind::Straggler:
        plan.slow_ops.push_back({device, e.op_index, e.op_count, e.delay_ms});
        straggler_armed = true;
        break;
      case ChaosKind::Transient:
        plan.transients.push_back({device, e.op_index, e.failures});
        break;
      case ChaosKind::TornCheckpoint:
        armed_.arm_torn_write(options_.torn_keep_bytes);
        break;
      case ChaosKind::CorruptActivation:
      case ChaosKind::CorruptGradient: {
        const int boundaries =
            static_cast<int>(session_opts_.counts.size()) - 1;
        if (boundaries < 1) {
          // Single-stage pipelines have no handoff to corrupt in flight;
          // land the flip on state instead so the event still fires.
          apply_state_flip(e);
          break;
        }
        faults::SdcFault f;
        f.target = e.kind == ChaosKind::CorruptActivation
                       ? faults::SdcTarget::Activation
                       : faults::SdcTarget::Gradient;
        f.boundary = e.device % boundaries;
        f.micro_batch = e.op_index % session_opts_.num_micro_batches;
        f.elem = e.elem;
        f.bit = e.bit;
        sdc_.arm(f);
        break;
      }
      case ChaosKind::CorruptWeight:
      case ChaosKind::CorruptOptimizer:
        apply_state_flip(e);
        break;
    }
  }
}

void Supervisor::apply_state_flip(const ChaosEvent& event) {
  // Between-steps state corruption: flip one bit directly in the live
  // session. Nothing fail-stop notices -- only the weight sentinel can.
  model::TransformerModel& m = session_->model();
  const int b = event.op_index % m.num_blocks();
  std::vector<model::ParamTensor>& params = m.block(b).params();
  const std::size_t p =
      static_cast<std::size_t>((event.elem >> 32) % params.size());
  if (event.kind == ChaosKind::CorruptOptimizer) {
    runtime::AdamState st = session_->optimizer().state();
    std::size_t slot = p;
    for (int k = 0; k < b; ++k) slot += m.block(k).params().size();
    if (st.t > 0 && slot < st.m.size() && !st.m[slot].empty()) {
      std::vector<float>& moment = event.bit % 2 == 0 ? st.m[slot] : st.v[slot];
      faults::flip_float_bit(moment.data(), moment.size(),
                             event.elem & 0xffffffffu, event.bit);
      session_->optimizer().set_state(std::move(st));
      return;
    }
    // No moments yet (before the first optimizer step): fall through to a
    // parameter flip so the event still injects something detectable.
  }
  model::Tensor& value = params[p].value;
  faults::flip_float_bit(value.data(), value.numel(),
                         event.elem & 0xffffffffu, event.bit);
}

bool Supervisor::charge_action(SupervisorReport& report,
                               const std::string& context) {
  ++report.recovery_actions;
  if (report.recovery_actions <= options_.restart_budget) return true;
  report.completed = false;
  report.abort_reason = "restart budget (" +
                        std::to_string(options_.restart_budget) +
                        ") exhausted at: " + context;
  return false;
}

void Supervisor::close_open_incidents(SupervisorReport& report) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::size_t> still_open;
  std::vector<std::chrono::steady_clock::time_point> still_since;
  for (std::size_t k = 0; k < open_incidents_.size(); ++k) {
    Incident& inc = report.incidents[open_incidents_[k]];
    // An incident is healed only once its own logical step completed --
    // a restore rolls the counter back, and the replayed earlier steps do
    // not count as recovery of a later step's failure.
    if (session_->iteration() > inc.step) {
      inc.downtime_ms =
          std::chrono::duration<double, std::milli>(now - open_since_[k])
              .count();
    } else {
      still_open.push_back(open_incidents_[k]);
      still_since.push_back(open_since_[k]);
    }
  }
  open_incidents_ = std::move(still_open);
  open_since_ = std::move(still_since);
}

std::vector<int> Supervisor::degraded_counts(int survivors) {
  if (!options_.plan_oracle) return {};
  try {
    std::vector<int> counts = options_.plan_oracle(survivors);
    const int sum = std::accumulate(counts.begin(), counts.end(), 0);
    const bool shaped =
        static_cast<int>(counts.size()) == survivors &&
        sum == options_.config.num_blocks() &&
        std::all_of(counts.begin(), counts.end(), [](int c) { return c >= 1; });
    if (shaped) return counts;
    AP_LOG(warn) << "supervisor: plan oracle returned an ill-formed "
                    "partition; falling back to local replan";
  } catch (const std::exception& e) {
    AP_LOG(warn) << "supervisor: plan oracle failed (" << e.what()
                 << "); falling back to local replan";
  }
  return {};
}

SupervisorReport Supervisor::run() {
  using clock = std::chrono::steady_clock;
  SupervisorReport report;
  report.losses.assign(static_cast<std::size_t>(options_.target_steps), 0.0);

  int retries_this_step = 0;
  int last_step_seen = -1;
  while (session_->iteration() < options_.target_steps) {
    const int step = session_->iteration();
    if (step != last_step_seen) {
      retries_this_step = 0;
      last_step_seen = step;
      backoff_.reset();
    }
    faults::FaultPlan plan;
    bool straggler_armed = false;
    arm_chaos(step, plan, straggler_armed);
    const bool runtime_faults = !plan.empty();
    const int ckpt_failures_before = session_->checkpoint_failures();
    const guard::GuardCounters& gc = session_->guard_counters();
    const long weight_failures_before = gc.weight_failures;
    const long detections_before = gc.handoff_failures +
                                   gc.nonfinite_failures +
                                   gc.weight_failures + gc.norm_trips;

    runtime::CancelToken token;
    runtime::RunOptions& run = session_->run_options();
    run.health = &board_;
    run.cancel = &token;
    run.faults = runtime_faults ? &plan : nullptr;
    Watchdog dog(board_, token, current_deadlines(), options_.watchdog,
                 sim_op_ends_ms_);
    dog.arm();

    const clock::time_point t0 = clock::now();
    bool ok = false;
    runtime::StageFailure failure(runtime::FailureKind::Crash, -1, "");
    double loss = 0;
    try {
      loss = session_->step();
      ok = true;
    } catch (const runtime::StageFailure& e) {
      failure = e;
    } catch (const std::exception& e) {
      dog.disarm();
      run.cancel = nullptr;
      run.faults = nullptr;
      report.completed = false;
      report.abort_reason = std::string("unclassifiable failure: ") + e.what();
      report.steps_done = session_->iteration();
      report.final_counts = session_->counts();
      return report;
    }
    const WatchdogVerdict verdict = dog.disarm();
    run.cancel = nullptr;  // the token dies with this loop round
    run.faults = nullptr;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();

    if (ok) {
      report.losses[static_cast<std::size_t>(step)] = loss;
      report.steps_done = session_->iteration();
      close_open_incidents(report);
      if (session_->checkpoint_failures() > ckpt_failures_before) {
        Incident inc;
        inc.step = step;
        inc.cls = IncidentClass::Storage;
        inc.action = Action::Absorb;
        inc.what = session_->last_checkpoint_error();
        report.incidents.push_back(inc);
      }
      if (straggler_armed) {
        Incident inc;
        inc.step = step;
        inc.cls = IncidentClass::Straggler;
        inc.action = Action::Absorb;
        const double expected = sim_iteration_ms_ * wall_per_sim_;
        inc.detect_ms = wall_per_sim_ > 0 ? std::max(0.0, wall_ms - expected)
                                          : wall_ms;
        inc.what = "step completed slowly under injected straggler";
        report.incidents.push_back(inc);
      } else if (!runtime_faults && sim_iteration_ms_ > 0) {
        // Clean step: (re)calibrate the wall/sim ratio the plan-aware
        // deadlines scale by.
        wall_per_sim_ = wall_ms / sim_iteration_ms_;
      }
      continue;
    }

    // ---- failure path -------------------------------------------------
    Incident inc;
    inc.step = step;
    inc.what = failure.what();
    // Did any integrity guard detect during this attempt? The counters are
    // the ground truth: under cancellation races the *origin* failure can
    // surface as Timeout/PeerClosed even though a guard fired first.
    const long detections_now = gc.handoff_failures + gc.nonfinite_failures +
                                gc.weight_failures + gc.norm_trips;
    if (failure.kind() == runtime::FailureKind::Corruption ||
        detections_now > detections_before) {
      // A CRC or sentinel mismatch is definitive evidence of the root
      // cause, so it outranks even the watchdog verdict.
      inc.cls = IncidentClass::Corruption;
      inc.device = failure.kind() == runtime::FailureKind::Corruption
                       ? failure.device()
                       : -1;
      inc.detect_ms = wall_ms;
    } else if (verdict.fired) {
      // Under cancellation every worker throws Timeout; the watchdog knows
      // which device actually went silent first.
      inc.cls = IncidentClass::Hang;
      inc.device = verdict.device;
      inc.detect_ms = verdict.silent_ms;
    } else if (failure.kind() == runtime::FailureKind::Transient) {
      inc.cls = IncidentClass::Transient;
      inc.device = failure.device();
      inc.detect_ms = wall_ms;
    } else if (failure.kind() == runtime::FailureKind::Timeout) {
      // A recv deadline expired without the watchdog firing: a peer is
      // wedged but the board kept beating (e.g. hang before the final
      // sends). Same class, coarser detector.
      inc.cls = IncidentClass::Hang;
      inc.device = failure.device();
      inc.detect_ms = wall_ms;
    } else {
      inc.cls = IncidentClass::Crash;
      inc.device = failure.device();
      inc.detect_ms = wall_ms;
    }

    // Corruption splits on *where* the flip landed. A weight-sentinel
    // mismatch means the persistent state itself is rotten -- retrying on
    // it would just re-detect, so only a verified-clean restore helps. Any
    // other Corruption (handoff CRC, non-finite, norm trip) hit in-flight
    // data: the step is atomic and the injected flip was consumed by the
    // detected attempt, so an in-place re-execute is state-exact.
    const bool weight_corruption =
        inc.cls == IncidentClass::Corruption &&
        session_->guard_counters().weight_failures > weight_failures_before;
    const bool inflight_corruption =
        inc.cls == IncidentClass::Corruption && !weight_corruption;

    if (!charge_action(report, std::string(to_string(inc.cls)) + " at step " +
                                   std::to_string(step))) {
      inc.action = Action::Abort;
      report.incidents.push_back(inc);
      report.steps_done = session_->iteration();
      report.final_counts = session_->counts();
      return report;
    }

    if ((inc.cls == IncidentClass::Transient || inflight_corruption) &&
        retries_this_step < options_.retries_per_step) {
      // Rung 1: the step is atomic (parameters untouched, data stream
      // rewound), so retrying in place is state-exact. The injected fault
      // was consumed when it was armed, so the retry runs clean.
      ++retries_this_step;
      inc.action = Action::RetryInPlace;
      report.incidents.push_back(inc);
      open_incidents_.push_back(report.incidents.size() - 1);
      open_since_.push_back(clock::now());
      util::Backoff::sleep_for_ms(backoff_.next_ms());
      continue;
    }

    // Rung 2/3: restore from the newest durable checkpoint -- same device
    // count in Replace mode (a spare fills the slot; state-exact), one
    // fewer in Degrade mode (exact-state resharding onto a replanned
    // partition, optionally from the external plan oracle).
    const int devices = session_->num_devices();
    const bool degrade = options_.mode == RecoveryMode::Degrade && devices > 1;
    core::ResumeOptions ropts;
    ropts.plan = options_.plan;
    ropts.num_gpus = degrade ? devices - 1 : 0;
    // Corrupted state must not be restored from a checkpoint that might
    // carry the same corruption: insist on the verified-clean stamp.
    ropts.require_verified = weight_corruption;
    try {
      std::vector<int> override_counts;
      if (degrade) override_counts = degraded_counts(devices - 1);
      core::ResumeResult resumed = core::resume_from_checkpoint(
          options_.config, armed_, session_opts_.ckpt_dir, ropts);
      inc.action = degrade ? Action::Replan : Action::Restore;
      session_opts_.counts =
          !override_counts.empty() ? override_counts : resumed.counts;
      // The board is sized for the initial cluster; the runtime re-reset()s
      // it to the (possibly smaller) device count on every iteration.
      build_session(session_opts_, &resumed.state);
      AP_LOG(warn) << "supervisor: " << to_string(inc.cls) << " at step "
                   << step << " -> " << to_string(inc.action)
                   << " from step " << resumed.state.step << " on "
                   << session_opts_.counts.size() << " device(s)";
    } catch (const ckpt::CkptError& e) {
      if (weight_corruption && e.kind() != ckpt::CkptErrorKind::Mismatch) {
        // No verified-clean checkpoint exists (none yet, or none stamped).
        // The one state we can still trust is the deterministic step-0
        // initialisation: rebuild it and replay. Bit-exact, just slow.
        inc.action = Action::Restore;
        inc.what += " [no verified-clean checkpoint; rebuilt from step 0]";
        build_session(session_opts_, nullptr);
      } else if (e.kind() == ckpt::CkptErrorKind::NotFound) {
        // Nothing durable yet. Atomic steps make an in-place retry exactly
        // as safe as a restore would have been.
        inc.action = Action::RetryInPlace;
        inc.what += " [no checkpoint yet; retried in place]";
      } else {
        inc.action = Action::Abort;
        report.incidents.push_back(inc);
        report.completed = false;
        report.abort_reason =
            std::string("checkpoint restore failed: ") + e.what();
        report.steps_done = session_->iteration();
        report.final_counts = session_->counts();
        return report;
      }
    } catch (const std::exception& e) {
      inc.action = Action::Abort;
      report.incidents.push_back(inc);
      report.completed = false;
      report.abort_reason = std::string("recovery failed: ") + e.what();
      report.steps_done = session_->iteration();
      report.final_counts = session_->counts();
      return report;
    }
    report.incidents.push_back(inc);
    open_incidents_.push_back(report.incidents.size() - 1);
    open_since_.push_back(clock::now());
    util::Backoff::sleep_for_ms(backoff_.next_ms());
  }

  report.completed = true;
  report.steps_done = session_->iteration();
  report.final_counts = session_->counts();
  for (const Incident& i : report.incidents) {
    report.total_downtime_ms += i.downtime_ms;
  }
  return report;
}

}  // namespace autopipe::supervisor
