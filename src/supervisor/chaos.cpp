#include "supervisor/chaos.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace autopipe::supervisor {

const char* to_string(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::Crash: return "crash";
    case ChaosKind::Hang: return "hang";
    case ChaosKind::Straggler: return "straggler";
    case ChaosKind::Transient: return "transient";
    case ChaosKind::TornCheckpoint: return "torn-checkpoint";
    case ChaosKind::CorruptActivation: return "corrupt-activation";
    case ChaosKind::CorruptGradient: return "corrupt-gradient";
    case ChaosKind::CorruptWeight: return "corrupt-weight";
    case ChaosKind::CorruptOptimizer: return "corrupt-optimizer";
  }
  return "?";
}

bool is_corruption(ChaosKind kind) {
  return kind == ChaosKind::CorruptActivation ||
         kind == ChaosKind::CorruptGradient ||
         kind == ChaosKind::CorruptWeight ||
         kind == ChaosKind::CorruptOptimizer;
}

std::vector<const ChaosEvent*> ChaosScript::at_step(int step) const {
  std::vector<const ChaosEvent*> out;
  for (const ChaosEvent& e : events) {
    if (e.step == step) out.push_back(&e);
  }
  return out;
}

ChaosScript ChaosScript::sample(const ChaosScriptOptions& options,
                                std::uint64_t seed) {
  if (options.steps < 1 || options.devices < 1 || options.ops_per_device < 1 ||
      options.incidents < 0) {
    throw std::invalid_argument("chaos script: bad shape");
  }
  util::Rng rng(seed);
  ChaosScript script;
  // (step, device) pairs already hosting a runtime fault: one origin per
  // attempt keeps incident attribution unambiguous.
  std::vector<std::pair<int, int>> taken;
  constexpr ChaosKind kCycle[] = {ChaosKind::Crash, ChaosKind::Hang,
                                  ChaosKind::Straggler, ChaosKind::Transient,
                                  ChaosKind::TornCheckpoint};
  for (int i = 0; i < options.incidents; ++i) {
    ChaosEvent e;
    e.kind = options.classes.empty()
                 ? kCycle[i % 5]
                 : options.classes[i % options.classes.size()];
    // Every incident consumes the same number of draws regardless of kind
    // or collision retries' outcome, keeping scripts stable under option
    // tweaks: draw (step, device, op) up to a bounded number of times.
    for (int tries = 0; tries < 16; ++tries) {
      e.step = static_cast<int>(rng.next_double() * options.steps);
      e.step = std::min(e.step, options.steps - 1);
      e.device = static_cast<int>(rng.next_double() * options.devices);
      e.device = std::min(e.device, options.devices - 1);
      e.op_index =
          static_cast<int>(rng.next_double() * options.ops_per_device);
      e.op_index = std::min(e.op_index, options.ops_per_device - 1);
      if (e.kind == ChaosKind::TornCheckpoint) break;  // no collision domain
      if (is_corruption(e.kind)) {
        // One corruption per step, full stop: two flips detected by the
        // same sentinel would collapse into one incident and break the
        // injected-to-observed 1:1 accounting a soak asserts.
        const bool step_taken =
            std::any_of(taken.begin(), taken.end(),
                        [&](const auto& k) { return k.first == e.step; });
        if (!step_taken) {
          taken.emplace_back(e.step, -1);
          break;
        }
        continue;
      }
      const auto key = std::make_pair(e.step, e.device);
      if (std::find(taken.begin(), taken.end(), key) == taken.end()) {
        taken.push_back(key);
        break;
      }
    }
    e.delay_ms = options.straggler_delay_ms;
    e.op_count = 2;
    e.failures = options.transient_failures;
    if (is_corruption(e.kind)) {
      // Extra draws only for Corrupt* kinds: legacy scripts stay byte
      // stable for a given seed.
      e.elem = rng.next_u64();
      e.bit = static_cast<int>(rng.next_double() * 32) % 32;
    }
    script.events.push_back(e);
  }
  return script;
}

void ArmedStorage::create_dirs(const std::string& path) {
  inner_.create_dirs(path);
}

void ArmedStorage::write_file(const std::string& path,
                              std::string_view bytes) {
  if (armed_) {
    armed_ = false;
    ++torn_writes_;
    const std::size_t keep = std::min(keep_bytes_, bytes.size());
    inner_.write_file(path, bytes.substr(0, keep));
    throw ckpt::StorageError("armed torn write: " + path + " kept " +
                             std::to_string(keep) + "/" +
                             std::to_string(bytes.size()) + " bytes");
  }
  inner_.write_file(path, bytes);
}

void ArmedStorage::rename_file(const std::string& from, const std::string& to) {
  inner_.rename_file(from, to);
}

std::string ArmedStorage::read_file(const std::string& path) {
  return inner_.read_file(path);
}

bool ArmedStorage::exists(const std::string& path) { return inner_.exists(path); }

std::vector<std::string> ArmedStorage::list_dir(const std::string& dir) {
  return inner_.list_dir(dir);
}

void ArmedStorage::remove_file(const std::string& path) {
  inner_.remove_file(path);
}

void ArmedStorage::remove_dir(const std::string& path) {
  inner_.remove_dir(path);
}

}  // namespace autopipe::supervisor
