// Plan-aware hang detection over the runtime's health board.
//
// A watchdog watches one iteration attempt from its own thread: it samples
// the HealthBoard every few milliseconds and, when some device has been
// silent longer than that device's deadline, cancels the iteration's
// CancelToken -- every worker then unwinds as StageFailure(Timeout) and the
// supervisor classifies the incident using the watchdog's verdict.
//
// The deadlines are *plan-aware*, not a magic constant. A healthy pipeline
// worker legitimately goes quiet for whole bubble phases (device 0 under
// 1F1B idles through most of the steady state), so a naive "no beat for T"
// rule either fires on healthy bubbles or needs a T so large it misses
// real hangs. Instead, plan_deadlines() derives each device's largest
// legitimate silent gap from the analytic schedule timing
// (core::evaluate_schedule): the max spacing between that device's
// consecutive op completions in simulated time, scaled to wall time by a
// calibration ratio the supervisor measures on its first healthy step, then
// multiplied by a safety factor and floored at grace_ms. Hangs are caught
// in O(longest legitimate gap), and bubbles never false-trigger.
#pragma once

#include <thread>
#include <vector>

#include "core/schedule.h"
#include "runtime/cancel.h"
#include "runtime/health.h"

namespace autopipe::supervisor {

struct WatchdogOptions {
  /// Floor under every per-device deadline -- also the whole deadline while
  /// the wall/sim calibration ratio is still unknown (first step).
  double grace_ms = 2000;
  /// Deadline = safety_factor * expected max silent gap (wall ms). Wall
  /// noise on a loaded CI box is easily 2-3x; 8x keeps false positives out
  /// of chaos soaks while still detecting a hard hang in well under a
  /// second on the tiny models the tests run.
  double safety_factor = 8.0;
  double poll_ms = 2;  ///< board sampling period
};

/// What the watchdog saw. `fired` false = the iteration finished (or failed
/// by itself) before any deadline expired.
struct WatchdogVerdict {
  bool fired = false;
  int device = -1;       ///< the blamed device (see the ctor's blame rules)
  double silent_ms = 0;  ///< its silence when the watchdog fired
  double deadline_ms = 0;
  double detection_ms = 0;  ///< arm() -> firing, wall ms
};

/// Per-device allowed silent gap in *simulated* ms: the max spacing between
/// consecutive op end times on that device under `eval` (including the wait
/// for its first completion). Multiply by a wall/sim ratio to get wall ms.
std::vector<double> max_silent_gaps_ms(const core::Schedule& schedule,
                                       const core::ScheduleEval& eval);

/// Each device's op completion times under `eval`, ascending, in simulated
/// ms -- the blame table for Watchdog: entry [d][k] is when op k on device d
/// *should* finish in a healthy iteration.
std::vector<std::vector<double>> device_op_ends_ms(
    const core::Schedule& schedule, const core::ScheduleEval& eval);

class Watchdog {
 public:
  /// Watches `board`, pulls `cancel` on expiry. Both must outlive the
  /// watchdog. `deadline_ms` is per-device wall ms (empty entries behind
  /// board.devices() fall back to grace_ms). `op_ends_ms` (optional, from
  /// device_op_ends_ms()) sharpens blame attribution: a wedged stage
  /// starves its peers, so when a deadline expires several devices are
  /// silent at once -- and the starved ones (waiting out a long bubble)
  /// have often been silent *longer* than the culprit. With the table the
  /// watchdog blames the device most behind the priced schedule: the one
  /// whose next expected op completion is earliest among devices that
  /// still owe ops. Without it, longest silence past deadline wins.
  Watchdog(runtime::HealthBoard& board, runtime::CancelToken& cancel,
           std::vector<double> deadline_ms, const WatchdogOptions& options,
           std::vector<std::vector<double>> op_ends_ms = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the watcher thread. Call after the board was reset for this
  /// attempt and before (or concurrently with) the iteration's first op.
  void arm();

  /// Stops the watcher and returns what it saw. Idempotent; safe to call
  /// whether or not the watchdog fired.
  WatchdogVerdict disarm();

 private:
  void watch();

  runtime::HealthBoard& board_;
  runtime::CancelToken& cancel_;
  std::vector<double> deadline_ms_;
  WatchdogOptions options_;
  std::vector<std::vector<double>> op_ends_ms_;
  runtime::CancelToken stop_;  ///< internal: disarm() pulls this
  std::thread thread_;
  WatchdogVerdict verdict_;
};

}  // namespace autopipe::supervisor
