// Self-healing training supervisor: detect -> classify -> recover.
//
// The Supervisor wraps a runtime::TrainSession and owns the full
// self-healing loop the rest of the repo only provides parts for
// (DESIGN.md §10):
//
//   detect    every step runs under a HealthBoard + plan-aware Watchdog;
//             crashes/transients surface as typed StageFailures, hard hangs
//             are cancelled by the watchdog, stragglers show as slow-but-
//             successful steps, torn checkpoint writes as absorbed
//             StorageErrors on the session's counters.
//   classify  each incident gets a class (Transient/Crash/Hang/Straggler/
//             Storage/Corruption): the watchdog's verdict outranks the
//             StageFailure kind (under cancellation many devices throw
//             Timeout; the watchdog knows which one went silent first) --
//             except Corruption, where a CRC or sentinel mismatch is
//             definitive evidence of the root cause.
//   recover   a deterministic escalation ladder under a bounded restart
//             budget: in-place retry of the same logical step (TrainSession
//             steps are atomic: failed attempts rewind the data stream and
//             leave parameters untouched) -> restore from the latest
//             durable checkpoint and replay -> degraded replan onto N-1
//             survivors (Degrade mode; optionally consulting an external
//             plan oracle such as a running plan_serve daemon, with local
//             replan as fallback). Budget exhausted or an unclassifiable
//             error -> graceful abort with a typed report. Corruption has
//             its own rung: in-flight flips (activation/gradient) were
//             consumed by the detected attempt, so an in-place re-execute
//             is state-exact; corrupted *state* (weight/optimizer flips)
//             cannot be retried -- those restore from the newest
//             verified-clean checkpoint (ckpt::RestoreOptions) or, lacking
//             one, rebuild the deterministic initial state and replay.
//
// Recovery modes: Replace (default) restores onto the same device count --
// a spare takes the dead device's slot -- which keeps every recovery
// state-exact, so a chaos soak must end bit-identical to an unfaulted run
// of the same step count. Degrade resumes on one device fewer; exact-state
// resharding keeps gradients equal up to accumulation order (1e-4).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/storage.h"
#include "core/autopipe.h"
#include "faults/sdc.h"
#include "runtime/health.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/watchdog.h"
#include "util/backoff.h"

namespace autopipe::supervisor {

enum class IncidentClass {
  Transient,
  Crash,
  Hang,
  Straggler,
  Storage,
  Corruption,  ///< an integrity guard caught silent data corruption
};
enum class Action { RetryInPlace, Restore, Replan, Absorb, Abort };

const char* to_string(IncidentClass cls);
const char* to_string(Action action);

struct Incident {
  int step = 0;  ///< logical training step the incident hit
  IncidentClass cls = IncidentClass::Crash;
  Action action = Action::RetryInPlace;
  int device = -1;
  /// Fault occurrence -> supervisor awareness, wall ms. For hangs this is
  /// the watched silence (beat -> watchdog firing); for crashes/transients
  /// the failing attempt's start -> catch; for stragglers the wall overrun
  /// past the calibrated expectation; 0 for absorbed storage faults.
  double detect_ms = 0;
  /// Awareness -> the failed logical step finally completing, wall ms
  /// (MTTR numerator). 0 for incidents that lost no progress.
  double downtime_ms = 0;
  std::string what;
};

enum class RecoveryMode { Replace, Degrade };

struct SupervisorOptions {
  /// Base session configuration. The supervisor overrides `storage` (it
  /// interposes its ArmedStorage) and the `run` health/cancel/fault hooks;
  /// everything else is honoured. Checkpointing should be enabled for the
  /// restore rungs to have something to restore.
  runtime::TrainSessionOptions session;
  /// Block-level model description matching session.spec -- what restores
  /// and degraded replans re-partition.
  core::ModelConfig config;
  int target_steps = 10;
  RecoveryMode mode = RecoveryMode::Replace;
  /// Total recovery actions (retries + restores + replans) before the
  /// supervisor aborts. Bounds every soak: no fault pattern can loop it.
  int restart_budget = 12;
  /// In-place retries of one logical step before escalating to restore.
  int retries_per_step = 2;
  /// Delay ladder between recovery actions (seeded, deterministic).
  util::BackoffOptions backoff{0.5, 2.0, 2000.0, 0.0, 0};
  WatchdogOptions watchdog;
  /// Planner knobs for restore-time resharding (Degrade mode).
  core::AutoPipeOptions plan;
  /// Optional external partition oracle for degraded replans (e.g. a query
  /// against a running plan_serve daemon): called with the surviving device
  /// count, returns per-stage block counts. Empty/throwing/ill-formed
  /// answers fall back to the local planner. Never consulted in Replace
  /// mode.
  std::function<std::vector<int>(int num_gpus)> plan_oracle;
  /// Chaos script to arm (nullptr = supervise faithfully, inject nothing).
  const ChaosScript* chaos = nullptr;
  /// Bytes an armed torn checkpoint write persists before failing.
  std::size_t torn_keep_bytes = 64;
};

struct SupervisorReport {
  bool completed = false;
  int steps_done = 0;
  int recovery_actions = 0;
  std::vector<Incident> incidents;
  double total_downtime_ms = 0;
  /// losses[step] of the final (possibly replayed) pass over each step.
  std::vector<double> losses;
  std::vector<int> final_counts;
  std::string abort_reason;  ///< set when !completed

  /// Incidents of `cls` (bench helper).
  std::vector<const Incident*> of_class(IncidentClass cls) const;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& options);
  ~Supervisor();

  /// Drives training to options.target_steps through the escalation
  /// ladder. Returns rather than throws on every anticipated failure shape
  /// (report.completed distinguishes). Call once per Supervisor.
  SupervisorReport run();

  /// The final model state (valid after run(); for gradient/param
  /// comparison against an unfaulted reference).
  const model::TransformerModel& model() const;
  const runtime::TrainSession& session() const { return *session_; }

 private:
  void build_session(const runtime::TrainSessionOptions& opts,
                     const ckpt::TrainState* state);
  void refresh_plan_timing();
  std::vector<double> current_deadlines() const;
  void arm_chaos(int step, faults::FaultPlan& plan, bool& straggler_armed);
  /// Applies a CorruptWeight/CorruptOptimizer event directly to the live
  /// session state (flips one bit); the weight guard must catch it at the
  /// next sentinel check.
  void apply_state_flip(const ChaosEvent& event);
  bool charge_action(SupervisorReport& report, const std::string& context);
  void close_open_incidents(SupervisorReport& report);
  std::vector<int> degraded_counts(int survivors);

  SupervisorOptions options_;
  ckpt::PosixStorage posix_;
  ArmedStorage armed_;
  runtime::HealthBoard board_;
  std::unique_ptr<runtime::TrainSession> session_;
  runtime::TrainSessionOptions session_opts_;
  util::Backoff backoff_;
  /// Plan-priced timing of the current schedule: per-device max silent
  /// gaps (sim ms), per-device op completion times (sim ms, the watchdog's
  /// blame table) and the full iteration (sim ms).
  std::vector<double> sim_gaps_ms_;
  std::vector<std::vector<double>> sim_op_ends_ms_;
  double sim_iteration_ms_ = 0;
  double wall_per_sim_ = 0;  ///< 0 until the first clean step calibrates
  std::vector<bool> consumed_;  ///< chaos events armed once, ever
  /// In-flight bit-flip injector, threaded into every session's RunOptions.
  /// Consumed-once like the rest of the chaos machinery.
  faults::SdcInjector sdc_;
  std::vector<std::size_t> open_incidents_;  ///< indices awaiting downtime
  std::vector<std::chrono::steady_clock::time_point> open_since_;
};

}  // namespace autopipe::supervisor
