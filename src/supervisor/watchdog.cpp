#include "supervisor/watchdog.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace autopipe::supervisor {

std::vector<double> max_silent_gaps_ms(const core::Schedule& schedule,
                                       const core::ScheduleEval& eval) {
  const int devices = schedule.num_stages;
  // Collect each device's op completion times in ascending order. EvalOp
  // order within a device follows the schedule's execution order, whose end
  // times are monotone on one device, but sort anyway to stay robust.
  std::vector<std::vector<double>> ends(devices);
  for (const core::EvalOp& op : eval.ops) {
    ends[op.device].push_back(op.end_ms);
  }
  std::vector<double> gaps(devices, 0.0);
  for (int d = 0; d < devices; ++d) {
    std::sort(ends[d].begin(), ends[d].end());
    double prev = 0.0;  // the board is stamped "now" at iteration start
    double worst = 0.0;
    for (double e : ends[d]) {
      worst = std::max(worst, e - prev);
      prev = e;
    }
    gaps[d] = worst;
  }
  return gaps;
}

std::vector<std::vector<double>> device_op_ends_ms(
    const core::Schedule& schedule, const core::ScheduleEval& eval) {
  std::vector<std::vector<double>> ends(schedule.num_stages);
  for (const core::EvalOp& op : eval.ops) {
    ends[op.device].push_back(op.end_ms);
  }
  for (std::vector<double>& e : ends) std::sort(e.begin(), e.end());
  return ends;
}

Watchdog::Watchdog(runtime::HealthBoard& board, runtime::CancelToken& cancel,
                   std::vector<double> deadline_ms,
                   const WatchdogOptions& options,
                   std::vector<std::vector<double>> op_ends_ms)
    : board_(board),
      cancel_(cancel),
      deadline_ms_(std::move(deadline_ms)),
      options_(options),
      op_ends_ms_(std::move(op_ends_ms)) {}

Watchdog::~Watchdog() { disarm(); }

void Watchdog::arm() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { watch(); });
}

WatchdogVerdict Watchdog::disarm() {
  stop_.cancel("disarmed");
  if (thread_.joinable()) thread_.join();
  return verdict_;
}

void Watchdog::watch() {
  using clock = std::chrono::steady_clock;
  const clock::time_point armed_at = clock::now();
  while (!stop_.wait_for_ms(options_.poll_ms)) {
    // The iteration aborting on its own (worker failure poisons the token)
    // ends the watch without a verdict -- the StageFailure already carries
    // the diagnosis.
    if (cancel_.cancelled()) return;
    // Trigger: any live device silent past its deadline. Blame: the wedged
    // stage starves its peers, so by the time a deadline expires several
    // devices are silent at once -- and the starved ones (idling through a
    // bubble they will never leave) have often been quiet LONGER than the
    // culprit. With a blame table the verdict goes to the device most
    // behind the priced schedule: the one whose next expected op
    // completion is earliest among live devices that still owe ops.
    // Without a table, longest silence past deadline wins.
    const int devices = board_.devices();
    bool expired = false;
    int blame = -1;
    double blame_score = 0.0;  // see below; lower-is-guiltier per rule
    for (int d = 0; d < devices; ++d) {
      const runtime::DeviceHealth state = board_.state(d);
      if (state == runtime::DeviceHealth::Done ||
          state == runtime::DeviceHealth::Failed) {
        continue;
      }
      const double deadline = std::max(
          options_.grace_ms, d < static_cast<int>(deadline_ms_.size())
                                 ? deadline_ms_[d]
                                 : 0.0);
      const double silent = board_.silent_ms(d);
      if (silent > deadline) expired = true;
      double score;
      if (d < static_cast<int>(op_ends_ms_.size())) {
        const std::vector<double>& ends = op_ends_ms_[d];
        const auto done = static_cast<std::size_t>(board_.ops_done(d));
        if (done >= ends.size()) {
          // Owes no ops: not a culprit -- unless nothing else qualifies
          // (a device stuck between its last op and marking Done).
          score = 1e300;
        } else {
          score = ends[done];  // expected next-op end, sim ms
        }
      } else {
        score = -(silent - deadline);  // fallback: most-over-deadline
      }
      if (blame < 0 || score < blame_score) {
        blame = d;
        blame_score = score;
        verdict_.silent_ms = silent;
        verdict_.deadline_ms = deadline;
      }
    }
    if (expired && blame >= 0) {
      verdict_.fired = true;
      verdict_.device = blame;
      verdict_.detection_ms =
          std::chrono::duration<double, std::milli>(clock::now() - armed_at)
              .count();
      cancel_.cancel("watchdog: device " + std::to_string(blame) +
                     " silent for " + std::to_string(verdict_.silent_ms) +
                     " ms (deadline " + std::to_string(verdict_.deadline_ms) +
                     " ms)");
      return;
    }
  }
}

}  // namespace autopipe::supervisor
