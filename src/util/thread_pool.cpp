#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace autopipe::util {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures any exception into the future
  }
}

int ThreadPool::default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int resolve_threads(int requested) {
  if (requested == 0) return ThreadPool::default_threads();
  return std::max(1, requested);
}

void parallel_for(ThreadPool* pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (int i = 0; i < n; ++i) {
    futures.push_back(pool->submit([&fn, i] { fn(i); }));
  }
  // Collect in index order so the surfaced exception is deterministic.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace autopipe::util
