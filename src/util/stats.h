// Small descriptive-statistics helpers used by the balance metrics
// (Fig. 13 uses the stddev of per-stage times) and the benchmark reports.
#pragma once

#include <span>
#include <vector>

namespace autopipe::util {

double mean(std::span<const double> xs);

/// Population standard deviation (the paper's balance criterion divides by N).
double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace autopipe::util
