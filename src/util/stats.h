// Small descriptive-statistics helpers used by the balance metrics
// (Fig. 13 uses the stddev of per-stage times), the benchmark reports, and
// the block profiler's robust timing estimates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autopipe::util {

double mean(std::span<const double> xs);

/// Population standard deviation (the paper's balance criterion divides by N).
double stddev(std::span<const double> xs);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

/// Median, robust to outliers and NaNs: NaN entries are dropped before
/// sorting (a NaN would make the sort order unspecified). Empty input, or
/// input that is all NaNs, returns 0.0 like `mean`.
double median(std::span<const double> xs);

/// Mean of the values left after dropping floor(n*frac) smallest and
/// largest samples (frac clamped to [0, 0.5]); NaNs are dropped first.
/// Falls back to the median when trimming would remove everything, and to
/// 0.0 on empty/all-NaN input. The profiler's default timing estimator.
double trimmed_mean(std::span<const double> xs, double frac);

/// Welford's streaming mean/variance accumulator: numerically stable
/// one-pass statistics for the profiler's timing samples (no need to keep
/// every sample when only a Summary is wanted). NaN samples are counted
/// separately and excluded from the moments.
class Welford {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  std::size_t nan_count() const { return nan_count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance, matching stddev() above.
  double variance() const { return count_ ? m2_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

  struct Summary summary() const;

 private:
  std::size_t count_ = 0;
  std::size_t nan_count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace autopipe::util
