// Deterministic seeded exponential backoff with optional jitter.
//
// Every retry loop in the tree (the stage worker's in-place transient
// retries, the recovery layer's iteration retries, the supervisor's
// escalation ladder) wants the same delay policy: exponential growth from a
// base, a hard cap, and -- for loops that may synchronize across devices --
// a little decorrelating jitter. Backoff packages that policy as a pure,
// seeded sequence: the k-th delay is a function of (options, seed, k) only,
// so tests can assert the exact delays a retry loop will charge and a
// seeded chaos run reproduces its timing decisions everywhere.
//
// jitter_frac = 0 (the default) yields the classic base * multiplier^k
// sequence the pre-extraction call sites computed inline -- migrating them
// onto Backoff changes no behaviour.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace autopipe::util {

struct BackoffOptions {
  double base_ms = 0.5;     ///< first delay (>= 0; 0 = all delays are 0)
  double multiplier = 2.0;  ///< growth per attempt (>= 1)
  double max_ms = 60000.0;  ///< cap applied before jitter (> 0)
  /// Uniform jitter: delay k is scaled by a seeded draw from
  /// [1 - jitter_frac, 1 + jitter_frac]. Must lie in [0, 1).
  double jitter_frac = 0.0;
  std::uint64_t seed = 0;   ///< jitter stream seed (unused when jitter is 0)
};

class Backoff {
 public:
  /// Throws std::invalid_argument on out-of-range options.
  explicit Backoff(const BackoffOptions& options = {});

  /// Delay to charge before the next retry, in ms. The first call returns
  /// (jittered) base_ms; each later call multiplies the pre-jitter value,
  /// clamped to max_ms. Never negative; bounded by max_ms * (1 + jitter).
  double next_ms();

  /// Restarts the sequence, including the jitter stream -- after reset()
  /// the instance replays exactly the same delays.
  void reset();

  /// Retries charged so far (calls to next_ms since construction/reset).
  int attempts() const { return attempts_; }

  /// Convenience: sleep for `ms` (no-op when ms <= 0).
  static void sleep_for_ms(double ms);

 private:
  BackoffOptions options_;
  Rng rng_;
  double current_ms_ = 0;
  int attempts_ = 0;
};

}  // namespace autopipe::util
