#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace autopipe::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info:  return "INFO ";
    case LogLevel::warn:  return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off:   return "OFF  ";
  }
  return "?????";
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

/// Guarded by sink_mutex(); empty means "write to stderr".
LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

}  // namespace

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::debug;
  if (name == "info") return LogLevel::info;
  if (name == "warn") return LogLevel::warn;
  if (name == "error") return LogLevel::error;
  if (name == "off") return LogLevel::off;
  return LogLevel::warn;
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level() && level != LogLevel::off) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << level_tag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << '\n';
  // The whole line is rendered before the lock is taken and delivered in a
  // single sink call under it: concurrent AP_LOG statements serialize per
  // line, never per insertion, so lines cannot interleave.
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (const LogSink& sink = sink_slot()) {
    sink(text);
  } else {
    std::fwrite(text.data(), 1, text.size(), stderr);
  }
}

}  // namespace detail

}  // namespace autopipe::util
