#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace autopipe::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << (c ? "," : "") << escape(c < row.size() ? row[c] : "");
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    AP_LOG(error) << "cannot open " << path << " for writing";
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace autopipe::util
