// Crash-consistent whole-file writes (DESIGN.md §7).
//
// atomic_write_file implements the classic durability protocol: write the
// full contents to `<path>.tmp`, fsync the file, rename it over `path`
// (atomic on POSIX), then fsync the containing directory so the rename
// itself survives a power cut. A crash at any point leaves either the old
// file or the new file -- never a torn mixture -- at `path`; at worst a
// stale `.tmp` is left behind, which readers never consult.
#pragma once

#include <string>
#include <string_view>

namespace autopipe::util {

/// Atomically replaces `path` with `contents`. Returns false (and logs) on
/// any I/O failure; `path` is untouched in that case.
bool atomic_write_file(const std::string& path, std::string_view contents);

/// Reads a whole file into `out`. Returns false if the file cannot be
/// opened or read.
bool read_file(const std::string& path, std::string& out);

}  // namespace autopipe::util
