// xoshiro256** pseudo-random generator.
//
// Deterministic across platforms (unlike std::mt19937's distributions),
// which keeps the event-executor jitter and the tensor-runtime weight
// initialisation reproducible in tests and benchmarks.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace autopipe::util {

class Rng {
 public:
  /// Full generator state -- four 64-bit words. Exposed so checkpointing
  /// can persist and restore a stream mid-sequence (ckpt/checkpoint.h);
  /// set_state(state()) is an exact no-op.
  using State = std::array<std::uint64_t, 4>;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  State state() const { return {state_[0], state_[1], state_[2], state_[3]}; }
  void set_state(const State& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is negligible for the bounds we use (< 2^32).
    return next_u64() % bound;
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double next_gaussian() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace autopipe::util
