#include "util/atomic_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.h"

namespace autopipe::util {

namespace {

bool fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

bool atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      AP_LOG(error) << "atomic_write_file: cannot open " << tmp;
      return false;
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out) {
      AP_LOG(error) << "atomic_write_file: short write to " << tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (!fsync_path(tmp, O_WRONLY)) {
    AP_LOG(error) << "atomic_write_file: fsync failed for " << tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    AP_LOG(error) << "atomic_write_file: rename " << tmp << " -> " << path
                  << " failed";
    std::remove(tmp.c_str());
    return false;
  }
  // Persist the rename itself; best-effort (some filesystems refuse
  // directory fsync but still order the metadata).
  fsync_path(parent_dir(path), O_RDONLY);
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

}  // namespace autopipe::util
