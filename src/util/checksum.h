// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for record-level
// integrity checks in the checkpoint subsystem and the profile cache.
//
// Not a cryptographic digest: it detects torn writes, bit flips and short
// reads -- the storage failure modes DESIGN.md §7 enumerates -- not an
// adversary. Incremental updates let large payloads be hashed in chunks.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace autopipe::util {

class Crc32 {
 public:
  /// Feeds `bytes` into the running checksum.
  void update(std::string_view bytes);
  void update(const void* data, std::size_t size);
  /// Final checksum of everything fed so far (callable repeatedly).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience: crc32 of a whole buffer.
std::uint32_t crc32(std::string_view bytes);

/// Fixed-width lowercase hex ("deadbeef") -- the on-disk spelling used in
/// checkpoint manifests and profile-cache headers.
std::string crc32_hex(std::uint32_t value);

}  // namespace autopipe::util
