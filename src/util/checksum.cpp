#include "util/checksum.h"

#include <array>

namespace autopipe::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

void Crc32::update(std::string_view bytes) {
  update(bytes.data(), bytes.size());
}

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = table();
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < size; ++i) {
    c = t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(std::string_view bytes) {
  Crc32 c;
  c.update(bytes);
  return c.value();
}

std::string crc32_hex(std::uint32_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xFu];
    value >>= 4;
  }
  return out;
}

}  // namespace autopipe::util
