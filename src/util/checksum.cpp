#include "util/checksum.h"

#include <array>
#include <cstring>

namespace autopipe::util {

namespace {

// Slicing-by-8 tables: tables[0] is the classic byte-at-a-time table for
// the reflected polynomial 0xEDB88320; tables[k] advances a byte's
// contribution k extra positions, so eight bytes fold into the state with
// eight independent lookups per iteration instead of eight dependent ones.
std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8>& tables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> t = make_tables();
  return t;
}

constexpr bool little_endian() {
#if defined(__BYTE_ORDER__) && defined(__ORDER_LITTLE_ENDIAN__)
  return __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__;
#else
  return false;
#endif
}

}  // namespace

void Crc32::update(std::string_view bytes) {
  update(bytes.data(), bytes.size());
}

void Crc32::update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = tables();
  std::uint32_t c = state_;
  if (little_endian()) {
    // Hot loop for the bulk payloads (tensors, checkpoint records): the
    // word loads assume the state's bytes line up with memory order, hence
    // the little-endian gate; other hosts take the byte loop below.
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
      p += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(std::string_view bytes) {
  Crc32 c;
  c.update(bytes);
  return c.value();
}

std::string crc32_hex(std::uint32_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xFu];
    value >>= 4;
  }
  return out;
}

}  // namespace autopipe::util
