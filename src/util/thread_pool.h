// Fixed-size worker thread pool with futures and exception propagation.
//
// Built for the planner's deterministic parallel search: tasks are pure
// functions whose results are reduced in a caller-defined order, so the
// pool guarantees nothing about completion order -- only that every
// submitted task runs exactly once and that an exception thrown inside a
// task surfaces from the corresponding future's get(). A pool is reusable
// across independent task batches (e.g. successive plan() calls share one
// pool via PlannerOptions::pool).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace autopipe::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Drains the queue and joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns its future; an exception escaping `f` is
  /// rethrown by future::get().
  template <typename F>
  auto submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> out = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return out;
  }

  /// Admission-controlled flavour of submit(): enqueues `f` only when fewer
  /// than `max_queue` tasks are already waiting (tasks a worker has picked
  /// up no longer count). Returns nullopt -- without enqueueing anything --
  /// when the pool is saturated, so callers can shed load instead of
  /// building an unbounded backlog.
  template <typename F>
  auto try_submit(F f, std::size_t max_queue)
      -> std::optional<std::future<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> out = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.size() >= max_queue) return std::nullopt;
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return out;
  }

  /// Tasks submitted but not yet picked up by a worker -- the backlog an
  /// admission controller inspects. Running tasks are not counted.
  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// max(1, std::thread::hardware_concurrency()).
  static int default_threads();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// `threads` knob convention shared by the planner, the facades and the
/// baseline planners: 0 means "auto" (hardware concurrency), anything else
/// is used as given (clamped to >= 1).
int resolve_threads(int requested);

/// Runs fn(i) for every i in [0, n): fan out over `pool` when non-null,
/// inline on the calling thread otherwise. Blocks until all iterations
/// finish; the first exception in index order is rethrown.
void parallel_for(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace autopipe::util
