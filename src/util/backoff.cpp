#include "util/backoff.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace autopipe::util {

Backoff::Backoff(const BackoffOptions& options)
    : options_(options), rng_(options.seed) {
  if (options_.base_ms < 0) {
    throw std::invalid_argument("backoff: base_ms must be >= 0");
  }
  if (options_.multiplier < 1.0) {
    throw std::invalid_argument("backoff: multiplier must be >= 1");
  }
  if (options_.max_ms <= 0) {
    throw std::invalid_argument("backoff: max_ms must be > 0");
  }
  if (options_.jitter_frac < 0 || options_.jitter_frac >= 1.0) {
    throw std::invalid_argument("backoff: jitter_frac must be in [0, 1)");
  }
  current_ms_ = options_.base_ms;
}

double Backoff::next_ms() {
  double delay = current_ms_;
  if (delay > options_.max_ms) delay = options_.max_ms;
  // Advance the pre-jitter sequence; saturate instead of overflowing so a
  // long-running retry loop stays at the cap.
  if (current_ms_ < options_.max_ms) {
    current_ms_ *= options_.multiplier;
  } else {
    current_ms_ = options_.max_ms;
  }
  ++attempts_;
  if (options_.jitter_frac > 0) {
    delay *= rng_.uniform(1.0 - options_.jitter_frac,
                          1.0 + options_.jitter_frac);
  }
  return delay;
}

void Backoff::reset() {
  current_ms_ = options_.base_ms;
  attempts_ = 0;
  rng_ = Rng(options_.seed);
}

void Backoff::sleep_for_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace autopipe::util
