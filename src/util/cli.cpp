#include "util/cli.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace autopipe::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--flag value` unless the next token is itself a flag (or absent),
    // in which case it is a boolean switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int Cli::get_int(const std::string& name, int fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::atoi(it->second.c_str());
}

int Cli::checked_int(const std::string& name, int fallback, int min_value,
                     int max_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& raw = it->second;
  char* end = nullptr;
  const long value = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || end == nullptr || *end != '\0') {
    throw std::invalid_argument("--" + name + " wants an integer, got '" +
                                raw + "'");
  }
  if (value < min_value || value > max_value) {
    throw std::invalid_argument(
        "--" + name + " must be in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "], got " + raw);
  }
  return static_cast<int>(value);
}

double Cli::checked_double(const std::string& name, double fallback,
                           double min_value, double max_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& raw = it->second;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == nullptr || *end != '\0' || !std::isfinite(value)) {
    throw std::invalid_argument("--" + name +
                                " wants a finite number, got '" + raw + "'");
  }
  if (value < min_value || value > max_value) {
    throw std::invalid_argument(
        "--" + name + " must be in [" + std::to_string(min_value) + ", " +
        std::to_string(max_value) + "], got " + raw);
  }
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::atof(it->second.c_str());
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0";
}

}  // namespace autopipe::util
