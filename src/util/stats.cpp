#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autopipe::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty range");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.sum = sum(xs);
  return s;
}

}  // namespace autopipe::util
