#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autopipe::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty range");
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

namespace {

/// Copies xs without NaNs, sorted ascending.
std::vector<double> sorted_finite(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (!std::isnan(x)) out.push_back(x);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double median_sorted(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const std::size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

}  // namespace

double median(std::span<const double> xs) {
  return median_sorted(sorted_finite(xs));
}

double trimmed_mean(std::span<const double> xs, double frac) {
  const std::vector<double> sorted = sorted_finite(xs);
  if (sorted.empty()) return 0.0;
  frac = std::clamp(frac, 0.0, 0.5);
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(sorted.size()) * frac);
  if (2 * cut >= sorted.size()) return median_sorted(sorted);
  double acc = 0.0;
  for (std::size_t i = cut; i < sorted.size() - cut; ++i) acc += sorted[i];
  return acc / static_cast<double>(sorted.size() - 2 * cut);
}

void Welford::add(double x) {
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Welford::stddev() const { return std::sqrt(variance()); }

Summary Welford::summary() const {
  Summary s;
  s.count = count_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.sum = sum();
  return s;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.sum = sum(xs);
  return s;
}

}  // namespace autopipe::util
