// Tiny command-line flag parser for the examples and bench harnesses.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag`. Unknown
// flags are collected so callers can reject or forward them.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace autopipe::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  /// Strict flavour of get_int for flags where silently turning garbage
  /// into 0 (atoi semantics) would be wrong, e.g. `--threads banana`.
  /// Throws std::invalid_argument naming the flag when the value is not an
  /// integer or falls outside [min_value, max_value].
  int checked_int(const std::string& name, int fallback, int min_value,
                  int max_value) const;
  double get_double(const std::string& name, double fallback) const;
  /// Strict flavour of get_double, mirroring checked_int: the value must be
  /// a complete finite number (no trailing garbage, no NaN/Inf) inside
  /// [min_value, max_value], else std::invalid_argument names the flag.
  double checked_double(const std::string& name, double fallback,
                        double min_value, double max_value) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace autopipe::util
