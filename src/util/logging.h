// Minimal leveled logger.
//
// Usage:
//   AP_LOG(info) << "planner converged after " << iters << " rounds";
//
// The global level defaults to `warn` so library code stays quiet inside
// tests and benchmarks; binaries that want narration raise it explicitly.
//
// Writes are line-atomic: each AP_LOG statement is rendered into a private
// buffer and handed to the sink as one string under a global mutex, so
// concurrent service workers can never interleave fragments of two log
// lines (enforced by a unit test). The sink defaults to stderr; a process
// (or test) can redirect whole lines with set_log_sink().
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace autopipe::util {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off"; unknown -> warn.
LogLevel parse_log_level(const std::string& name);

/// Receives one complete, newline-terminated log line per call. Calls are
/// serialized by the logging mutex, so the sink itself need not lock.
using LogSink = std::function<void(const std::string& line)>;

/// Replaces the sink (empty = back to stderr). The swap itself happens
/// under the logging mutex, so no line is ever split across sinks.
void set_log_sink(LogSink sink);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace autopipe::util

#define AP_LOG(level)                                              \
  ::autopipe::util::detail::LogLine(                               \
      ::autopipe::util::LogLevel::level, __FILE__, __LINE__)
