// Console table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints the same rows the paper's table/figure reports;
// Table collects cells as strings and renders an aligned ASCII table plus,
// optionally, a CSV file for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace autopipe::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 1);

  std::string to_ascii() const;
  std::string to_csv() const;

  /// Writes CSV to `path`; returns false (and logs) on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autopipe::util
