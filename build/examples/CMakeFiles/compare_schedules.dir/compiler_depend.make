# Empty compiler generated dependencies file for compare_schedules.
# This may be replaced when dependencies are built.
