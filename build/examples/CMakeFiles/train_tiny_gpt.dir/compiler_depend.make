# Empty compiler generated dependencies file for train_tiny_gpt.
# This may be replaced when dependencies are built.
