file(REMOVE_RECURSE
  "CMakeFiles/train_tiny_gpt.dir/train_tiny_gpt.cpp.o"
  "CMakeFiles/train_tiny_gpt.dir/train_tiny_gpt.cpp.o.d"
  "train_tiny_gpt"
  "train_tiny_gpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_tiny_gpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
