file(REMOVE_RECURSE
  "CMakeFiles/master_stage_demo.dir/master_stage_demo.cpp.o"
  "CMakeFiles/master_stage_demo.dir/master_stage_demo.cpp.o.d"
  "master_stage_demo"
  "master_stage_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_stage_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
