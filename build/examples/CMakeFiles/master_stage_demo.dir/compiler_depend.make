# Empty compiler generated dependencies file for master_stage_demo.
# This may be replaced when dependencies are built.
