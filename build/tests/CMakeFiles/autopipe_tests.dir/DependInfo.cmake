
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autopipe_facade_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/autopipe_facade_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/autopipe_facade_test.cpp.o.d"
  "/root/repo/tests/balanced_dp_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/balanced_dp_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/balanced_dp_test.cpp.o.d"
  "/root/repo/tests/blocks_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/blocks_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/blocks_test.cpp.o.d"
  "/root/repo/tests/config_io_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/config_io_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/config_io_test.cpp.o.d"
  "/root/repo/tests/costmodel_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/costmodel_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/costmodel_test.cpp.o.d"
  "/root/repo/tests/event_engine_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/event_engine_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/event_engine_test.cpp.o.d"
  "/root/repo/tests/executor_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/executor_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/executor_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/planner_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/planner_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/planner_test.cpp.o.d"
  "/root/repo/tests/planners_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/planners_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/planners_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/schedule_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/schedule_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/slicer_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/slicer_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/slicer_test.cpp.o.d"
  "/root/repo/tests/tensor_ops_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/tensor_ops_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/tensor_ops_test.cpp.o.d"
  "/root/repo/tests/topology_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/topology_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/topology_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/autopipe_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/autopipe_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autopipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
