# Empty compiler generated dependencies file for autopipe_tests.
# This may be replaced when dependencies are built.
