# Empty compiler generated dependencies file for autopipe.
# This may be replaced when dependencies are built.
