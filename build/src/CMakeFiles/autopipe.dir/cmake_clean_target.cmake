file(REMOVE_RECURSE
  "libautopipe.a"
)
