
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autopipe.cpp" "src/CMakeFiles/autopipe.dir/core/autopipe.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/autopipe.cpp.o.d"
  "/root/repo/src/core/balanced_dp.cpp" "src/CMakeFiles/autopipe.dir/core/balanced_dp.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/balanced_dp.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/autopipe.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/autopipe.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/autopipe.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/autopipe.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/simulator.cpp.o.d"
  "/root/repo/src/core/slicer.cpp" "src/CMakeFiles/autopipe.dir/core/slicer.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/core/slicer.cpp.o.d"
  "/root/repo/src/costmodel/analytic.cpp" "src/CMakeFiles/autopipe.dir/costmodel/analytic.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/analytic.cpp.o.d"
  "/root/repo/src/costmodel/config_io.cpp" "src/CMakeFiles/autopipe.dir/costmodel/config_io.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/config_io.cpp.o.d"
  "/root/repo/src/costmodel/device.cpp" "src/CMakeFiles/autopipe.dir/costmodel/device.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/device.cpp.o.d"
  "/root/repo/src/costmodel/memory.cpp" "src/CMakeFiles/autopipe.dir/costmodel/memory.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/memory.cpp.o.d"
  "/root/repo/src/costmodel/model_zoo.cpp" "src/CMakeFiles/autopipe.dir/costmodel/model_zoo.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/model_zoo.cpp.o.d"
  "/root/repo/src/costmodel/topology.cpp" "src/CMakeFiles/autopipe.dir/costmodel/topology.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/costmodel/topology.cpp.o.d"
  "/root/repo/src/model/blocks.cpp" "src/CMakeFiles/autopipe.dir/model/blocks.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/model/blocks.cpp.o.d"
  "/root/repo/src/model/data.cpp" "src/CMakeFiles/autopipe.dir/model/data.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/model/data.cpp.o.d"
  "/root/repo/src/model/ops.cpp" "src/CMakeFiles/autopipe.dir/model/ops.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/model/ops.cpp.o.d"
  "/root/repo/src/model/tensor.cpp" "src/CMakeFiles/autopipe.dir/model/tensor.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/model/tensor.cpp.o.d"
  "/root/repo/src/model/transformer.cpp" "src/CMakeFiles/autopipe.dir/model/transformer.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/model/transformer.cpp.o.d"
  "/root/repo/src/planners/dapple.cpp" "src/CMakeFiles/autopipe.dir/planners/dapple.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/planners/dapple.cpp.o.d"
  "/root/repo/src/planners/megatron.cpp" "src/CMakeFiles/autopipe.dir/planners/megatron.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/planners/megatron.cpp.o.d"
  "/root/repo/src/planners/piper.cpp" "src/CMakeFiles/autopipe.dir/planners/piper.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/planners/piper.cpp.o.d"
  "/root/repo/src/planners/units.cpp" "src/CMakeFiles/autopipe.dir/planners/units.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/planners/units.cpp.o.d"
  "/root/repo/src/runtime/channel.cpp" "src/CMakeFiles/autopipe.dir/runtime/channel.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/runtime/channel.cpp.o.d"
  "/root/repo/src/runtime/optimizer.cpp" "src/CMakeFiles/autopipe.dir/runtime/optimizer.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/runtime/optimizer.cpp.o.d"
  "/root/repo/src/runtime/pipeline_runtime.cpp" "src/CMakeFiles/autopipe.dir/runtime/pipeline_runtime.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/runtime/pipeline_runtime.cpp.o.d"
  "/root/repo/src/runtime/stage_worker.cpp" "src/CMakeFiles/autopipe.dir/runtime/stage_worker.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/runtime/stage_worker.cpp.o.d"
  "/root/repo/src/sim/event_engine.cpp" "src/CMakeFiles/autopipe.dir/sim/event_engine.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/sim/event_engine.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/CMakeFiles/autopipe.dir/sim/executor.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/sim/executor.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/autopipe.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/trace/chrome_trace.cpp" "src/CMakeFiles/autopipe.dir/trace/chrome_trace.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/trace/chrome_trace.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/CMakeFiles/autopipe.dir/trace/timeline.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/trace/timeline.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/autopipe.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/autopipe.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/autopipe.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/autopipe.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/autopipe.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
