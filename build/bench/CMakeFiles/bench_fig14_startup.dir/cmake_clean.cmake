file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_startup.dir/bench_fig14_startup.cpp.o"
  "CMakeFiles/bench_fig14_startup.dir/bench_fig14_startup.cpp.o.d"
  "bench_fig14_startup"
  "bench_fig14_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
