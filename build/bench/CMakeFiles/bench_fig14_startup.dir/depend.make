# Empty dependencies file for bench_fig14_startup.
# This may be replaced when dependencies are built.
