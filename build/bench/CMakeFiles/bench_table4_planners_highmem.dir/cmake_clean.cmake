file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_planners_highmem.dir/bench_table4_planners_highmem.cpp.o"
  "CMakeFiles/bench_table4_planners_highmem.dir/bench_table4_planners_highmem.cpp.o.d"
  "bench_table4_planners_highmem"
  "bench_table4_planners_highmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_planners_highmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
