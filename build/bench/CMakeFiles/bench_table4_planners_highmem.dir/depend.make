# Empty dependencies file for bench_table4_planners_highmem.
# This may be replaced when dependencies are built.
