# Empty compiler generated dependencies file for bench_table3_planners_lowmem.
# This may be replaced when dependencies are built.
