file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_planners_lowmem.dir/bench_table3_planners_lowmem.cpp.o"
  "CMakeFiles/bench_table3_planners_lowmem.dir/bench_table3_planners_lowmem.cpp.o.d"
  "bench_table3_planners_lowmem"
  "bench_table3_planners_lowmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_planners_lowmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
