file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_simulator.dir/bench_fig11_simulator.cpp.o"
  "CMakeFiles/bench_fig11_simulator.dir/bench_fig11_simulator.cpp.o.d"
  "bench_fig11_simulator"
  "bench_fig11_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
