# Empty compiler generated dependencies file for bench_fig10_pipeline_depth.
# This may be replaced when dependencies are built.
