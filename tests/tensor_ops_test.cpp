#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "model/ops.h"

namespace autopipe::model {
namespace {

// Central finite difference of a scalar function of one tensor entry.
double numeric_grad(const std::function<double(const Tensor&)>& f, Tensor x,
                    std::size_t index, double eps = 1e-3) {
  const float saved = x.at(index);
  x.data()[index] = static_cast<float>(saved + eps);
  const double plus = f(x);
  x.data()[index] = static_cast<float>(saved - eps);
  const double minus = f(x);
  return (plus - minus) / (2 * eps);
}

/// Sum-of-entries loss wrapper: dL/dy = all ones.
Tensor ones_like(const Tensor& t) { return Tensor::full(t.shape(), 1.0f); }

double sum_all(const Tensor& t) {
  double acc = 0;
  for (std::size_t i = 0; i < t.numel(); ++i) acc += t.at(i);
  return acc;
}

// ----------------------------------------------------------------- tensor

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2);
  t.fill_(2.5f);
  EXPECT_FLOAT_EQ(t.at(5), 2.5f);
  EXPECT_EQ(t.shape_string(), "[2x3]");
  EXPECT_THROW(Tensor({0, 3}), std::invalid_argument);
}

TEST(Tensor, SplitAndConcatRowsRoundTrip) {
  util::Rng rng(5);
  const Tensor t = Tensor::randn({6, 4}, rng);
  const auto [head, tail] = t.split_rows(2);
  EXPECT_EQ(head.dim(0), 2);
  EXPECT_EQ(tail.dim(0), 4);
  const Tensor back = Tensor::concat_rows(head, tail);
  EXPECT_DOUBLE_EQ(max_abs_diff(t, back), 0.0);
  EXPECT_THROW(t.split_rows(0), std::invalid_argument);
  EXPECT_THROW(t.split_rows(6), std::invalid_argument);
}

TEST(Tensor, AddAndScale) {
  Tensor a = Tensor::full({2, 2}, 1.0f);
  Tensor b = Tensor::full({2, 2}, 2.0f);
  a.add_(b);
  a.scale_(3.0f);
  EXPECT_FLOAT_EQ(a.at(0), 9.0f);
  Tensor mismatched({3, 2});
  EXPECT_THROW(a.add_(mismatched), std::invalid_argument);
}

// ----------------------------------------------------------------- matmul

TEST(Ops, MatmulKnownValues) {
  Tensor a({2, 2});
  a.data()[0] = 1; a.data()[1] = 2; a.data()[2] = 3; a.data()[3] = 4;
  Tensor b({2, 2});
  b.data()[0] = 5; b.data()[1] = 6; b.data()[2] = 7; b.data()[3] = 8;
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 19);
  EXPECT_FLOAT_EQ(c.at(1), 22);
  EXPECT_FLOAT_EQ(c.at(2), 43);
  EXPECT_FLOAT_EQ(c.at(3), 50);
  EXPECT_THROW(matmul(a, Tensor({3, 2})), std::invalid_argument);
}

TEST(Ops, MatmulGradientsMatchFiniteDifferences) {
  util::Rng rng(1);
  const Tensor a = Tensor::randn({3, 4}, rng);
  const Tensor b = Tensor::randn({4, 2}, rng);
  const Tensor dc = ones_like(matmul(a, b));
  const Tensor da = matmul_grad_a(dc, b);
  const Tensor db = matmul_grad_b(a, dc);
  for (std::size_t i : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    const double fd = numeric_grad(
        [&](const Tensor& x) { return sum_all(matmul(x, b)); }, a, i);
    EXPECT_NEAR(da.at(i), fd, 1e-2);
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    const double fd = numeric_grad(
        [&](const Tensor& x) { return sum_all(matmul(a, x)); }, b, i);
    EXPECT_NEAR(db.at(i), fd, 1e-2);
  }
}

// ----------------------------------------------------------------- linear

TEST(Ops, LinearBiasAndGradients) {
  util::Rng rng(2);
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor w = Tensor::randn({4, 5}, rng);
  const Tensor bias = Tensor::randn({5}, rng);
  const Tensor y = linear(x, w, bias);
  EXPECT_EQ(y.dim(1), 5);
  const LinearGrads g = linear_backward(x, w, ones_like(y));
  // dbias = column sums of dy = row count.
  for (int j = 0; j < 5; ++j) EXPECT_FLOAT_EQ(g.dbias.at(j), 3.0f);
  const double fd = numeric_grad(
      [&](const Tensor& t) { return sum_all(linear(t, w, bias)); }, x, 2);
  EXPECT_NEAR(g.dx.at(2), fd, 1e-2);
}

// ------------------------------------------------------------------- gelu

TEST(Ops, GeluValuesAndGradient) {
  Tensor x({1, 3});
  x.data()[0] = -2.0f; x.data()[1] = 0.0f; x.data()[2] = 2.0f;
  const Tensor y = gelu(x);
  EXPECT_NEAR(y.at(1), 0.0, 1e-6);
  EXPECT_NEAR(y.at(2), 1.9546, 1e-3);  // known GELU(2)
  EXPECT_NEAR(y.at(0), -0.0454, 1e-3);
  const Tensor dx = gelu_backward(x, ones_like(x));
  for (std::size_t i = 0; i < 3; ++i) {
    const double fd = numeric_grad(
        [&](const Tensor& t) { return sum_all(gelu(t)); }, x, i, 1e-3);
    EXPECT_NEAR(dx.at(i), fd, 1e-2);
  }
}

// -------------------------------------------------------------- layernorm

TEST(Ops, LayerNormNormalizesRows) {
  util::Rng rng(3);
  const Tensor x = Tensor::randn({4, 8}, rng, 3.0f);
  const Tensor gamma = Tensor::full({8}, 1.0f);
  const Tensor beta = Tensor({8});
  LayerNormCache cache;
  const Tensor y = layernorm(x, gamma, beta, &cache);
  for (int i = 0; i < 4; ++i) {
    double mean = 0, var = 0;
    for (int j = 0; j < 8; ++j) mean += y.at(i * 8 + j);
    mean /= 8;
    for (int j = 0; j < 8; ++j) {
      var += (y.at(i * 8 + j) - mean) * (y.at(i * 8 + j) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var / 8, 1.0, 1e-3);
  }
}

TEST(Ops, LayerNormGradientMatchesFiniteDifferences) {
  util::Rng rng(4);
  const Tensor x = Tensor::randn({2, 6}, rng);
  Tensor gamma = Tensor::randn({6}, rng, 0.5f);
  gamma.add_(Tensor::full({6}, 1.0f));
  const Tensor beta = Tensor::randn({6}, rng, 0.2f);
  // Weighted loss to exercise non-uniform dy.
  Tensor weights = Tensor::randn({2, 6}, rng);
  auto loss = [&](const Tensor& t) {
    LayerNormCache c;
    const Tensor y = layernorm(t, gamma, beta, &c);
    double acc = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += y.at(i) * weights.at(i);
    return acc;
  };
  LayerNormCache cache;
  layernorm(x, gamma, beta, &cache);
  const LayerNormGrads g = layernorm_backward(cache, gamma, weights);
  for (std::size_t i : {std::size_t{0}, std::size_t{4}, std::size_t{9}}) {
    EXPECT_NEAR(g.dx.at(i), numeric_grad(loss, x, i), 2e-2);
  }
}

// ---------------------------------------------------------------- softmax

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(6);
  const Tensor s = Tensor::randn({3, 5}, rng, 2.0f);
  const Tensor p = softmax_rows(s);
  for (int i = 0; i < 3; ++i) {
    double sum = 0;
    for (int j = 0; j < 5; ++j) {
      sum += p.at(i * 5 + j);
      EXPECT_GT(p.at(i * 5 + j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Ops, SoftmaxGradientMatchesFiniteDifferences) {
  util::Rng rng(7);
  const Tensor s = Tensor::randn({2, 4}, rng);
  Tensor weights = Tensor::randn({2, 4}, rng);
  auto loss = [&](const Tensor& t) {
    const Tensor p = softmax_rows(t);
    double acc = 0;
    for (std::size_t i = 0; i < p.numel(); ++i) acc += p.at(i) * weights.at(i);
    return acc;
  };
  const Tensor p = softmax_rows(s);
  const Tensor ds = softmax_backward(p, weights);
  for (std::size_t i = 0; i < s.numel(); ++i) {
    EXPECT_NEAR(ds.at(i), numeric_grad(loss, s, i), 1e-2);
  }
}

// ----------------------------------------------------------- cross entropy

TEST(Ops, CrossEntropyUniformLogits) {
  const Tensor logits({2, 4});  // all zeros -> uniform
  const std::vector<int> targets{1, 3};
  Tensor dlogits;
  const double loss = cross_entropy(logits, targets, 0.5, &dlogits);
  EXPECT_NEAR(loss, 2 * std::log(4.0) * 0.5, 1e-6);
  // Gradient: (p - onehot) * scale.
  EXPECT_NEAR(dlogits.at(0), 0.25 * 0.5, 1e-6);
  EXPECT_NEAR(dlogits.at(1), (0.25 - 1.0) * 0.5, 1e-6);
}

TEST(Ops, CrossEntropyGradientMatchesFiniteDifferences) {
  util::Rng rng(8);
  const Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<int> targets{4, 0, 2};
  Tensor dlogits;
  cross_entropy(logits, targets, 1.0, &dlogits);
  auto loss = [&](const Tensor& t) {
    return cross_entropy(t, targets, 1.0, nullptr);
  };
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(dlogits.at(i), numeric_grad(loss, logits, i), 1e-2);
  }
}

TEST(Ops, CrossEntropyValidatesTargets) {
  const Tensor logits({1, 3});
  const std::vector<int> bad{5};
  EXPECT_THROW(cross_entropy(logits, bad, 1.0, nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------------------- embedding

TEST(Ops, EmbeddingLookupAndScatter) {
  util::Rng rng(9);
  const Tensor table = Tensor::randn({10, 4}, rng);
  const std::vector<int> ids{3, 3, 7};
  const Tensor out = embedding_lookup(table, ids);
  EXPECT_FLOAT_EQ(out.at(0), table.at(3 * 4));
  EXPECT_FLOAT_EQ(out.at(2 * 4 + 1), table.at(7 * 4 + 1));
  Tensor dtable({10, 4});
  const Tensor dy = Tensor::full({3, 4}, 1.0f);
  embedding_backward(ids, dy, &dtable);
  EXPECT_FLOAT_EQ(dtable.at(3 * 4), 2.0f);  // id 3 hit twice
  EXPECT_FLOAT_EQ(dtable.at(7 * 4), 1.0f);
  EXPECT_FLOAT_EQ(dtable.at(0), 0.0f);
  const std::vector<int> bad{12};
  EXPECT_THROW(embedding_lookup(table, bad), std::invalid_argument);
}

}  // namespace
}  // namespace autopipe::model
