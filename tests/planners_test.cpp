#include <gtest/gtest.h>

#include "planners/dapple.h"
#include "planners/megatron.h"
#include "planners/piper.h"
#include "planners/units.h"

namespace autopipe::planners {
namespace {

core::ModelConfig gpt2(int mbs) {
  return costmodel::build_model_config(costmodel::gpt2_345m(),
                                       {mbs, 0, true});
}

// ---------------------------------------------------------------- units

TEST(Units, LayerGranularityCollapsesSubLayers) {
  const auto cfg = gpt2(4);
  const auto units = layer_units(cfg);
  ASSERT_EQ(units.size(), 24u + 2);  // emb + 24 layers + head
  EXPECT_EQ(units.front().num_blocks, 1);
  EXPECT_EQ(units[1].num_blocks, 2);
  EXPECT_EQ(units.back().num_blocks, 1);
  double total = 0;
  for (const auto& u : units) total += u.load_ms;
  EXPECT_NEAR(total, cfg.total_fwd_ms() + cfg.total_bwd_ms(), 1e-6);
}

TEST(Units, PartitionFromUnitCountsRoundTrips) {
  const auto cfg = gpt2(4);
  const auto units = layer_units(cfg);
  const core::Partition p = partition_from_unit_counts(units, {7, 7, 6, 6});
  EXPECT_NO_THROW(core::validate(cfg, p));
  EXPECT_THROW(partition_from_unit_counts(units, {7, 7}),
               std::invalid_argument);
}

TEST(Units, WeightedSplitRespondsToWeights) {
  const auto cfg = gpt2(4);
  const auto units = layer_units(cfg);
  // A heavily discounted stage 1 should receive most of the model.
  const auto counts = weighted_balanced_split(units, {1.0, 0.25});
  EXPECT_GT(counts[1], counts[0] * 2);
}

TEST(Units, CompositionEnumeration) {
  int count = 0;
  std::vector<std::vector<int>> all;
  for_each_composition(4, 2, [&](const std::vector<int>& c) {
    ++count;
    all.push_back(c);
    EXPECT_EQ(c[0] + c[1], 4);
    EXPECT_GE(c[0], 1);
    EXPECT_GE(c[1], 1);
  });
  EXPECT_EQ(count, 3);  // (1,3) (2,2) (3,1)
  // Degenerate shapes produce nothing.
  for_each_composition(2, 3, [&](const std::vector<int>&) { FAIL(); });
}

// -------------------------------------------------------------- megatron

TEST(Megatron, UniformPartitionAndFactorConstraint) {
  const auto cfg = gpt2(4);
  EXPECT_TRUE(megatron_supports(cfg, 4));
  EXPECT_FALSE(megatron_supports(cfg, 5));  // 24 % 5 != 0
  EXPECT_THROW(megatron_partition(cfg, 5), std::invalid_argument);
  const core::Partition p = megatron_partition(cfg, 4);
  const auto units = core::stage_layer_units(cfg, p);
  for (double u : units) EXPECT_DOUBLE_EQ(u, 6.0);
}

TEST(Megatron, SevenSixtyTwoNeedsNineStages) {
  // The paper's GPT-2 762M quirk: 36 layers, so 8 stages are impossible
  // and the evaluation uses 9.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_762m(),
                                                 {4, 0, true});
  EXPECT_FALSE(megatron_supports(cfg, 8));
  EXPECT_TRUE(megatron_supports(cfg, 9));
}

TEST(Megatron, PlanUsesUniformDataParallelism) {
  const auto cfg = gpt2(4);
  const auto plan = megatron_plan(cfg, 16, 4);
  EXPECT_TRUE(plan.uniform_dp);
  EXPECT_EQ(plan.data_parallel, 4);
  EXPECT_THROW(megatron_plan(cfg, 6, 4), std::invalid_argument);
}

TEST(Megatron, UniformPartitionIsImbalanced) {
  // The motivation for the Planner: uniform layer counts leave the
  // head-carrying stage much heavier.
  const auto cfg = gpt2(4);
  const auto loads =
      core::stage_loads(cfg, megatron_partition(cfg, 4));
  const double mn = *std::min_element(loads.begin(), loads.end());
  const double mx = *std::max_element(loads.begin(), loads.end());
  EXPECT_GT(mx / mn, 1.2);
}

// ---------------------------------------------------------------- dapple

TEST(Dapple, AlwaysPipelines) {
  // Low memory demand where pure DP is optimal: DAPPLE still returns a
  // 2-stage scheme (Table III's observation).
  const auto cfg = gpt2(4);
  const auto plan = dapple_plan(cfg, 4, {8, 4, 128});
  EXPECT_GE(plan.num_stages(), 2);
  EXPECT_FALSE(plan.uniform_dp);
  EXPECT_TRUE(plan.shard_micro_batches);
}

TEST(Dapple, PrefersReplicationHeavyLastStage) {
  // §IV-D: "prefers to use larger data parallelism sizes in the second
  // pipeline stage"; at 4 GPUs the 1+3 assignment crams ~17 of 24 layers
  // into stage 2.
  const auto cfg = gpt2(32);
  const auto plan = dapple_plan(cfg, 4, {8, 4, 512});
  ASSERT_EQ(plan.num_stages(), 2);
  EXPECT_GT(plan.stage_devices.back(), plan.stage_devices.front());
  const auto units = core::stage_layer_units(cfg, plan.partition);
  EXPECT_GT(units[1], units[0] * 1.5);
}

TEST(Dapple, SixteenGpuPlanIsRuntimeInfeasible) {
  // Table III's "-" cells: any 2-way split of 16 devices puts more replicas
  // on a stage than micro-batch size 4 allows.
  const auto cfg = gpt2(4);
  const auto plan = dapple_plan(cfg, 16, {8, 4, 128});
  const auto ev = core::evaluate_plan(cfg, plan, 128);
  EXPECT_TRUE(ev.runtime_error);
}

TEST(Dapple, MemoryModelMissesActivations) {
  // DAPPLE accepts a 2-stage plan for GPT-2 1.3B that OOMs when honestly
  // evaluated (Table IV).
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                 {16, 0, true});
  const auto plan = dapple_plan(cfg, 4, {8, 4, 512});
  EXPECT_EQ(plan.num_stages(), 2);
  const auto ev = core::evaluate_plan(cfg, plan, 512);
  EXPECT_TRUE(ev.oom);
}

TEST(Dapple, ReportsSearchTime) {
  const auto cfg = gpt2(4);
  const auto plan = dapple_plan(cfg, 8, {8, 4, 128});
  EXPECT_GT(plan.planning_ms, 0.0);
}

// ----------------------------------------------------------------- piper

TEST(Piper, LowMemoryUsesDataParallelism) {
  // Table III: "both Piper and AutoPipe Planner use complete data
  // parallelism" at 4 GPUs.
  const auto cfg = gpt2(4);
  const auto plan = piper_plan(cfg, 4, {8, 128});
  EXPECT_EQ(plan.num_stages(), 1);
  EXPECT_FALSE(plan.shard_micro_batches);
  const auto ev = core::evaluate_plan(cfg, plan, 128);
  EXPECT_FALSE(ev.oom);
  EXPECT_FALSE(ev.runtime_error);
}

TEST(Piper, HighMemoryGoesDeeperThanTwoStages) {
  // Table IV: "Piper adopts a pipeline with more than 2 stages".
  const auto cfg = gpt2(32);
  const auto plan = piper_plan(cfg, 4, {8, 512});
  EXPECT_GT(plan.num_stages(), 2);
}

TEST(Piper, NeverOoms) {
  for (int gpus : {4, 8}) {
    const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                   {16, 0, true});
    const auto plan = piper_plan(cfg, gpus, {8, 512});
    const auto ev = core::evaluate_plan(cfg, plan, 512);
    EXPECT_FALSE(ev.oom) << gpus << " GPUs";
    EXPECT_FALSE(ev.runtime_error) << gpus << " GPUs";
  }
}

TEST(Piper, LayerGranularityLeavesImbalance) {
  // Fig. 13: Piper's layer-level splits cannot balance the embedding/head
  // asymmetry that AutoPipe's sub-layer splits absorb.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                 {16, 0, true});
  const auto piper = piper_plan(cfg, 4, {8, 512});
  const auto piper_ev = core::evaluate_plan(cfg, piper, 512);
  const auto auto_result = core::auto_plan(cfg, {4, 512, 0, true});
  EXPECT_GT(piper_ev.balance_stddev_ms,
            auto_result.evaluation.balance_stddev_ms * 1.5);
}

}  // namespace
}  // namespace autopipe::planners
