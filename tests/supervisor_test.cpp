// Self-healing supervisor suite (DESIGN.md §10): health board semantics,
// cancellation, plan-aware watchdog deadlines and blame, chaos scripting,
// armed torn-write storage, and the full escalation ladder -- every rung
// proven against an unfaulted reference run.
//
// Suites are named Supervisor* so the CI TSan job picks the whole file up:
// the board is written wait-free from worker threads while the watchdog
// samples it, and the watchdog races the iteration's own completion --
// exactly the interleavings TSan must see.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/storage.h"
#include "core/schedule.h"
#include "costmodel/analytic.h"
#include "model/transformer.h"
#include "runtime/cancel.h"
#include "runtime/health.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"
#include "supervisor/watchdog.h"

namespace autopipe::supervisor {
namespace {

/// Same CPU-scale transformer the fault/ckpt suites train: 3 layers ->
/// 8 blocks, a 3-stage pipeline with room to degrade onto 2.
model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

costmodel::ModelConfig tiny_config() {
  const model::TinySpec t = tiny_spec();
  costmodel::ModelSpec spec;
  spec.name = "tiny";
  spec.num_layers = t.layers;
  spec.hidden = t.hidden;
  spec.heads = t.heads;
  spec.vocab = t.vocab;
  spec.default_seq = t.seq;
  spec.causal = t.causal;
  return costmodel::build_model_config(spec, {4, 0, true});
}

runtime::TrainSessionOptions tiny_session(ckpt::Storage* storage,
                                          const std::string& dir) {
  runtime::TrainSessionOptions opts;
  opts.spec = tiny_spec();
  opts.counts = {2, 3, 3};
  opts.micro_batch = 2;
  opts.num_micro_batches = 6;
  opts.ckpt_dir = dir;
  opts.ckpt_interval = 2;
  opts.ckpt_keep = 3;
  opts.storage = storage;
  return opts;
}

SupervisorOptions tiny_supervisor(ckpt::Storage* storage,
                                  const std::string& dir, int steps) {
  SupervisorOptions o;
  o.session = tiny_session(storage, dir);
  o.config = tiny_config();
  o.target_steps = steps;
  o.watchdog.grace_ms = 500;
  return o;
}

struct Reference {
  ckpt::TrainState state;
  std::vector<double> losses;
};

Reference unfaulted_reference(int steps) {
  runtime::TrainSessionOptions opts = tiny_session(nullptr, "");
  opts.ckpt_interval = 0;
  runtime::TrainSession ref(opts);
  for (int i = 0; i < steps; ++i) ref.step();
  return {ref.capture(), ref.losses()};
}

void expect_bit_identical(const Supervisor& sup,
                          const SupervisorReport& report,
                          const Reference& ref) {
  const ckpt::TrainState got = sup.session().capture();
  EXPECT_TRUE(got.blocks == ref.state.blocks);
  EXPECT_TRUE(got.data_rng == ref.state.data_rng);
  EXPECT_EQ(got.adam_t, ref.state.adam_t);
  ASSERT_EQ(report.losses.size(), ref.losses.size());
  for (std::size_t i = 0; i < report.losses.size(); ++i) {
    EXPECT_EQ(report.losses[i], ref.losses[i]) << "step " << i;
  }
}

// ---------------------------------------------------------- health board

TEST(SupervisorHealth, BeatsAdvanceOpsAndResetSilence) {
  runtime::HealthBoard board(4);
  board.reset(3);
  EXPECT_EQ(board.devices(), 3);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(board.ops_done(d), 0);
    EXPECT_EQ(board.state(d), runtime::DeviceHealth::Idle);
  }
  board.beat(1, 5);
  EXPECT_EQ(board.ops_done(1), 5);
  // A beat stamps "now": silence is near zero right after.
  EXPECT_LT(board.silent_ms(1), 200.0);
  board.mark(2, runtime::DeviceHealth::Done);
  EXPECT_EQ(board.state(2), runtime::DeviceHealth::Done);
}

TEST(SupervisorHealth, SilenceGrowsWhileQuiet) {
  runtime::HealthBoard board(1);
  board.reset(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(board.silent_ms(0), 25.0);
}

TEST(SupervisorHealth, RejectsIllFormedSizes) {
  EXPECT_THROW(runtime::HealthBoard(0), std::invalid_argument);
  runtime::HealthBoard board(2);
  EXPECT_THROW(board.reset(3), std::invalid_argument);
  EXPECT_THROW(board.reset(0), std::invalid_argument);
}

TEST(SupervisorHealth, ConcurrentBeatsAreWaitFreeAndVisible) {
  // One writer thread per device against a reader sampling the whole
  // board -- the production shape (workers beat, watchdog samples).
  constexpr int kDevices = 4;
  constexpr int kBeats = 2000;
  runtime::HealthBoard board(kDevices);
  board.reset(kDevices);
  std::vector<std::thread> writers;
  for (int d = 0; d < kDevices; ++d) {
    writers.emplace_back([&board, d] {
      for (int i = 1; i <= kBeats; ++i) board.beat(d, i);
      board.mark(d, runtime::DeviceHealth::Done);
    });
  }
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    for (int d = 0; d < kDevices; ++d) {
      board.silent_ms(d);  // sampled concurrently with beats
      all_done = all_done && board.state(d) == runtime::DeviceHealth::Done;
    }
  }
  for (std::thread& w : writers) w.join();
  for (int d = 0; d < kDevices; ++d) EXPECT_EQ(board.ops_done(d), kBeats);
}

// --------------------------------------------------------- cancel token

TEST(SupervisorCancel, FirstReasonWinsAndWaitsWake) {
  runtime::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.wait_for_ms(1));
  std::thread waiter([&token] { token.wait(); });
  token.cancel("first");
  token.cancel("second");
  waiter.join();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "first");
  EXPECT_TRUE(token.wait_for_ms(0));
}

// ------------------------------------------------- plan-aware deadlines

TEST(SupervisorWatchdog, GapsAndBlameTableComeFromThePricedSchedule) {
  const std::vector<core::StageCost> costs{{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  const core::Schedule sched = core::build_1f1b(costs, 6, 0.1);
  const core::ScheduleEval eval = core::evaluate_schedule(sched);
  const std::vector<double> gaps = max_silent_gaps_ms(sched, eval);
  ASSERT_EQ(gaps.size(), 3u);
  for (double g : gaps) EXPECT_GT(g, 0.0);
  // Stage 0 idles longest under 1F1B (waits out the first backward chain);
  // the last stage alternates F/B with no comparable bubble.
  EXPECT_GT(gaps[0], gaps[2]);

  const std::vector<std::vector<double>> ends =
      device_op_ends_ms(sched, eval);
  ASSERT_EQ(ends.size(), 3u);
  for (int d = 0; d < 3; ++d) {
    ASSERT_EQ(ends[d].size(), sched.order[d].size());
    EXPECT_TRUE(std::is_sorted(ends[d].begin(), ends[d].end()));
  }
}

TEST(SupervisorWatchdog, FiresOnSilenceAndBlamesTheStarvedSchedule) {
  // Nobody beats: every device blows the grace deadline. With a blame
  // table, the verdict goes to the device owing the earliest op.
  runtime::HealthBoard board(2);
  board.reset(2);
  runtime::CancelToken token;
  WatchdogOptions w;
  w.grace_ms = 40;
  w.poll_ms = 2;
  Watchdog dog(board, token, {0.0, 0.0}, w, {{5.0, 9.0}, {7.0, 11.0}});
  dog.arm();
  EXPECT_TRUE(token.wait_for_ms(5000));
  const WatchdogVerdict verdict = dog.disarm();
  ASSERT_TRUE(verdict.fired);
  EXPECT_EQ(verdict.device, 0);  // owes op at sim 5.0 -- earliest
  EXPECT_GE(verdict.silent_ms, 40.0);
  EXPECT_NE(token.reason().find("watchdog"), std::string::npos);
}

TEST(SupervisorWatchdog, DoneDevicesAreNeverBlamed) {
  runtime::HealthBoard board(2);
  board.reset(2);
  board.mark(0, runtime::DeviceHealth::Done);
  runtime::CancelToken token;
  WatchdogOptions w;
  w.grace_ms = 40;
  w.poll_ms = 2;
  Watchdog dog(board, token, {0.0, 0.0}, w);
  dog.arm();
  EXPECT_TRUE(token.wait_for_ms(5000));
  const WatchdogVerdict verdict = dog.disarm();
  ASSERT_TRUE(verdict.fired);
  EXPECT_EQ(verdict.device, 1);
}

TEST(SupervisorWatchdog, QuietWhenEveryDeviceKeepsBeating) {
  runtime::HealthBoard board(1);
  board.reset(1);
  runtime::CancelToken token;
  WatchdogOptions w;
  w.grace_ms = 60;
  w.poll_ms = 2;
  Watchdog dog(board, token, {0.0}, w);
  dog.arm();
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
  int ops = 0;
  while (std::chrono::steady_clock::now() < until) {
    board.beat(0, ++ops);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const WatchdogVerdict verdict = dog.disarm();
  EXPECT_FALSE(verdict.fired);
  EXPECT_FALSE(token.cancelled());
}

// -------------------------------------------------------- chaos scripts

TEST(SupervisorChaos, SampleIsDeterministicAndSpansEveryClass) {
  ChaosScriptOptions opts;
  opts.steps = 20;
  opts.incidents = 10;
  const ChaosScript a = ChaosScript::sample(opts, 99);
  const ChaosScript b = ChaosScript::sample(opts, 99);
  ASSERT_EQ(a.events.size(), 10u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].device, b.events[i].device);
  }
  bool seen[5] = {};
  for (const ChaosEvent& e : a.events) seen[static_cast<int>(e.kind)] = true;
  for (bool s : seen) EXPECT_TRUE(s);  // >= 5 incidents span all classes
  // At most one runtime fault per (step, device): one attempt, one origin.
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    for (std::size_t j = i + 1; j < a.events.size(); ++j) {
      if (a.events[i].kind == ChaosKind::TornCheckpoint ||
          a.events[j].kind == ChaosKind::TornCheckpoint) {
        continue;
      }
      EXPECT_FALSE(a.events[i].step == a.events[j].step &&
                   a.events[i].device == a.events[j].device)
          << "events " << i << " and " << j;
    }
  }
}

TEST(SupervisorChaos, ArmedStorageTearsExactlyOnce) {
  ckpt::MemStorage mem;
  ArmedStorage armed(mem);
  armed.write_file("a", "unarmed passthrough");
  EXPECT_EQ(mem.read_file("a"), "unarmed passthrough");

  armed.arm_torn_write(4);
  EXPECT_TRUE(armed.armed());
  EXPECT_THROW(armed.write_file("b", "0123456789"), ckpt::StorageError);
  EXPECT_EQ(mem.read_file("b"), "0123");  // the torn prefix persisted
  EXPECT_FALSE(armed.armed());            // one-shot
  EXPECT_EQ(armed.torn_writes(), 1);
  armed.write_file("c", "clean again");
  EXPECT_EQ(mem.read_file("c"), "clean again");
}

// -------------------------------------------------- escalation ladder

TEST(SupervisorRecovery, FaithfulRunHasNoIncidents) {
  ckpt::MemStorage mem;
  SupervisorOptions o = tiny_supervisor(&mem, "sup/faithful", 4);
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  EXPECT_EQ(report.steps_done, 4);
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_EQ(report.recovery_actions, 0);
  expect_bit_identical(sup, report, unfaulted_reference(4));
}

TEST(SupervisorRecovery, CrashRestoresFromCheckpointBitIdentically) {
  ckpt::MemStorage mem;
  ChaosScript script;
  ChaosEvent ev;
  ev.step = 3;  // a step-2 checkpoint exists (interval 2)
  ev.kind = ChaosKind::Crash;
  ev.device = 1;
  ev.op_index = 2;
  script.events.push_back(ev);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/crash", 5);
  o.chaos = &script;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].cls, IncidentClass::Crash);
  EXPECT_EQ(report.incidents[0].action, Action::Restore);
  EXPECT_EQ(report.incidents[0].device, 1);
  EXPECT_GT(report.incidents[0].downtime_ms, 0.0);
  EXPECT_EQ(report.final_counts.size(), 3u);  // Replace keeps the width
  expect_bit_identical(sup, report, unfaulted_reference(5));
}

TEST(SupervisorRecovery, WatchdogCatchesHardHangAndRecoveryIsExact) {
  // The regression this suite exists for: a worker wedges silently (stuck
  // in a recv nobody will ever serve, no poison, no exception). Without
  // the watchdog the step never returns; with it the run must finish and
  // stay bit-identical.
  ckpt::MemStorage mem;
  ChaosScript script;
  ChaosEvent ev;
  ev.step = 1;
  ev.kind = ChaosKind::Hang;
  ev.device = 1;
  ev.op_index = 2;
  script.events.push_back(ev);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/hang", 4);
  o.chaos = &script;
  o.watchdog.grace_ms = 300;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  const auto hangs = report.of_class(IncidentClass::Hang);
  ASSERT_EQ(hangs.size(), 1u);
  EXPECT_EQ(hangs[0]->device, 1);  // blame table names the wedged stage
  EXPECT_GE(hangs[0]->detect_ms, 300.0);
  expect_bit_identical(sup, report, unfaulted_reference(4));
}

TEST(SupervisorRecovery, TransientRetriesInPlaceWithoutRestore) {
  ckpt::MemStorage mem;
  ChaosScript script;
  ChaosEvent ev;
  ev.step = 2;
  ev.kind = ChaosKind::Transient;
  ev.device = 0;
  ev.op_index = 1;
  ev.failures = 8;  // outlives the worker's own in-place retry budget
  script.events.push_back(ev);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/transient", 4);
  o.chaos = &script;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  ASSERT_GE(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].cls, IncidentClass::Transient);
  EXPECT_EQ(report.incidents[0].action, Action::RetryInPlace);
  expect_bit_identical(sup, report, unfaulted_reference(4));
}

TEST(SupervisorRecovery, TornCheckpointIsAbsorbedAndLaterRestoreIsValid) {
  ckpt::MemStorage mem;
  ChaosScript script;
  ChaosEvent torn;
  torn.step = 1;  // tears the step-2 checkpoint write (interval 2)
  torn.kind = ChaosKind::TornCheckpoint;
  script.events.push_back(torn);
  ChaosEvent crash;
  crash.step = 5;  // restore must skip the torn step and still succeed
  crash.kind = ChaosKind::Crash;
  crash.device = 2;
  crash.op_index = 1;
  script.events.push_back(crash);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/torn", 6);
  o.chaos = &script;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  EXPECT_EQ(report.of_class(IncidentClass::Storage).size(), 1u);
  EXPECT_EQ(report.of_class(IncidentClass::Crash).size(), 1u);
  expect_bit_identical(sup, report, unfaulted_reference(6));
}

TEST(SupervisorRecovery, DegradeReshardsOntoSurvivorsWithinTolerance) {
  ckpt::MemStorage mem;
  ChaosScript script;
  ChaosEvent ev;
  ev.step = 3;
  ev.kind = ChaosKind::Crash;
  ev.device = 2;
  ev.op_index = 1;
  script.events.push_back(ev);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/degrade", 5);
  o.session.ckpt_interval = 1;
  o.chaos = &script;
  o.mode = RecoveryMode::Degrade;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].action, Action::Replan);
  EXPECT_EQ(report.final_counts.size(), 2u);

  const Reference ref = unfaulted_reference(5);
  const ckpt::TrainState got = sup.session().capture();
  ASSERT_EQ(got.blocks.size(), ref.state.blocks.size());
  double worst = 0;
  for (std::size_t b = 0; b < got.blocks.size(); ++b) {
    ASSERT_EQ(got.blocks[b].params.size(), ref.state.blocks[b].params.size());
    for (std::size_t p = 0; p < got.blocks[b].params.size(); ++p) {
      const auto& pa = got.blocks[b].params[p].value;
      const auto& pb = ref.state.blocks[b].params[p].value;
      ASSERT_EQ(pa.size(), pb.size());
      for (std::size_t k = 0; k < pa.size(); ++k) {
        worst = std::max(worst, std::abs(static_cast<double>(pa[k]) -
                                         static_cast<double>(pb[k])));
      }
    }
  }
  EXPECT_LE(worst, 1e-4);
}

TEST(SupervisorRecovery, PlanOracleOverridesAndIllFormedAnswersFallBack) {
  // A well-shaped oracle answer decides the degraded partition.
  {
    ckpt::MemStorage mem;
    ChaosScript script;
    ChaosEvent ev;
    ev.step = 2;
    ev.kind = ChaosKind::Crash;
    ev.device = 2;
    ev.op_index = 1;
    script.events.push_back(ev);
    SupervisorOptions o = tiny_supervisor(&mem, "sup/oracle", 4);
    o.session.ckpt_interval = 1;
    o.chaos = &script;
    o.mode = RecoveryMode::Degrade;
    o.plan_oracle = [](int) { return std::vector<int>{3, 5}; };
    Supervisor sup(o);
    const SupervisorReport report = sup.run();
    ASSERT_TRUE(report.completed) << report.abort_reason;
    EXPECT_EQ(report.final_counts, (std::vector<int>{3, 5}));
  }
  // An ill-formed answer (wrong block sum) falls back to the local replan
  // instead of failing the recovery.
  {
    ckpt::MemStorage mem;
    ChaosScript script;
    ChaosEvent ev;
    ev.step = 2;
    ev.kind = ChaosKind::Crash;
    ev.device = 2;
    ev.op_index = 1;
    script.events.push_back(ev);
    SupervisorOptions o = tiny_supervisor(&mem, "sup/oracle-bad", 4);
    o.session.ckpt_interval = 1;
    o.chaos = &script;
    o.mode = RecoveryMode::Degrade;
    o.plan_oracle = [](int) { return std::vector<int>{1, 1}; };
    Supervisor sup(o);
    const SupervisorReport report = sup.run();
    ASSERT_TRUE(report.completed) << report.abort_reason;
    ASSERT_EQ(report.final_counts.size(), 2u);
    EXPECT_EQ(report.final_counts[0] + report.final_counts[1], 8);
    EXPECT_NE(report.final_counts, (std::vector<int>{1, 1}));
  }
}

TEST(SupervisorRecovery, RestartBudgetExhaustionAbortsWithTypedReport) {
  ckpt::MemStorage mem;
  ChaosScript script;
  for (int s = 0; s < 3; ++s) {
    ChaosEvent ev;
    ev.step = s;
    ev.kind = ChaosKind::Crash;
    ev.device = s % 3;
    ev.op_index = 1;
    script.events.push_back(ev);
  }
  SupervisorOptions o = tiny_supervisor(&mem, "sup/budget", 6);
  o.chaos = &script;
  o.restart_budget = 1;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.abort_reason.find("restart budget"), std::string::npos);
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_EQ(report.incidents.back().action, Action::Abort);
  EXPECT_LT(report.steps_done, 6);
}

TEST(SupervisorRecovery, SeededSoakSurvivesEveryClassBitIdentically) {
  // The in-suite miniature of examples/chaos_lab soak: >= 5 incidents
  // cycle all five classes; the run must complete and match exactly.
  ckpt::MemStorage mem;
  ChaosScriptOptions copts;
  copts.steps = 8;
  copts.devices = 3;
  copts.ops_per_device = 12;
  copts.incidents = 5;
  copts.straggler_delay_ms = 30;
  const ChaosScript script = ChaosScript::sample(copts, 17);

  SupervisorOptions o = tiny_supervisor(&mem, "sup/soak", 8);
  o.chaos = &script;
  o.watchdog.grace_ms = 400;
  o.restart_budget = 16;
  Supervisor sup(o);
  const SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  EXPECT_FALSE(report.incidents.empty());
  expect_bit_identical(sup, report, unfaulted_reference(8));
}

TEST(SupervisorRecovery, RejectsIllFormedOptions) {
  ckpt::MemStorage mem;
  SupervisorOptions o = tiny_supervisor(&mem, "sup/bad", 4);
  o.target_steps = 0;
  EXPECT_THROW(Supervisor{o}, std::invalid_argument);
  o = tiny_supervisor(&mem, "sup/bad", 4);
  o.restart_budget = -1;
  EXPECT_THROW(Supervisor{o}, std::invalid_argument);
  o = tiny_supervisor(&mem, "sup/bad", 4);
  o.session.counts = {4, 4};  // 8 blocks, fine
  o.config = tiny_config();
  Supervisor ok(o);  // shape-consistent alternatives are accepted
  o.session.counts = {2, 2};  // 4 blocks != the config's 8
  EXPECT_THROW(Supervisor{o}, std::invalid_argument);
}

}  // namespace
}  // namespace autopipe::supervisor
