// Randomized end-to-end property sweeps: synthetic model configs with
// arbitrary block costs are pushed through the Planner, Slicer, schedule
// builders, executor and (for a few shapes) the thread runtime, asserting
// the invariants that must hold for ANY input -- not just the zoo models.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/autopipe.h"
#include "core/balanced_dp.h"
#include "core/planner.h"
#include "core/slicer.h"
#include "faults/fault_plan.h"
#include "faults/sdc.h"
#include "model/data.h"
#include "model/ops.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/recovery.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"
#include "service/plan_service.h"
#include "service/protocol.h"
#include "sim/executor.h"
#include "util/rng.h"

namespace autopipe {
namespace {

/// A synthetic "model": random per-block costs with the usual layout
/// (light embedding, alternating attention/FFN, heavy head).
costmodel::ModelConfig random_config(util::Rng& rng, int layers) {
  costmodel::ModelConfig cfg;
  cfg.spec = costmodel::gpt2_345m();
  cfg.spec.num_layers = layers;
  cfg.comm_ms = rng.uniform(0.0, 0.5);
  auto push = [&](costmodel::BlockKind kind, double f_lo, double f_hi,
                  double units) {
    costmodel::Block b;
    b.name = "b" + std::to_string(cfg.blocks.size());
    b.kind = kind;
    b.fwd_ms = rng.uniform(f_lo, f_hi);
    b.bwd_ms = b.fwd_ms * rng.uniform(1.5, 3.5);
    b.param_bytes = rng.uniform(1e6, 1e8);
    b.stash_bytes = rng.uniform(1e5, 1e7);
    b.work_bytes = rng.uniform(1e6, 1e8);
    b.output_bytes = 1e6;
    b.layer_units = units;
    cfg.blocks.push_back(b);
  };
  push(costmodel::BlockKind::Embedding, 0.01, 0.1, 0);
  for (int l = 0; l < layers; ++l) {
    push(costmodel::BlockKind::Attention, 0.5, 3.0, 0.5);
    push(costmodel::BlockKind::FFN, 0.5, 3.0, 0.5);
  }
  push(costmodel::BlockKind::Head, 1.0, 8.0, 0);
  return cfg;
}

class PlannerFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerFuzz, FullPipelineInvariantsHold) {
  util::Rng rng(GetParam());
  const int layers = 3 + static_cast<int>(rng.next_below(12));
  const auto cfg = random_config(rng, layers);
  const int max_depth = std::min(8, cfg.num_blocks());
  const int depth = 2 + static_cast<int>(rng.next_below(max_depth - 1));
  const int m = depth + static_cast<int>(rng.next_below(2 * depth));

  // Planner: valid output, never worse than its Algorithm-1 seed.
  const auto planned = core::plan(cfg, depth, m);
  ASSERT_NO_THROW(core::validate(cfg, planned.partition));
  const auto seed = core::balanced_partition(cfg, depth);
  const double seed_ms = core::simulate_pipeline(cfg, seed, m).iteration_ms;
  EXPECT_LE(planned.sim.iteration_ms, seed_ms + 1e-9);

  // Slicer: bounded answer, halved startup estimate.
  const auto costs = core::stage_costs(cfg, planned.partition);
  const auto slicing = core::solve_slicing(costs, cfg.comm_ms, m);
  EXPECT_GE(slicing.sliced_micro_batches, 1);
  EXPECT_LT(slicing.sliced_micro_batches, depth);
  EXPECT_LE(slicing.sliced_micro_batches, m);
  EXPECT_NEAR(slicing.startup_after_ms, slicing.startup_before_ms / 2, 1e-9);

  // Schedules: structurally valid, executable, acyclic (executor throws on
  // cycles), and the simulator/executor cross-check holds.
  const auto plain = core::build_1f1b(costs, m, cfg.comm_ms);
  const auto sliced = core::build_sliced_1f1b(costs, m, cfg.comm_ms,
                                              slicing.sliced_micro_batches);
  ASSERT_NO_THROW(core::validate(plain));
  ASSERT_NO_THROW(core::validate(sliced));
  const auto exec_plain = sim::execute(plain);
  const auto exec_sliced = sim::execute(sliced);
  EXPECT_LE(exec_plain.iteration_ms, planned.sim.iteration_ms + 1e-6)
      << "executor must not exceed the comm-conservative simulator";
  // Slicing halves startup on the executor too.
  EXPECT_NEAR(exec_sliced.startup_ms, exec_plain.startup_ms / 2,
              exec_plain.startup_ms * 0.05 + 1e-9);
  // And never costs more than one sliced micro-batch of slack.
  const double slack =
      (costs[0].fwd_ms + costs[0].bwd_ms) * slicing.sliced_micro_batches;
  EXPECT_LE(exec_sliced.iteration_ms, exec_plain.iteration_ms + slack);

  // Iteration time lower bound: no device can beat its own busy time.
  for (int s = 0; s < depth; ++s) {
    EXPECT_GE(exec_plain.iteration_ms + 1e-9,
              m * (costs[s].fwd_ms + costs[s].bwd_ms));
  }
}

TEST_P(PlannerFuzz, PlanIsBitIdenticalAcrossThreadCounts) {
  // The tentpole's acceptance gate: the parallel search is a deterministic
  // algorithm whose waves never depend on the worker count, so plan() must
  // return a bit-identical PlannerResult for threads 1, 2 and 8 -- same
  // partition scheme, same (exact, not approximate) iteration time, same
  // master stage, and same evaluation accounting.
  util::Rng rng(GetParam() * 7919 + 13);
  const int layers = 3 + static_cast<int>(rng.next_below(12));
  const auto cfg = random_config(rng, layers);
  const int max_depth = std::min(8, cfg.num_blocks());
  const int depth = 2 + static_cast<int>(rng.next_below(max_depth - 1));
  const int m = depth + static_cast<int>(rng.next_below(2 * depth));

  core::PlannerOptions serial;
  serial.threads = 1;
  const auto base = core::plan(cfg, depth, m, serial);
  for (int threads : {2, 8}) {
    core::PlannerOptions opts;
    opts.threads = threads;
    const auto r = core::plan(cfg, depth, m, opts);
    EXPECT_EQ(r.partition.counts, base.partition.counts)
        << "threads " << threads;
    EXPECT_EQ(r.sim.iteration_ms, base.sim.iteration_ms)  // bitwise equality
        << "threads " << threads;
    EXPECT_EQ(r.sim.master_stage, base.sim.master_stage)
        << "threads " << threads;
    EXPECT_EQ(r.evaluations, base.evaluations) << "threads " << threads;
    EXPECT_EQ(r.unique_simulations, base.unique_simulations)
        << "threads " << threads;
    EXPECT_EQ(r.cache_hits, base.cache_hits) << "threads " << threads;
    EXPECT_EQ(r.feasible, base.feasible) << "threads " << threads;
  }

  // Same property under a feasibility predicate (the memory-aware path).
  core::PlannerOptions constrained_serial;
  constrained_serial.threads = 1;
  constrained_serial.feasible = [&](const core::Partition& p) {
    return core::partition_fits_memory(cfg, p, m);
  };
  const auto cbase = core::plan(cfg, depth, m, constrained_serial);
  core::PlannerOptions constrained = constrained_serial;
  constrained.threads = 8;
  const auto cr = core::plan(cfg, depth, m, constrained);
  EXPECT_EQ(cr.partition.counts, cbase.partition.counts);
  EXPECT_EQ(cr.sim.iteration_ms, cbase.sim.iteration_ms);
  EXPECT_EQ(cr.feasible, cbase.feasible);
}

INSTANTIATE_TEST_SUITE_P(RandomModels, PlannerFuzz,
                         testing::Range<std::uint64_t>(1, 21));

class RuntimeFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeFuzz, RandomPartitionGradEquivalence) {
  util::Rng rng(GetParam());
  model::TinySpec spec;
  spec.layers = 2 + static_cast<int>(rng.next_below(3));  // 6..10 blocks
  spec.hidden = 8 * (1 + static_cast<int>(rng.next_below(2)));
  spec.heads = 2;
  spec.vocab = 16 + static_cast<int>(rng.next_below(32));
  spec.seq = 4;
  spec.seed = GetParam();
  model::TransformerModel ref(spec), piped(spec);

  // Random contiguous partition into 2..4 stages.
  const int blocks = ref.num_blocks();
  const int stages = 2 + static_cast<int>(rng.next_below(3));
  std::vector<int> counts(stages, 1);
  for (int extra = blocks - stages; extra > 0; --extra) {
    ++counts[rng.next_below(stages)];
  }

  const int B = 2 + 2 * static_cast<int>(rng.next_below(2));
  const int m = stages + static_cast<int>(rng.next_below(4));
  const int sliced = static_cast<int>(rng.next_below(stages));

  model::SyntheticCorpus corpus(spec.vocab, GetParam());
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);

  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);

  runtime::PipelineRuntime rt(piped, counts);
  piped.zero_grads();
  const auto schedule = rt.make_schedule(
      sliced > 0 ? costmodel::ScheduleKind::AutoPipeSliced
                 : costmodel::ScheduleKind::OneFOneB,
      m, sliced);
  const auto result = rt.run_iteration(schedule, micro, scale);
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, RuntimeFuzz,
                         testing::Range<std::uint64_t>(100, 108));

class ZeroBubbleFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ZeroBubbleFuzz, SplitTrainingBitIdenticalToFusedOnRandomShapes) {
  // Property behind the zero-bubble feature: for ANY model shape and
  // contiguous partition, an iteration under the split-backward schedule
  // produces bitwise the same loss and parameter gradients as fused 1F1B.
  // The W deferral reorders ops across micro-batches, never the additions
  // into any single parameter's grad tensor.
  util::Rng rng(GetParam());
  model::TinySpec spec;
  spec.layers = 2 + static_cast<int>(rng.next_below(3));  // 6..10 blocks
  spec.hidden = 8 * (1 + static_cast<int>(rng.next_below(2)));
  spec.heads = 2;
  spec.vocab = 16 + static_cast<int>(rng.next_below(32));
  spec.seq = 4;
  spec.seed = GetParam();
  model::TransformerModel fused(spec), split(spec);

  const int blocks = fused.num_blocks();
  const int stages = 2 + static_cast<int>(rng.next_below(3));
  std::vector<int> counts(stages, 1);
  for (int extra = blocks - stages; extra > 0; --extra) {
    ++counts[rng.next_below(stages)];
  }
  const int B = 2 + 2 * static_cast<int>(rng.next_below(2));
  const int m = stages + static_cast<int>(rng.next_below(4));

  model::SyntheticCorpus corpus(spec.vocab, GetParam());
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);

  runtime::PipelineRuntime rt_fused(fused, counts), rt_split(split, counts);
  fused.zero_grads();
  split.zero_grads();
  const auto fused_result = rt_fused.run_iteration(
      rt_fused.make_schedule(costmodel::ScheduleKind::OneFOneB, m), micro,
      scale);
  const auto split_result = rt_split.run_iteration(
      rt_split.make_schedule(costmodel::ScheduleKind::ZeroBubble, m), micro,
      scale);
  EXPECT_EQ(fused_result.loss, split_result.loss);
  EXPECT_EQ(fused.max_grad_diff(split), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, ZeroBubbleFuzz,
                         testing::Range<std::uint64_t>(300, 310));

TEST(FaultFuzz, EmptyPlanIsBitIdenticalForEveryScheduleKind) {
  // The fault hooks must be invisible when no fault matches: for random
  // schedules of every kind, execution with a default FaultPlan{} (and with
  // a null plan) produces the same bits.
  util::Rng rng(31);
  for (int trial = 0; trial < 24; ++trial) {
    const int stages = 2 + static_cast<int>(rng.next_below(5));
    std::vector<core::StageCost> costs(static_cast<std::size_t>(stages));
    for (auto& c : costs) {
      c.fwd_ms = rng.uniform(0.5, 3.0);
      c.bwd_ms = c.fwd_ms * rng.uniform(1.5, 3.0);
    }
    const double comm = rng.uniform(0.0, 0.5);
    const int m = stages + static_cast<int>(rng.next_below(6));
    core::Schedule schedule;
    switch (trial % 5) {
      case 0:
        schedule = core::build_1f1b(costs, m, comm);
        break;
      case 1:
        schedule = core::build_gpipe(costs, m, comm);
        break;
      case 2:
        schedule = core::build_sliced_1f1b(
            costs, m, comm, 1 + static_cast<int>(rng.next_below(stages)));
        break;
      case 4:
        for (auto& c : costs) {
          c.bwd_input_ms = c.bwd_ms * rng.uniform(0.5, 0.8);
          c.bwd_weight_ms = c.bwd_ms - c.bwd_input_ms;
        }
        schedule = core::make_zero_bubble(costs, m, comm);
        break;
      default: {
        // Interleaved: every device hosts 2 chunks, m a multiple of devices.
        std::vector<std::vector<core::StageCost>> chunks(
            static_cast<std::size_t>(stages));
        for (auto& dev : chunks) {
          dev.resize(2);
          for (auto& c : dev) {
            c.fwd_ms = rng.uniform(0.5, 2.0);
            c.bwd_ms = c.fwd_ms * 2.0;
          }
        }
        schedule = core::build_interleaved(chunks, stages * 2, comm);
        break;
      }
    }
    sim::ExecOptions base;
    base.per_op_overhead_ms = rng.uniform(0.0, 0.1);
    base.jitter_frac = rng.uniform(0.0, 0.05);
    base.seed = trial + 1;
    const auto none = sim::execute(schedule, base);

    const faults::FaultPlan empty;
    sim::ExecOptions faulted = base;
    faulted.faults = &empty;
    const auto with_empty = sim::execute(schedule, faulted);

    EXPECT_EQ(none.iteration_ms, with_empty.iteration_ms);
    EXPECT_EQ(none.startup_ms, with_empty.startup_ms);
    EXPECT_EQ(none.device_busy_ms, with_empty.device_busy_ms);
    ASSERT_EQ(none.trace.size(), with_empty.trace.size());
    for (std::size_t i = 0; i < none.trace.size(); ++i) {
      EXPECT_EQ(none.trace[i].start_ms, with_empty.trace[i].start_ms);
      EXPECT_EQ(none.trace[i].end_ms, with_empty.trace[i].end_ms);
    }
    EXPECT_FALSE(with_empty.failure.crashed);
    EXPECT_EQ(with_empty.link_retries, 0);
  }
}

TEST(ScheduleEvalFuzz, AnalyticEvaluatorMatchesExecutorForEveryKind) {
  // The longest-path evaluator and the discrete-event executor build the
  // same dependency graph, so with zero overhead, zero jitter and no faults
  // their timings must agree bit-for-bit -- for every ScheduleKind, on
  // random partitions and random per-boundary comm cost vectors.
  util::Rng rng(57);
  for (int trial = 0; trial < 48; ++trial) {
    const int stages = 2 + static_cast<int>(rng.next_below(6));
    std::vector<core::StageCost> costs(static_cast<std::size_t>(stages));
    for (auto& c : costs) {
      c.fwd_ms = rng.uniform(0.5, 3.0);
      c.bwd_ms = c.fwd_ms * rng.uniform(1.5, 3.0);
    }
    const int m = stages + static_cast<int>(rng.next_below(8));
    const int chunks = trial % 5 == 3 ? 2 : 1;
    std::vector<double> boundary(
        static_cast<std::size_t>(chunks * stages - 1));
    for (auto& b : boundary) b = rng.uniform(0.0, 1.0);
    const auto comm = costmodel::CommModel::from_costs(boundary);
    core::Schedule schedule;
    switch (trial % 5) {
      case 0:
        schedule = core::build_1f1b(costs, m, comm);
        break;
      case 1:
        schedule = core::build_gpipe(costs, m, comm);
        break;
      case 2:
        schedule = core::build_sliced_1f1b(
            costs, m, comm, 1 + static_cast<int>(rng.next_below(stages)));
        break;
      case 4:
        for (auto& c : costs) {
          c.bwd_input_ms = c.bwd_ms * rng.uniform(0.5, 0.8);
          c.bwd_weight_ms = c.bwd_ms - c.bwd_input_ms;
        }
        schedule = core::make_zero_bubble(costs, m, comm);
        break;
      default: {
        std::vector<std::vector<core::StageCost>> chunk_costs(
            static_cast<std::size_t>(stages));
        for (auto& dev : chunk_costs) {
          dev.resize(2);
          for (auto& c : dev) {
            c.fwd_ms = rng.uniform(0.5, 2.0);
            c.bwd_ms = c.fwd_ms * rng.uniform(1.5, 3.0);
          }
        }
        schedule = core::build_interleaved(chunk_costs, stages * 2, comm);
        break;
      }
    }
    const auto eval = core::evaluate_schedule(schedule);
    const auto exec = sim::execute(schedule);
    EXPECT_EQ(eval.iteration_ms, exec.iteration_ms) << "trial " << trial;
    EXPECT_EQ(eval.startup_ms, exec.startup_ms) << "trial " << trial;
    // Per-op agreement: both sides sorted by (start, device, end).
    ASSERT_EQ(eval.ops.size(), exec.trace.size()) << "trial " << trial;
    std::vector<std::tuple<double, int, double>> a, b;
    for (const auto& op : eval.ops) {
      a.emplace_back(op.start_ms, op.device, op.end_ms);
    }
    for (const auto& op : exec.trace) {
      b.emplace_back(op.start_ms, op.device, op.end_ms);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "trial " << trial;
    // The critical path is real: non-empty, ends at the makespan, and walks
    // forward in time.
    ASSERT_FALSE(eval.critical_path.empty());
    EXPECT_EQ(eval.ops[eval.critical_path.back()].end_ms, eval.iteration_ms);
    for (std::size_t i = 1; i < eval.critical_path.size(); ++i) {
      EXPECT_LE(eval.ops[eval.critical_path[i - 1]].end_ms,
                eval.ops[eval.critical_path[i]].start_ms + 1e-12);
    }
  }
}

class RecoveryFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryFuzz, CrashRecoveryReproducesNoFaultGradients) {
  // Property: wherever a device crash lands, the recovered iteration's
  // gradients are bit-identical to a fault-free run on the partition the
  // replanner chose, and match the single-process reference.
  util::Rng rng(GetParam());
  model::TinySpec spec;
  spec.layers = 3;  // 8 blocks
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  spec.seed = GetParam();
  model::TransformerModel ref(spec), piped(spec);

  costmodel::ModelSpec ms;
  ms.name = "tiny";
  ms.num_layers = spec.layers;
  ms.hidden = spec.hidden;
  ms.heads = spec.heads;
  ms.vocab = spec.vocab;
  ms.default_seq = spec.seq;
  ms.causal = spec.causal;
  const auto cfg = costmodel::build_model_config(ms, {4, 0, true});

  const int B = 4, m = 6;
  model::SyntheticCorpus corpus(spec.vocab, GetParam());
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);
  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);

  faults::FaultPlan plan;
  faults::DeviceCrash crash;
  crash.device = static_cast<int>(rng.next_below(3));
  crash.after_ops = static_cast<int>(rng.next_below(12));  // anywhere in 1F1B
  plan.crashes.push_back(crash);

  runtime::RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.backoff_base_ms = 0.01;
  rec.plan = {3, 24, 0, false, 1};
  piped.zero_grads();
  const auto report = runtime::run_iteration_with_recovery(
      piped, cfg, {2, 3, 3}, micro, scale, rec);

  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.degraded);
  EXPECT_NEAR(report.result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);

  model::TransformerModel clean(spec);
  clean.zero_grads();
  runtime::PipelineRuntime rt(clean, report.final_counts);
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::OneFOneB, m);
  rt.run_iteration(schedule, micro, scale);
  EXPECT_DOUBLE_EQ(clean.max_grad_diff(piped), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomCrashPoints, RecoveryFuzz,
                         testing::Range<std::uint64_t>(200, 212));

TEST(EvaluatePlanFuzz, NeverCrashesAndStaysFinite) {
  util::Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cfg = random_config(rng, 4 + static_cast<int>(rng.next_below(8)));
    core::ParallelPlan plan;
    const int d = 1 + static_cast<int>(rng.next_below(4));
    plan.partition.counts.assign(d, 1);
    for (int extra = cfg.num_blocks() - d; extra > 0; --extra) {
      ++plan.partition.counts[rng.next_below(d)];
    }
    plan.uniform_dp = rng.next_below(2) == 0;
    if (plan.uniform_dp) {
      plan.data_parallel = 1 + static_cast<int>(rng.next_below(8));
    } else {
      plan.shard_micro_batches = rng.next_below(2) == 0;
      for (int s = 0; s < d; ++s) {
        plan.stage_devices.push_back(1 + static_cast<int>(rng.next_below(6)));
      }
    }
    const long gbs = 16L << rng.next_below(6);
    const auto ev = core::evaluate_plan(cfg, plan, gbs);
    if (!ev.oom && !ev.runtime_error) {
      EXPECT_GT(ev.iteration_ms, 0.0);
      EXPECT_TRUE(std::isfinite(ev.iteration_ms));
      EXPECT_EQ(ev.stage_loads_ms.size(), static_cast<std::size_t>(d));
    }
  }
}

class ServiceFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceFuzz, WarmReplanNeverWorseThanCold) {
  // The warm-start acceptance property: seeding the search with a prior
  // plan (here: the optimum of a drifted sibling config) can never produce
  // a worse plan than a cold search, because the seed joins the first wave
  // *behind* the balanced seed -- the considered set is a strict superset
  // of the cold search's. "Never worse" is in the planner's total order:
  // (iteration_ms, scheme_hash).
  util::Rng rng(GetParam() * 104729 + 71);
  const int layers = 3 + static_cast<int>(rng.next_below(12));
  auto cfg = random_config(rng, layers);
  const int max_depth = std::min(8, cfg.num_blocks());
  const int depth = 2 + static_cast<int>(rng.next_below(max_depth - 1));
  const int m = depth + static_cast<int>(rng.next_below(2 * depth));

  // The "previous" config: same shape, timings drifted by up to +-20% on a
  // random subset of blocks. Its optimal plan is the warm seed.
  auto prev = cfg;
  for (auto& b : prev.blocks) {
    if (rng.next_below(3) == 0) {
      const double factor = rng.uniform(0.8, 1.2);
      b.fwd_ms *= factor;
      b.bwd_ms *= factor;
    }
  }
  const auto prior = core::plan(prev, depth, m);

  const auto cold = core::plan(cfg, depth, m);
  core::PlannerOptions warm_opts;
  warm_opts.warm_start = prior.partition;
  const auto warm = core::plan(cfg, depth, m, warm_opts);

  ASSERT_EQ(warm.feasible, cold.feasible);
  if (!cold.feasible) return;
  EXPECT_LE(warm.sim.iteration_ms, cold.sim.iteration_ms);
  if (warm.sim.iteration_ms == cold.sim.iteration_ms) {
    EXPECT_LE(core::scheme_hash(warm.partition),
              core::scheme_hash(cold.partition));
  }
}

TEST_P(ServiceFuzz, ServedMatchesOfflineReplayForSeededRequests) {
  // Daemon determinism over a seeded request mix: one long-lived service
  // accumulates memo/history state across random zoo requests, yet every
  // canonical response byte-matches a fresh offline replay of the same
  // request plus the echoed warm hint.
  util::Rng rng(GetParam() * 31337 + 5);
  service::ServiceOptions opts;
  opts.workers = 2;
  opts.max_queue = 256;
  service::PlanService service(opts);

  const char* models[] = {"gpt2-345m", "gpt2-762m", "bert-large"};
  const char* warms[] = {"off", "auto"};
  for (int i = 0; i < 10; ++i) {
    const int gpus = 1 << (1 + rng.next_below(3));  // 2, 4 or 8
    std::string line = "plan id=f" + std::to_string(i) +
                       " model=" + models[rng.next_below(3)] +
                       " gpus=" + std::to_string(gpus) +
                       " gbs=" + std::to_string(32L << rng.next_below(3)) +
                       " stages=" + std::to_string(rng.next_below(2) ? gpus : 0) +
                       " warm=" + warms[rng.next_below(2)];
    if (rng.next_below(2) == 0) {
      const int block = static_cast<int>(rng.next_below(10));
      const double f = rng.uniform(0.9, 1.1);
      char buf[64];
      std::snprintf(buf, sizeof(buf), " perturb=%d:%.4f:%.4f", block, f, f);
      line += buf;
    }
    const std::string served = service.handle_line(line);
    ASSERT_EQ(served.rfind("ok ", 0), 0u) << served << "\nrequest: " << line;
    const service::ParsedLine parsed = service::parse_line(line);
    ASSERT_TRUE(parsed.error.empty()) << line;
    EXPECT_EQ(service::canonical_part(served),
              service::offline_response(parsed.request,
                                        service::parse_warm_hint(served)))
        << "request: " << line;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomReplans, ServiceFuzz,
                         testing::Range<std::uint64_t>(1, 16));

TEST(HotpathFuzz, NaiveAndFastOpsTrainBitIdenticallyForEveryScheduleKind) {
  // End-to-end bit-identity of the fast kernels: K pipelined training
  // steps (forward, backward, Adam) with the naive ref:: ops and with the
  // blocked/ILP fast ops must produce bitwise-equal losses every step and
  // bitwise-equal gradients after the last step -- for each schedule kind.
  constexpr int kSteps = 3;
  model::TinySpec spec;
  spec.layers = 2;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  spec.seed = 5;
  const int B = 2;

  const struct {
    costmodel::ScheduleKind kind;
    int chunks;
    int sliced;
  } cases[] = {
      {costmodel::ScheduleKind::OneFOneB, 1, 0},
      {costmodel::ScheduleKind::GPipe, 1, 0},
      {costmodel::ScheduleKind::AutoPipeSliced, 1, 1},
      {costmodel::ScheduleKind::Interleaved, 2, 0},
      {costmodel::ScheduleKind::ZeroBubble, 1, 0},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(costmodel::to_string(c.kind));
    const int devices = 2;
    const int m = 4;
    // Split the blocks over devices*chunks contiguous ranges.
    model::TransformerModel probe(spec);
    const std::vector<int> counts = core::balanced_counts(
        std::vector<double>(probe.num_blocks(), 1.0), devices * c.chunks);

    const auto train = [&](bool fast, model::TransformerModel& net,
                           std::vector<double>* losses) {
      model::set_fast_ops(fast);
      model::SyntheticCorpus corpus(spec.vocab, 99);
      runtime::PipelineRuntime rt(net, counts, c.chunks);
      const auto schedule = rt.make_schedule(c.kind, m, c.sliced);
      runtime::Adam adam(1e-2);
      const double scale = 1.0 / (B * m * spec.seq);
      for (int step = 0; step < kSteps; ++step) {
        const auto batch = corpus.next_batch(B * m, spec.seq);
        const auto micro =
            model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
        net.zero_grads();
        const auto r = rt.run_iteration(schedule, micro, scale);
        adam.step(net);
        losses->push_back(r.loss);
      }
    };

    model::TransformerModel naive_net(spec), fast_net(spec);
    std::vector<double> naive_losses, fast_losses;
    train(false, naive_net, &naive_losses);
    train(true, fast_net, &fast_losses);
    model::set_fast_ops(true);

    ASSERT_EQ(naive_losses.size(), fast_losses.size());
    for (std::size_t i = 0; i < naive_losses.size(); ++i) {
      EXPECT_EQ(naive_losses[i], fast_losses[i]) << "step " << i;
    }
    // Last-step gradients are still in the blocks: bitwise equality here
    // means parameters never diverged across all K Adam updates.
    EXPECT_EQ(naive_net.max_grad_diff(fast_net), 0.0);
  }
}

TEST(SupervisorFuzz, RecoveryReproducesUnfaultedTrainingForEveryKind) {
  // Property: for ANY seeded chaos script, a supervised run in Replace
  // mode either completes bit-identical to the unfaulted run of the same
  // step count, or aborts with a typed report -- for each schedule kind
  // the training runtime supports. ("Recovered" must never silently mean
  // "slightly different gradients".)
  model::TinySpec spec;
  spec.layers = 3;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  costmodel::ModelSpec mspec;
  mspec.name = "tiny";
  mspec.num_layers = spec.layers;
  mspec.hidden = spec.hidden;
  mspec.heads = spec.heads;
  mspec.vocab = spec.vocab;
  mspec.default_seq = spec.seq;
  mspec.causal = spec.causal;
  const costmodel::ModelConfig config =
      costmodel::build_model_config(mspec, {4, 0, true});

  const struct {
    costmodel::ScheduleKind kind;
    int sliced;
  } cases[] = {
      {costmodel::ScheduleKind::OneFOneB, 0},
      {costmodel::ScheduleKind::GPipe, 0},
      {costmodel::ScheduleKind::AutoPipeSliced, 1},
      {costmodel::ScheduleKind::Interleaved, 0},
      {costmodel::ScheduleKind::ZeroBubble, 0},
  };
  constexpr int kSteps = 6;
  for (const auto& c : cases) {
    SCOPED_TRACE(costmodel::to_string(c.kind));

    runtime::TrainSessionOptions base;
    base.spec = spec;
    base.counts = {2, 3, 3};
    base.kind = c.kind;
    base.sliced = c.sliced;
    base.micro_batch = 2;
    base.num_micro_batches = 6;

    runtime::TrainSession ref(base);
    for (int i = 0; i < kSteps; ++i) ref.step();
    const ckpt::TrainState want = ref.capture();

    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      supervisor::ChaosScriptOptions copts;
      copts.steps = kSteps;
      copts.devices = 3;
      copts.ops_per_device = 12;
      copts.incidents = 5;  // cycles through all five failure classes
      copts.straggler_delay_ms = 20;
      const supervisor::ChaosScript script =
          supervisor::ChaosScript::sample(copts, seed * 977 + 13);

      ckpt::MemStorage mem;
      supervisor::SupervisorOptions o;
      o.session = base;
      o.session.ckpt_dir = "fuzz/sup";
      o.session.ckpt_interval = 2;
      o.session.storage = &mem;
      o.config = config;
      o.target_steps = kSteps;
      o.watchdog.grace_ms = 400;
      o.restart_budget = 16;
      o.chaos = &script;
      supervisor::Supervisor sup(o);
      const supervisor::SupervisorReport report = sup.run();
      if (!report.completed) {
        // The only acceptable alternative outcome: a typed abort.
        EXPECT_FALSE(report.abort_reason.empty());
        continue;
      }
      const ckpt::TrainState got = sup.session().capture();
      EXPECT_TRUE(got.blocks == want.blocks);
      EXPECT_TRUE(got.data_rng == want.data_rng);
      EXPECT_EQ(got.adam_t, want.adam_t);
      ASSERT_EQ(report.losses.size(), ref.losses().size());
      for (std::size_t i = 0; i < report.losses.size(); ++i) {
        EXPECT_EQ(report.losses[i], ref.losses()[i]) << "step " << i;
      }
    }
  }
}

// ------------------------------------------------------------- SDC guards

class GuardFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GuardFuzz, GuardsOnIsBitwiseIdenticalToGuardsOffForRandomShapes) {
  // The guard layer's zero-interference contract: every detector only READS
  // tensor bytes, so a fully-armed guard config (handoff CRCs, non-finite
  // scans, weight sentinel, norm window, an idle injector wired in) trains
  // bitwise identically to guards-off -- for ANY shape and partition, not
  // just the hand-picked unit-test config.
  util::Rng rng(GetParam());
  model::TinySpec spec;
  spec.layers = 2 + static_cast<int>(rng.next_below(3));
  spec.hidden = 8 * (1 + static_cast<int>(rng.next_below(2)));
  spec.heads = 2;
  spec.vocab = 16 + static_cast<int>(rng.next_below(32));
  spec.seq = 4;
  spec.seed = GetParam();

  model::TransformerModel probe(spec);
  const int stages = 2 + static_cast<int>(rng.next_below(2));
  std::vector<int> counts(static_cast<std::size_t>(stages), 1);
  for (int b = stages; b < probe.num_blocks(); ++b) {
    ++counts[rng.next_below(static_cast<std::uint64_t>(stages))];
  }

  runtime::TrainSessionOptions base;
  base.spec = spec;
  base.counts = counts;
  base.micro_batch = 2;
  base.num_micro_batches = stages + static_cast<int>(rng.next_below(3));

  runtime::TrainSessionOptions guarded = base;
  guarded.guard.handoff_crc = true;
  guarded.guard.nonfinite_checks = true;
  guarded.guard.weight_interval = 1 + static_cast<int>(rng.next_below(3));
  guarded.guard.norm_window = 2;

  constexpr int kSteps = 3;
  runtime::TrainSession off(base);
  runtime::TrainSession on(guarded);
  faults::SdcInjector idle;  // armed with nothing: pure hot-path presence
  on.run_options().sdc = &idle;
  for (int i = 0; i < kSteps; ++i) {
    off.step();
    on.step();
    EXPECT_EQ(off.losses().back(), on.losses().back()) << "step " << i;
  }
  const ckpt::TrainState a = off.capture();
  const ckpt::TrainState b = on.capture();
  EXPECT_TRUE(a.blocks == b.blocks);
  EXPECT_TRUE(a.data_rng == b.data_rng);
  EXPECT_EQ(a.adam_t, b.adam_t);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, GuardFuzz,
                         testing::Range<std::uint64_t>(700, 708));

}  // namespace
}  // namespace autopipe
