// Recovery suite (ctest label `faults`): StageFailure propagation in the
// thread runtime, transient retry, degraded re-planning, and the gradient
// atomicity of run_iteration_with_recovery.
#include <gtest/gtest.h>

#include <chrono>

#include "core/replan.h"
#include "faults/fault_plan.h"
#include "model/data.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/recovery.h"
#include "runtime/stage_failure.h"

namespace autopipe::runtime {
namespace {

/// Twin tiny models + one mini-batch; the single fixture every test shares.
struct Lab {
  model::TinySpec spec;
  model::TransformerModel ref, piped;
  model::Batch whole;
  std::vector<model::Batch> micro;
  double scale;
  double ref_loss;

  Lab()
      : spec(make_spec()),
        ref(spec),
        piped(spec),
        scale(1.0 / (4 * 6 * spec.seq)) {
    model::SyntheticCorpus corpus(spec.vocab);
    whole = corpus.next_batch(4 * 6, spec.seq);
    micro = model::SyntheticCorpus::split_micro_batches(whole, spec.seq, 4);
    ref.zero_grads();
    ref_loss = ref.reference_step(whole.ids, whole.targets, scale);
    piped.zero_grads();
  }

  static model::TinySpec make_spec() {
    model::TinySpec s;
    s.layers = 3;  // 8 blocks
    s.hidden = 16;
    s.heads = 2;
    s.vocab = 32;
    s.seq = 4;
    return s;
  }

  static costmodel::ModelConfig config() {
    const model::TinySpec t = make_spec();
    costmodel::ModelSpec spec;
    spec.name = "tiny";
    spec.num_layers = t.layers;
    spec.hidden = t.hidden;
    spec.heads = t.heads;
    spec.vocab = t.vocab;
    spec.default_seq = t.seq;
    spec.causal = t.causal;
    return costmodel::build_model_config(spec, {4, 0, true});
  }

  IterationResult run(const std::vector<int>& counts, const RunOptions& run) {
    PipelineRuntime rt(piped, counts);
    const auto schedule = rt.make_schedule(
        costmodel::ScheduleKind::OneFOneB, static_cast<int>(micro.size()));
    return rt.run_iteration(schedule, micro, scale, run);
  }
};

// ------------------------------------------------------ typed propagation

TEST(Recovery, EmptyFaultPlanMatchesLegacyPathBitIdentically) {
  Lab legacy, faulted;
  const auto a = legacy.run({2, 3, 3}, RunOptions{});
  faults::FaultPlan empty;
  RunOptions run;
  run.faults = &empty;
  const auto b = faulted.run({2, 3, 3}, run);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(b.transient_retries, 0);
  EXPECT_DOUBLE_EQ(legacy.piped.max_grad_diff(faulted.piped), 0.0);
}

TEST(Recovery, CrashSurfacesAsTypedFailureWithOriginDevice) {
  Lab lab;
  faults::FaultPlan plan;
  plan.crashes.push_back({2, std::numeric_limits<double>::infinity(), 1});
  RunOptions run;
  run.faults = &plan;
  try {
    lab.run({2, 3, 3}, run);
    FAIL() << "crashed iteration reported success";
  } catch (const StageFailure& e) {
    // The origin failure, not a PeerClosed echo from a neighbour.
    EXPECT_EQ(e.kind(), FailureKind::Crash);
    EXPECT_EQ(e.device(), 2);
  }
}

TEST(Recovery, TransientWithinBudgetIsAbsorbedInPlace) {
  Lab lab;
  faults::FaultPlan plan;
  plan.transients.push_back({1, 2, 2});  // fails twice, budget is 3
  RunOptions run;
  run.faults = &plan;
  run.backoff_base_ms = 0.01;
  const auto result = lab.run({2, 3, 3}, run);
  EXPECT_EQ(result.transient_retries, 2);
  EXPECT_NEAR(result.loss, lab.ref_loss, 1e-5);
  // The retried op re-runs the identical arithmetic: gradients are not
  // merely close to a fault-free run's, they are the same bits.
  Lab clean;
  clean.run({2, 3, 3}, RunOptions{});
  EXPECT_DOUBLE_EQ(clean.piped.max_grad_diff(lab.piped), 0.0);
}

TEST(Recovery, TransientBeyondBudgetEscalates) {
  Lab lab;
  faults::FaultPlan plan;
  plan.transients.push_back({1, 2, 9});  // budget is 3
  RunOptions run;
  run.faults = &plan;
  try {
    lab.run({2, 3, 3}, run);
    FAIL() << "over-budget transient did not escalate";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.kind(), FailureKind::Transient);
    EXPECT_EQ(e.device(), 1);
  }
}

// --------------------------------------------------------------- replan

TEST(Replan, DegradedPlanCoversSurvivors) {
  const auto cfg = Lab::config();
  core::AutoPipeOptions original;
  original.num_gpus = 3;
  original.global_batch = 24;
  original.enable_slicer = false;
  const auto replanned = core::replan_on_failure(cfg, original, 1);
  EXPECT_EQ(replanned.failed_device, 1);
  EXPECT_EQ(replanned.surviving_devices, 2);
  EXPECT_LE(replanned.result.plan.num_stages(), 2);
  EXPECT_GE(replanned.replan_ms, 0.0);
  int blocks = 0;
  for (int c : replanned.result.plan.partition.counts) blocks += c;
  EXPECT_EQ(blocks, cfg.num_blocks());
}

TEST(Replan, RejectsBadInputs) {
  const auto cfg = Lab::config();
  core::AutoPipeOptions one_gpu;
  one_gpu.num_gpus = 1;
  EXPECT_THROW(core::replan_on_failure(cfg, one_gpu, 0),
               std::invalid_argument);
  core::AutoPipeOptions three;
  three.num_gpus = 3;
  EXPECT_THROW(core::replan_on_failure(cfg, three, 3), std::invalid_argument);
  EXPECT_THROW(core::replan_on_failure(cfg, three, -1),
               std::invalid_argument);
}

// ------------------------------------------------------ gradient snapshot

TEST(Recovery, SnapshotRestoreRoundTrips) {
  Lab lab;
  lab.piped.zero_grads();
  lab.piped.reference_step(lab.whole.ids, lab.whole.targets, lab.scale);
  const auto snapshot = snapshot_grads(lab.piped);
  lab.piped.zero_grads();
  EXPECT_GT(lab.ref.max_grad_diff(lab.piped), 0.0);
  restore_grads(lab.piped, snapshot);
  EXPECT_DOUBLE_EQ(lab.ref.max_grad_diff(lab.piped), 0.0);

  model::TransformerModel other({});  // 2 layers: different shape
  EXPECT_THROW(restore_grads(other, snapshot), std::invalid_argument);
}

// ------------------------------------------------------------- recovery

TEST(Recovery, CrashReplansOntoSurvivorsWithExactGradients) {
  Lab lab;
  faults::FaultPlan plan;
  plan.crashes.push_back({1, std::numeric_limits<double>::infinity(), 3});
  RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.backoff_base_ms = 0.01;
  rec.plan = {3, 24, 0, false, 1};

  const auto t0 = std::chrono::steady_clock::now();
  const auto report = run_iteration_with_recovery(
      lab.piped, Lab::config(), {2, 3, 3}, lab.micro, lab.scale, rec);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.devices_used, 2);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts[0].ok);
  EXPECT_EQ(report.attempts[0].kind, FailureKind::Crash);
  EXPECT_EQ(report.attempts[0].failed_device, 1);
  EXPECT_TRUE(report.attempts[1].ok);
  EXPECT_EQ(report.attempts[1].devices, 2);
  EXPECT_GT(report.recovery_ms, 0.0);
  EXPECT_LE(report.recovery_ms, wall_ms + 1.0);
  EXPECT_LT(wall_ms, 5000.0) << "recovery took implausibly long";

  // Degraded operation trades throughput, never correctness: the recovered
  // gradients match the single-process reference...
  EXPECT_NEAR(report.result.loss, lab.ref_loss, 1e-5);
  EXPECT_LT(lab.ref.max_grad_diff(lab.piped), 1e-4);
  // ...and are bit-identical to a fresh fault-free run on the partition the
  // replanner chose (gradient atomicity: attempt 0's partial sums are gone).
  Lab fresh;
  fresh.run(report.final_counts, RunOptions{});
  EXPECT_DOUBLE_EQ(fresh.piped.max_grad_diff(lab.piped), 0.0);
}

TEST(Recovery, EscalatedTransientRetriesOnSameDevices) {
  Lab lab;
  faults::FaultPlan plan;
  plan.transients.push_back({1, 2, 9});  // beyond the in-place budget
  RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.backoff_base_ms = 0.01;
  rec.plan = {3, 24, 0, false, 1};
  const auto report = run_iteration_with_recovery(
      lab.piped, Lab::config(), {2, 3, 3}, lab.micro, lab.scale, rec);
  EXPECT_TRUE(report.recovered);
  EXPECT_FALSE(report.degraded);  // transient: same cluster, fault consumed
  EXPECT_EQ(report.devices_used, 3);
  EXPECT_EQ(report.final_counts, (std::vector<int>{2, 3, 3}));
  EXPECT_NEAR(report.result.loss, lab.ref_loss, 1e-5);
  Lab clean;
  clean.run({2, 3, 3}, RunOptions{});
  EXPECT_DOUBLE_EQ(clean.piped.max_grad_diff(lab.piped), 0.0);
}

TEST(Recovery, ExhaustedAttemptsRethrowWithGradientsRestored) {
  Lab lab;
  faults::FaultPlan plan;
  // Two devices die in sequence; with max_attempts = 2 the second crash
  // exhausts the budget mid-recovery.
  plan.crashes.push_back({1, std::numeric_limits<double>::infinity(), 3});
  plan.crashes.push_back({0, std::numeric_limits<double>::infinity(), 2});
  RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.max_attempts = 2;
  rec.backoff_base_ms = 0.01;
  rec.plan = {3, 24, 0, false, 1};
  EXPECT_THROW(run_iteration_with_recovery(lab.piped, Lab::config(),
                                           {2, 3, 3}, lab.micro, lab.scale,
                                           rec),
               StageFailure);
  // Atomicity on the failure path: the model's gradients are exactly the
  // pre-call state (zeroed), with no partial accumulation left behind.
  model::TransformerModel zeroed(Lab::make_spec());
  zeroed.zero_grads();
  EXPECT_DOUBLE_EQ(zeroed.max_grad_diff(lab.piped), 0.0);
}

TEST(Recovery, CascadingCrashesDegradeStepByStep) {
  Lab lab;
  faults::FaultPlan plan;
  plan.crashes.push_back({1, std::numeric_limits<double>::infinity(), 3});
  plan.crashes.push_back({0, std::numeric_limits<double>::infinity(), 2});
  RecoveryOptions rec;
  rec.run.faults = &plan;
  rec.backoff_base_ms = 0.01;
  rec.plan = {3, 24, 0, false, 1};
  const auto report = run_iteration_with_recovery(
      lab.piped, Lab::config(), {2, 3, 3}, lab.micro, lab.scale, rec);
  // 3 devices -> crash -> 2 devices -> crash (remapped fault) -> 1 device.
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.devices_used, 1);
  EXPECT_EQ(report.attempts.size(), 3u);
  EXPECT_NEAR(report.result.loss, lab.ref_loss, 1e-5);
  EXPECT_LT(lab.ref.max_grad_diff(lab.piped), 1e-4);
}

}  // namespace
}  // namespace autopipe::runtime
