#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/planner.h"
#include "util/thread_pool.h"

namespace autopipe::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ResultIndependentOfCompletionOrder) {
  // Tasks finish in arbitrary order; collecting futures by index must give
  // the same reduction as a serial loop.
  ThreadPool pool(8);
  std::vector<std::future<long>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return static_cast<long>(i) * 3; }));
  }
  long sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 3L * 200 * 199 / 2);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 1; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 1);  // one failing task does not poison the pool
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnceAndRethrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(&pool, 100, [&](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Inline fallback (no pool) behaves identically.
  std::vector<int> inline_hits(10, 0);
  parallel_for(nullptr, 10, [&](int i) { ++inline_hits[i]; });
  EXPECT_EQ(std::accumulate(inline_hits.begin(), inline_hits.end(), 0), 10);

  EXPECT_THROW(parallel_for(&pool, 8,
                            [](int i) {
                              if (i == 3) throw std::invalid_argument("x");
                            }),
               std::invalid_argument);
}

TEST(ThreadPool, ReusableAcrossPlanCalls) {
  // One pool serves successive plan() calls (the auto_plan depth-sweep
  // pattern) and keeps producing results identical to the serial planner.
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const core::PlannerResult serial = core::plan(cfg, 4, 8);

  ThreadPool pool(3);
  for (int call = 0; call < 3; ++call) {
    core::PlannerOptions opts;
    opts.pool = &pool;
    const core::PlannerResult r = core::plan(cfg, 4, 8, opts);
    EXPECT_EQ(r.partition.counts, serial.partition.counts) << "call " << call;
    EXPECT_EQ(r.sim.iteration_ms, serial.sim.iteration_ms) << "call " << call;
    EXPECT_EQ(r.evaluations, serial.evaluations) << "call " << call;
  }
  // The pool is still usable for plain tasks afterwards.
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, QueueDepthTracksBacklogNotRunningTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);

  // Park the single worker so later submissions stay queued.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto running = pool.submit([gate] { gate.wait(); });

  // Wait for the worker to pick the blocker up (it leaves the queue).
  while (pool.queue_depth() > 0) std::this_thread::yield();

  auto a = pool.submit([] { return 1; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(pool.queue_depth(), 2u);  // blocker runs, two wait

  release.set_value();
  EXPECT_EQ(a.get(), 1);
  EXPECT_EQ(b.get(), 2);
  running.get();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, TrySubmitShedsLoadAtTheBound) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto running = pool.submit([gate] { gate.wait(); });
  while (pool.queue_depth() > 0) std::this_thread::yield();

  // Bound 2: two queued tasks are admitted, the third is shed without
  // being enqueued (and without disturbing the admitted ones).
  auto a = pool.try_submit([] { return 10; }, 2);
  auto b = pool.try_submit([] { return 20; }, 2);
  auto rejected = pool.try_submit([] { return 30; }, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(pool.queue_depth(), 2u);

  // max_queue 0 rejects everything while the pool is saturated.
  EXPECT_FALSE(pool.try_submit([] { return 0; }, 0).has_value());

  release.set_value();
  EXPECT_EQ(a->get(), 10);
  EXPECT_EQ(b->get(), 20);
  running.get();

  // Once drained, try_submit admits again.
  auto after = pool.try_submit([] { return 40; }, 2);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->get(), 40);
}

TEST(ThreadPool, ResolveThreadsConvention) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(5), 5);
  EXPECT_EQ(resolve_threads(-2), 1);
  EXPECT_GE(resolve_threads(0), 1);  // auto = hardware concurrency
}

}  // namespace
}  // namespace autopipe::util
