#include <gtest/gtest.h>

#include "sim/event_engine.h"

namespace autopipe::sim {
namespace {

TEST(TaskGraph, EmptyGraph) {
  TaskGraph g;
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.makespan_ms, 0.0);
  EXPECT_TRUE(t.start_ms.empty());
}

TEST(TaskGraph, ChainAccumulates) {
  TaskGraph g;
  const int a = g.add_task(2.0);
  const int b = g.add_task(3.0);
  const int c = g.add_task(1.0);
  g.add_dep(a, b, 0.5);
  g.add_dep(b, c, 0.0);
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.start_ms[a], 0.0);
  EXPECT_DOUBLE_EQ(t.start_ms[b], 2.5);
  EXPECT_DOUBLE_EQ(t.start_ms[c], 5.5);
  EXPECT_DOUBLE_EQ(t.makespan_ms, 6.5);
  EXPECT_EQ(t.binding_pred[c], b);
  EXPECT_EQ(t.binding_pred[a], -1);
}

TEST(TaskGraph, DiamondTakesLongestPath) {
  TaskGraph g;
  const int src = g.add_task(1.0);
  const int fast = g.add_task(1.0);
  const int slow = g.add_task(5.0);
  const int sink = g.add_task(1.0);
  g.add_dep(src, fast);
  g.add_dep(src, slow);
  g.add_dep(fast, sink);
  g.add_dep(slow, sink);
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.start_ms[sink], 6.0);
  EXPECT_EQ(t.binding_pred[sink], slow);
}

TEST(TaskGraph, IndependentTasksStartAtZero) {
  TaskGraph g;
  const int a = g.add_task(4.0);
  const int b = g.add_task(2.0);
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.start_ms[a], 0.0);
  EXPECT_DOUBLE_EQ(t.start_ms[b], 0.0);
  EXPECT_DOUBLE_EQ(t.makespan_ms, 4.0);
}

TEST(TaskGraph, DetectsCycle) {
  TaskGraph g;
  const int a = g.add_task(1.0);
  const int b = g.add_task(1.0);
  g.add_dep(a, b);
  g.add_dep(b, a);
  EXPECT_THROW(g.run(), std::logic_error);
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g;
  const int a = g.add_task(1.0);
  EXPECT_THROW(g.add_dep(a, a), std::logic_error);
  EXPECT_THROW(g.add_dep(a, 7), std::logic_error);
  EXPECT_THROW(g.add_dep(-1, a), std::logic_error);
}

TEST(TaskGraph, SetDurationChangesSchedule) {
  TaskGraph g;
  const int a = g.add_task(1.0);
  const int b = g.add_task(1.0);
  g.add_dep(a, b);
  g.set_duration(a, 10.0);
  EXPECT_DOUBLE_EQ(g.duration(a), 10.0);
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.start_ms[b], 10.0);
}

TEST(TaskGraph, LagsAreAdditivePerEdge) {
  TaskGraph g;
  const int a = g.add_task(1.0);
  const int b = g.add_task(1.0);
  g.add_dep(a, b, 2.0);
  g.add_dep(a, b, 5.0);  // two parallel edges; the bigger lag binds
  const auto t = g.run();
  EXPECT_DOUBLE_EQ(t.start_ms[b], 6.0);
}

}  // namespace
}  // namespace autopipe::sim
