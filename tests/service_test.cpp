// Plan-service tests: wire-protocol parsing, the served-equals-offline
// determinism contract, history and shared-memo reuse, admission control,
// the unix-socket transport, and a seeded concurrent request storm (the
// TSan target for the daemon's cross-request state).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "service/plan_service.h"
#include "service/protocol.h"
#include "service/server.h"

namespace autopipe::service {
namespace {

// ------------------------------------------------------------- protocol

TEST(ServiceProtocol, ParsesFullPlanLine) {
  const ParsedLine p = parse_line(
      "plan id=req-7 model=gpt2-345m mbs=2 seq=512 recompute=0 gpus=8 "
      "gbs=128 stages=4 slicer=0 source=cache warm=3,4,5 "
      "perturb=0:1.5:2,3:0.9:0.9");
  ASSERT_TRUE(p.error.empty()) << p.error;
  ASSERT_EQ(p.verb, Verb::Plan);
  const PlanRequest& r = p.request;
  EXPECT_EQ(r.id, "req-7");
  EXPECT_EQ(r.model, "gpt2-345m");
  EXPECT_EQ(r.micro_batch, 2);
  EXPECT_EQ(r.seq_len, 512);
  EXPECT_FALSE(r.recompute);
  EXPECT_EQ(r.gpus, 8);
  EXPECT_EQ(r.global_batch, 128);
  EXPECT_EQ(r.stages, 4);
  EXPECT_FALSE(r.slicer);
  EXPECT_EQ(r.source, "cache");
  EXPECT_EQ(r.warm, "3,4,5");
  ASSERT_EQ(r.perturbs.size(), 2u);
  EXPECT_EQ(r.perturbs[0].block, 0);
  EXPECT_DOUBLE_EQ(r.perturbs[0].fwd, 1.5);
  EXPECT_EQ(r.perturbs[1].block, 3);
  EXPECT_DOUBLE_EQ(r.perturbs[1].bwd, 0.9);
}

TEST(ServiceProtocol, ParsesBareVerbs) {
  EXPECT_EQ(parse_line("ping").verb, Verb::Ping);
  EXPECT_EQ(parse_line("  stats  ").verb, Verb::Stats);
  EXPECT_EQ(parse_line("shutdown").verb, Verb::Shutdown);
}

TEST(ServiceProtocol, RejectsMalformedLines) {
  // A daemon must survive arbitrary input: every rejection is a parse
  // error naming the offending token, never a throw.
  const char* bad[] = {
      "replan model=gpt2-345m",              // unknown verb
      "plan model=gpt2-345m speed=fast",     // unknown key
      "plan gpus=4",                         // plan needs a model
      "plan model=gpt2-345m mbs=banana",     // malformed int
      "plan model=gpt2-345m gpus=0",         // out of range
      "plan model=gpt2-345m warm=1,x",       // malformed warm counts
      "plan model=gpt2-345m perturb=0:1",    // malformed perturb triple
      "plan model=gpt2-345m perturb=0:0:1",  // non-positive factor
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_line(line).error.empty()) << line;
  }
}

TEST(ServiceProtocol, CanonicalRequestExcludesIdAndNormalizes) {
  ParsedLine a = parse_line("plan id=1 model=gpt2-345m gpus=4 gbs=64");
  ParsedLine b = parse_line("plan id=2 gbs=64 gpus=4 model=gpt2-345m");
  ASSERT_TRUE(a.error.empty() && b.error.empty());
  // Same request under different ids and key order -> same fingerprint.
  EXPECT_EQ(canonical_request(a.request), canonical_request(b.request));
  // The family key drops the timing content (perturb/warm) but the
  // fingerprint keeps it.
  ParsedLine c =
      parse_line("plan id=3 model=gpt2-345m gpus=4 gbs=64 perturb=1:1.1:1.1");
  ASSERT_TRUE(c.error.empty());
  EXPECT_EQ(family_key(a.request), family_key(c.request));
  EXPECT_NE(canonical_request(a.request), canonical_request(c.request));
}

TEST(ServiceProtocol, CanonicalPartAndWarmHintRoundTrip) {
  const std::string line = "ok id=1 model=x warm=20,19,19 iter_ms=1 # src=planned";
  EXPECT_EQ(canonical_part(line), "ok id=1 model=x warm=20,19,19 iter_ms=1");
  EXPECT_EQ(canonical_part("ok id=1 warm=-"), "ok id=1 warm=-");
  EXPECT_EQ(parse_warm_hint(line), (std::vector<int>{20, 19, 19}));
  EXPECT_TRUE(parse_warm_hint("ok id=1 warm=- iter_ms=1").empty());
  EXPECT_TRUE(parse_warm_hint("pong").empty());
}

// ----------------------------------------------- service determinism

ServiceOptions small_service() {
  ServiceOptions opts;
  opts.workers = 2;
  opts.max_queue = 64;
  return opts;
}

TEST(Service, ServedMatchesOfflineByteForByte) {
  // The determinism contract: a daemon's canonical response equals the
  // fresh-process offline replay of the same request, byte for byte.
  PlanService service(small_service());
  const std::string line =
      "plan id=42 model=gpt2-345m gpus=4 gbs=64 warm=off";
  const std::string served = service.handle_line(line);
  ASSERT_EQ(served.rfind("ok id=42 ", 0), 0u) << served;

  const ParsedLine parsed = parse_line(line);
  ASSERT_TRUE(parsed.error.empty());
  EXPECT_EQ(canonical_part(served), offline_response(parsed.request));
}

TEST(Service, RepeatRequestServedFromHistory) {
  PlanService service(small_service());
  const std::string line =
      "plan id=1 model=gpt2-345m gpus=4 gbs=64 warm=off";
  const std::string first = service.handle_line(line);
  const std::string again =
      service.handle_line("plan id=2 model=gpt2-345m gpus=4 gbs=64 warm=off");
  ASSERT_EQ(again.rfind("ok id=2 ", 0), 0u) << again;
  EXPECT_NE(again.find(" # src=history"), std::string::npos) << again;
  // Identical canonical content, re-served under the new id.
  EXPECT_EQ(canonical_part(first).substr(std::strlen("ok id=1 ")),
            canonical_part(again).substr(std::strlen("ok id=2 ")));
  EXPECT_EQ(service.stats().history_hits, 1);
}

TEST(Service, MemoPoolSharedAcrossDistinctRequests) {
  // Two requests with different fingerprints but the same (config, m)
  // reuse the shared simulation memo: the second search runs zero new
  // simulations.
  PlanService service(small_service());
  const std::string first = service.handle_line(
      "plan id=1 model=gpt2-345m gpus=4 gbs=64 warm=off slicer=1");
  ASSERT_EQ(first.rfind("ok ", 0), 0u) << first;
  const std::string second = service.handle_line(
      "plan id=2 model=gpt2-345m gpus=4 gbs=64 warm=off slicer=0");
  ASSERT_EQ(second.rfind("ok ", 0), 0u) << second;
  EXPECT_NE(second.find(" # src=planned"), std::string::npos) << second;
  EXPECT_NE(second.find(" sims=0 "), std::string::npos) << second;

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.planned, 2);
  EXPECT_GT(stats.memo_lookups, 0);
  EXPECT_GT(stats.memo_pool, 0u);
}

TEST(Service, ExplicitWarmHintIsEchoedInCanonicalResponse) {
  PlanService service(small_service());
  const std::string cold = service.handle_line(
      "plan id=1 model=gpt2-345m gpus=4 gbs=64 stages=2 warm=off");
  ASSERT_EQ(cold.rfind("ok ", 0), 0u) << cold;
  // Re-request with the served counts as an explicit warm hint; the hint
  // must be echoed so the offline replay can reproduce the bytes.
  std::string counts;
  const std::string counts_key = " counts=";
  const auto pos = cold.find(counts_key);
  ASSERT_NE(pos, std::string::npos);
  counts = cold.substr(pos + counts_key.size(),
                       cold.find(' ', pos + counts_key.size()) -
                           (pos + counts_key.size()));
  const std::string line = "plan id=2 model=gpt2-345m gpus=4 gbs=64 stages=2 "
                           "warm=" + counts;
  const std::string warm = service.handle_line(line);
  ASSERT_EQ(warm.rfind("ok ", 0), 0u) << warm;
  EXPECT_NE(warm.find(" warm=" + counts + " "), std::string::npos) << warm;

  const ParsedLine parsed = parse_line(line);
  ASSERT_TRUE(parsed.error.empty());
  EXPECT_EQ(canonical_part(warm),
            offline_response(parsed.request, parse_warm_hint(warm)));
}

TEST(Service, ErrorsAreRepliesNotThrows) {
  PlanService service(small_service());
  EXPECT_EQ(service.handle_line("ping"), "pong");
  // Unknown model parses fine but fails at config construction.
  const std::string bad_model =
      service.handle_line("plan id=9 model=no-such-model");
  EXPECT_EQ(bad_model.rfind("error id=9 ", 0), 0u) << bad_model;
  // Malformed line fails at parse (default id).
  const std::string bad_key = service.handle_line("plan model=gpt2-345m x=1");
  EXPECT_EQ(bad_key.rfind("error id=0 ", 0), 0u) << bad_key;
  EXPECT_EQ(service.stats().errors, 2);
  // stats is a single self-describing line.
  EXPECT_EQ(service.handle_line("stats").rfind("stats requests=", 0), 0u);
  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle_line("shutdown"), "bye");
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(Service, AdmissionControlShedsAtZeroQueue) {
  // max_queue=0 is the degenerate admission bound: every plan request is
  // shed with a `busy` reply, while the cheap verbs keep answering.
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_queue = 0;
  PlanService service(opts);
  const std::string reply =
      service.handle_line("plan id=5 model=gpt2-345m gpus=4 gbs=64");
  EXPECT_EQ(reply.rfind("busy id=5 queue=", 0), 0u) << reply;
  EXPECT_EQ(service.handle_line("ping"), "pong");
  EXPECT_EQ(service.stats().busy_rejected, 1);
  EXPECT_EQ(service.stats().planned, 0);
}

// ------------------------------------------------------ unix socket

int connect_retry(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd >= 0 && ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) == 0) {
      return fd;
    }
    if (fd >= 0) ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

void send_all(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    ASSERT_GT(n, 0);
    done += static_cast<std::size_t>(n);
  }
}

std::string recv_line(int fd) {
  std::string out;
  char c;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return out;
    out.push_back(c);
  }
  return out;
}

TEST(Service, UnixSocketTransportServesAndShutsDown) {
  const std::string path = testing::TempDir() + "/ap-service-test.sock";
  ::unlink(path.c_str());

  PlanService service(small_service());
  ServerOptions server_opts;
  server_opts.stdio = false;
  server_opts.socket_path = path;
  PlanServer server(service, server_opts);
  std::atomic<int> rc{-1};
  std::thread daemon([&] { rc = server.run(); });

  const int fd = connect_retry(path);
  ASSERT_GE(fd, 0) << "could not connect to " << path;
  send_all(fd, "ping\n");
  EXPECT_EQ(recv_line(fd), "pong");

  const std::string line = "plan id=s1 model=gpt2-345m gpus=4 gbs=64 warm=off";
  send_all(fd, line + "\n");
  const std::string served = recv_line(fd);
  ASSERT_EQ(served.rfind("ok id=s1 ", 0), 0u) << served;
  EXPECT_EQ(canonical_part(served),
            offline_response(parse_line(line).request));

  send_all(fd, "shutdown\n");
  EXPECT_EQ(recv_line(fd), "bye");
  ::close(fd);
  daemon.join();
  EXPECT_EQ(rc.load(), 0);
}

// -------------------------------------------------- concurrent storm

TEST(Service, SeededStormDeterministicUnderConcurrency) {
  // Many client threads hammer one service with a seeded request mix
  // (cold, auto-warm, explicit-warm, perturbed). Every `ok` response must
  // byte-match its offline replay regardless of interleaving -- the proof
  // that the shared memo pool, plan history and warm-start machinery are
  // behaviour-neutral under concurrency. Run under TSan in CI.
  ServiceOptions opts;
  opts.workers = 4;
  opts.max_queue = 1024;  // no shedding: every request must be served
  PlanService service(opts);

  constexpr int kThreads = 8;
  constexpr int kRequests = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937 rng(1234u + static_cast<unsigned>(t));
      const char* models[] = {"gpt2-345m", "gpt2-762m"};
      const char* warms[] = {"off", "auto", "auto"};
      for (int i = 0; i < kRequests; ++i) {
        std::string line = "plan id=t" + std::to_string(t) + "." +
                           std::to_string(i) +
                           " model=" + models[rng() % 2] +
                           " gpus=4 gbs=64 stages=2 warm=" + warms[rng() % 3];
        if (rng() % 2 == 0) {
          const int block = static_cast<int>(rng() % 8);
          const int pct = 95 + static_cast<int>(rng() % 11);  // 0.95..1.05
          line += " perturb=" + std::to_string(block) + ":" +
                  std::to_string(pct / 100.0) + ":" +
                  std::to_string(pct / 100.0);
        }
        const std::string served = service.handle_line(line);
        if (served.rfind("ok ", 0) != 0) {
          failures.fetch_add(1);
          ADD_FAILURE() << "unexpected reply: " << served;
          continue;
        }
        const ParsedLine parsed = parse_line(line);
        const std::string offline = offline_response(
            parsed.request, parse_warm_hint(served));
        if (canonical_part(served) != offline) {
          mismatches.fetch_add(1);
          ADD_FAILURE() << "served : " << canonical_part(served)
                        << "\noffline: " << offline;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * kRequests);
  EXPECT_EQ(stats.busy_rejected, 0);
  EXPECT_EQ(stats.errors, 0);
  // The storm repeats fingerprints across threads, so some requests must
  // have been served from history and the rest planned.
  EXPECT_EQ(stats.planned + stats.history_hits, kThreads * kRequests);
  EXPECT_GT(stats.history_hits, 0);
}

}  // namespace
}  // namespace autopipe::service
