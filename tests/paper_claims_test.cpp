// Golden-shape regression tests pinning the paper claims indexed in
// DESIGN.md §4, so perf refactors of the search can't silently break paper
// fidelity. These pin *shapes* (orderings, directions), not absolute
// numbers -- absolute timings move with hardware, the relationships must
// not.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "core/autopipe.h"
#include "core/planner.h"
#include "core/schedule.h"
#include "planners/dapple.h"
#include "planners/piper.h"
#include "sim/executor.h"

namespace autopipe {
namespace {

/// The seven hand-picked GPT-2 345M partition schemes of Table II
/// (transformer layers per stage, 0.5 = half a layer).
const std::vector<std::vector<double>> kTableTwoSchemes{
    {5, 7, 6, 6},         {6, 6.5, 6.5, 5},  {6, 7, 6, 5},
    {6.5, 6.5, 6.5, 4.5}, {6.5, 6.5, 6, 5},  {7, 5.5, 6, 5.5},
    {7, 6.5, 5.5, 5}};

TEST(PaperClaims, TableTwoSchemeOrderingUnderSimulator) {
  // Fig. 11's acceptance criterion for planning on simulated times: the
  // simulator must rank the Table II schemes the same way the "actual run"
  // (event executor with launch overheads) does, with a stable gap.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_345m(),
                                                 {4, 0, true});
  const int m = 8;
  sim::ExecOptions opts;
  opts.per_op_overhead_ms = cfg.device.kernel_launch_ms;  // no jitter

  std::vector<double> simulated, actual;
  for (const auto& layers : kTableTwoSchemes) {
    const auto p = core::partition_from_layers(cfg, layers);
    simulated.push_back(core::simulate_pipeline(cfg, p, m).iteration_ms / m);
    const auto costs = core::stage_costs(cfg, p);
    actual.push_back(
        sim::execute(core::build_1f1b(costs, m, cfg.comm_ms), opts)
            .iteration_ms /
        m);
  }

  // Shape 1: the balanced sub-layer scheme 4 {6.5, 6.5, 6.5, 4.5} is the
  // fastest of the seven and the layer-aligned scheme 1 {5, 7, 6, 6} the
  // slowest, under both timers.
  for (const auto& times : {simulated, actual}) {
    EXPECT_EQ(std::min_element(times.begin(), times.end()) - times.begin(), 3);
    EXPECT_EQ(std::max_element(times.begin(), times.end()) - times.begin(), 0);
  }

  // Shape 2: every meaningfully separated pair (several schemes tie under
  // the simulator) is ordered the same way by simulator and executor.
  for (std::size_t a = 0; a < simulated.size(); ++a) {
    for (std::size_t b = a + 1; b < simulated.size(); ++b) {
      if (std::abs(simulated[a] - simulated[b]) < 1.0) continue;
      EXPECT_EQ(simulated[a] < simulated[b], actual[a] < actual[b])
          << "schemes " << a + 1 << " vs " << b + 1;
    }
  }

  // Shape 3: the gap is stable -- within 1% of the simulated time for
  // every scheme (Fig. 11's "stable bias").
  for (std::size_t i = 0; i < simulated.size(); ++i) {
    EXPECT_LT(std::abs(actual[i] - simulated[i]), simulated[i] * 0.01)
        << "scheme " << i + 1;
  }

  // Shape 4: the Planner's own 4-stage scheme is at least as fast as the
  // best hand scheme of Table II (it searches the same sub-layer space).
  const auto planned = core::plan(cfg, 4, m);
  EXPECT_LE(planned.sim.iteration_ms / m,
            *std::min_element(simulated.begin(), simulated.end()) + 1e-9);
}

TEST(PaperClaims, FigTwelveSearchTimeOrdering) {
  // Fig. 12: AutoPipe searches orders of magnitude faster than Piper, and
  // Piper no slower than DAPPLE (whose placement dimension is the largest
  // space). Wall-clock ordering with best-of-k minima to shrug off
  // scheduler noise; all planners serial so the comparison is apples to
  // apples.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_345m(),
                                                 {8, 0, true});
  const int gpus = 16;
  auto best_of = [](int k, auto&& run) {
    double best = run();
    for (int i = 1; i < k; ++i) best = std::min(best, run());
    return best;
  };
  const double dapple = best_of(2, [&] {
    return planners::dapple_plan(cfg, gpus, {8, 4, 512}).planning_ms;
  });
  const double piper = best_of(2, [&] {
    return planners::piper_plan(cfg, gpus, {8, 512}).planning_ms;
  });
  const double autopipe = best_of(3, [&] {
    return core::auto_plan(cfg, {gpus, 512, 0, true}).plan.planning_ms;
  });

  EXPECT_LT(autopipe * 10, piper)
      << "paper: AutoPipe plans >= 10x faster than Piper";
  EXPECT_LT(piper, dapple)
      << "paper: DAPPLE's placement search is the slowest";
}

TEST(PaperClaims, FigThirteenBalanceImprovementDirection) {
  // Fig. 13: AutoPipe's sub-layer partitioning improves balance (population
  // stddev of per-stage time) several-fold over both layer-granularity
  // baselines, at 4 and 8 GPUs (GPT-2 345M, micro-batch 32).
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_345m(),
                                                 {32, 0, true});
  for (int gpus : {4, 8}) {
    const auto dapple = core::evaluate_plan(
        cfg, planners::dapple_plan(cfg, gpus, {8, 4, 512}), 512);
    const auto piper = core::evaluate_plan(
        cfg, planners::piper_plan(cfg, gpus, {8, 512}), 512);
    const auto ours =
        core::auto_plan(cfg, {gpus, 512, 0, true}).evaluation;
    EXPECT_LT(ours.balance_stddev_ms * 2, dapple.balance_stddev_ms)
        << gpus << " GPUs";
    EXPECT_LT(ours.balance_stddev_ms * 2, piper.balance_stddev_ms)
        << gpus << " GPUs";
  }
}

}  // namespace
}  // namespace autopipe
