#include <gtest/gtest.h>

#include "core/autopipe.h"
#include "planners/megatron.h"

namespace autopipe::core {
namespace {

ModelConfig gpt2(int mbs) {
  return costmodel::build_model_config(costmodel::gpt2_345m(), {mbs, 0, true});
}

// ----------------------------------------------------------- evaluate_plan

TEST(EvaluatePlan, UniformDpSplitsMicroBatches) {
  const auto cfg = gpt2(4);
  ParallelPlan dp1, dp4;
  dp1.partition.counts = {cfg.num_blocks()};
  dp1.uniform_dp = true;
  dp1.data_parallel = 1;
  dp4 = dp1;
  dp4.data_parallel = 4;
  const auto e1 = evaluate_plan(cfg, dp1, 128);
  const auto e4 = evaluate_plan(cfg, dp4, 128);
  // 4-way data parallelism is ~4x faster minus all-reduce overhead.
  EXPECT_GT(e1.iteration_ms / e4.iteration_ms, 3.0);
  EXPECT_LT(e1.iteration_ms / e4.iteration_ms, 4.0);
}

TEST(EvaluatePlan, ShardedReplicaRuntimeError) {
  const auto cfg = gpt2(4);
  ParallelPlan plan;
  plan.uniform_dp = false;
  plan.shard_micro_batches = true;
  plan.partition.counts = {25, 25};
  plan.stage_devices = {8, 8};  // 8 replicas > micro-batch size 4
  const auto ev = evaluate_plan(cfg, plan, 128);
  EXPECT_TRUE(ev.runtime_error);
  EXPECT_NE(ev.note.find("replicas"), std::string::npos);
}

TEST(EvaluatePlan, WholeMicroBatchReplicasNeverError) {
  const auto cfg = gpt2(4);
  ParallelPlan plan;
  plan.uniform_dp = false;
  plan.shard_micro_batches = false;
  plan.partition.counts = {25, 25};
  plan.stage_devices = {8, 8};
  const auto ev = evaluate_plan(cfg, plan, 128);
  EXPECT_FALSE(ev.runtime_error);
}

TEST(EvaluatePlan, LumpySharding) {
  // 3 replicas of a stage sharding micro-batches of 4 samples leave
  // ceil(4/3)=2 samples on the slowest replica: worse than the smooth 4/2
  // of 2 replicas relative to their cost.
  const auto cfg = gpt2(4);
  ParallelPlan three, two;
  three.uniform_dp = two.uniform_dp = false;
  three.partition.counts = two.partition.counts = {25, 25};
  three.stage_devices = {3, 3};  // 6 GPUs
  two.stage_devices = {2, 2};    // 4 GPUs
  const auto e3 = evaluate_plan(cfg, three, 128);
  const auto e2 = evaluate_plan(cfg, two, 128);
  // 1.5x the devices but sharding lumpiness eats the gain entirely.
  EXPECT_GT(e3.iteration_ms, e2.iteration_ms * 0.95);
}

TEST(EvaluatePlan, OomDetection) {
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                 {32, 0, true});
  ParallelPlan plan;
  plan.partition.counts = {cfg.num_blocks()};
  plan.uniform_dp = true;
  plan.data_parallel = 4;
  const auto ev = evaluate_plan(cfg, plan, 512);
  EXPECT_TRUE(ev.oom);
  EXPECT_NE(ev.note.find("GiB"), std::string::npos);
}

TEST(EvaluatePlan, BalanceMetricUsesUnscaledLoads) {
  const auto cfg = gpt2(4);
  ParallelPlan plan;
  plan.uniform_dp = false;
  plan.partition.counts = {15, 35};
  plan.stage_devices = {1, 3};
  const auto ev = evaluate_plan(cfg, plan, 128);
  ASSERT_EQ(ev.stage_loads_ms.size(), 2u);
  EXPECT_GT(ev.stage_loads_ms[1], ev.stage_loads_ms[0]);
  EXPECT_GT(ev.balance_stddev_ms, 0.0);
}

TEST(EvaluatePlan, MoreMicroBatchesAmortizeBubbles) {
  const auto cfg = gpt2(4);
  ParallelPlan plan;
  plan.partition.counts = {25, 25};
  plan.uniform_dp = true;
  plan.data_parallel = 1;
  const auto small = evaluate_plan(cfg, plan, 32);   // 8 micro-batches
  const auto large = evaluate_plan(cfg, plan, 128);  // 32 micro-batches
  // Per-sample cost shrinks as bubbles amortize.
  EXPECT_LT(large.iteration_ms / 128.0, small.iteration_ms / 32.0);
}

// --------------------------------------------------------------- auto_plan

TEST(AutoPlan, LowMemoryPicksPureDataParallelism) {
  const auto cfg = gpt2(4);
  const auto r = auto_plan(cfg, {4, 128, 0, true});
  EXPECT_EQ(r.plan.num_stages(), 1);
  EXPECT_EQ(r.plan.data_parallel, 4);
  EXPECT_EQ(r.slicing.sliced_micro_batches, 0);  // nothing to slice
}

TEST(AutoPlan, HighMemoryAdoptsPipelineParallelism) {
  const auto cfg = gpt2(32);
  const auto r = auto_plan(cfg, {4, 512, 0, true});
  EXPECT_GE(r.plan.num_stages(), 2);
  EXPECT_EQ(r.plan.num_stages() * r.plan.data_parallel, 4);
  EXPECT_FALSE(r.evaluation.oom);
  EXPECT_GE(r.slicing.sliced_micro_batches, 1);
  EXPECT_EQ(r.schedule.kind, costmodel::ScheduleKind::AutoPipeSliced);
  EXPECT_NO_THROW(validate(r.schedule));
}

TEST(AutoPlan, ForcedStagesHonored) {
  const auto cfg = gpt2(4);
  const auto r = auto_plan(cfg, {8, 256, 4, true});
  EXPECT_EQ(r.plan.num_stages(), 4);
  EXPECT_EQ(r.plan.data_parallel, 2);
}

TEST(AutoPlan, SlicerCanBeDisabled) {
  const auto cfg = gpt2(4);
  const auto r = auto_plan(cfg, {8, 256, 4, false});
  EXPECT_EQ(r.slicing.sliced_micro_batches, 0);
  EXPECT_EQ(r.schedule.kind, costmodel::ScheduleKind::OneFOneB);
}

TEST(AutoPlan, BeatsMegatronUniformPlan) {
  // The headline comparison of Figs. 9/10, at the plan level.
  const auto cfg = gpt2(8);
  const auto ours = auto_plan(cfg, {4, 256, 4, true});
  const auto megatron = planners::megatron_plan(cfg, 4, 4);
  const auto theirs = evaluate_plan(cfg, megatron, 256);
  EXPECT_LT(ours.evaluation.iteration_ms, theirs.iteration_ms);
}

TEST(AutoPlan, ThrowsWhenNothingFits) {
  // One GPU cannot hold GPT-2 1.3B at micro-batch 32 under any depth.
  const auto cfg = costmodel::build_model_config(costmodel::gpt2_1_3b(),
                                                 {32, 0, true});
  EXPECT_THROW(auto_plan(cfg, {1, 512, 0, true}), std::runtime_error);
}

TEST(AutoPlan, PlanningTimeIsRecorded) {
  const auto cfg = gpt2(4);
  const auto r = auto_plan(cfg, {8, 256, 0, true});
  EXPECT_GT(r.plan.planning_ms, 0.0);
}

TEST(ParallelPlanHelpers, TotalDevices) {
  ParallelPlan plan;
  plan.partition.counts = {1, 1};
  plan.uniform_dp = true;
  plan.data_parallel = 3;
  EXPECT_EQ(plan.total_devices(), 6);
  plan.uniform_dp = false;
  plan.stage_devices = {1, 5};
  EXPECT_EQ(plan.total_devices(), 6);
}

}  // namespace
}  // namespace autopipe::core
