#include <gtest/gtest.h>

#include <sstream>

#include "core/planner.h"
#include "costmodel/config_io.h"

namespace autopipe::costmodel {
namespace {

ModelConfig sample() {
  return build_model_config(gpt2_345m(), {4, 0, true});
}

TEST(ConfigIo, RoundTripPreservesEverything) {
  const ModelConfig original = sample();
  std::stringstream buffer;
  save_model_config(original, buffer);
  const ModelConfig loaded = load_model_config(buffer);

  EXPECT_EQ(loaded.spec.name, original.spec.name);
  EXPECT_EQ(loaded.spec.num_layers, original.spec.num_layers);
  EXPECT_EQ(loaded.spec.vocab, original.spec.vocab);
  EXPECT_EQ(loaded.spec.causal, original.spec.causal);
  EXPECT_EQ(loaded.train.micro_batch_size, original.train.micro_batch_size);
  EXPECT_EQ(loaded.train.recompute, original.train.recompute);
  EXPECT_DOUBLE_EQ(loaded.device.matmul_tflops, original.device.matmul_tflops);
  EXPECT_DOUBLE_EQ(loaded.device.mem_capacity_bytes,
                   original.device.mem_capacity_bytes);
  EXPECT_DOUBLE_EQ(loaded.link.bandwidth_gbps, original.link.bandwidth_gbps);
  EXPECT_DOUBLE_EQ(loaded.comm_ms, original.comm_ms);
  ASSERT_EQ(loaded.blocks.size(), original.blocks.size());
  for (std::size_t i = 0; i < loaded.blocks.size(); ++i) {
    EXPECT_EQ(loaded.blocks[i].name, original.blocks[i].name) << i;
    EXPECT_EQ(loaded.blocks[i].kind, original.blocks[i].kind) << i;
    EXPECT_DOUBLE_EQ(loaded.blocks[i].fwd_ms, original.blocks[i].fwd_ms) << i;
    EXPECT_DOUBLE_EQ(loaded.blocks[i].bwd_ms, original.blocks[i].bwd_ms) << i;
    EXPECT_DOUBLE_EQ(loaded.blocks[i].stash_bytes,
                     original.blocks[i].stash_bytes)
        << i;
    EXPECT_DOUBLE_EQ(loaded.blocks[i].layer_units,
                     original.blocks[i].layer_units)
        << i;
  }
}

TEST(ConfigIo, LoadedConfigDrivesThePlannerIdentically) {
  const ModelConfig original = sample();
  std::stringstream buffer;
  save_model_config(original, buffer);
  const ModelConfig loaded = load_model_config(buffer);
  const auto a = core::plan(original, 4, 8);
  const auto b = core::plan(loaded, 4, 8);
  EXPECT_EQ(a.partition.counts, b.partition.counts);
  EXPECT_DOUBLE_EQ(a.sim.iteration_ms, b.sim.iteration_ms);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/autopipe_config_test.cfg";
  ASSERT_TRUE(save_model_config(sample(), path));
  const ModelConfig loaded = load_model_config_file(path);
  EXPECT_EQ(loaded.num_blocks(), sample().num_blocks());
  EXPECT_THROW(load_model_config_file("/nonexistent/x.cfg"),
               std::runtime_error);
}

TEST(ConfigIo, NamesWithSpacesSurvive) {
  ModelConfig cfg = sample();
  cfg.spec.name = "GPT-2 345M tuned";
  std::stringstream buffer;
  save_model_config(cfg, buffer);
  EXPECT_EQ(load_model_config(buffer).spec.name, "GPT-2 345M tuned");
}

TEST(ConfigIo, RejectsMalformedInput) {
  auto expect_reject = [](const std::string& text) {
    std::stringstream in(text);
    EXPECT_THROW(load_model_config(in), std::runtime_error) << text;
  };
  expect_reject("");  // no header
  expect_reject("# autopipe-model-config v1\n");  // nothing else
  expect_reject("# autopipe-model-config v1\nbogus directive\n");
  expect_reject(
      "# autopipe-model-config v1\n"
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4 causal=1 extra=1\n");
  expect_reject(
      "# autopipe-model-config v1\n"
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4\n");  // missing key
  expect_reject(
      "# autopipe-model-config v1\n"
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4 causal=1\n"
      "comm_ms 0.5\n"
      "block b kind=Quantum fwd_ms=1 bwd_ms=2 param_bytes=0 stash_bytes=0 "
      "work_bytes=0 output_bytes=0 layer_units=0\n");
}

TEST(ConfigIo, RejectsNonFiniteAndGarbageNumbers) {
  // stod-style laxness would accept all of these and quietly poison the
  // cost model; the strict parser must refuse each with a line number.
  const std::string prologue =
      "# autopipe-model-config v1\n"
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4 causal=1\n"
      "train micro_batch=2 seq_len=4 recompute=1\n";
  auto expect_reject = [&](const std::string& tail, const std::string& what) {
    std::stringstream in(prologue + tail);
    try {
      load_model_config(in);
      FAIL() << "accepted: " << tail;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "error '" << e.what() << "' does not mention '" << what << "'";
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << e.what();
    }
  };
  const std::string block_rest =
      " bwd_ms=2 param_bytes=0 stash_bytes=0 work_bytes=0 output_bytes=0 "
      "layer_units=0\n";
  expect_reject("comm_ms nan\n", "finite");
  expect_reject("comm_ms inf\n", "finite");
  expect_reject("comm_ms 0.5extra\n", "finite");
  expect_reject("comm_ms 0.5 0.6\n", "exactly one");
  expect_reject("comm_ms 0.5\nblock b kind=FFN fwd_ms=nan" + block_rest,
                "finite");
  expect_reject("comm_ms 0.5\nblock b kind=FFN fwd_ms=-inf" + block_rest,
                "finite");
  expect_reject("comm_ms 0.5\nblock b kind=FFN fwd_ms=12abc" + block_rest,
                "non-numeric");
  expect_reject("comm_ms 0.5\nblock b kind=FFN fwd_ms=" + block_rest,
                "non-numeric");
  // Integer fields reject fractional or trailing-garbage values too.
  std::stringstream bad_layers(
      "# autopipe-model-config v1\n"
      "model m layers=2.5 hidden=4 heads=2 vocab=8 seq=4 causal=1\n");
  EXPECT_THROW(load_model_config(bad_layers), std::runtime_error);
}

TEST(ConfigIo, RejectsDuplicateDirectives) {
  auto expect_duplicate = [](const std::string& text,
                             const std::string& directive) {
    std::stringstream in(text);
    try {
      load_model_config(in);
      FAIL() << "accepted duplicate " << directive;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate '" + directive + "'"),
                std::string::npos)
          << e.what();
    }
  };
  const std::string model_line =
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4 causal=1\n";
  expect_duplicate("# autopipe-model-config v1\n" + model_line + model_line,
                   "model");
  expect_duplicate(
      "# autopipe-model-config v1\n" + model_line +
          "comm_ms 0.5\ncomm_ms 0.7\n",
      "comm_ms");
  expect_duplicate(
      "# autopipe-model-config v1\n" + model_line +
          "train micro_batch=2 seq_len=4 recompute=1\n"
          "train micro_batch=4 seq_len=4 recompute=1\n",
      "train");
}

TEST(ConfigIo, TruncatedFileNamesWhatIsMissing) {
  // A crash mid-write loses trailing lines first; the error should say
  // which required pieces never arrived, not just "malformed".
  std::stringstream in(
      "# autopipe-model-config v1\n"
      "model m layers=2 hidden=4 heads=2 vocab=8 seq=4 causal=1\n");
  try {
    load_model_config(in);
    FAIL() << "accepted truncated config";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("comm_ms"), std::string::npos) << what;
    EXPECT_NE(what.find("block"), std::string::npos) << what;
    EXPECT_EQ(what.find(" model"), std::string::npos) << what;
  }
}

TEST(ConfigIo, HandEditedProfileIsUsable) {
  // A downstream user can write a profile by hand and plan on it.
  const std::string text =
      "# autopipe-model-config v1\n"
      "model tiny layers=1 hidden=8 heads=2 vocab=16 seq=4 causal=1\n"
      "train micro_batch=2 seq_len=4 recompute=1\n"
      "comm_ms 0.25\n"
      "block emb kind=Embedding fwd_ms=0.1 bwd_ms=0.2 param_bytes=1e6 "
      "stash_bytes=10 work_bytes=10 output_bytes=100 layer_units=0\n"
      "block a0 kind=Attention fwd_ms=1 bwd_ms=3 param_bytes=1e5 "
      "stash_bytes=100 work_bytes=100 output_bytes=100 layer_units=0.5\n"
      "block f0 kind=FFN fwd_ms=1.5 bwd_ms=4.5 param_bytes=2e5 "
      "stash_bytes=100 work_bytes=100 output_bytes=100 layer_units=0.5\n"
      "block head kind=Head fwd_ms=2 bwd_ms=6 param_bytes=1e6 "
      "stash_bytes=100 work_bytes=200 output_bytes=0 layer_units=0\n";
  std::stringstream in(text);
  const ModelConfig cfg = load_model_config(in);
  EXPECT_EQ(cfg.num_blocks(), 4);
  const auto planned = core::plan(cfg, 2, 4);
  EXPECT_EQ(planned.partition.num_stages(), 2);
}

}  // namespace
}  // namespace autopipe::costmodel
