// Op-level golden-gradient suite: every primitive's fast kernel must be
// BIT-identical to the retained naive reference (model::ref::) -- same
// additions in the same order per output element -- across ragged shapes
// (dimensions that are not multiples of the panel/tile sizes) and across
// thread counts. This is the contract that makes the blocked/ILP/threaded
// hot path freely substitutable for the reference everywhere: schedules,
// checkpoint resume and the consistency property all stay exact.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "model/ops.h"
#include "util/rng.h"

namespace autopipe::model {
namespace {

/// Bitwise tensor equality with a useful failure message.
void expect_bits(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what << ": shape mismatch";
  if (std::memcmp(got.data(), want.data(),
                  got.numel() * sizeof(float)) == 0) {
    return;
  }
  for (std::size_t i = 0; i < got.numel(); ++i) {
    if (std::memcmp(got.data() + i, want.data() + i, sizeof(float)) != 0) {
      FAIL() << what << ": first bit difference at flat index " << i << ": "
             << got.at(i) << " vs " << want.at(i);
    }
  }
}

Tensor randn(std::vector<int> shape, util::Rng& rng) {
  return Tensor::randn(std::move(shape), rng, 0.5f);
}

/// (m, k, n) GEMM shapes straddling the panel (32) and tile (4x8) edges:
/// exact multiples, one-off raggedness in every dimension, and degenerate
/// single-row/column cases.
const std::vector<std::array<int, 3>>& gemm_shapes() {
  static const std::vector<std::array<int, 3>> shapes = {
      {1, 1, 1},    {3, 5, 7},     {32, 32, 32}, {33, 17, 41},
      {31, 8, 9},   {64, 63, 65},  {7, 129, 5},  {65, 24, 16},
      {2, 16, 130}, {40, 128, 96},
  };
  return shapes;
}

class OpsGoldenThreads : public testing::TestWithParam<int> {
 protected:
  void SetUp() override { set_ops_threads(GetParam()); }
  void TearDown() override { set_ops_threads(1); }
};

TEST_P(OpsGoldenThreads, MatmulFamilyBitIdenticalOnRaggedShapes) {
  util::Rng rng(7 + GetParam());
  for (const auto& [m, k, n] : gemm_shapes()) {
    SCOPED_TRACE(testing::Message() << m << "x" << k << "x" << n);
    const Tensor a = randn({m, k}, rng);
    const Tensor b = randn({k, n}, rng);
    const Tensor dc = randn({m, n}, rng);
    expect_bits(matmul(a, b), ref::matmul(a, b), "matmul");
    expect_bits(matmul_grad_a(dc, b), ref::matmul_grad_a(dc, b),
                "matmul_grad_a");
    expect_bits(matmul_grad_b(a, dc), ref::matmul_grad_b(a, dc),
                "matmul_grad_b");

    const Tensor bias = randn({n}, rng);
    expect_bits(linear(a, b, bias), ref::linear(a, b, bias), "linear");
    const LinearGrads fast = linear_backward(a, b, dc);
    const LinearGrads naive = ref::linear_backward(a, b, dc);
    expect_bits(fast.dx, naive.dx, "linear_backward.dx");
    expect_bits(fast.dw, naive.dw, "linear_backward.dw");
    expect_bits(fast.dbias, naive.dbias, "linear_backward.dbias");
  }
}

TEST_P(OpsGoldenThreads, ElementwiseAndRowOpsBitIdentical) {
  util::Rng rng(11 + GetParam());
  for (const auto& [rows, d] : std::vector<std::array<int, 2>>{
           {1, 1}, {3, 19}, {32, 64}, {33, 65}, {257, 3}, {96, 48}}) {
    SCOPED_TRACE(testing::Message() << rows << "x" << d);
    const Tensor x = randn({rows, d}, rng);
    const Tensor dy = randn({rows, d}, rng);
    expect_bits(gelu(x), ref::gelu(x), "gelu");
    expect_bits(gelu_backward(x, dy), ref::gelu_backward(x, dy),
                "gelu_backward");

    const Tensor gamma = randn({d}, rng);
    const Tensor beta = randn({d}, rng);
    LayerNormCache fast_cache, naive_cache;
    expect_bits(layernorm(x, gamma, beta, &fast_cache),
                ref::layernorm(x, gamma, beta, &naive_cache), "layernorm");
    expect_bits(fast_cache.normalized, naive_cache.normalized,
                "layernorm.normalized");
    ASSERT_EQ(fast_cache.inv_std.size(), naive_cache.inv_std.size());
    for (std::size_t i = 0; i < fast_cache.inv_std.size(); ++i) {
      ASSERT_EQ(std::memcmp(&fast_cache.inv_std[i], &naive_cache.inv_std[i],
                            sizeof(float)),
                0)
          << "inv_std row " << i;
    }
    const LayerNormGrads fast_g = layernorm_backward(fast_cache, gamma, dy);
    const LayerNormGrads naive_g =
        ref::layernorm_backward(naive_cache, gamma, dy);
    expect_bits(fast_g.dx, naive_g.dx, "layernorm_backward.dx");
    expect_bits(fast_g.dgamma, naive_g.dgamma, "layernorm_backward.dgamma");
    expect_bits(fast_g.dbeta, naive_g.dbeta, "layernorm_backward.dbeta");

    const Tensor probs = ref::softmax_rows(x);
    expect_bits(softmax_rows(x), probs, "softmax_rows");
    expect_bits(softmax_backward(probs, dy),
                ref::softmax_backward(probs, dy), "softmax_backward");
  }
}

TEST_P(OpsGoldenThreads, SplitBackwardPrimitivesBitIdentical) {
  // The zero-bubble B/W split's op-level contract: each split half is
  // bit-identical to its naive reference, and the two halves together
  // reproduce the fused backward's outputs exactly (the halves are the
  // fused op's own internal steps, just regrouped).
  util::Rng rng(17 + GetParam());
  for (const auto& [m, k, n] : gemm_shapes()) {
    SCOPED_TRACE(testing::Message() << m << "x" << k << "x" << n);
    const Tensor x = randn({m, k}, rng);
    const Tensor w = randn({k, n}, rng);
    const Tensor dy = randn({m, n}, rng);
    expect_bits(linear_backward_input(w, dy), ref::linear_backward_input(w, dy),
                "linear_backward_input");
    const LinearWeightGrads fast = linear_backward_weight(x, dy);
    const LinearWeightGrads naive = ref::linear_backward_weight(x, dy);
    expect_bits(fast.dw, naive.dw, "linear_backward_weight.dw");
    expect_bits(fast.dbias, naive.dbias, "linear_backward_weight.dbias");

    // Halves == fused, bitwise.
    const LinearGrads fused = linear_backward(x, w, dy);
    expect_bits(linear_backward_input(w, dy), fused.dx, "split dx vs fused");
    expect_bits(fast.dw, fused.dw, "split dw vs fused");
    expect_bits(fast.dbias, fused.dbias, "split dbias vs fused");
  }
  for (const auto& [rows, d] : std::vector<std::array<int, 2>>{
           {1, 1}, {3, 19}, {32, 64}, {33, 65}, {257, 3}}) {
    SCOPED_TRACE(testing::Message() << rows << "x" << d);
    const Tensor x = randn({rows, d}, rng);
    const Tensor dy = randn({rows, d}, rng);
    const Tensor gamma = randn({d}, rng);
    const Tensor beta = randn({d}, rng);
    LayerNormCache cache;
    layernorm(x, gamma, beta, &cache);
    expect_bits(layernorm_backward_input(cache, gamma, dy),
                ref::layernorm_backward_input(cache, gamma, dy),
                "layernorm_backward_input");
    const LayerNormWeightGrads fast = layernorm_backward_weight(cache, dy);
    const LayerNormWeightGrads naive =
        ref::layernorm_backward_weight(cache, dy);
    expect_bits(fast.dgamma, naive.dgamma, "layernorm_backward_weight.dgamma");
    expect_bits(fast.dbeta, naive.dbeta, "layernorm_backward_weight.dbeta");

    const LayerNormGrads fused = layernorm_backward(cache, gamma, dy);
    expect_bits(layernorm_backward_input(cache, gamma, dy), fused.dx,
                "split ln dx vs fused");
    expect_bits(fast.dgamma, fused.dgamma, "split dgamma vs fused");
    expect_bits(fast.dbeta, fused.dbeta, "split dbeta vs fused");
  }
}

TEST_P(OpsGoldenThreads, CrossEntropyBitIdenticalIncludingLossSum) {
  util::Rng rng(13 + GetParam());
  for (const int rows : {1, 5, 33, 64, 100}) {
    const int v = 37;
    SCOPED_TRACE(testing::Message() << rows << "x" << v);
    const Tensor logits = randn({rows, v}, rng);
    std::vector<int> targets(rows);
    for (int i = 0; i < rows; ++i) {
      targets[i] = static_cast<int>(rng.next_below(v));
    }
    const double scale = 1.0 / rows;
    Tensor fast_d, naive_d;
    const double fast_loss = cross_entropy(logits, targets, scale, &fast_d);
    const double naive_loss =
        ref::cross_entropy(logits, targets, scale, &naive_d);
    // The loss is a double accumulated in row order on both sides.
    EXPECT_EQ(fast_loss, naive_loss);
    expect_bits(fast_d, naive_d, "cross_entropy.dlogits");
  }
}

// 1 = inline, 2 = smallest real fan-out, 0 = auto (hardware concurrency).
// Bit-identity must hold for every choice because panels are fixed-size
// and never derived from the worker count.
INSTANTIATE_TEST_SUITE_P(Threads, OpsGoldenThreads, testing::Values(1, 2, 0));

TEST(OpsGolden, DisablingFastOpsRoutesThroughReference) {
  util::Rng rng(3);
  const Tensor a = randn({9, 10}, rng);
  const Tensor b = randn({10, 11}, rng);
  set_fast_ops(false);
  const Tensor off = matmul(a, b);
  set_fast_ops(true);
  expect_bits(off, ref::matmul(a, b), "matmul with fast ops off");
  EXPECT_TRUE(fast_ops_enabled());
}

TEST(OpsGolden, EmbeddingOpsAreSingleImplementation) {
  // embedding_lookup/backward have one implementation (gather/scatter has
  // no blocking to diverge); this pins their semantics: lookup copies rows,
  // backward accumulates in ascending id-slot order.
  util::Rng rng(5);
  const Tensor table = randn({6, 4}, rng);
  const std::vector<int> ids = {3, 0, 5, 3};
  const Tensor out = embedding_lookup(table, ids);
  ASSERT_EQ(out.dim(0), 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(out.at(i * 4 + j), table.at(ids[i] * 4 + j));
    }
  }
  const Tensor dy = randn({4, 4}, rng);
  Tensor dtable({6, 4});
  embedding_backward(ids, dy, &dtable);
  // Row 3 was hit twice: the sum must be the two contributions in order.
  for (int j = 0; j < 4; ++j) {
    float want = 0;
    want += dy.at(0 * 4 + j);
    want += dy.at(3 * 4 + j);
    EXPECT_EQ(dtable.at(3 * 4 + j), want);
  }
}

}  // namespace
}  // namespace autopipe::model
