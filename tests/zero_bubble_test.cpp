// Zero-bubble (split-backward) schedules, end to end: the builder's
// structure and in-flight caps, analytic evaluation vs the discrete-event
// executor (bitwise), the validator's B/W rules, and -- the contract the
// whole feature rests on -- split backward_input/backward_weight gradients
// bit-identical to the fused backward, both per block and through the real
// thread runtime.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/autopipe.h"
#include "core/schedule.h"
#include "costmodel/analytic.h"
#include "costmodel/model_zoo.h"
#include "model/blocks.h"
#include "model/data.h"
#include "model/transformer.h"
#include "runtime/pipeline_runtime.h"
#include "sim/executor.h"
#include "util/rng.h"

namespace autopipe::core {
namespace {

std::vector<StageCost> split_stages(int n, double f = 1.0, double bi = 1.2,
                                    double bw = 0.8) {
  std::vector<StageCost> v(n);
  for (auto& s : v) {
    s.fwd_ms = f;
    s.bwd_ms = bi + bw;
    s.bwd_input_ms = bi;
    s.bwd_weight_ms = bw;
  }
  return v;
}

int count_ops(const std::vector<ScheduleOp>& order, OpType type) {
  int n = 0;
  for (const auto& op : order) n += op.type == type ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------- builder

TEST(ZeroBubble, BuilderEmitsFullSplitOpSetPerDevice) {
  const int n = 4, m = 8;
  const auto s = make_zero_bubble(split_stages(n), m, 0.1);
  EXPECT_EQ(s.kind, costmodel::ScheduleKind::ZeroBubble);
  EXPECT_EQ(s.num_stages, n);
  EXPECT_EQ(s.num_micro_batches, m);
  validate(s);
  for (int d = 0; d < n; ++d) {
    SCOPED_TRACE(testing::Message() << "device " << d);
    EXPECT_EQ(count_ops(s.order[d], OpType::Forward), m);
    EXPECT_EQ(count_ops(s.order[d], OpType::BackwardInput), m);
    EXPECT_EQ(count_ops(s.order[d], OpType::BackwardWeight), m);
    EXPECT_EQ(count_ops(s.order[d], OpType::Backward), 0);
  }
}

TEST(ZeroBubble, InFlightCapsHoldAtEveryPointOfEveryDevice) {
  // Scanning each device's order in sequence: forwards minus grad-input
  // retirements never exceeds n - device (activation stashes), and
  // grad-input minus grad-weight retirements never exceeds n - device
  // (deferred W states) -- the bounds the memory model charges for.
  for (const int m : {4, 7, 12}) {
    const int n = 4;
    if (m < n) continue;
    const auto s = make_zero_bubble(split_stages(n), m, 0.2);
    for (int d = 0; d < n; ++d) {
      int fwd = 0, binput = 0, bweight = 0;
      for (const auto& op : s.order[d]) {
        fwd += op.type == OpType::Forward ? 1 : 0;
        binput += op.type == OpType::BackwardInput ? 1 : 0;
        bweight += op.type == OpType::BackwardWeight ? 1 : 0;
        EXPECT_LE(fwd - binput, n - d)
            << "activation stash cap, device " << d << ", m=" << m;
        EXPECT_LE(binput - bweight, n - d)
            << "deferred-W cap, device " << d << ", m=" << m;
      }
    }
  }
}

TEST(ZeroBubble, PerMicroBatchOrderIsFThenBThenW) {
  const auto s = make_zero_bubble(split_stages(3), 6, 0.1);
  for (int d = 0; d < 3; ++d) {
    std::vector<int> f_at(6, -1), b_at(6, -1), w_at(6, -1);
    for (int i = 0; i < static_cast<int>(s.order[d].size()); ++i) {
      const auto& op = s.order[d][i];
      if (op.type == OpType::Forward) f_at[op.micro_batch] = i;
      if (op.type == OpType::BackwardInput) b_at[op.micro_batch] = i;
      if (op.type == OpType::BackwardWeight) w_at[op.micro_batch] = i;
    }
    for (int mb = 0; mb < 6; ++mb) {
      EXPECT_LT(f_at[mb], b_at[mb]) << "device " << d << " mb " << mb;
      EXPECT_LT(b_at[mb], w_at[mb]) << "device " << d << " mb " << mb;
    }
  }
}

TEST(ZeroBubble, NeutralCostsFallBackToTwoThirdsSplit)
{
  // StageCost{1.0, 2.0} carries no B/W split; the builder assumes
  // 2/3 : 1/3 of bwd_ms, and op_duration_ms prices the halves that way.
  std::vector<StageCost> neutral(3);
  for (auto& s : neutral) {
    s.fwd_ms = 1.0;
    s.bwd_ms = 2.0;
  }
  const auto s = make_zero_bubble(neutral, 6, 0.1);
  validate(s);
  ScheduleOp bi{OpType::BackwardInput, 0, -1, 0};
  ScheduleOp bw{OpType::BackwardWeight, 0, -1, 0};
  EXPECT_DOUBLE_EQ(s.op_duration_ms(0, bi), 2.0 * 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.op_duration_ms(0, bw), 2.0 / 3.0);
}

TEST(ZeroBubble, RequiresEnoughMicroBatches) {
  EXPECT_THROW(make_zero_bubble(split_stages(4), 3, 0.1),
               std::invalid_argument);
}

TEST(ZeroBubble, BuildScheduleDispatchesEveryKind) {
  const auto costs = split_stages(2);
  EXPECT_EQ(build_schedule(ScheduleKind::OneFOneB, costs, 4, 0.1).kind,
            ScheduleKind::OneFOneB);
  EXPECT_EQ(build_schedule(ScheduleKind::GPipe, costs, 4, 0.1).kind,
            ScheduleKind::GPipe);
  EXPECT_EQ(build_schedule(ScheduleKind::AutoPipeSliced, costs, 4, 0.1,
                           {/*sliced=*/1, /*chunks=*/1})
                .kind,
            ScheduleKind::AutoPipeSliced);
  EXPECT_EQ(build_schedule(ScheduleKind::Interleaved, costs, 4, 0.1,
                           {/*sliced=*/0, /*chunks=*/2})
                .kind,
            ScheduleKind::Interleaved);
  EXPECT_EQ(build_schedule(ScheduleKind::ZeroBubble, costs, 4, 0.1).kind,
            ScheduleKind::ZeroBubble);
  EXPECT_THROW(build_schedule(static_cast<ScheduleKind>(99), costs, 4, 0.1),
               std::invalid_argument);
}

// ------------------------------------------------------------- validation

TEST(ZeroBubble, ValidateCatchesWeightBeforeInput) {
  auto s = make_zero_bubble(split_stages(2), 4, 0.1);
  // Swap the first BackwardInput on device 1 with the matching
  // BackwardWeight: W now retires before its own B.
  auto& order = s.order[1];
  int bi = -1, bw = -1;
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    if (order[i].type == OpType::BackwardInput && order[i].micro_batch == 0)
      bi = i;
    if (order[i].type == OpType::BackwardWeight && order[i].micro_batch == 0)
      bw = i;
  }
  ASSERT_GE(bi, 0);
  ASSERT_GE(bw, 0);
  std::swap(order[bi], order[bw]);
  EXPECT_THROW(validate(s), std::logic_error);
}

TEST(ZeroBubble, ValidateCatchesMissingWeightOp) {
  auto s = make_zero_bubble(split_stages(2), 4, 0.1);
  auto& order = s.order[0];
  for (auto it = order.begin(); it != order.end(); ++it) {
    if (it->type == OpType::BackwardWeight && it->micro_batch == 2) {
      order.erase(it);
      break;
    }
  }
  EXPECT_THROW(validate(s), std::logic_error);
}

TEST(ZeroBubble, ValidateRejectsMixingFusedAndSplitForOneMicroBatch) {
  auto s = make_zero_bubble(split_stages(2), 4, 0.1);
  // Replace micro-batch 1's B/W pair on device 0 with B plus a fused
  // Backward: the micro-batch now has both a split half and a fused op.
  for (auto& op : s.order[0]) {
    if (op.type == OpType::BackwardWeight && op.micro_batch == 1) {
      op.type = OpType::Backward;
    }
  }
  EXPECT_THROW(validate(s), std::logic_error);
}

// -------------------------------------------------- analytic eval vs exec

TEST(ZeroBubble, EvalMatchesExecutorBitwiseAcrossShapes) {
  for (const auto& [n, m] : std::vector<std::pair<int, int>>{
           {2, 2}, {2, 5}, {3, 7}, {4, 8}, {5, 11}, {8, 16}}) {
    SCOPED_TRACE(testing::Message() << n << " stages x " << m << " mb");
    auto costs = split_stages(n);
    // Perturb per-stage so the critical path is not degenerate.
    for (int d = 0; d < n; ++d) {
      costs[d].fwd_ms = 1.0 + 0.13 * d;
      costs[d].bwd_input_ms = 1.1 + 0.07 * ((d * 3) % n);
      costs[d].bwd_weight_ms = 0.6 + 0.05 * d;
      costs[d].bwd_ms = costs[d].bwd_input_ms + costs[d].bwd_weight_ms;
    }
    const auto schedule = make_zero_bubble(costs, m, 0.3);
    const auto eval = evaluate_schedule(schedule);
    const auto exec = sim::execute(schedule);
    EXPECT_EQ(eval.iteration_ms, exec.iteration_ms);
    EXPECT_EQ(eval.startup_ms, exec.startup_ms);
  }
}

TEST(ZeroBubble, EvalMatchesExecutorWithNonUniformComm) {
  const auto costs = split_stages(4, 1.5, 1.3, 0.9);
  const auto schedule = make_zero_bubble(
      costs, 9, CommModel::from_costs({0.1, 0.8, 0.25}));
  const auto eval = evaluate_schedule(schedule);
  const auto exec = sim::execute(schedule);
  EXPECT_EQ(eval.iteration_ms, exec.iteration_ms);
  EXPECT_EQ(eval.startup_ms, exec.startup_ms);
}

TEST(ZeroBubble, BeatsOneFOneBOnDeepPipeline) {
  // The zero-bubble premise: W ops fill the 1F1B bubbles, so the deeper
  // the pipeline the bigger the win. Same fused bwd totals on both sides.
  const auto costs = split_stages(8, 1.0, 1.4, 0.6);
  const int m = 16;
  const double zb = evaluate_schedule(make_zero_bubble(costs, m, 0.1))
                        .iteration_ms;
  const double fused =
      evaluate_schedule(build_1f1b(costs, m, 0.1)).iteration_ms;
  EXPECT_LT(zb, fused);
}

// ------------------------------------------------------------- co-search

TEST(ZeroBubble, PlannerCoSearchAdoptsZeroBubbleOnlyWhenItWins) {
  const auto cfg = costmodel::build_model_config(
      costmodel::model_by_name("gpt2-1.3b"), {4, 0, true});

  // Deep pipeline, few micro-batches: big warmup bubble, zero-bubble wins.
  AutoPipeOptions deep{8, 64, 8, true, 1};
  deep.enable_zero_bubble = true;
  const auto zb = auto_plan(cfg, deep);
  EXPECT_EQ(zb.schedule.kind, costmodel::ScheduleKind::ZeroBubble);
  AutoPipeOptions off = deep;
  off.enable_zero_bubble = false;
  const auto base = auto_plan(cfg, off);
  EXPECT_EQ(base.plan.partition.counts, zb.plan.partition.counts)
      << "co-search must not change the partition, only the schedule";
  EXPECT_LT(evaluate_schedule(zb.schedule).iteration_ms,
            evaluate_schedule(base.schedule).iteration_ms);

  // Many micro-batches amortize the bubble: sliced 1F1B stays the winner
  // even with the co-search enabled.
  AutoPipeOptions amortized{8, 512, 8, true, 1};
  amortized.enable_zero_bubble = true;
  const auto keep = auto_plan(cfg, amortized);
  EXPECT_NE(keep.schedule.kind, costmodel::ScheduleKind::ZeroBubble);

  // Off by default: the flag itself defaults to false.
  EXPECT_FALSE(AutoPipeOptions{}.enable_zero_bubble);
}

}  // namespace
}  // namespace autopipe::core

// ---------------------------------------------------------------- runtime

namespace autopipe::runtime {
namespace {

model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;  // 8 blocks
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

TEST(ZeroBubbleRuntime, SplitBackwardGradsBitIdenticalToFused) {
  // The acceptance contract: a zero-bubble iteration produces the SAME
  // bits as fused 1F1B on every parameter gradient -- the W deferral only
  // reorders ops across micro-batches, never the additions into any one
  // parameter's grad tensor.
  const auto spec = tiny_spec();
  for (const auto& [counts, m] : std::vector<std::pair<std::vector<int>, int>>{
           {{2, 3, 3}, 6}, {{4, 4}, 4}, {{1, 2, 2, 3}, 8}}) {
    SCOPED_TRACE(testing::Message() << counts.size() << " stages, m=" << m);
    model::TransformerModel fused(spec), split(spec);
    model::SyntheticCorpus corpus(spec.vocab);
    const int B = 4;
    const auto batch = corpus.next_batch(B * m, spec.seq);
    const auto micro =
        model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
    const double scale = 1.0 / (B * m * spec.seq);

    PipelineRuntime rt_fused(fused, counts), rt_split(split, counts);
    fused.zero_grads();
    split.zero_grads();
    const auto fused_result = rt_fused.run_iteration(
        rt_fused.make_schedule(costmodel::ScheduleKind::OneFOneB, m, 0),
        micro, scale);
    const auto split_result = rt_split.run_iteration(
        rt_split.make_schedule(costmodel::ScheduleKind::ZeroBubble, m, 0),
        micro, scale);

    EXPECT_EQ(fused_result.loss, split_result.loss);
    EXPECT_EQ(fused.max_grad_diff(split), 0.0);
  }
}

TEST(ZeroBubbleRuntime, MatchesSingleMachineReference) {
  // And the usual §II-B consistency property against the single-process
  // reference (tolerance, not bits: micro-batching itself reorders adds).
  const auto spec = tiny_spec();
  model::TransformerModel ref(spec), piped(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4, m = 6;
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);

  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);

  PipelineRuntime rt(piped, {2, 3, 3});
  piped.zero_grads();
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::ZeroBubble, m, 0);
  const auto result = rt.run_iteration(schedule, micro, scale);

  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

TEST(ZeroBubbleRuntime, RejectsNoRecomputeMode) {
  // The split backward re-derives intermediates from the stashed block
  // input; without recompute there is nothing to re-derive from.
  const auto spec = tiny_spec();
  model::TransformerModel m(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const auto batch = corpus.next_batch(4 * 4, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, 4);
  PipelineRuntime rt(m, {4, 4});
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::ZeroBubble, 4, 0);
  EXPECT_THROW(
      rt.run_iteration(schedule, micro, 1.0 / 64, /*recompute=*/false),
      std::invalid_argument);
}

// ------------------------------------------------------- per-block split

/// Runs fused backward, snapshots (dx, grads); zeroes grads; runs
/// backward_input (checking grads stay untouched) then backward_weight;
/// expects dx and every grad tensor bitwise equal to the fused run.
void expect_split_matches_fused(model::Block& block, const model::Tensor& x,
                                const model::Tensor& dy) {
  block.zero_grads();
  const model::Tensor fused_dx = block.backward(x, dy);
  std::vector<model::Tensor> fused_grads;
  for (const auto& p : block.params()) fused_grads.push_back(p.grad);

  block.zero_grads();
  std::unique_ptr<model::Block::BwState> state;
  const model::Tensor split_dx = block.backward_input(x, dy, &state);
  ASSERT_TRUE(block.params().empty() || state != nullptr)
      << block.kind() << ": override must stash a state";
  for (const auto& p : block.params()) {
    for (std::size_t i = 0; i < p.grad.numel(); ++i) {
      ASSERT_EQ(p.grad.at(i), 0.0f)
          << block.kind() << ": backward_input touched " << p.name;
    }
  }
  block.backward_weight(*state);

  ASSERT_EQ(std::memcmp(split_dx.data(), fused_dx.data(),
                        fused_dx.numel() * sizeof(float)),
            0)
      << block.kind() << ": dx differs";
  for (std::size_t p = 0; p < block.params().size(); ++p) {
    const auto& got = block.params()[p].grad;
    const auto& want = fused_grads[p];
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          want.numel() * sizeof(float)),
              0)
        << block.kind() << ": grad differs for " << block.params()[p].name;
  }
}

TEST(ZeroBubbleBlocks, EveryBlockTypeSplitsBitIdentically) {
  util::Rng rng(77);
  const int hidden = 16, heads = 2, vocab = 32, seq = 4, batch = 3;
  const int tokens = batch * seq;

  model::EmbeddingBlock embed(vocab, hidden, seq, rng);
  model::Tensor ids({tokens, 1});
  for (int i = 0; i < tokens; ++i) {
    ids.data()[i] = static_cast<float>(rng.next_below(vocab));
  }
  expect_split_matches_fused(embed, ids,
                             model::Tensor::randn({tokens, hidden}, rng));

  model::ResidualAttentionBlock attn(hidden, heads, seq, true, rng);
  expect_split_matches_fused(attn, model::Tensor::randn({tokens, hidden}, rng),
                             model::Tensor::randn({tokens, hidden}, rng));

  model::ResidualFFNBlock ffn(hidden, rng);
  expect_split_matches_fused(ffn, model::Tensor::randn({tokens, hidden}, rng),
                             model::Tensor::randn({tokens, hidden}, rng));

  model::HeadBlock head(hidden, vocab, rng);
  expect_split_matches_fused(head, model::Tensor::randn({tokens, hidden}, rng),
                             model::Tensor::randn({tokens, vocab}, rng));
}

TEST(ZeroBubbleBlocks, BaseFallbackRunsFusedWithNullState) {
  // A block without an override must still satisfy the split API: the base
  // backward_input runs the fused backward immediately and leaves the state
  // null, and backward_weight on any state of a block that stashed nothing
  // is a no-op. Exercised through a model walk where both paths coexist.
  util::Rng rng(5);
  model::ResidualFFNBlock ffn(8, rng);
  const model::Tensor x = model::Tensor::randn({6, 8}, rng);
  const model::Tensor dy = model::Tensor::randn({6, 8}, rng);

  ffn.zero_grads();
  const model::Tensor fused_dx = ffn.backward(x, dy);
  std::vector<model::Tensor> fused_grads;
  for (const auto& p : ffn.params()) fused_grads.push_back(p.grad);

  // Call through the base-class entry with a null state pointer: legal, and
  // equivalent to the fused op (the runtime never does this, but chaos
  // tooling may).
  ffn.zero_grads();
  const model::Tensor dx = ffn.model::Block::backward_input(x, dy, nullptr);
  ASSERT_EQ(std::memcmp(dx.data(), fused_dx.data(),
                        fused_dx.numel() * sizeof(float)),
            0);
  for (std::size_t p = 0; p < ffn.params().size(); ++p) {
    ASSERT_EQ(std::memcmp(ffn.params()[p].grad.data(), fused_grads[p].data(),
                          fused_grads[p].numel() * sizeof(float)),
              0);
  }
}

}  // namespace
}  // namespace autopipe::runtime
