// SDC guard layer: detectors (handoff CRC ledger, weight sentinel, norm
// window), the seeded bit-flip injector, end-to-end detection through
// TrainSession with typed Corruption failures, the verified-clean
// checkpoint stamp, and a small corruption chaos soak through the
// supervisor's corruption rung. Suite names start with Guard/Sdc -- the
// TSan CI job matches them.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/storage.h"
#include "costmodel/analytic.h"
#include "faults/sdc.h"
#include "guard/guard.h"
#include "runtime/stage_failure.h"
#include "runtime/train_session.h"
#include "supervisor/chaos.h"
#include "supervisor/supervisor.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace autopipe {
namespace {

model::TinySpec tiny_spec() {
  model::TinySpec s;
  s.layers = 3;
  s.hidden = 16;
  s.heads = 2;
  s.vocab = 32;
  s.seq = 4;
  return s;
}

costmodel::ModelConfig tiny_config() {
  const model::TinySpec t = tiny_spec();
  costmodel::ModelSpec spec;
  spec.name = "tiny";
  spec.num_layers = t.layers;
  spec.hidden = t.hidden;
  spec.heads = t.heads;
  spec.vocab = t.vocab;
  spec.default_seq = t.seq;
  spec.causal = t.causal;
  return costmodel::build_model_config(spec, {4, 0, true});
}

runtime::TrainSessionOptions session_options(const guard::GuardOptions& g) {
  runtime::TrainSessionOptions opts;
  opts.spec = tiny_spec();
  opts.counts = {2, 3, 3};
  opts.micro_batch = 2;
  opts.num_micro_batches = 4;
  opts.guard = g;
  return opts;
}

guard::GuardOptions all_guards() {
  guard::GuardOptions g;
  g.handoff_crc = true;
  g.nonfinite_checks = true;
  g.weight_interval = 1;
  return g;
}

/// Expects fn() to throw StageFailure(Corruption) whose message contains
/// `needle`; returns the message.
template <typename Fn>
std::string expect_corruption(Fn&& fn, const std::string& needle) {
  try {
    fn();
  } catch (const runtime::StageFailure& e) {
    EXPECT_EQ(e.kind(), runtime::FailureKind::Corruption) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    return e.what();
  }
  ADD_FAILURE() << "no Corruption failure raised (wanted: " << needle << ")";
  return {};
}

// ---------------------------------------------------------------- units

TEST(GuardLedger, StampTakeConsumesOnce) {
  guard::HandoffLedger ledger;
  const std::uint64_t k = guard::handoff_key(false, 1, 3, -1);
  EXPECT_FALSE(ledger.take(k).has_value());
  ledger.stamp(k, 0xdeadbeefu);
  EXPECT_EQ(ledger.pending(), 1u);
  const auto got = ledger.take(k);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0xdeadbeefu);
  EXPECT_EQ(ledger.pending(), 0u);
  EXPECT_FALSE(ledger.take(k).has_value());  // consumed
}

TEST(GuardLedger, KeysDistinguishDirectionBoundaryMicroBatchHalf) {
  const std::uint64_t base = guard::handoff_key(false, 1, 3, -1);
  EXPECT_NE(base, guard::handoff_key(true, 1, 3, -1));
  EXPECT_NE(base, guard::handoff_key(false, 0, 3, -1));
  EXPECT_NE(base, guard::handoff_key(false, 1, 2, -1));
  EXPECT_NE(base, guard::handoff_key(false, 1, 3, 0));
  EXPECT_NE(guard::handoff_key(false, 1, 3, 0),
            guard::handoff_key(false, 1, 3, 1));
}

TEST(GuardCrc, KnownAnswerAndIncrementalAgree) {
  // IEEE 802.3 test vector -- pins the slicing-by-8 fast path to the
  // canonical polynomial.
  EXPECT_EQ(util::crc32("123456789"), 0xcbf43926u);
  std::string big;
  for (int i = 0; i < 4096; ++i) big.push_back(static_cast<char>(i * 131));
  util::Crc32 inc;
  // Chunk boundaries straddle the 8-byte fast-path stride.
  inc.update(big.substr(0, 3));
  inc.update(big.substr(3, 13));
  inc.update(big.substr(16));
  EXPECT_EQ(inc.value(), util::crc32(big));
}

TEST(GuardCrc, TensorCrcSeesEveryBitFlip) {
  util::Rng rng(11);
  model::Tensor x = model::Tensor::randn({4, 8}, rng, 0.5f);
  const std::uint32_t clean = guard::tensor_crc(x);
  for (int bit = 0; bit < 32; ++bit) {
    faults::flip_float_bit(x.data(), x.numel(), 17, bit);
    EXPECT_NE(guard::tensor_crc(x), clean) << "bit " << bit;
    faults::flip_float_bit(x.data(), x.numel(), 17, bit);  // restore
    EXPECT_EQ(guard::tensor_crc(x), clean);
  }
}

TEST(GuardNorm, CalibratesThenTripsWithoutAbsorbing) {
  guard::NormGuard g(3, 4.0);
  EXPECT_FALSE(g.observe(1.0));  // calibration
  EXPECT_FALSE(g.observe(2.0));
  EXPECT_FALSE(g.calibrated());
  EXPECT_FALSE(g.observe(1.5));
  EXPECT_TRUE(g.calibrated());
  EXPECT_FALSE(g.observe(7.9));   // under 4 * max(window) = 8
  EXPECT_TRUE(g.observe(100.0));  // way past the threshold
  // The trip must not have polluted the calibration: the same clean-scale
  // value still passes, and the same spike still trips.
  EXPECT_FALSE(g.observe(7.0));
  EXPECT_TRUE(g.observe(100.0));
  EXPECT_TRUE(g.observe(std::numeric_limits<double>::quiet_NaN()));
}

TEST(SdcInjector, FiresExactlyOnceOnMatch) {
  faults::SdcInjector inj;
  util::Rng rng(5);
  model::Tensor x = model::Tensor::randn({2, 4}, rng, 0.5f);
  const model::Tensor clean = x;
  faults::SdcFault f;
  f.target = faults::SdcTarget::Activation;
  f.boundary = 1;
  f.micro_batch = 2;
  f.elem = 3;
  f.bit = 7;
  inj.arm(f);
  EXPECT_EQ(inj.armed(), 1);
  // Wrong target / boundary / micro-batch: no fire.
  EXPECT_FALSE(inj.maybe_corrupt(faults::SdcTarget::Gradient, 1, 2, x));
  EXPECT_FALSE(inj.maybe_corrupt(faults::SdcTarget::Activation, 0, 2, x));
  EXPECT_FALSE(inj.maybe_corrupt(faults::SdcTarget::Activation, 1, 1, x));
  EXPECT_EQ(guard::tensor_crc(x), guard::tensor_crc(clean));
  // Exact match: fires, flips, disarms.
  EXPECT_TRUE(inj.maybe_corrupt(faults::SdcTarget::Activation, 1, 2, x));
  EXPECT_NE(guard::tensor_crc(x), guard::tensor_crc(clean));
  EXPECT_EQ(inj.armed(), 0);
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_FALSE(inj.maybe_corrupt(faults::SdcTarget::Activation, 1, 2, x));
}

TEST(SdcInjector, WildcardMicroBatchMatchesFirstSend) {
  faults::SdcInjector inj;
  util::Rng rng(6);
  model::Tensor x = model::Tensor::randn({2, 4}, rng, 0.5f);
  faults::SdcFault f;
  f.target = faults::SdcTarget::Gradient;
  f.boundary = 0;
  f.micro_batch = -1;
  inj.arm(f);
  EXPECT_TRUE(inj.maybe_corrupt(faults::SdcTarget::Gradient, 0, 5, x));
  EXPECT_EQ(inj.fired(), 1);
}

TEST(GuardWeightCrc, LiveMatchesCapturedAndFlipChanges) {
  runtime::TrainSession session(session_options(all_guards()));
  session.step();
  session.step();
  const auto& adam = session.optimizer();
  const std::uint32_t live =
      guard::weight_crc(session.model(), adam.m(), adam.v());
  EXPECT_EQ(live, guard::weight_state_crc(session.capture()));
  auto& value = session.model().block(2).params()[0].value;
  faults::flip_float_bit(value.data(), value.numel(), 9, 13);
  EXPECT_NE(guard::weight_crc(session.model(), adam.m(), adam.v()), live);
}

// ---------------------------------------------- end-to-end via the session

TEST(SdcTrainSession, ActivationFlipDetectedAndRetryBitExact) {
  runtime::TrainSession session(session_options(all_guards()));
  faults::SdcInjector inj;
  session.run_options().sdc = &inj;
  session.step();

  faults::SdcFault f;
  f.target = faults::SdcTarget::Activation;
  f.boundary = 1;
  f.micro_batch = 2;
  f.elem = 41;
  f.bit = 30;
  inj.arm(f);
  expect_corruption([&] { session.step(); }, "activation handoff CRC");
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_GE(session.guard_counters().handoff_failures.load(), 1L);
  EXPECT_EQ(session.iteration(), 1);  // the step did not commit

  // The flip was consumed by the detected attempt: the in-place retry and
  // every later step must be bit-identical to a never-faulted twin.
  runtime::TrainSession clean(session_options({}));
  for (int i = 0; i < 4; ++i) clean.step();
  while (session.iteration() < 4) session.step();
  EXPECT_EQ(session.capture(), clean.capture());
  EXPECT_EQ(session.losses(), clean.losses());
}

TEST(SdcTrainSession, GradientFlipDetectedTyped) {
  runtime::TrainSession session(session_options(all_guards()));
  faults::SdcInjector inj;
  session.run_options().sdc = &inj;
  session.step();
  faults::SdcFault f;
  f.target = faults::SdcTarget::Gradient;
  f.boundary = 0;
  f.micro_batch = 1;
  f.elem = 7;
  f.bit = 22;
  inj.arm(f);
  expect_corruption([&] { session.step(); }, "gradient handoff CRC");
  EXPECT_EQ(session.guard_counters().handoff_failures.load(), 1L);
}

TEST(SdcTrainSession, WeightFlipCaughtBySentinel) {
  runtime::TrainSession session(session_options(all_guards()));
  session.step();
  auto& value = session.model().block(1).params()[1].value;
  faults::flip_float_bit(value.data(), value.numel(), 3, 11);
  expect_corruption([&] { session.step(); }, "weight-state checksum");
  EXPECT_EQ(session.guard_counters().weight_failures.load(), 1L);
  EXPECT_EQ(session.iteration(), 1);
}

TEST(SdcTrainSession, OptimizerMomentFlipCaughtBySentinel) {
  runtime::TrainSession session(session_options(all_guards()));
  session.step();  // Adam moments exist after one step
  runtime::AdamState st = session.optimizer().state();
  ASSERT_GT(st.t, 0);
  ASSERT_FALSE(st.m.empty());
  faults::flip_float_bit(st.m[2].data(), st.m[2].size(), 1, 18);
  session.optimizer().set_state(std::move(st));
  expect_corruption([&] { session.step(); }, "weight-state checksum");
}

// Satellite: a non-finite loss fails loudly and typed even with every
// guard OFF -- silent NaN training is never acceptable.
TEST(SdcTrainSession, NonFiniteLossFailsTyped) {
  runtime::TrainSession session(session_options({}));
  session.step();
  // Poison one embedding weight: the forward pass drags the NaN through to
  // the loss, which the unconditional backstop must catch and type.
  auto& value = session.model().block(0).params()[0].value;
  value.data()[0] = std::numeric_limits<float>::quiet_NaN();
  const std::string what =
      expect_corruption([&] { session.step(); }, "non-finite loss");
  EXPECT_NE(what.find("step 1"), std::string::npos) << what;
  EXPECT_GE(session.guard_counters().nonfinite_failures.load(), 1L);
  EXPECT_EQ(session.iteration(), 1);  // rewound, retryable
}

TEST(SdcTrainSession, GuardsOffIsBitwiseIdenticalToGuardsOn) {
  runtime::TrainSession off(session_options({}));
  runtime::TrainSession on(session_options(all_guards()));
  faults::SdcInjector idle;  // armed with nothing
  on.run_options().sdc = &idle;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(off.step(), on.step()) << "step " << i;
  }
  EXPECT_EQ(off.capture(), on.capture());
  EXPECT_GE(on.guard_counters().handoff_checks.load(), 1L);
  EXPECT_EQ(on.guard_counters().handoff_failures.load(), 0L);
}

// ------------------------------------------------- verified-clean stamps

TEST(SdcVerifiedCheckpoint, RequireVerifiedFallsBackToStampedCandidate) {
  ckpt::MemStorage mem;
  ckpt::CheckpointWriter writer(mem, "ck", {3});
  runtime::TrainSession session(session_options(all_guards()));
  session.step();
  const ckpt::TrainState verified_state = session.capture();
  const std::uint32_t crc = guard::weight_state_crc(verified_state);
  writer.write(verified_state, &crc);
  session.step();
  const ckpt::TrainState unverified_state = session.capture();
  writer.write(unverified_state, nullptr);  // newer but unstamped

  ckpt::CheckpointReader reader(mem, "ck");
  // Plain restore prefers the newest candidate and reports its stamp state.
  const ckpt::RestoreResult plain = reader.restore();
  EXPECT_EQ(plain.state, unverified_state);
  EXPECT_FALSE(plain.candidates.back().verified);
  // require_verified skips it and lands on the stamped generation, with
  // the skip reason recorded on the newer candidate.
  const ckpt::RestoreResult strict =
      reader.restore({/*require_verified=*/true});
  EXPECT_EQ(strict.state, verified_state);
  EXPECT_TRUE(strict.candidates.back().verified);
  ASSERT_GE(strict.candidates.size(), 2u);
  EXPECT_FALSE(strict.candidates.front().valid);
  EXPECT_NE(strict.candidates.front().reason.find("verified-clean"),
            std::string::npos);
}

TEST(SdcVerifiedCheckpoint, TamperedStampRejectedUnderRequireVerified) {
  ckpt::MemStorage mem;
  ckpt::CheckpointWriter writer(mem, "ck");
  runtime::TrainSession session(session_options(all_guards()));
  session.step();
  const ckpt::TrainState state = session.capture();
  const std::uint32_t crc = guard::weight_state_crc(state);
  writer.write(state, &crc);
  ckpt::CheckpointReader reader(mem, "ck");
  EXPECT_TRUE(reader.restore({true}).candidates.back().verified);

  // Corrupt the stamp file: the candidate's records still validate, but it
  // may no longer claim verified-clean.
  const std::string dir = reader.restore().dir;
  std::string stamp = mem.read_file(dir + "/VERIFIED");
  stamp[stamp.size() / 2] ^= 0x01;
  mem.write_file(dir + "/VERIFIED", stamp);
  EXPECT_FALSE(reader.restore().candidates.back().verified);
  try {
    reader.restore({true});
    FAIL() << "restored from a tampered stamp";
  } catch (const ckpt::CkptError& e) {
    EXPECT_NE(std::string(e.what()).find("verified-clean"),
              std::string::npos);
  }
}

TEST(SdcVerifiedCheckpoint, SessionStampsWhenWeightGuardOn) {
  ckpt::MemStorage mem;
  auto opts = session_options(all_guards());
  opts.ckpt_dir = "ck";
  opts.ckpt_interval = 1;
  opts.storage = &mem;
  runtime::TrainSession session(opts);
  session.step();
  ckpt::CheckpointReader reader(mem, "ck");
  const ckpt::RestoreResult r = reader.restore({/*require_verified=*/true});
  EXPECT_EQ(r.state, session.capture());
  EXPECT_TRUE(r.candidates.back().verified);
}

// ------------------------------------------------------- corruption soak

TEST(SdcSupervisor, CorruptionSoakRecoversBitIdentical) {
  const int steps = 8;
  supervisor::ChaosScriptOptions copts;
  copts.steps = steps;
  copts.devices = 3;
  copts.ops_per_device = 8;
  copts.incidents = 4;
  copts.classes = {supervisor::ChaosKind::CorruptActivation,
                   supervisor::ChaosKind::CorruptGradient,
                   supervisor::ChaosKind::CorruptWeight,
                   supervisor::ChaosKind::CorruptOptimizer};
  const supervisor::ChaosScript script =
      supervisor::ChaosScript::sample(copts, 21);
  ASSERT_EQ(script.events.size(), 4u);

  supervisor::SupervisorOptions o;
  o.session = session_options(all_guards());
  o.session.ckpt_dir = testing::TempDir() + "/sdc_soak_ck";
  o.session.ckpt_interval = 1;
  o.config = tiny_config();
  o.target_steps = steps;
  o.restart_budget = 14;
  o.watchdog.grace_ms = 10000;
  o.chaos = &script;
  std::filesystem::remove_all(o.session.ckpt_dir);

  supervisor::Supervisor sup(o);
  const supervisor::SupervisorReport report = sup.run();
  ASSERT_TRUE(report.completed) << report.abort_reason;
  EXPECT_EQ(report.of_class(supervisor::IncidentClass::Corruption).size(),
            script.events.size());

  runtime::TrainSession ref(session_options({}));
  for (int i = 0; i < steps; ++i) ref.step();
  EXPECT_EQ(sup.session().capture(), ref.capture());
  for (std::size_t i = 0; i < report.losses.size(); ++i) {
    EXPECT_EQ(report.losses[i], ref.losses()[i]) << "step " << i;
  }
}

}  // namespace
}  // namespace autopipe
