#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/atomic_file.h"
#include "util/backoff.h"
#include "util/checksum.h"
#include "util/cli.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace autopipe::util {
namespace {

// ---------------------------------------------------------------- stats

TEST(Stats, MeanAndStddevBasics) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(min_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
  EXPECT_DOUBLE_EQ(sum(xs), 40.0);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Stats, SummarizeAggregatesEverything) {
  const std::vector<double> xs{1, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.sum, 6.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Stats, MedianOddEvenAndUnsorted) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{5}), 5.0);
}

TEST(Stats, MedianIgnoresNansAndHandlesEmpty) {
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{nan, nan}), 0.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{nan, 7.0, nan, 9.0}), 8.0);
}

TEST(Stats, TrimmedMeanDropsOutliers) {
  // 20% trim of 10 samples drops the 2 extremes (1000 and -1000).
  const std::vector<double> xs{1, 2, 3, 4, 1000, -1000, 5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.1), 4.5);
  // frac 0 is the plain mean.
  EXPECT_DOUBLE_EQ(trimmed_mean(std::vector<double>{1, 2, 3}, 0.0), 2.0);
}

TEST(Stats, TrimmedMeanEdgeCases) {
  EXPECT_DOUBLE_EQ(trimmed_mean({}, 0.2), 0.0);
  // Trimming everything falls back to the median.
  EXPECT_DOUBLE_EQ(trimmed_mean(std::vector<double>{1, 9}, 0.5), 5.0);
  // Out-of-range fracs are clamped, NaNs dropped before trimming.
  const double nan = std::nan("");
  EXPECT_DOUBLE_EQ(trimmed_mean(std::vector<double>{nan, 2, 4}, -1.0), 3.0);
  EXPECT_DOUBLE_EQ(trimmed_mean(std::vector<double>{nan}, 0.2), 0.0);
}

TEST(Stats, WelfordMatchesBatchStats) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_DOUBLE_EQ(w.mean(), mean(xs));
  EXPECT_NEAR(w.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
  const Summary s = w.summary();
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Stats, WelfordEmptyAndNan) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  w.add(std::nan(""));
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.nan_count(), 1u);
  w.add(3.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit in 200 draws
}

TEST(Rng, GaussianHasReasonableMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------------------------------------------------------------- table

TEST(Table, AsciiAlignsAndCsvEscapes) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b,c", "2"});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("| name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"b,c\""), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row(0).size(), 3u);
  EXPECT_EQ(t.row(0)[1], "");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"x"});
  t.add_row({"42"});
  const std::string path = testing::TempDir() + "/autopipe_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "x\n");
  std::fclose(f);
}

// ------------------------------------------------------------------ cli

TEST(Cli, ParsesAllFlagForms) {
  const char* argv[] = {"prog",  "--model",  "gpt2-345m", "--stages=4",
                        "pos1",  "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get("model", ""), "gpt2-345m");
  EXPECT_EQ(cli.get_int("stages", 0), 4);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
}

TEST(Cli, BooleanFollowedByFlag) {
  const char* argv[] = {"prog", "--flag", "--other", "7"};
  Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_int("other", 0), 7);
}

TEST(Cli, ExplicitFalse) {
  const char* argv[] = {"prog", "--opt=false"};
  Cli cli(2, argv);
  EXPECT_FALSE(cli.get_bool("opt", true));
}

TEST(Cli, CheckedDoubleAcceptsInRangeValues) {
  const char* argv[] = {"prog", "--prob=0.25", "--quantile", "99.9"};
  Cli cli(4, argv);
  EXPECT_DOUBLE_EQ(cli.checked_double("prob", 0.5, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cli.checked_double("quantile", 95.0, 0.0, 100.0), 99.9);
  // Absent flag -> fallback, even when the fallback is outside the range
  // (the range constrains user input, not the program's default).
  EXPECT_DOUBLE_EQ(cli.checked_double("missing", 0.5, 0.0, 1.0), 0.5);
}

TEST(Cli, CheckedDoubleRejectsGarbageAndOutOfRange) {
  const char* argv[] = {"prog",           "--prob=banana", "--trail=0.5x",
                        "--notfinite=nan", "--big=1e9",    "--inf=inf"};
  Cli cli(6, argv);
  EXPECT_THROW(cli.checked_double("prob", 0.5, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(cli.checked_double("trail", 0.5, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(cli.checked_double("notfinite", 0.5, 0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(cli.checked_double("inf", 0.5, 0.0, 1e30),
               std::invalid_argument);
  EXPECT_THROW(cli.checked_double("big", 0.5, 0.0, 1.0),
               std::invalid_argument);
  // The error names the offending flag.
  try {
    cli.checked_double("prob", 0.5, 0.0, 1.0);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("prob"), std::string::npos);
  }
}

// ------------------------------------------------------------- checksum

TEST(Checksum, Crc32MatchesKnownVectors) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32_hex(crc32("123456789")), "cbf43926");
}

TEST(Checksum, IncrementalMatchesOneShot) {
  Crc32 crc;
  crc.update("1234");
  crc.update("56789");
  EXPECT_EQ(crc.value(), crc32("123456789"));
  EXPECT_NE(crc32("123456789"), crc32("123456788"));
}

// ---------------------------------------------------------- atomic file

TEST(AtomicFile, WriteThenReadRoundTrip) {
  const std::string path = testing::TempDir() + "/util_atomic_file_test.txt";
  const std::string payload = std::string("line one\nline two\n\0bin", 22);
  ASSERT_TRUE(atomic_write_file(path, payload));
  std::string back;
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, payload);
  // Overwrite is atomic-replace, not append.
  ASSERT_TRUE(atomic_write_file(path, "v2"));
  ASSERT_TRUE(read_file(path, back));
  EXPECT_EQ(back, "v2");
  std::remove(path.c_str());
  EXPECT_FALSE(read_file(path, back));
  // Unwritable target reports failure instead of throwing.
  EXPECT_FALSE(atomic_write_file("/nonexistent-dir/x/y.txt", "z"));
}

// -------------------------------------------------------------- logging

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::info);
  EXPECT_EQ(parse_log_level("off"), LogLevel::off);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::warn);
}

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::error);
  EXPECT_EQ(log_level(), LogLevel::error);
  AP_LOG(debug) << "suppressed at error level";  // must not crash
  set_log_level(before);
}

TEST(Logging, LinesStayAtomicUnderConcurrentWriters) {
  // Many threads log multi-token messages concurrently; every line the
  // sink receives must be one intact message (the line-atomicity contract
  // the plan-service workers rely on).
  const LogLevel before = log_level();
  set_log_level(LogLevel::info);
  std::vector<std::string> captured;
  set_log_sink([&](const std::string& line) { captured.push_back(line); });

  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        AP_LOG(info) << "writer=" << t << " seq=" << i << " payload="
                     << "abcdefghijklmnopqrstuvwxyz" << " end=" << t;
      }
    });
  }
  for (auto& w : writers) w.join();
  set_log_sink({});
  set_log_level(before);

  ASSERT_EQ(captured.size(),
            static_cast<std::size_t>(kThreads) * kLines);
  std::set<std::pair<int, int>> seen;
  for (const std::string& line : captured) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    // Exactly one message per line: one "writer=" marker, and the trailing
    // "end=" id matches the leading one (an interleaved line breaks both).
    const auto w_pos = line.find("writer=");
    ASSERT_NE(w_pos, std::string::npos) << line;
    EXPECT_EQ(line.find("writer=", w_pos + 1), std::string::npos) << line;
    int writer = -1;
    int seq = -1;
    int tail = -1;
    const char* fields = line.c_str() + w_pos;
    ASSERT_EQ(std::sscanf(fields,
                          "writer=%d seq=%d payload=abcdefghijklmnopqrstuvwxyz"
                          " end=%d",
                          &writer, &seq, &tail),
              3)
        << line;
    EXPECT_EQ(writer, tail) << line;
    EXPECT_TRUE(seen.emplace(writer, seq).second) << line;
  }
  EXPECT_EQ(seen.size(), captured.size());
}

// ---------------------------------------------------------------- backoff

TEST(Backoff, DefaultIsClassicExponentialDoubling) {
  // jitter_frac = 0 must reproduce the base * multiplier^k sequence the
  // pre-extraction retry loops computed inline -- bit-exactly.
  BackoffOptions opts;
  opts.base_ms = 0.5;
  opts.multiplier = 2.0;
  Backoff b(opts);
  EXPECT_DOUBLE_EQ(b.next_ms(), 0.5);
  EXPECT_DOUBLE_EQ(b.next_ms(), 1.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 2.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 4.0);
  EXPECT_EQ(b.attempts(), 4);
}

TEST(Backoff, CapsAtMaxAndNeverOverflows) {
  BackoffOptions opts;
  opts.base_ms = 10.0;
  opts.multiplier = 10.0;
  opts.max_ms = 250.0;
  Backoff b(opts);
  EXPECT_DOUBLE_EQ(b.next_ms(), 10.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 100.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 250.0);  // 1000 clamped
  // Saturated: many more attempts stay exactly at the cap (no inf/NaN from
  // the internal growth).
  for (int i = 0; i < 200; ++i) EXPECT_DOUBLE_EQ(b.next_ms(), 250.0);
}

TEST(Backoff, JitterStaysInBandAndIsSeeded) {
  BackoffOptions opts;
  opts.base_ms = 8.0;
  opts.multiplier = 1.0;  // isolate the jitter factor
  opts.jitter_frac = 0.25;
  opts.seed = 42;
  Backoff a(opts), b(opts);
  bool saw_jitter = false;
  for (int i = 0; i < 64; ++i) {
    const double da = a.next_ms();
    EXPECT_GE(da, 8.0 * 0.75);
    EXPECT_LE(da, 8.0 * 1.25);
    EXPECT_DOUBLE_EQ(da, b.next_ms());  // same seed => same sequence
    if (da != 8.0) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
  // A different seed decorrelates.
  opts.seed = 43;
  Backoff c(opts);
  a.reset();
  bool differs = false;
  for (int i = 0; i < 64; ++i) differs |= (a.next_ms() != c.next_ms());
  EXPECT_TRUE(differs);
}

TEST(Backoff, ResetReplaysTheExactSequence) {
  BackoffOptions opts;
  opts.base_ms = 1.0;
  opts.jitter_frac = 0.5;
  opts.seed = 7;
  Backoff b(opts);
  std::vector<double> first;
  for (int i = 0; i < 16; ++i) first.push_back(b.next_ms());
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(b.next_ms(), first[i]);
}

TEST(Backoff, RejectsIllFormedOptions) {
  BackoffOptions bad;
  bad.base_ms = -1.0;
  EXPECT_THROW(Backoff{bad}, std::invalid_argument);
  bad = {};
  bad.multiplier = 0.5;
  EXPECT_THROW(Backoff{bad}, std::invalid_argument);
  bad = {};
  bad.max_ms = 0.0;
  EXPECT_THROW(Backoff{bad}, std::invalid_argument);
  bad = {};
  bad.jitter_frac = 1.0;
  EXPECT_THROW(Backoff{bad}, std::invalid_argument);
  bad = {};
  bad.jitter_frac = -0.1;
  EXPECT_THROW(Backoff{bad}, std::invalid_argument);
}

TEST(Backoff, SleepForNonPositiveIsANoop) {
  // No timing assertion needed -- just must return immediately and not
  // throw for the degenerate inputs retry loops produce.
  Backoff::sleep_for_ms(0.0);
  Backoff::sleep_for_ms(-5.0);
}

}  // namespace
}  // namespace autopipe::util
