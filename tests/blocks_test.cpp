#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "model/blocks.h"
#include "model/transformer.h"

namespace autopipe::model {
namespace {

/// Scalar loss over a block's output: weighted sum (fixed weights), so
/// finite differences can validate both input and parameter gradients.
class BlockGradCheck {
 public:
  BlockGradCheck(Block& block, const Tensor& x, std::uint64_t seed)
      : block_(block), x_(x) {
    util::Rng rng(seed);
    weights_ = Tensor::randn(block.forward(x).shape(), rng);
  }

  double loss(const Tensor& x) const {
    const Tensor y = block_.forward(x);
    double acc = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) acc += y.at(i) * weights_.at(i);
    return acc;
  }

  /// Analytic gradients via the block's recompute backward.
  Tensor analytic_dx() {
    block_.zero_grads();
    return block_.backward(x_, weights_);
  }

  double numeric_dx(std::size_t index, double eps = 1e-3) const {
    Tensor x = x_;
    const float saved = x.at(index);
    x.data()[index] = static_cast<float>(saved + eps);
    const double plus = loss(x);
    x.data()[index] = static_cast<float>(saved - eps);
    const double minus = loss(x);
    return (plus - minus) / (2 * eps);
  }

  double numeric_dparam(std::size_t param, std::size_t index,
                        double eps = 1e-3) {
    Tensor& value = block_.params()[param].value;
    const float saved = value.at(index);
    value.data()[index] = static_cast<float>(saved + eps);
    const double plus = loss(x_);
    value.data()[index] = static_cast<float>(saved - eps);
    const double minus = loss(x_);
    value.data()[index] = saved;
    return (plus - minus) / (2 * eps);
  }

 private:
  Block& block_;
  Tensor x_;
  Tensor weights_;
};

constexpr double kTol = 5e-2;

TEST(Blocks, FFNGradients) {
  util::Rng rng(21);
  ResidualFFNBlock block(8, rng);
  const Tensor x = Tensor::randn({6, 8}, rng);
  BlockGradCheck check(block, x, 99);
  const Tensor dx = check.analytic_dx();
  for (std::size_t i : {std::size_t{0}, std::size_t{17}, std::size_t{40}}) {
    EXPECT_NEAR(dx.at(i), check.numeric_dx(i), kTol);
  }
  // Spot-check one gradient entry of every parameter tensor.
  for (std::size_t p = 0; p < block.params().size(); ++p) {
    const std::size_t idx = block.params()[p].value.numel() / 2;
    EXPECT_NEAR(block.params()[p].grad.at(idx), check.numeric_dparam(p, idx),
                kTol)
        << block.params()[p].name;
  }
}

TEST(Blocks, AttentionGradientsCausal) {
  util::Rng rng(22);
  const int hidden = 8, heads = 2, seq = 4;
  ResidualAttentionBlock block(hidden, heads, seq, /*causal=*/true, rng);
  const Tensor x = Tensor::randn({2 * seq, hidden}, rng);  // batch of 2
  BlockGradCheck check(block, x, 100);
  const Tensor dx = check.analytic_dx();
  for (std::size_t i : {std::size_t{0}, std::size_t{13}, std::size_t{37},
                        std::size_t{63}}) {
    EXPECT_NEAR(dx.at(i), check.numeric_dx(i), kTol) << "input " << i;
  }
  for (std::size_t p = 0; p < block.params().size(); ++p) {
    const std::size_t idx = block.params()[p].value.numel() / 3;
    EXPECT_NEAR(block.params()[p].grad.at(idx), check.numeric_dparam(p, idx),
                kTol)
        << block.params()[p].name;
  }
}

TEST(Blocks, AttentionGradientsBidirectional) {
  util::Rng rng(23);
  ResidualAttentionBlock block(8, 2, 4, /*causal=*/false, rng);
  const Tensor x = Tensor::randn({4, 8}, rng);
  BlockGradCheck check(block, x, 101);
  const Tensor dx = check.analytic_dx();
  for (std::size_t i : {std::size_t{2}, std::size_t{19}}) {
    EXPECT_NEAR(dx.at(i), check.numeric_dx(i), kTol);
  }
}

TEST(Blocks, CausalMaskBlocksFutureInfluence) {
  util::Rng rng(24);
  const int seq = 4, hidden = 8;
  ResidualAttentionBlock block(hidden, 2, seq, /*causal=*/true, rng);
  Tensor x = Tensor::randn({seq, hidden}, rng);
  const Tensor y0 = block.forward(x);
  // Perturb the LAST position; earlier outputs must not change.
  x.data()[(seq - 1) * hidden] += 10.0f;
  const Tensor y1 = block.forward(x);
  for (int i = 0; i < (seq - 1) * hidden; ++i) {
    EXPECT_FLOAT_EQ(y0.at(i), y1.at(i)) << "leaked future at " << i;
  }
  // And the last position does change.
  EXPECT_NE(y0.at((seq - 1) * hidden), y1.at((seq - 1) * hidden));
}

TEST(Blocks, HeadGradients) {
  util::Rng rng(25);
  HeadBlock block(8, 12, rng);
  const Tensor x = Tensor::randn({5, 8}, rng);
  BlockGradCheck check(block, x, 102);
  const Tensor dx = check.analytic_dx();
  for (std::size_t i : {std::size_t{1}, std::size_t{22}}) {
    EXPECT_NEAR(dx.at(i), check.numeric_dx(i), kTol);
  }
  EXPECT_NEAR(block.params()[2].grad.at(10), check.numeric_dparam(2, 10),
              kTol);
}

TEST(Blocks, EmbeddingForwardAndGrads) {
  util::Rng rng(26);
  const int vocab = 16, hidden = 8, seq = 4;
  EmbeddingBlock block(vocab, hidden, seq, rng);
  Tensor ids({seq, 1});
  ids.data()[0] = 3; ids.data()[1] = 0; ids.data()[2] = 3; ids.data()[3] = 15;
  const Tensor y = block.forward(ids);
  EXPECT_EQ(y.dim(0), seq);
  EXPECT_EQ(y.dim(1), hidden);
  // y = tok[id] + pos[row].
  EXPECT_FLOAT_EQ(y.at(0), block.params()[0].value.at(3 * hidden) +
                               block.params()[1].value.at(0));
  block.zero_grads();
  const Tensor dy = Tensor::full({seq, hidden}, 1.0f);
  const Tensor dx = block.backward(ids, dy);
  EXPECT_EQ(dx.shape(), ids.shape());
  // Token 3 hit twice.
  EXPECT_FLOAT_EQ(block.params()[0].grad.at(3 * hidden), 2.0f);
  EXPECT_FLOAT_EQ(block.params()[1].grad.at(0), 1.0f);
  Tensor bad({2, 1});
  bad.data()[0] = 99;
  EXPECT_THROW(block.forward(bad), std::invalid_argument);
}

TEST(Blocks, ResidualPathIdentityAtZeroWeights) {
  // With all projection weights at zero (but LN active), residual blocks
  // reduce to x + f(LN(x)) where f is affine-with-zero-weight = bias only.
  util::Rng rng(27);
  ResidualFFNBlock block(8, rng);
  for (auto& p : block.params()) {
    if (p.name.rfind("w_", 0) == 0) p.value.fill_(0.0f);
  }
  const Tensor x = Tensor::randn({3, 8}, rng);
  const Tensor y = block.forward(x);
  EXPECT_NEAR(max_abs_diff(x, y), 0.0, 1e-6);
}

TEST(Blocks, ZeroGradsClearsEverything) {
  util::Rng rng(28);
  ResidualFFNBlock block(8, rng);
  const Tensor x = Tensor::randn({4, 8}, rng);
  block.backward(x, Tensor::full({4, 8}, 1.0f));
  double before = 0;
  for (const auto& p : block.params()) {
    for (std::size_t i = 0; i < p.grad.numel(); ++i) {
      before += std::abs(p.grad.at(i));
    }
  }
  EXPECT_GT(before, 0.0);
  block.zero_grads();
  for (const auto& p : block.params()) {
    for (std::size_t i = 0; i < p.grad.numel(); ++i) {
      EXPECT_FLOAT_EQ(p.grad.at(i), 0.0f);
    }
  }
}

// Cached (no-recompute) path: forward_cached + backward_cached must equal
// forward + backward for every block type -- both the returned dx and the
// accumulated parameter gradients.
TEST(Blocks, CachedBackwardMatchesRecompute) {
  util::Rng rng(31);
  const int hidden = 8, heads = 2, seq = 4, vocab = 12;
  std::vector<std::unique_ptr<Block>> blocks;
  blocks.push_back(std::make_unique<EmbeddingBlock>(vocab, hidden, seq, rng));
  blocks.push_back(std::make_unique<ResidualAttentionBlock>(hidden, heads,
                                                            seq, true, rng));
  blocks.push_back(std::make_unique<ResidualFFNBlock>(hidden, rng));
  blocks.push_back(std::make_unique<HeadBlock>(hidden, vocab, rng));

  Tensor x({seq, 1});
  for (int i = 0; i < seq; ++i) {
    x.data()[i] = static_cast<float>(rng.next_below(vocab));
  }
  for (auto& block : blocks) {
    // Same forward output.
    Tensor y_cached;
    auto cache = block->forward_cached(x, &y_cached);
    const Tensor y_plain = block->forward(x);
    EXPECT_LT(max_abs_diff(y_cached, y_plain), 1e-6) << block->kind();
    EXPECT_GT(block->cache_bytes(x), 0u);

    // Same gradients.
    const Tensor dy = Tensor::full(y_plain.shape(), 0.5f);
    block->zero_grads();
    const Tensor dx_plain = block->backward(x, dy);
    std::vector<Tensor> grads_plain;
    for (const auto& p : block->params()) grads_plain.push_back(p.grad);

    block->zero_grads();
    const Tensor dx_cached = block->backward_cached(*cache, dy);
    EXPECT_LT(max_abs_diff(dx_plain, dx_cached), 1e-5) << block->kind();
    for (std::size_t p = 0; p < block->params().size(); ++p) {
      EXPECT_LT(max_abs_diff(grads_plain[p], block->params()[p].grad), 1e-5)
          << block->kind() << "/" << block->params()[p].name;
    }
    x = y_plain;
  }
}

// Stronger than the tolerance check above: the cached path re-derives any
// recomputed intermediate through the exact same kernels and expressions
// the recompute path uses (e.g. normed = normalized*gamma + beta is the
// layernorm forward's own output expression), so dx and every parameter
// gradient must match BITWISE -- per block type and on ragged token/hidden
// shapes that straddle the fast kernels' panel edges.
TEST(Blocks, CachedBackwardBitIdenticalOnRaggedShapes) {
  for (const auto& [hidden, heads, seq, batch] :
       std::vector<std::array<int, 4>>{
           {8, 2, 4, 1}, {24, 3, 5, 3}, {16, 2, 7, 5}, {36, 4, 3, 11}}) {
    SCOPED_TRACE(testing::Message() << "hidden=" << hidden << " heads="
                                    << heads << " seq=" << seq
                                    << " batch=" << batch);
    util::Rng rng(1000 + hidden + batch);
    const int vocab = 19, tokens = batch * seq;
    std::vector<std::unique_ptr<Block>> blocks;
    blocks.push_back(
        std::make_unique<EmbeddingBlock>(vocab, hidden, seq, rng));
    blocks.push_back(std::make_unique<ResidualAttentionBlock>(hidden, heads,
                                                              seq, true, rng));
    blocks.push_back(std::make_unique<ResidualFFNBlock>(hidden, rng));
    blocks.push_back(std::make_unique<HeadBlock>(hidden, vocab, rng));

    Tensor x({tokens, 1});
    for (int i = 0; i < tokens; ++i) {
      x.data()[i] = static_cast<float>(rng.next_below(vocab));
    }
    for (auto& block : blocks) {
      Tensor y_cached;
      auto cache = block->forward_cached(x, &y_cached);
      const Tensor y_plain = block->forward(x);
      ASSERT_EQ(std::memcmp(y_cached.data(), y_plain.data(),
                            y_plain.numel() * sizeof(float)),
                0)
          << block->kind() << ": cached forward differs";

      const Tensor dy = Tensor::randn(y_plain.shape(), rng);
      block->zero_grads();
      const Tensor dx_plain = block->backward(x, dy);
      std::vector<Tensor> grads_plain;
      for (const auto& p : block->params()) grads_plain.push_back(p.grad);

      block->zero_grads();
      const Tensor dx_cached = block->backward_cached(*cache, dy);
      ASSERT_EQ(std::memcmp(dx_plain.data(), dx_cached.data(),
                            dx_plain.numel() * sizeof(float)),
                0)
          << block->kind() << ": cached dx differs";
      for (std::size_t p = 0; p < block->params().size(); ++p) {
        ASSERT_EQ(std::memcmp(grads_plain[p].data(),
                              block->params()[p].grad.data(),
                              grads_plain[p].numel() * sizeof(float)),
                  0)
            << block->kind() << "/" << block->params()[p].name;
      }
      x = y_plain;
    }
  }
}

TEST(Blocks, SelectiveCachingKeepsMoreForFFN) {
  // The FFN override keeps pre-activation/activation; the attention block
  // falls back to input-only checkpointing (Megatron's selective policy).
  util::Rng rng(32);
  ResidualFFNBlock ffn(8, rng);
  ResidualAttentionBlock attn(8, 2, 4, true, rng);
  const Tensor x = Tensor::randn({4, 8}, rng);
  EXPECT_GT(ffn.cache_bytes(x), attn.cache_bytes(x));
  EXPECT_EQ(attn.cache_bytes(x), x.numel() * sizeof(float));
}

TEST(Blocks, TransformerModelAssembly) {
  TinySpec spec;
  spec.layers = 3;
  TransformerModel model(spec);
  EXPECT_EQ(model.num_blocks(), 2 * 3 + 2);
  EXPECT_STREQ(model.block(0).kind(), "Embedding");
  EXPECT_STREQ(model.block(1).kind(), "ResidualAttentionBlock");
  EXPECT_STREQ(model.block(2).kind(), "ResidualFFNBlock");
  EXPECT_STREQ(model.block(7).kind(), "FinalNormHead");
  EXPECT_GT(model.param_count(), 0u);
}

TEST(Blocks, ForwardIsPure) {
  TinySpec spec;
  TransformerModel model(spec);
  util::Rng rng(30);
  Tensor ids({spec.seq, 1});
  for (int i = 0; i < spec.seq; ++i) {
    ids.data()[i] = static_cast<float>(rng.next_below(spec.vocab));
  }
  const Tensor a = model.forward(ids);
  const Tensor b = model.forward(ids);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.0);
}

}  // namespace
}  // namespace autopipe::model
