// Arena allocator suite: seeded alloc/free storms with poison-fill
// checksums (reuse must never overlap live buffers), high-water accounting
// against the cost model's memory prediction, steady-state hit-rate
// regressions for the training loop (zero mallocs on the hot path), and a
// concurrent-stage allocation test for TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "costmodel/memory.h"
#include "model/arena.h"
#include "model/tensor.h"
#include "runtime/train_session.h"
#include "util/rng.h"

namespace autopipe::model {
namespace {

/// Deterministic per-buffer fill pattern derived from a tag.
float pattern(std::uint64_t tag, std::size_t i) {
  return static_cast<float>((tag * 2654435761u + i * 40503u) & 0xffff);
}

TEST(Arena, SeededAllocFreeStormNeverOverlapsLiveBuffers) {
  // Random storm of allocations and frees. Every live buffer is filled
  // with its own pattern at birth and verified just before death: if the
  // arena ever handed the same granule range to two live buffers, one
  // pattern would trample the other.
  util::Rng rng(2024);
  struct Live {
    ArenaBuffer buf;
    std::uint64_t tag;
  };
  std::vector<Live> live;
  for (int step = 0; step < 4000; ++step) {
    const bool grow = live.empty() || rng.next_below(100) < 55;
    if (grow) {
      const std::size_t numel = 1 + rng.next_below(3000);
      Live entry{ArenaBuffer(numel, /*zeroed=*/false),
                 static_cast<std::uint64_t>(step)};
      for (std::size_t i = 0; i < numel; ++i) {
        entry.buf.data()[i] = pattern(entry.tag, i);
      }
      live.push_back(std::move(entry));
    } else {
      const std::size_t victim = rng.next_below(live.size());
      const Live& entry = live[victim];
      for (std::size_t i = 0; i < entry.buf.size(); ++i) {
        ASSERT_EQ(entry.buf.data()[i], pattern(entry.tag, i))
            << "buffer " << victim << " trampled at " << i;
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  for (const Live& entry : live) {
    for (std::size_t i = 0; i < entry.buf.size(); ++i) {
      ASSERT_EQ(entry.buf.data()[i], pattern(entry.tag, i));
    }
  }
}

TEST(Arena, FreedBlocksAreReusedBySizeClass) {
  const auto before = Arena::global().stats();
  { ArenaBuffer warm(512); }  // seed the 512-granule free list
  ArenaBuffer again(512);
  const auto after = Arena::global().stats();
  EXPECT_GE(after.hits, before.hits + 1) << "free-listed block not reused";
}

TEST(Arena, StatsBalanceAcrossAllocRelease) {
  const auto before = Arena::global().stats();
  {
    ArenaBuffer a(1000), b(64), c(1);
    const auto during = Arena::global().stats();
    // 1000 -> 1024, 64 -> 64, 1 -> 64 granule rounding.
    EXPECT_EQ(during.bytes_in_use - before.bytes_in_use,
              (1024 + 64 + 64) * sizeof(float));
    EXPECT_GE(during.high_water_bytes, during.bytes_in_use);
  }
  const auto after = Arena::global().stats();
  EXPECT_EQ(after.bytes_in_use, before.bytes_in_use);
}

TEST(Arena, ReserveMakesFollowingAllocationsSlabFree)
{
  Arena& arena = Arena::global();
  arena.reserve(32u << 20);  // 32 MiB spare
  const auto before = arena.stats();
  std::vector<ArenaBuffer> bufs;
  std::size_t total = 0;
  while (total < (24u << 20)) {  // allocate 24 MiB out of the 32 spare
    bufs.emplace_back(4096);
    total += 4096 * sizeof(float);
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.slab_allocs, before.slab_allocs)
      << "allocation within reserved capacity grew a slab";
}

TEST(Arena, ConcurrentStageAllocationIsRaceFree) {
  // Four "stages" hammering the shared arena concurrently -- the TSan CI
  // job runs this binary to prove the single-lock design is race free.
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      util::Rng rng(100 + w);
      for (int step = 0; step < 500; ++step) {
        ArenaBuffer buf(1 + rng.next_below(2000), /*zeroed=*/false);
        buf.data()[0] = static_cast<float>(w);
        buf.data()[buf.size() - 1] = static_cast<float>(step);
        EXPECT_EQ(buf.data()[0], static_cast<float>(w));
      }
    });
  }
  for (std::thread& t : workers) t.join();
}

TEST(Arena, TensorCopiesAreCountedAndMovesAreNot) {
  const std::uint64_t before = ArenaBuffer::copy_count();
  Tensor a({8, 8});
  Tensor b = a;  // deep copy: counted
  EXPECT_EQ(ArenaBuffer::copy_count(), before + 1);
  const float* payload = b.data();
  Tensor c = std::move(b);  // move: pointer steal, not counted
  EXPECT_EQ(ArenaBuffer::copy_count(), before + 1);
  EXPECT_EQ(c.data(), payload) << "move must not reallocate";
}

class ArenaTrainLoop : public testing::Test {
 protected:
  static runtime::TrainSessionOptions tiny_options() {
    runtime::TrainSessionOptions opts;
    opts.spec.layers = 2;
    opts.spec.hidden = 16;
    opts.spec.heads = 2;
    opts.spec.vocab = 32;
    opts.spec.seq = 4;
    opts.counts = {3, 3};
    opts.micro_batch = 2;
    opts.num_micro_batches = 4;
    return opts;
  }
};

TEST_F(ArenaTrainLoop, SteadyStateIterationsMakeZeroMallocs) {
  // After the warmup iterations every tensor shape repeats, so the hot
  // path must run on size-class cache hits: zero mallocs (slab growth is
  // the only way the arena touches the system allocator) and a ~100% hit
  // rate. This pins the per-op allocation churn fix in linear_backward /
  // layernorm_backward -- a fresh malloc per op would grow slabs here.
  runtime::TrainSession session(tiny_options());
  session.step();  // warmup: first-touch allocations populate free lists
  session.step();
  const auto before = Arena::global().stats();
  constexpr int kSteps = 4;
  for (int i = 0; i < kSteps; ++i) session.step();
  const auto after = Arena::global().stats();
  EXPECT_EQ(after.slab_allocs, before.slab_allocs)
      << "steady-state malloc on hot path";
  // Thread interleaving can shift a transient peak past warmup's, so allow
  // a stray free-list miss, but the steady-state hit rate must stay ~100%.
  const std::uint64_t hits = after.hits - before.hits;
  const std::uint64_t misses = after.misses - before.misses;
  EXPECT_GT(hits, 0u);
  EXPECT_LE(misses, hits / 100) << "hot path misses the size-class cache";
}

TEST_F(ArenaTrainLoop, SteadyStateHandoffMakesNoPayloadCopies) {
  // Copy-free micro-batch handoff: channels and the stage stash move
  // tensors. The only counted copies per iteration are the m micro-batch
  // id injections at the first stage (tiny, and not activation payloads).
  const auto opts = tiny_options();
  runtime::TrainSession session(opts);
  session.step();
  const std::uint64_t before = ArenaBuffer::copy_count();
  session.step();
  const std::uint64_t per_step = ArenaBuffer::copy_count() - before;
  EXPECT_LE(per_step, static_cast<std::uint64_t>(opts.num_micro_batches));
}

TEST_F(ArenaTrainLoop, HighWaterStaysWithinMemoryModelPrediction) {
  // The cost model's per-stage prediction (the same formula
  // TrainSession::init_runtime reserves by, plus parameter state) must
  // upper-bound what training actually keeps live in the arena.
  const auto opts = tiny_options();
  const auto base = Arena::global().stats();

  runtime::TrainSession session(opts);
  for (int i = 0; i < 3; ++i) session.step();
  const auto after = Arena::global().stats();

  const int n = static_cast<int>(opts.counts.size());
  const double tokens =
      static_cast<double>(opts.micro_batch) * opts.spec.seq;
  const double per_block_stash =
      16.0 * tokens * opts.spec.hidden * sizeof(float);
  double predicted = 0;
  for (int s = 0; s < n; ++s) {
    costmodel::StageFootprint fp;
    fp.param_bytes = static_cast<double>(session.model().param_count()) *
                     sizeof(float) / n;
    fp.stash_bytes = opts.counts[s] * per_block_stash;
    fp.work_bytes = 4.0 * per_block_stash;
    const auto est = costmodel::stage_memory(
        fp, s, n, opts.kind, opts.num_micro_batches, 1,
        std::numeric_limits<double>::infinity());
    predicted += est.total_bytes;  // parameter state + stashes + work
  }
  EXPECT_LE(after.high_water_bytes,
            base.high_water_bytes + static_cast<std::size_t>(predicted))
      << "training exceeded the memory model's high-water prediction";
}

}  // namespace
}  // namespace autopipe::model
