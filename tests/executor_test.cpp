#include <gtest/gtest.h>

#include "core/simulator.h"
#include "sim/executor.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace autopipe::sim {
namespace {

using core::StageCost;

std::vector<StageCost> uniform_stages(int n, double f = 2.0, double b = 5.0) {
  return std::vector<StageCost>(n, StageCost{f, b});
}

TEST(Executor, SingleStageSequential) {
  const auto s = core::build_1f1b(uniform_stages(1, 2, 4), 5, 0.0);
  const auto r = execute(s);
  EXPECT_DOUBLE_EQ(r.iteration_ms, 30.0);
  EXPECT_DOUBLE_EQ(r.device_busy_ms[0], 30.0);
}

// Cross-validation: the event executor and the analytic simulator are two
// independent implementations of 1F1B timing; with zero overhead they must
// agree closely across random shapes (the simulator's Comm-outside-max
// convention makes it an upper bound within one comm per op chain).
struct XCase {
  int n, m;
  double comm;
  std::uint64_t seed;
};

class ExecutorVsSimulator : public testing::TestWithParam<XCase> {};

TEST_P(ExecutorVsSimulator, AgreeOnIterationTime) {
  const auto [n, m, comm, seed] = GetParam();
  util::Rng rng(seed);
  std::vector<StageCost> stages(n);
  for (auto& s : stages) {
    s.fwd_ms = rng.uniform(1.0, 3.0);
    s.bwd_ms = rng.uniform(2.0, 7.0);
  }
  const auto sim_result = core::simulate_pipeline(stages, m, comm);
  const auto exec_result = execute(core::build_1f1b(stages, m, comm));
  // The executor never exceeds the simulator (which over-charges comm when
  // the intra-stage dependency binds), and stays within the total slack of
  // one comm per hop chain.
  EXPECT_LE(exec_result.iteration_ms, sim_result.iteration_ms + 1e-6);
  EXPECT_GE(exec_result.iteration_ms,
            sim_result.iteration_ms - 2.0 * (n + m) * comm - 1e-6);
  EXPECT_NEAR(exec_result.startup_ms, sim_result.startup_ms, n * comm + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomShapes, ExecutorVsSimulator,
    testing::Values(XCase{2, 4, 0.1, 1}, XCase{3, 6, 0.0, 2},
                    XCase{4, 8, 0.3, 3}, XCase{4, 16, 0.2, 4},
                    XCase{6, 12, 0.1, 5}, XCase{8, 16, 0.05, 6},
                    XCase{5, 5, 0.2, 7}));

TEST(Executor, ZeroCommExactMatchWithSimulator) {
  // With comm = 0 the two implementations solve the same recurrence.
  util::Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(5));
    const int m = n + static_cast<int>(rng.next_below(10));
    std::vector<StageCost> stages(n);
    for (auto& s : stages) {
      s.fwd_ms = rng.uniform(1.0, 3.0);
      s.bwd_ms = rng.uniform(2.0, 7.0);
    }
    const auto sim_result = core::simulate_pipeline(stages, m, 0.0);
    const auto exec_result = execute(core::build_1f1b(stages, m, 0.0));
    EXPECT_NEAR(exec_result.iteration_ms, sim_result.iteration_ms, 1e-9);
  }
}

TEST(Executor, SlicingHalvesStartup) {
  const auto stages = uniform_stages(4, 4.0, 9.0);
  const auto plain = execute(core::build_1f1b(stages, 8, 0.5));
  const auto sliced = execute(core::build_sliced_1f1b(stages, 8, 0.5, 1));
  EXPECT_NEAR(sliced.startup_ms, plain.startup_ms / 2, 1e-9);
  EXPECT_LE(sliced.iteration_ms, plain.iteration_ms + 1e-9);
}

TEST(Executor, SlicingNeverSlowsBalancedPipelines) {
  util::Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(6));
    const int m = 2 * n;
    const double f = rng.uniform(1.0, 4.0);
    const auto stages = uniform_stages(n, f, 2.5 * f);
    const auto plain = execute(core::build_1f1b(stages, m, 0.2));
    for (int sliced = 1; sliced < n; ++sliced) {
      const auto s = execute(core::build_sliced_1f1b(stages, m, 0.2, sliced));
      EXPECT_LE(s.iteration_ms, plain.iteration_ms + 1e-9)
          << "n=" << n << " sliced=" << sliced;
    }
  }
}

TEST(Executor, PerOpOverheadAddsStableBias) {
  // Fig. 11's stable gap: actual (with launch overhead) > simulated, with
  // the same ordering across schemes.
  const auto stages = uniform_stages(4, 2.0, 5.0);
  const auto schedule = core::build_1f1b(stages, 8, 0.3);
  ExecOptions with_overhead;
  with_overhead.per_op_overhead_ms = 0.1;
  const auto plain = execute(schedule);
  const auto biased = execute(schedule, with_overhead);
  EXPECT_GT(biased.iteration_ms, plain.iteration_ms);
}

TEST(Executor, JitterIsDeterministicBySeed) {
  const auto schedule = core::build_1f1b(uniform_stages(3), 6, 0.2);
  ExecOptions opts;
  opts.jitter_frac = 0.05;
  opts.seed = 42;
  const auto a = execute(schedule, opts);
  const auto b = execute(schedule, opts);
  EXPECT_DOUBLE_EQ(a.iteration_ms, b.iteration_ms);
  opts.seed = 43;
  const auto c = execute(schedule, opts);
  EXPECT_NE(a.iteration_ms, c.iteration_ms);
}

TEST(Executor, AllreduceExtendsTheDrainingStage) {
  // Device 0 finishes last (cooldown drains toward stage 0), so its
  // all-reduce lands on the critical path; the last device's overlaps.
  const auto stages = uniform_stages(4, 2.0, 5.0);
  const auto schedule = core::build_1f1b(stages, 8, 0.0);
  const auto plain = execute(schedule);
  ExecOptions opts;
  opts.allreduce_ms = {3.0, 3.0, 3.0, 3.0};
  const auto hybrid = execute(schedule, opts);
  EXPECT_NEAR(hybrid.iteration_ms, plain.iteration_ms + 3.0, 1e-9);
  // Busy time excludes communication.
  EXPECT_DOUBLE_EQ(hybrid.device_busy_ms[0], plain.device_busy_ms[0]);
  // Wrong-size vector is rejected.
  opts.allreduce_ms = {3.0};
  EXPECT_THROW(execute(schedule, opts), std::invalid_argument);
}

TEST(Executor, OverlappedAllreduceOfEarlyFinishersIsFree) {
  // Give only the LAST stage an all-reduce: it finishes its ops long
  // before stage 0 drains, so a small reduce hides entirely.
  const auto stages = uniform_stages(4, 2.0, 5.0);
  const auto schedule = core::build_1f1b(stages, 8, 0.0);
  const auto plain = execute(schedule);
  ExecOptions opts;
  opts.allreduce_ms = {0.0, 0.0, 0.0, 3.0};
  const auto hybrid = execute(schedule, opts);
  EXPECT_DOUBLE_EQ(hybrid.iteration_ms, plain.iteration_ms);
}

TEST(Executor, InterleavedSchedulesExecute) {
  const std::vector<std::vector<StageCost>> chunks(
      4, std::vector<StageCost>(2, StageCost{1.0, 2.0}));
  const auto inter = execute(core::build_interleaved(chunks, 8, 0.1));
  const auto plain =
      execute(core::build_1f1b(uniform_stages(4, 2.0, 4.0), 8, 0.1));
  // The interleaved schedule halves startup (its chunks are half-size).
  EXPECT_LT(inter.startup_ms, plain.startup_ms * 0.75);
}

TEST(Executor, TraceIsSortedAndComplete) {
  const auto s = core::build_1f1b(uniform_stages(3), 6, 0.2);
  const auto r = execute(s);
  EXPECT_EQ(r.trace.size(), 2u * 3 * 6);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i - 1].start_ms, r.trace[i].start_ms);
  }
}

TEST(Executor, BusyTimeConservation) {
  const auto stages = uniform_stages(3, 2.0, 5.0);
  const auto r = execute(core::build_1f1b(stages, 6, 0.2));
  for (int dev = 0; dev < 3; ++dev) {
    EXPECT_NEAR(r.device_busy_ms[dev], 6 * (2.0 + 5.0), 1e-9);
  }
}

TEST(Metrics, BubbleFractionAndBalance) {
  const auto stages = uniform_stages(4, 2.0, 5.0);
  const auto r = execute(core::build_1f1b(stages, 8, 0.2));
  const auto m = analyze(r);
  EXPECT_GT(m.bubble_fraction, 0.0);
  EXPECT_LT(m.bubble_fraction, 0.5);
  EXPECT_NEAR(m.busy_stddev_ms, 0.0, 1e-9);  // balanced stages
  EXPECT_EQ(m.device_idle_ms.size(), 4u);
  // Deeper pipeline with the same per-stage cost has more bubble.
  const auto deep =
      analyze(execute(core::build_1f1b(uniform_stages(8, 2.0, 5.0), 8, 0.2)));
  EXPECT_GT(deep.bubble_fraction, m.bubble_fraction);
}

}  // namespace
}  // namespace autopipe::sim
