#include <gtest/gtest.h>

#include <numeric>

#include "core/balanced_dp.h"
#include "util/rng.h"

namespace autopipe::core {
namespace {

double max_stage_load(std::span<const double> loads,
                      const std::vector<int>& counts) {
  double worst = 0;
  int i = 0;
  for (int c : counts) {
    double acc = 0;
    for (int k = 0; k < c; ++k) acc += loads[i++];
    worst = std::max(worst, acc);
  }
  return worst;
}

/// Brute-force optimum over all contiguous splits (small n only).
double brute_force(std::span<const double> loads, int p) {
  const int n = static_cast<int>(loads.size());
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> cuts(p - 1);
  const std::function<void(int, int)> rec = [&](int idx, int from) {
    if (idx == p - 1) {
      std::vector<int> counts;
      int prev = 0;
      for (int c : cuts) {
        counts.push_back(c - prev);
        prev = c;
      }
      counts.push_back(n - prev);
      best = std::min(best, max_stage_load(loads, counts));
      return;
    }
    for (int c = from; c <= n - (p - 1 - idx); ++c) {
      cuts[idx] = c;
      rec(idx + 1, c + 1);
    }
  };
  if (p == 1) return std::accumulate(loads.begin(), loads.end(), 0.0);
  rec(0, 1);
  return best;
}

TEST(BalancedDp, SingleStageTakesEverything) {
  const std::vector<double> loads{1, 2, 3};
  EXPECT_EQ(balanced_counts(loads, 1), (std::vector<int>{3}));
  EXPECT_DOUBLE_EQ(balanced_bottleneck(loads, 1), 6.0);
}

TEST(BalancedDp, OneBlockPerStage) {
  const std::vector<double> loads{5, 1, 4};
  EXPECT_EQ(balanced_counts(loads, 3), (std::vector<int>{1, 1, 1}));
  EXPECT_DOUBLE_EQ(balanced_bottleneck(loads, 3), 5.0);
}

TEST(BalancedDp, KnownSplit) {
  // 8 equal blocks over 4 stages -> 2 each.
  const std::vector<double> loads(8, 1.0);
  EXPECT_EQ(balanced_counts(loads, 4), (std::vector<int>{2, 2, 2, 2}));
}

TEST(BalancedDp, HeavyTailPushesCutsLeft) {
  const std::vector<double> loads{1, 1, 1, 1, 10};
  const auto counts = balanced_counts(loads, 2);
  EXPECT_DOUBLE_EQ(max_stage_load(loads, counts), 10.0);
  EXPECT_EQ(counts.back(), 1);  // the heavy block sits alone
}

TEST(BalancedDp, RejectsBadDepths) {
  const std::vector<double> loads{1, 2};
  EXPECT_THROW(balanced_counts(loads, 0), std::invalid_argument);
  EXPECT_THROW(balanced_counts(loads, 3), std::invalid_argument);
}

TEST(BalancedDp, EveryStageNonEmptyAndCovering) {
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5 + static_cast<int>(rng.next_below(20));
    std::vector<double> loads(n);
    for (auto& l : loads) l = rng.uniform(0.1, 5.0);
    const int p = 1 + static_cast<int>(rng.next_below(n));
    const auto counts = balanced_counts(loads, p);
    ASSERT_EQ(static_cast<int>(counts.size()), p);
    int total = 0;
    for (int c : counts) {
      EXPECT_GE(c, 1);
      total += c;
    }
    EXPECT_EQ(total, n);
  }
}

// Property: the DP achieves the brute-force optimum (Algorithm 1 is exact
// for its minimize-max objective).
struct DpCase {
  int n, p;
  std::uint64_t seed;
};

class BalancedDpOptimality : public testing::TestWithParam<DpCase> {};

TEST_P(BalancedDpOptimality, MatchesBruteForce) {
  const auto [n, p, seed] = GetParam();
  util::Rng rng(seed);
  std::vector<double> loads(n);
  for (auto& l : loads) l = rng.uniform(0.5, 4.0);
  const auto counts = balanced_counts(loads, p);
  EXPECT_NEAR(max_stage_load(loads, counts), brute_force(loads, p), 1e-9);
  EXPECT_NEAR(balanced_bottleneck(loads, p), brute_force(loads, p), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BalancedDpOptimality,
    testing::Values(DpCase{6, 2, 1}, DpCase{6, 3, 2}, DpCase{8, 4, 3},
                    DpCase{9, 2, 4}, DpCase{10, 5, 5}, DpCase{10, 3, 6},
                    DpCase{12, 4, 7}, DpCase{12, 6, 8}, DpCase{7, 7, 9},
                    DpCase{11, 2, 10}));

TEST(BalancedDp, ModelConvenienceBalancesSubLayer) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const Partition p = balanced_partition(cfg, 4);
  EXPECT_EQ(p.num_stages(), 4);
  // The seeded scheme is already far more balanced than the uniform split.
  const auto loads = stage_loads(cfg, p);
  const double worst = *std::max_element(loads.begin(), loads.end());
  const double sum = std::accumulate(loads.begin(), loads.end(), 0.0);
  EXPECT_LT(worst, sum / 4 * 1.25);
}

}  // namespace
}  // namespace autopipe::core
