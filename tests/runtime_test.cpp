#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "faults/fault_plan.h"
#include "model/data.h"
#include "runtime/channel.h"
#include "runtime/optimizer.h"
#include "runtime/pipeline_runtime.h"
#include "runtime/stage_worker.h"

namespace autopipe::runtime {
namespace {

// ---------------------------------------------------------------- channel

TEST(Channel, TagMatchedRendezvous) {
  Channel ch;
  ch.send({core::OpType::Forward, 2, -1}, model::Tensor::full({1, 1}, 7.0f));
  ch.send({core::OpType::Forward, 1, -1}, model::Tensor::full({1, 1}, 5.0f));
  // Receive out of send order: tags select the message.
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Forward, 1, -1}).at(0), 5.0f);
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Forward, 2, -1}).at(0), 7.0f);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(Channel, HalvesAndTypesAreDistinctTags) {
  Channel ch;
  ch.send({core::OpType::Forward, 0, 0}, model::Tensor::full({1, 1}, 1.0f));
  ch.send({core::OpType::Forward, 0, 1}, model::Tensor::full({1, 1}, 2.0f));
  ch.send({core::OpType::Backward, 0, 0}, model::Tensor::full({1, 1}, 3.0f));
  EXPECT_EQ(ch.pending(), 3u);
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Backward, 0, 0}).at(0), 3.0f);
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Forward, 0, 1}).at(0), 2.0f);
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Forward, 0, 0}).at(0), 1.0f);
}

TEST(Channel, DuplicateSendIsAnError) {
  Channel ch;
  ch.send({core::OpType::Forward, 0, -1}, model::Tensor({1, 1}));
  EXPECT_THROW(ch.send({core::OpType::Forward, 0, -1}, model::Tensor({1, 1})),
               std::logic_error);
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel ch;
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send({core::OpType::Forward, 0, -1},
            model::Tensor::full({1, 1}, 9.0f));
  });
  EXPECT_FLOAT_EQ(ch.recv({core::OpType::Forward, 0, -1}).at(0), 9.0f);
  producer.join();
}

TEST(Channel, CloseWakesBlockedReceiver) {
  // The old recv would block forever on a dead peer; close() must wake it
  // with a typed failure instead.
  Channel ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.close("device 1 died");
  });
  try {
    ch.recv({core::OpType::Forward, 0, -1});
    FAIL() << "recv returned from a closed, empty channel";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.kind(), FailureKind::PeerClosed);
    EXPECT_NE(std::string(e.what()).find("device 1 died"), std::string::npos);
  }
  closer.join();
}

TEST(Channel, RecvForTimesOutAsTypedFailure) {
  Channel ch;
  try {
    ch.recv_for({core::OpType::Forward, 0, -1}, 30.0);
    FAIL() << "recv_for returned without a message";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.kind(), FailureKind::Timeout);
  }
}

TEST(Channel, RecvForDeliversWithinDeadline) {
  Channel ch;
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send({core::OpType::Backward, 3, -1},
            model::Tensor::full({1, 1}, 4.0f));
  });
  EXPECT_FLOAT_EQ(ch.recv_for({core::OpType::Backward, 3, -1}, 5000.0).at(0),
                  4.0f);
  producer.join();
}

TEST(Channel, CloseDropsMessagesAndPoisons) {
  Channel ch;
  ch.send({core::OpType::Forward, 0, -1}, model::Tensor({1, 1}));
  ch.send({core::OpType::Forward, 1, -1}, model::Tensor({1, 1}));
  ch.close("first reason");
  ch.close("second reason ignored");  // idempotent, first reason wins
  EXPECT_TRUE(ch.closed());
  EXPECT_EQ(ch.close_reason(), "first reason");
  EXPECT_EQ(ch.pending(), 0u);  // leak check stays meaningful after close
  EXPECT_THROW(ch.send({core::OpType::Forward, 2, -1}, model::Tensor({1, 1})),
               StageFailure);
  EXPECT_THROW(ch.recv({core::OpType::Forward, 0, -1}), StageFailure);
  EXPECT_THROW(ch.recv_for({core::OpType::Forward, 0, -1}, 1000.0),
               StageFailure);
}

// ------------------------------------------------------------ slice_half

TEST(SliceHalf, SplitsSamplesNotTokens) {
  model::Batch whole;
  const int seq = 3, samples = 4;
  whole.ids = model::Tensor({samples * seq, 1});
  whole.targets.resize(samples * seq);
  for (int i = 0; i < samples * seq; ++i) {
    whole.ids.data()[i] = static_cast<float>(i);
    whole.targets[i] = i;
  }
  const auto h0 = slice_half(whole, seq, 0);
  const auto h1 = slice_half(whole, seq, 1);
  EXPECT_EQ(h0.ids.dim(0), 2 * seq);
  EXPECT_EQ(h1.ids.dim(0), 2 * seq);
  EXPECT_FLOAT_EQ(h1.ids.at(0), 2 * seq);
  EXPECT_EQ(h1.targets.front(), 2 * seq);
  const auto whole_again = slice_half(whole, seq, -1);
  EXPECT_EQ(whole_again.ids.dim(0), samples * seq);
  model::Batch tiny;
  tiny.ids = model::Tensor({seq, 1});
  EXPECT_THROW(slice_half(tiny, seq, 0), std::invalid_argument);
}

// -------------------------------------------------- gradient equivalence

struct EquivalenceCase {
  costmodel::ScheduleKind kind;
  std::vector<int> counts;  // blocks per stage (model has 8 blocks)
  int micro_batches;
  int sliced;
};

class GradientEquivalence : public testing::TestWithParam<EquivalenceCase> {
 protected:
  static model::TinySpec spec() {
    model::TinySpec s;
    s.layers = 3;  // 8 blocks
    s.hidden = 16;
    s.heads = 2;
    s.vocab = 32;
    s.seq = 4;
    return s;
  }
};

TEST_P(GradientEquivalence, PipelinedGradsMatchReference) {
  const auto& param = GetParam();
  model::TransformerModel ref(spec()), piped(spec());

  model::SyntheticCorpus corpus(spec().vocab);
  const int B = 4;
  const int m = param.micro_batches;
  const auto batch = corpus.next_batch(B * m, spec().seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec().seq, B);
  const double scale = 1.0 / (B * m * spec().seq);

  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);

  PipelineRuntime rt(piped, param.counts);
  piped.zero_grads();
  const auto schedule = rt.make_schedule(param.kind, m, param.sliced);
  const auto result = rt.run_iteration(schedule, micro, scale);

  // The consistency property of §II-B: distributed pipeline == single
  // machine, for loss and every parameter gradient.
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesAndPartitions, GradientEquivalence,
    testing::Values(
        EquivalenceCase{costmodel::ScheduleKind::OneFOneB, {2, 3, 3}, 6, 0},
        EquivalenceCase{costmodel::ScheduleKind::OneFOneB, {4, 4}, 4, 0},
        EquivalenceCase{costmodel::ScheduleKind::OneFOneB, {1, 2, 2, 3}, 8, 0},
        EquivalenceCase{costmodel::ScheduleKind::OneFOneB, {8}, 3, 0},
        EquivalenceCase{
            costmodel::ScheduleKind::AutoPipeSliced, {2, 3, 3}, 6, 1},
        EquivalenceCase{
            costmodel::ScheduleKind::AutoPipeSliced, {2, 3, 3}, 6, 2},
        EquivalenceCase{
            costmodel::ScheduleKind::AutoPipeSliced, {1, 2, 2, 3}, 4, 3},
        EquivalenceCase{costmodel::ScheduleKind::GPipe, {2, 3, 3}, 6, 0},
        EquivalenceCase{costmodel::ScheduleKind::GPipe, {4, 4}, 2, 0},
        EquivalenceCase{costmodel::ScheduleKind::ZeroBubble, {2, 3, 3}, 6, 0},
        EquivalenceCase{costmodel::ScheduleKind::ZeroBubble, {4, 4}, 4, 0},
        EquivalenceCase{
            costmodel::ScheduleKind::ZeroBubble, {1, 2, 2, 3}, 8, 0}));

TEST(Runtime, NoRecomputeModeMatchesReference) {
  // Disabling activation checkpointing (§II-C's other side of the
  // tradeoff) must not change the gradients.
  model::TinySpec spec;
  spec.layers = 3;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  model::TransformerModel ref(spec), piped(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4, m = 6;
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);
  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);
  PipelineRuntime rt(piped, {2, 3, 3});
  piped.zero_grads();
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::OneFOneB, m);
  const auto result =
      rt.run_iteration(schedule, micro, scale, /*recompute=*/false);
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

TEST(Runtime, InterleavedScheduleMatchesReference) {
  // Megatron-LM's interleaved 1F1B on real blocks: 2 devices x 2 chunks
  // over an 8-block model; gradients must still equal the single-process
  // reference (and the wrap-around channel from device 1 chunk 0 to
  // device 0 chunk 1 must route correctly).
  model::TinySpec spec;
  spec.layers = 3;  // 8 blocks
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  model::TransformerModel ref(spec), piped(spec);

  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4, m = 4;
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);

  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);

  PipelineRuntime rt(piped, {2, 2, 2, 2}, /*chunks=*/2);
  EXPECT_EQ(rt.num_devices(), 2);
  piped.zero_grads();
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::Interleaved, m);
  const auto result = rt.run_iteration(schedule, micro, scale);
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

TEST(Runtime, InterleavedFourDevicesTwoChunks) {
  model::TinySpec spec;
  spec.layers = 7;  // 16 blocks -> 8 global stages of 2 blocks
  spec.hidden = 8;
  spec.heads = 2;
  spec.vocab = 16;
  spec.seq = 4;
  model::TransformerModel ref(spec), piped(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 2, m = 8;
  const auto batch = corpus.next_batch(B * m, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
  const double scale = 1.0 / (B * m * spec.seq);
  ref.zero_grads();
  const double ref_loss = ref.reference_step(batch.ids, batch.targets, scale);
  PipelineRuntime rt(piped, std::vector<int>(8, 2), /*chunks=*/2);
  piped.zero_grads();
  const auto result = rt.run_iteration(
      rt.make_schedule(costmodel::ScheduleKind::Interleaved, m), micro, scale);
  EXPECT_NEAR(result.loss, ref_loss, 1e-5);
  EXPECT_LT(ref.max_grad_diff(piped), 1e-4);
}

TEST(Runtime, InterleavedRejectsBadShapes) {
  model::TinySpec spec;  // 2 layers -> 6 blocks
  model::TransformerModel m(spec);
  // devices*chunks must divide the global stage list.
  EXPECT_THROW(PipelineRuntime(m, {2, 2, 2}, 2), std::invalid_argument);
  PipelineRuntime rt(m, {2, 1, 1, 2}, 2);
  // Interleaved needs micro_batches % devices == 0.
  EXPECT_THROW(rt.make_schedule(costmodel::ScheduleKind::Interleaved, 3),
               std::invalid_argument);
}

TEST(Runtime, LossDecreasesUnderTraining) {
  model::TinySpec spec;
  spec.layers = 2;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 24;
  spec.seq = 4;
  model::TransformerModel m(spec);
  PipelineRuntime rt(m, {3, 3});
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4, micro_count = 4;
  const double scale = 1.0 / (B * micro_count * spec.seq);
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::AutoPipeSliced, micro_count, 1);
  Adam adam(3e-3);
  double first = 0, last = 0;
  for (int it = 0; it < 12; ++it) {
    const auto batch = corpus.next_batch(B * micro_count, spec.seq);
    const auto micro =
        model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);
    m.zero_grads();
    const auto r = rt.run_iteration(schedule, micro, scale);
    adam.step(m);
    if (it == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first * 0.97);
}

TEST(Runtime, SgdAndAdamMoveParameters) {
  model::TinySpec spec;
  model::TransformerModel m(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const auto batch = corpus.next_batch(2, spec.seq);
  m.zero_grads();
  m.reference_step(batch.ids, batch.targets, 1.0 / (2 * spec.seq));
  const float before = m.block(1).params()[2].value.at(0);
  Sgd sgd(0.1);
  sgd.step(m);
  const float after_sgd = m.block(1).params()[2].value.at(0);
  EXPECT_NE(before, after_sgd);
  Adam adam(0.01);
  adam.step(m);
  EXPECT_NE(after_sgd, m.block(1).params()[2].value.at(0));
}

TEST(Runtime, RejectsMismatchedConfigs) {
  model::TinySpec spec;  // 2 layers -> 6 blocks
  model::TransformerModel m(spec);
  EXPECT_THROW(PipelineRuntime(m, {2, 2}), std::invalid_argument);
  EXPECT_THROW(PipelineRuntime(m, {6, 0}), std::invalid_argument);
  PipelineRuntime rt(m, {3, 3});
  const auto schedule =
      rt.make_schedule(costmodel::ScheduleKind::OneFOneB, 4, 0);
  model::SyntheticCorpus corpus(spec.vocab);
  const auto batch = corpus.next_batch(8, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, 2);
  // 4 micro-batches expected, give 2.
  const std::vector<model::Batch> wrong(micro.begin(), micro.begin() + 2);
  EXPECT_THROW(rt.run_iteration(schedule, wrong, 1.0), std::invalid_argument);
}

TEST(Runtime, WorkerDeathNeverDeadlocksPeers) {
  // Regression guard for the recv deadlock: before close/poison semantics,
  // a dead stage left its neighbours blocked in recv forever. The whole
  // faulted iteration must now finish -- by throwing StageFailure -- well
  // inside the 5 s watchdog.
  model::TinySpec spec;
  spec.layers = 3;
  spec.hidden = 16;
  spec.heads = 2;
  spec.vocab = 32;
  spec.seq = 4;
  model::TransformerModel m(spec);
  model::SyntheticCorpus corpus(spec.vocab);
  const int B = 4, mbatches = 6;
  const auto batch = corpus.next_batch(B * mbatches, spec.seq);
  const auto micro =
      model::SyntheticCorpus::split_micro_batches(batch, spec.seq, B);

  faults::FaultPlan plan;
  faults::DeviceCrash crash;
  crash.device = 1;
  crash.after_ops = 3;
  plan.crashes.push_back(crash);

  auto attempt = std::async(std::launch::async, [&] {
    PipelineRuntime rt(m, {2, 3, 3});
    m.zero_grads();
    const auto schedule =
        rt.make_schedule(costmodel::ScheduleKind::OneFOneB, mbatches);
    RunOptions run;
    run.faults = &plan;
    rt.run_iteration(schedule, micro, 1.0 / (B * mbatches * spec.seq), run);
  });
  ASSERT_EQ(attempt.wait_for(std::chrono::seconds(5)),
            std::future_status::ready)
      << "faulted iteration deadlocked (recv never woke)";
  try {
    attempt.get();
    FAIL() << "crashed iteration reported success";
  } catch (const StageFailure& e) {
    EXPECT_EQ(e.kind(), FailureKind::Crash);
    EXPECT_EQ(e.device(), 1);
  }
}

TEST(Runtime, CorpusIsLearnableAndDeterministic) {
  model::SyntheticCorpus a(32, 5), b(32, 5);
  const auto ba = a.next_batch(2, 6);
  const auto bb = b.next_batch(2, 6);
  EXPECT_DOUBLE_EQ(model::max_abs_diff(ba.ids, bb.ids), 0.0);
  EXPECT_EQ(ba.targets, bb.targets);
  EXPECT_THROW(model::SyntheticCorpus::split_micro_batches(ba, 6, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace autopipe::runtime
