#include <gtest/gtest.h>

#include <map>

#include "core/simulator.h"
#include "util/rng.h"

namespace autopipe::core {
namespace {

std::vector<StageCost> uniform_stages(int n, double f, double b) {
  return std::vector<StageCost>(n, StageCost{f, b});
}

TEST(Simulator, SingleStageIsSequential) {
  const auto r = simulate_pipeline(uniform_stages(1, 2.0, 4.0), 5, 1.0);
  EXPECT_DOUBLE_EQ(r.iteration_ms, 5 * 6.0);
  EXPECT_DOUBLE_EQ(r.startup_ms, 0.0);
  EXPECT_EQ(static_cast<int>(r.ops.size()), 10);
}

TEST(Simulator, RejectsFewerMicroBatchesThanStages) {
  EXPECT_THROW(simulate_pipeline(uniform_stages(4, 1, 2), 3, 0.1),
               std::invalid_argument);
  EXPECT_THROW(simulate_pipeline({}, 3, 0.1), std::invalid_argument);
}

TEST(Simulator, StartupIsForwardChainPlusComms) {
  // Balanced pipeline: the last stage's first FP starts after every earlier
  // stage's FP plus one hop each (§II-B).
  const int n = 4;
  const auto stages = uniform_stages(n, 3.0, 9.0);
  const auto r = simulate_pipeline(stages, 8, 0.5);
  EXPECT_NEAR(r.startup_ms, 3 * 3.0 + 3 * 0.5, 1e-9);
  EXPECT_NEAR(r.warmup_estimate_ms, 4 * 3.0 + 3 * 0.5, 1e-9);
}

TEST(Simulator, PerBoundaryCommShiftsStartup) {
  // Comm(g) generalizes the scalar: pricing only boundary 1 at 5 ms delays
  // the forward chain -- and so startup -- by exactly 5 ms.
  const auto stages = uniform_stages(4, 3.0, 9.0);
  const auto base = simulate_pipeline(stages, 8, 0.0);
  const auto skewed = simulate_pipeline(
      stages, 8, costmodel::CommModel::from_costs({0.0, 5.0, 0.0}));
  EXPECT_NEAR(skewed.startup_ms, base.startup_ms + 5.0, 1e-12);
  EXPECT_NEAR(skewed.warmup_estimate_ms, base.warmup_estimate_ms + 5.0,
              1e-12);
}

TEST(Simulator, UniformVectorMatchesScalarRecurrences) {
  // Contract (a): the recurrences add hops one at a time, so an explicit
  // equal-cost vector is bit-identical to the scalar on every op time (the
  // warmup *estimate* keeps its closed form only for the uniform kind).
  const auto stages = uniform_stages(5, 1.3, 2.9);
  const double c = 0.41;
  const auto scalar = simulate_pipeline(stages, 9, c);
  const auto vector = simulate_pipeline(
      stages, 9, costmodel::CommModel::from_costs({c, c, c, c}));
  EXPECT_EQ(scalar.iteration_ms, vector.iteration_ms);
  EXPECT_EQ(scalar.startup_ms, vector.startup_ms);
  EXPECT_EQ(scalar.master_stage, vector.master_stage);
  EXPECT_EQ(scalar.critical_path, vector.critical_path);
  ASSERT_EQ(scalar.ops.size(), vector.ops.size());
  for (std::size_t i = 0; i < scalar.ops.size(); ++i) {
    EXPECT_EQ(scalar.ops[i].start_ms, vector.ops[i].start_ms);
    EXPECT_EQ(scalar.ops[i].end_ms, vector.ops[i].end_ms);
  }
  EXPECT_NEAR(scalar.warmup_estimate_ms, vector.warmup_estimate_ms, 1e-12);
}

TEST(Simulator, RejectsShortBoundaryVector) {
  EXPECT_THROW(simulate_pipeline(uniform_stages(4, 1, 2), 8,
                                 costmodel::CommModel::from_costs({0.1})),
               std::invalid_argument);
}

TEST(Simulator, BalancedPipelineIterationFormula) {
  // For a perfectly balanced pipeline with b = 2f and negligible comm, the
  // last stage runs continuously after startup: iter ~ startup + m*(f+b) +
  // backward drain through the earlier stages.
  const int n = 4, m = 8;
  const double f = 2.0, b = 4.0;
  const auto r = simulate_pipeline(uniform_stages(n, f, b), m, 0.0);
  const double expected = (n - 1) * f + m * (f + b) + (n - 1) * b;
  EXPECT_NEAR(r.iteration_ms, expected, 1e-9);
}

TEST(Simulator, OpCountsAndCoverage) {
  const int n = 3, m = 7;
  const auto r = simulate_pipeline(uniform_stages(n, 1, 2), m, 0.1);
  ASSERT_EQ(static_cast<int>(r.ops.size()), 2 * n * m);
  // Each stage has exactly m forwards and m backwards.
  std::map<std::pair<int, int>, int> counts;  // (stage, type)
  for (const auto& op : r.ops) {
    ASSERT_GE(op.id, 0) << "uninitialized op slot";
    counts[{op.stage, static_cast<int>(op.type)}]++;
  }
  for (int x = 0; x < n; ++x) {
    EXPECT_EQ((counts[{x, 0}]), m);
    EXPECT_EQ((counts[{x, 1}]), m);
  }
}

// Property: every printed recurrence holds on the computed start times.
struct SimCase {
  int n, m;
  double comm;
  std::uint64_t seed;
};

class SimulatorDependencies : public testing::TestWithParam<SimCase> {};

TEST_P(SimulatorDependencies, StartTimesRespectEveryDependency) {
  const auto [n, m, comm, seed] = GetParam();
  util::Rng rng(seed);
  std::vector<StageCost> stages(n);
  for (auto& s : stages) {
    s.fwd_ms = rng.uniform(0.5, 3.0);
    s.bwd_ms = rng.uniform(1.0, 6.0);
  }
  const auto r = simulate_pipeline(stages, m, comm);

  // Index ops by (stage, micro-batch, type).
  std::map<std::tuple<int, int, int>, const SimOp*> by_key;
  for (const auto& op : r.ops) {
    by_key[{op.stage, op.micro_batch, static_cast<int>(op.type)}] = &op;
  }
  auto end_of = [&](int stage, int mb, OpType type) {
    return by_key.at({stage, mb, static_cast<int>(type)})->end_ms;
  };

  constexpr double kTol = 1e-9;
  for (const auto& op : r.ops) {
    EXPECT_NEAR(op.end_ms - op.start_ms,
                op.type == OpType::Forward ? stages[op.stage].fwd_ms
                                           : stages[op.stage].bwd_ms,
                kTol);
    if (op.type == OpType::Forward && op.stage > 0) {
      // Activation arrival: producer end + comm.
      EXPECT_GE(op.start_ms + kTol,
                end_of(op.stage - 1, op.micro_batch, OpType::Forward) + comm);
    }
    if (op.type == OpType::Backward && op.stage < n - 1) {
      EXPECT_GE(op.start_ms + kTol,
                end_of(op.stage + 1, op.micro_batch, OpType::Backward) + comm);
    }
    if (op.type == OpType::Backward) {
      // A backward always follows its own forward.
      EXPECT_GE(op.start_ms + kTol,
                end_of(op.stage, op.micro_batch, OpType::Forward));
    }
  }

  // Per-stage ops never overlap.
  std::map<int, std::vector<const SimOp*>> per_stage;
  for (const auto& op : r.ops) per_stage[op.stage].push_back(&op);
  for (auto& [stage, ops] : per_stage) {
    std::sort(ops.begin(), ops.end(), [](const SimOp* a, const SimOp* b) {
      return a->start_ms < b->start_ms;
    });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_GE(ops[i]->start_ms + kTol, ops[i - 1]->end_ms)
          << "overlap on stage " << stage;
    }
  }

  // Iteration time is the max end.
  double max_end = 0;
  for (const auto& op : r.ops) max_end = std::max(max_end, op.end_ms);
  EXPECT_DOUBLE_EQ(r.iteration_ms, max_end);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimulatorDependencies,
    testing::Values(SimCase{2, 4, 0.2, 1}, SimCase{3, 6, 0.0, 2},
                    SimCase{4, 8, 0.5, 3}, SimCase{4, 4, 0.3, 4},
                    SimCase{5, 12, 0.1, 5}, SimCase{8, 16, 0.4, 6},
                    SimCase{6, 7, 1.5, 7}, SimCase{1, 5, 0.2, 8},
                    SimCase{12, 24, 0.05, 9}));

TEST(Simulator, CriticalPathIsConnectedAndEndsLast) {
  const auto r = simulate_pipeline(uniform_stages(4, 2, 5), 8, 0.3);
  ASSERT_FALSE(r.critical_path.empty());
  // Ends at the op with the latest finish.
  EXPECT_DOUBLE_EQ(r.ops[r.critical_path.back()].end_ms, r.iteration_ms);
  // Each consecutive pair is linked via critical_pred.
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    EXPECT_EQ(r.ops[r.critical_path[i]].critical_pred, r.critical_path[i - 1]);
    EXPECT_LE(r.ops[r.critical_path[i - 1]].end_ms,
              r.ops[r.critical_path[i]].start_ms + 1e-9);
  }
  for (int id : r.critical_path) {
    EXPECT_TRUE(r.ops[id].on_critical_path);
  }
}

TEST(Simulator, MasterStageIsTheHeaviest) {
  // Make stage 2 clearly dominant: the critical path must ride it.
  std::vector<StageCost> stages{{1, 2}, {1, 2}, {4, 8}, {1, 2}};
  const auto r = simulate_pipeline(stages, 8, 0.1);
  EXPECT_EQ(r.master_stage, 2);
}

TEST(Simulator, BalancedTieBreaksTowardLastStage) {
  // Perfectly balanced: multiple longest paths exist; the unique critical
  // path must be the one closest to the last stage (Fig. 4).
  const auto r = simulate_pipeline(uniform_stages(4, 2, 4), 8, 0.0);
  EXPECT_EQ(r.master_stage, 3);
}

TEST(Simulator, ForwardMasterMovementReducesIteration) {
  // Fig. 7: swapping load so the master moves to an earlier stage shortens
  // the pipeline.
  std::vector<StageCost> late_heavy{{1, 3}, {1, 3}, {2, 6}, {1, 3}};
  std::vector<StageCost> early_heavy{{1, 3}, {2, 6}, {1, 3}, {1, 3}};
  const auto late = simulate_pipeline(late_heavy, 8, 0.1);
  const auto early = simulate_pipeline(early_heavy, 8, 0.1);
  EXPECT_GT(late.master_stage, early.master_stage);
  EXPECT_LT(early.iteration_ms, late.iteration_ms);
}

TEST(Simulator, MonotoneInLoad) {
  const auto base = simulate_pipeline(uniform_stages(4, 2, 4), 8, 0.2);
  for (int x = 0; x < 4; ++x) {
    auto heavier = uniform_stages(4, 2, 4);
    heavier[x].bwd_ms += 1.0;
    const auto r = simulate_pipeline(heavier, 8, 0.2);
    EXPECT_GE(r.iteration_ms, base.iteration_ms) << "stage " << x;
  }
}

TEST(Simulator, MonotoneInCommCost) {
  const auto cheap = simulate_pipeline(uniform_stages(4, 2, 4), 8, 0.0);
  const auto pricey = simulate_pipeline(uniform_stages(4, 2, 4), 8, 1.0);
  EXPECT_GT(pricey.iteration_ms, cheap.iteration_ms);
  EXPECT_GT(pricey.startup_ms, cheap.startup_ms);
}

TEST(Simulator, ExactlyAsManyMicroBatchesAsStages) {
  // m == n: every stage owns exactly one 1F1B block; warmup/cooldown cover
  // the rest. All the renumbering edge cases collapse here.
  const int n = 5;
  const auto r = simulate_pipeline(uniform_stages(n, 2, 4), n, 0.1);
  EXPECT_EQ(static_cast<int>(r.ops.size()), 2 * n * n);
  // First stage's steady phase is one block; it still produces n forwards.
  int forwards = 0;
  for (const auto& op : r.ops) {
    if (op.stage == 0 && op.type == OpType::Forward) ++forwards;
  }
  EXPECT_EQ(forwards, n);
  EXPECT_GT(r.iteration_ms, n * 6.0);  // more than one stage's serial work
}

TEST(Simulator, ZeroCostStagesDoNotBreakOrdering) {
  std::vector<StageCost> stages{{0, 0}, {1, 2}, {0, 0}, {1, 2}};
  const auto r = simulate_pipeline(stages, 8, 0.0);
  EXPECT_GT(r.iteration_ms, 0.0);
  for (const auto& op : r.ops) {
    EXPECT_GE(op.end_ms, op.start_ms);
  }
}

TEST(Simulator, PartitionOverloadMatchesStageCosts) {
  const auto cfg =
      costmodel::build_model_config(costmodel::gpt2_345m(), {4, 0, true});
  const Partition p{{11, 13, 12, 14}};
  const auto via_partition = simulate_pipeline(cfg, p, 8);
  const auto costs = stage_costs(cfg, p);
  const auto direct = simulate_pipeline(costs, 8, cfg.comm_ms);
  EXPECT_DOUBLE_EQ(via_partition.iteration_ms, direct.iteration_ms);
}

}  // namespace
}  // namespace autopipe::core
