#include <gtest/gtest.h>

#include <fstream>

#include "trace/chrome_trace.h"
#include "trace/timeline.h"

namespace autopipe::trace {
namespace {

sim::ExecResult sample_result() {
  const std::vector<core::StageCost> stages(3, core::StageCost{2.0, 4.0});
  return sim::execute(core::build_sliced_1f1b(stages, 6, 0.2, 1));
}

TEST(ChromeTrace, EmitsOneEventPerOp) {
  const auto result = sample_result();
  const std::string json = to_chrome_trace(result);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.back(), '}');
  std::size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, result.trace.size());
  // Sliced halves are labelled a/b.
  EXPECT_NE(json.find("\"F0a\""), std::string::npos);
  EXPECT_NE(json.find("\"F0b\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"backward\""), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  const auto result = sample_result();
  const std::string path = testing::TempDir() + "/autopipe_trace_test.json";
  ASSERT_TRUE(write_chrome_trace(result, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_chunk(16, '\0');
  in.read(first_chunk.data(), 16);
  EXPECT_EQ(first_chunk.substr(0, 2), "{\"");
  EXPECT_FALSE(write_chrome_trace(result, "/nonexistent-dir/x.json"));
}

TEST(ChromeTrace, InterleavedChunksLabelled) {
  const std::vector<std::vector<core::StageCost>> chunks(
      2, std::vector<core::StageCost>(2, core::StageCost{1, 2}));
  const auto result = sim::execute(core::build_interleaved(chunks, 4, 0.1));
  const std::string json = to_chrome_trace(result);
  EXPECT_NE(json.find(".c1"), std::string::npos);
}

TEST(Timeline, OneRowPerDeviceWithLegend) {
  const auto result = sample_result();
  const std::string art = render_timeline(result, {80, true});
  EXPECT_NE(art.find("stage 0 |"), std::string::npos);
  EXPECT_NE(art.find("stage 2 |"), std::string::npos);
  EXPECT_EQ(art.find("stage 3"), std::string::npos);
  EXPECT_NE(art.find("idle"), std::string::npos);  // legend
  // Sliced half markers present.
  EXPECT_NE(art.find('^'), std::string::npos);
}

TEST(Timeline, WarmupShapeVisible) {
  // Stage 0 starts busy at column 0; the last stage starts idle.
  const std::vector<core::StageCost> stages(4, core::StageCost{2.0, 4.0});
  const auto result = sim::execute(core::build_1f1b(stages, 8, 0.5));
  const std::string art = render_timeline(result, {60, false});
  const auto row0 = art.find("stage 0 |");
  const auto row3 = art.find("stage 3 |");
  ASSERT_NE(row0, std::string::npos);
  ASSERT_NE(row3, std::string::npos);
  EXPECT_EQ(art[row0 + 9], '0');  // first forward glyph
  EXPECT_EQ(art[row3 + 9], '.');  // startup idle
}

TEST(Timeline, LegendCanBeDisabled) {
  const auto result = sample_result();
  const std::string art = render_timeline(result, {50, false});
  EXPECT_EQ(art.find("idle"), std::string::npos);
}

}  // namespace
}  // namespace autopipe::trace
